(* Command-line interface over the Packet Re-cycling library:
   topology inspection, embedding reports, packet traces and the paper's
   experiments. *)

open Cmdliner
module Topology = Pr_topo.Topology
module Trace = Pr_telemetry.Trace
module Probe = Pr_telemetry.Probe

let find_topology name =
  match Pr_topo.Zoo.find name with
  | topo -> topo
  | exception Not_found ->
      Printf.eprintf "unknown topology %S; available: %s\n" name
        (String.concat ", " (Pr_topo.Zoo.names ()));
      exit 2

let topo_arg =
  let doc = "Topology name (see `prcli topo list') or a path to a topology file." in
  Arg.(value & opt string "abilene" & info [ "t"; "topology" ] ~docv:"NAME" ~doc)

let load_topology name =
  if Sys.file_exists name && not (Sys.is_directory name) then
    if Filename.check_suffix name ".gml" then begin
      let { Pr_topo.Gml.topology; dropped_parallel; dropped_self } =
        Pr_topo.Gml.load name
      in
      if dropped_parallel + dropped_self > 0 then
        Printf.eprintf "note: dropped %d parallel edges and %d self loops\n"
          dropped_parallel dropped_self;
      topology
    end
    else Pr_topo.Parse.load name
  else find_topology name

let node_id_or_die topo label =
  match Topology.node_id topo label with
  | id -> id
  | exception Not_found ->
      Printf.eprintf "unknown node label %S in %s\n" label
        topo.Topology.name;
      exit 1

let seed_arg =
  let doc = "Random seed (all experiments are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)

(* --shortcut validation, the malformed-input convention: a width that
   cannot name a hint (non-positive, beyond the {!Pr_core.Seen} maximum)
   or does not fit the header budget next to the topology's DD field is
   a one-line error with exit 1, never a backtrace. *)
let shortcut_range_or_die = function
  | None -> None
  | Some w ->
      if w < 1 then begin
        Printf.eprintf "shortcut width must be >= 1 (got %d)\n" w;
        exit 1
      end;
      if w > Pr_core.Seen.max_width then begin
        Printf.eprintf "shortcut width %d exceeds the %d-bit hint maximum\n" w
          Pr_core.Seen.max_width;
        exit 1
      end;
      Some w

let shortcut_or_die ~dd_bits sc =
  match shortcut_range_or_die sc with
  | None -> None
  | Some w ->
      if not (Pr_core.Header.shortcut_fits ~dd_bits ~sc_width:w) then begin
        Printf.eprintf
          "shortcut width %d does not fit the header budget next to %d DD \
           bit(s)\n"
          w dd_bits;
        exit 1
      end;
      Some w

let shortcut_arg =
  Arg.(value & opt (some int) None & info [ "shortcut" ] ~docv:"WIDTH"
         ~doc:"Arm the deja-vu shortcut rung with a seen-node hint of this
               many bits (exact bitset when the topology fits the budget,
               saturating Bloom hint otherwise).  Delivery stays
               guaranteed: a hint hit can only $(i,grant) a DD-sound early
               exit from a recycled walk, never misroute.")

let embedding_arg =
  let doc = "Embedding: $(b,geometric), $(b,adjacency), $(b,random), $(b,optimised) or $(b,safe)." in
  let choices =
    Arg.enum
      [
        ("geometric", Pr_exp.Fig2.Geometric);
        ("adjacency", Pr_exp.Fig2.Adjacency);
        ("random", Pr_exp.Fig2.Random_rotation);
        ("optimised", Pr_exp.Fig2.Optimised);
        ("safe", Pr_exp.Fig2.Safe_optimised);
      ]
  in
  Arg.(value & opt choices Pr_exp.Fig2.Geometric & info [ "embedding" ] ~docv:"KIND" ~doc)

(* ---- topo ---- *)

let topo_list () =
  List.iter
    (fun name ->
      let t = find_topology name in
      Printf.printf "%-14s %s\n" name (Topology.summary t))
    (Pr_topo.Zoo.names ())

let topo_show name dot =
  let topo = load_topology name in
  if dot then
    print_string
      (Pr_graph.Dot.to_dot ~name:topo.Topology.name
         ~node_label:(Topology.label topo) topo.Topology.graph)
  else begin
    Format.printf "%a@." Topology.pp topo;
    Printf.printf "connected: %b, bridges: %d, 2-edge-connected: %b\n"
      (Pr_graph.Connectivity.is_connected topo.Topology.graph)
      (List.length (Pr_graph.Connectivity.bridges topo.Topology.graph))
      (Pr_graph.Connectivity.is_two_edge_connected topo.Topology.graph)
  end

let topo_convert name out =
  let topo = load_topology name in
  if Filename.check_suffix out ".gml" then Pr_topo.Gml.save out topo
  else if Filename.check_suffix out ".dot" then
    Pr_graph.Dot.write_file ~path:out ~name:topo.Topology.name
      ~node_label:(Topology.label topo) topo.Topology.graph
  else Pr_topo.Parse.save out topo;
  Printf.printf "wrote %s (%s)\n" out (Topology.summary topo)

let topo_convert_cmd =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT"
           ~doc:"Output file; format from the extension (.gml, .dot, else plain text).")
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert a topology between text, GML and DOT formats.")
    Term.(const topo_convert $ topo_arg $ out)

let topo_list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List built-in topologies.")
    Term.(const topo_list $ const ())

let topo_show_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  Cmd.v (Cmd.info "show" ~doc:"Show a topology.")
    Term.(const topo_show $ topo_arg $ dot)

let topo_cmd =
  Cmd.group (Cmd.info "topo" ~doc:"Topology inspection.")
    [ topo_list_cmd; topo_show_cmd; topo_convert_cmd ]

(* ---- embed ---- *)

let embed name embedding seed save =
  let topo = load_topology name in
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  (match save with
  | Some path ->
      Pr_embed.Rotation_io.save path rotation;
      Printf.printf "rotation written to %s\n" path
  | None -> ());
  let faces = Pr_embed.Faces.compute rotation in
  Printf.printf "%s, %s embedding: %s, curved edges %d, PR-safe %b\n"
    topo.Topology.name
    (Pr_exp.Ablation.embedding_name embedding)
    (Pr_embed.Surface.describe faces)
    (List.length (Pr_embed.Validate.curved_edges faces))
    (Pr_embed.Validate.is_pr_safe faces);
  for f = 0 to Pr_embed.Faces.count faces - 1 do
    let nodes = Pr_embed.Faces.face_nodes faces f in
    Printf.printf "  c%-3d (%d arcs): %s\n" (f + 1) (List.length nodes)
      (String.concat " -> " (List.map (Topology.label topo) nodes))
  done;
  match Pr_embed.Validate.check faces with
  | [] -> print_endline "embedding valid."
  | problems ->
      List.iter
        (fun p -> Format.printf "PROBLEM: %a@." Pr_embed.Validate.pp_problem p)
        problems;
      exit 1

let embed_cmd =
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Also write the rotation system to a file (Rotation_io format).")
  in
  Cmd.v
    (Cmd.info "embed" ~doc:"Compute and validate a cellular embedding.")
    Term.(const embed $ topo_arg $ embedding_arg $ seed_arg $ save)

(* ---- table ---- *)

let table name router_label embedding seed =
  let topo = load_topology name in
  let x = node_id_or_die topo router_label in
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  let cycles = Pr_core.Cycle_table.build rotation in
  let label = Topology.label topo in
  Printf.printf "Cycle following table at %s (%s embedding, %s):\n" (label x)
    (Pr_exp.Ablation.embedding_name embedding)
    (Pr_embed.Surface.describe (Pr_embed.Faces.compute rotation));
  Pr_util.Tablefmt.print
    ~align:[ Pr_util.Tablefmt.Left; Pr_util.Tablefmt.Left; Pr_util.Tablefmt.Left ]
    ~header:[ "incoming"; "cycle following"; "complementary" ]
    (List.map
       (fun (e : Pr_core.Cycle_table.entry) ->
         [
           Printf.sprintf "I_%s%s" (label e.incoming) (label x);
           Printf.sprintf "I_%s%s" (label x) (label e.cycle_following);
           Printf.sprintf "I_%s%s" (label x) (label e.complementary);
         ])
       (Pr_core.Cycle_table.entries cycles x));
  let routing = Pr_core.Routing.build topo.Topology.graph in
  Printf.printf "\nRouting table at %s (next hop, distance discriminator):\n" (label x);
  Pr_util.Tablefmt.print
    ~header:[ "destination"; "next hop"; "DD" ]
    (List.filter_map
       (fun dst ->
         if dst = x then None
         else
           match Pr_core.Routing.next_hop routing ~node:x ~dst with
           | None -> Some [ label dst; "-"; "inf" ]
           | Some nh ->
               Some
                 [
                   label dst;
                   label nh;
                   Printf.sprintf "%g" (Pr_core.Routing.disc routing ~node:x ~dst);
                 ])
       (List.init (Topology.n topo) Fun.id))

let table_cmd =
  let router =
    Arg.(required & opt (some string) None & info [ "r"; "router" ] ~docv:"LABEL"
           ~doc:"Router whose tables to print.")
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print a router's cycle following and routing tables.")
    Term.(const table $ topo_arg $ router $ embedding_arg $ seed_arg)

(* ---- trace ---- *)

let parse_failures topo spec =
  if spec = "" then []
  else
    String.split_on_char ',' spec
    |> List.map (fun pair ->
           match String.split_on_char '-' (String.trim pair) with
           | [ a; b ] -> (node_id_or_die topo a, node_id_or_die topo b)
           | _ ->
               Printf.eprintf "bad failure spec %S (want LABEL-LABEL,...)\n" pair;
               exit 1)

let failures_or_die topo spec =
  match Pr_core.Failure.of_list topo.Topology.graph (parse_failures topo spec) with
  | failures -> failures
  | exception Invalid_argument msg ->
      Printf.eprintf "bad failure spec %S: %s\n" spec msg;
      exit 1

(* The malformed-input convention for trace/explain: one line on stderr,
   exit 1, never a backtrace. *)
let require_distinct label ~src ~dst =
  if src = dst then begin
    Printf.eprintf "source and destination are both %s\n" (label src);
    exit 1
  end

let require_connected label failures ~src ~dst =
  if not (Pr_core.Failure.pair_connected failures src dst) then begin
    Printf.eprintf "%s and %s are disconnected under %s\n" (label src)
      (label dst)
      (Format.asprintf "%a" Pr_core.Failure.pp failures);
    exit 1
  end

let trace name src_label dst_label failures_spec embedding seed simple =
  let topo = load_topology name in
  let src = node_id_or_die topo src_label
  and dst = node_id_or_die topo dst_label in
  require_distinct (Topology.label topo) ~src ~dst;
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  let routing = Pr_core.Routing.build topo.Topology.graph in
  let cycles = Pr_core.Cycle_table.build rotation in
  let failures = failures_or_die topo failures_spec in
  require_connected (Topology.label topo) failures ~src ~dst;
  let termination =
    if simple then Pr_core.Forward.Simple
    else Pr_core.Forward.Distance_discriminator
  in
  let t = Pr_core.Forward.run ~termination ~routing ~cycles ~failures ~src ~dst () in
  let outcome =
    match t.outcome with
    | Pr_core.Forward.Delivered -> "delivered"
    | Pr_core.Forward.Dropped_no_interface -> "DROPPED (no live interface)"
    | Pr_core.Forward.Dropped_unreachable -> "DROPPED (unreachable)"
    | Pr_core.Forward.Dropped_corrupt -> "DROPPED (corrupt)"
    | Pr_core.Forward.Ttl_exceeded -> "LOOP (TTL exceeded)"
  in
  Printf.printf "PR %s: %s\n" outcome
    (String.concat " -> " (List.map (Topology.label topo) t.path));
  Printf.printf "PR episodes: %d, failure encounters: %d, max DD carried: %d\n"
    t.pr_episodes t.failure_hits t.max_header.Pr_core.Header.dd;
  if t.outcome = Pr_core.Forward.Delivered then
    Printf.printf "stretch: %.3f\n"
      (Pr_core.Forward.stretch ~routing ~trace:t ~src ~dst);
  let fcp = Pr_baselines.Fcp.run topo.Topology.graph ~failures ~src ~dst () in
  (match fcp.outcome with
  | Pr_baselines.Fcp.Delivered ->
      Printf.printf "FCP delivered: %s (stretch %.3f, %d SPF runs)\n"
        (String.concat " -> " (List.map (Topology.label topo) fcp.path))
        (Pr_baselines.Fcp.stretch ~routing ~trace:fcp ~src ~dst)
        fcp.recomputations
  | Pr_baselines.Fcp.Disconnected -> print_endline "FCP: disconnected"
  | Pr_baselines.Fcp.Ttl_exceeded -> print_endline "FCP: TTL exceeded");
  match Pr_baselines.Reconvergence.path topo.Topology.graph ~failures ~src ~dst with
  | Some p ->
      Printf.printf "post-reconvergence: %s (stretch %.3f)\n"
        (String.concat " -> " (List.map (Topology.label topo) p))
        (Pr_baselines.Reconvergence.stretch ~routing ~failures ~src ~dst)
  | None -> print_endline "post-reconvergence: disconnected"

let trace_cmd =
  let src =
    Arg.(required & opt (some string) None & info [ "s"; "src" ] ~docv:"LABEL" ~doc:"Source node label.")
  in
  let dst =
    Arg.(required & opt (some string) None & info [ "d"; "dst" ] ~docv:"LABEL" ~doc:"Destination node label.")
  in
  let failures =
    Arg.(value & opt string "" & info [ "f"; "fail" ] ~docv:"A-B,C-D" ~doc:"Failed links, by node labels.")
  in
  let simple =
    Arg.(value & flag & info [ "simple" ] ~doc:"Use the §4.2 simple termination condition.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace one packet under PR, FCP and reconvergence.")
    Term.(const trace $ topo_arg $ src $ dst $ failures $ embedding_arg $ seed_arg $ simple)

(* ---- explain: the flight recorder ---- *)

(* Parsed by hand rather than through [Arg.enum] so an unknown label is a
   one-line error with exit 1, the malformed-input convention. *)
let parse_backend = function
  | "reference" -> `Reference
  | "compiled" -> `Compiled
  | s ->
      Printf.eprintf "unknown backend %S (expected reference or compiled)\n" s;
      exit 1

let backend_arg =
  Arg.(value & opt string "reference" & info [ "backend" ] ~docv:"KIND"
         ~doc:"Data plane for PR forwarding: the $(b,reference) walks or the
               $(b,compiled) FIB-image kernel (identical verdicts).")

let fib_or_die routing cycles =
  match Pr_fastpath.Fib.of_tables_exn routing cycles with
  | fib -> fib
  | exception Invalid_argument msg ->
      Printf.eprintf "cannot compile the FIB image: %s\n" msg;
      exit 1

(* Replay one packet with a ring sink attached; both backends emit the
   same event sequence (the telemetry differential suite pins this), so
   the rendered trace is backend-independent. *)
let explain_replay ~backend ~termination ~routing ~cycles ~failures ~src ~dst =
  let ring = Trace.Ring.create () in
  (match backend with
  | `Reference ->
      ignore
        (Pr_core.Forward.run ~termination ~routing ~cycles ~failures
           ~trace:(Trace.Ring.sink ring) ~src ~dst ()
          : Pr_core.Forward.trace)
  | `Compiled ->
      let kernel = Pr_fastpath.Kernel.create (fib_or_die routing cycles) in
      Pr_fastpath.Kernel.set_failures kernel failures;
      Pr_fastpath.Kernel.set_trace kernel (Trace.Ring.sink ring);
      ignore
        (Pr_fastpath.Kernel.run_one ~termination kernel ~src ~dst
          : Pr_fastpath.Kernel.result));
  ring

let print_ring ?label ~json ring =
  let events = Trace.Ring.events ring in
  if json then List.iter (fun ev -> print_endline (Trace.event_to_json ev)) events
  else print_string (Trace.render ?label events);
  let dropped = Trace.Ring.dropped ring in
  if dropped > 0 then
    Printf.printf "      ... %d more event(s) beyond the ring capacity\n" dropped

(* Rebuild the frozen failure set the engine used at time [t]: hold-down
   damping first (exactly as {!Pr_chaos.Scenario.run} does), then every
   link event at or before [t] — ties between a link event and an
   injection resolve link-first in the engine's queue. *)
let scenario_failures_at (s : Pr_chaos.Scenario.t) ~time =
  let events =
    if s.hold_down > 0.0 then
      Pr_sim.Flap.apply_hold_down s.link_events ~hold_down:s.hold_down
    else s.link_events
  in
  let down =
    List.fold_left
      (fun acc (e : Pr_sim.Workload.link_event) ->
        if e.time > time then acc
        else
          let link = if e.u < e.v then (e.u, e.v) else (e.v, e.u) in
          if e.up then List.filter (fun l -> l <> link) acc
          else if List.mem link acc then acc
          else acc @ [ link ])
      [] events
  in
  Pr_core.Failure.of_list s.graph down

let scenario_node_or_die (s : Pr_chaos.Scenario.t) str =
  let n = Pr_graph.Graph.n s.graph in
  match int_of_string_opt str with
  | Some v when v >= 0 && v < n -> v
  | Some _ | None ->
      Printf.eprintf "unknown node %S in scenario %s (want an id in 0..%d)\n"
        str s.name (n - 1);
      exit 1

let explain_scenario path ~src_label ~dst_label ~at ~backend ~json =
  match Pr_chaos.Scenario.load path with
  | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 1
  | Ok s ->
      let src, dst, time =
        match (src_label, dst_label, at) with
        | Some a, Some b, _ -> (
            let src = scenario_node_or_die s a
            and dst = scenario_node_or_die s b in
            match at with
            | Some t -> (src, dst, t)
            | None -> (
                match
                  List.find_opt
                    (fun (i : Pr_sim.Workload.injection) ->
                      i.src = src && i.dst = dst)
                    s.injections
                with
                | Some i -> (src, dst, i.time)
                | None ->
                    Printf.eprintf
                      "no injection %d -> %d in scenario %s; give --at TIME to pick the link state\n"
                      src dst s.name;
                    exit 1))
        | None, None, _ -> (
            match s.injections with
            | i :: _ -> (i.src, i.dst, Option.value ~default:i.time at)
            | [] ->
                Printf.eprintf
                  "scenario %s has no injections; give --src, --dst and --at\n"
                  s.name;
                exit 1)
        | _ ->
            Printf.eprintf "give both --src and --dst (or neither)\n";
            exit 1
      in
      let failures = scenario_failures_at s ~time in
      require_distinct string_of_int ~src ~dst;
      require_connected string_of_int failures ~src ~dst;
      let routing = Pr_core.Routing.build s.graph in
      let cycles = Pr_core.Cycle_table.build (Pr_chaos.Scenario.rotation s) in
      let termination = Pr_chaos.Scenario.termination s in
      if not json then
        Printf.printf "%s: packet %d -> %d at t=%g, %s backend, %s\n" s.name
          src dst time
          (Pr_sim.Engine.backend_name backend)
          (Format.asprintf "%a" Pr_core.Failure.pp failures);
      print_ring ~json
        (explain_replay ~backend ~termination ~routing ~cycles ~failures ~src
           ~dst)

let explain name src_label dst_label failures_spec scenario at backend_spec
    embedding seed simple json =
  let backend = parse_backend backend_spec in
  match scenario with
  | Some path -> explain_scenario path ~src_label ~dst_label ~at ~backend ~json
  | None ->
      let src_label, dst_label =
        match (src_label, dst_label) with
        | Some a, Some b -> (a, b)
        | _ ->
            Printf.eprintf "--src and --dst are required without --scenario\n";
            exit 1
      in
      let topo = load_topology name in
      let src = node_id_or_die topo src_label
      and dst = node_id_or_die topo dst_label in
      require_distinct (Topology.label topo) ~src ~dst;
      let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
      let rotation = Pr_exp.Fig2.resolve_rotation config topo in
      let routing = Pr_core.Routing.build topo.Topology.graph in
      let cycles = Pr_core.Cycle_table.build rotation in
      let failures = failures_or_die topo failures_spec in
      require_connected (Topology.label topo) failures ~src ~dst;
      let termination =
        if simple then Pr_core.Forward.Simple
        else Pr_core.Forward.Distance_discriminator
      in
      if not json then
        Printf.printf "%s: packet %s -> %s, %s backend, %s embedding, %s\n"
          topo.Topology.name src_label dst_label
          (Pr_sim.Engine.backend_name backend)
          (Pr_exp.Ablation.embedding_name embedding)
          (Format.asprintf "%a" Pr_core.Failure.pp failures);
      print_ring ~label:(Topology.label topo) ~json
        (explain_replay ~backend ~termination ~routing ~cycles ~failures ~src
           ~dst)

let explain_cmd =
  let src =
    Arg.(value & opt (some string) None & info [ "s"; "src" ] ~docv:"NODE"
           ~doc:"Source: a node label, or a numeric id with --scenario.")
  in
  let dst =
    Arg.(value & opt (some string) None & info [ "d"; "dst" ] ~docv:"NODE"
           ~doc:"Destination: a node label, or a numeric id with --scenario.")
  in
  let failures =
    Arg.(value & opt string "" & info [ "f"; "fail" ] ~docv:"A-B,C-D"
           ~doc:"Failed links, by node labels (ignored with --scenario).")
  in
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"FILE"
           ~doc:"Replay a packet from a saved chaos scenario (.chaos file);
                 the failure set is the scenario's link state at the chosen
                 injection, after hold-down damping.")
  in
  let at =
    Arg.(value & opt (some float) None & info [ "at" ] ~docv:"TIME"
           ~doc:"With --scenario: explain under the link state at this time
                 instead of the matching injection's.")
  in
  let simple =
    Arg.(value & flag & info [ "simple" ]
           ~doc:"Use the §4.2 simple termination condition (without
                 --scenario, which fixes the scheme itself).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the raw event stream as JSON Lines instead of the
                 annotated rendering.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay one packet through the flight recorder: every hop,
             PR-bit and DD decision, ladder rung and the final verdict,
             identical on either backend.")
    Term.(const explain $ topo_arg $ src $ dst $ failures $ scenario $ at
          $ backend_arg $ embedding_arg $ seed_arg $ simple $ json)

(* ---- fig2 ---- *)

let fig2 name k samples seed embedding simple weighted quantise out =
  let topo = load_topology name in
  let config =
    {
      (Pr_exp.Fig2.default topo ~k) with
      samples;
      seed;
      embedding;
      termination =
        (if simple then Pr_core.Forward.Simple
         else Pr_core.Forward.Distance_discriminator);
      discriminator =
        (if weighted then Pr_core.Discriminator.Weighted
         else Pr_core.Discriminator.Hops);
      quantise_dd = quantise;
    }
  in
  let result = Pr_exp.Fig2.run config in
  match out with
  | None -> Pr_exp.Fig2.print_gnuplot result
  | Some dir ->
      let name = Printf.sprintf "%s_k%d" topo.Topology.name k in
      Pr_exp.Report.write_fig2 ~dir ~name result;
      Printf.printf "wrote %s/%s.dat and %s/%s.gp
" dir name dir name

let fig2_cmd =
  let k =
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"INT" ~doc:"Simultaneous link failures per scenario.")
  in
  let samples =
    Arg.(value & opt int 200 & info [ "samples" ] ~docv:"INT" ~doc:"Scenarios when k > 1.")
  in
  let simple =
    Arg.(value & flag & info [ "simple" ] ~doc:"Simple termination instead of DD.")
  in
  let weighted =
    Arg.(value & flag & info [ "weighted" ] ~doc:"Weighted discriminator instead of hops.")
  in
  let quantise =
    Arg.(value & flag & info [ "quantise" ] ~doc:"Header-faithful integer DD comparison.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Write .dat/.gp files instead of printing.")
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Regenerate a panel of the paper's Figure 2.")
    Term.(const fig2 $ topo_arg $ k $ samples $ seed_arg $ embedding_arg $ simple $ weighted $ quantise $ out)

(* ---- figures ---- *)

let figures out =
  Pr_exp.Report.write_paper_figures ~echo:print_endline ~dir:out ();
  Printf.printf "master script: %s/fig2.gp (run gnuplot there)\n" out

let figures_cmd =
  let out =
    Arg.(value & opt string "figures" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Write all six Figure 2 panels as gnuplot data + scripts.")
    Term.(const figures $ out)

(* ---- hunt ---- *)

let hunt seed attempts =
  match Pr_exp.Counterexample.search ~attempts ~seed () with
  | None -> Printf.printf "no counterexample found in %d attempts (seed %d)
" attempts seed
  | Some found ->
      print_string (Pr_exp.Counterexample.describe found);
      if not (Pr_exp.Counterexample.verify found) then begin
        prerr_endline "internal error: witness did not verify";
        exit 1
      end

let hunt_cmd =
  let attempts =
    Arg.(value & opt int 2000 & info [ "attempts" ] ~docv:"INT" ~doc:"Random cases to try.")
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Search for a minimal counterexample to PR's delivery guarantee              (random rotations; planar embeddings yield none).")
    Term.(const hunt $ seed_arg $ attempts)

(* ---- chaos ---- *)

let parse_comma_list parse what spec =
  List.map
    (fun w ->
      match parse (String.trim w) with
      | Ok v -> v
      | Error msg ->
          Printf.eprintf "bad %s %S: %s\n" what w msg;
          exit 2)
    (String.split_on_char ',' spec)

let parse_scheme = function
  | "pr" | "pr-dd" ->
      Ok (Pr_sim.Engine.Pr_scheme
            { termination = Pr_core.Forward.Distance_discriminator })
  | "pr-simple" ->
      Ok (Pr_sim.Engine.Pr_scheme { termination = Pr_core.Forward.Simple })
  | "lfa" -> Ok Pr_sim.Engine.Lfa_scheme
  | "reconv" | "reconvergence" ->
      Ok (Pr_sim.Engine.Reconvergence_scheme { convergence_delay = 5.0 })
  | "reconv-jitter" ->
      Ok (Pr_sim.Engine.Reconvergence_jittered
            { min_delay = 0.5; max_delay = 5.0; seed = 1 })
  | s -> Error (Printf.sprintf "unknown scheme %S (pr, pr-simple, lfa, reconv, reconv-jitter)" s)

(* Re-check a shrunk scenario and format its first recorded violation —
   with the offending packet's flight-recorder trace — as `#` comment
   lines the scenario parser skips, so the .chaos artifact carries its
   own explanation. *)
let shrunk_trace_comment (s : Pr_chaos.Scenario.t) =
  match Pr_chaos.Scenario.check s with
  | Error _ -> None
  | Ok (monitor, _) -> (
      match
        List.find_opt
          (fun (v : Pr_chaos.Monitor.violation) -> v.trace <> None)
          (Pr_chaos.Monitor.recorded monitor)
      with
      | None -> None
      | Some v ->
          let buf = Buffer.create 256 in
          Printf.bprintf buf "# violation: t=%g %s %d -> %d: %s\n" v.time
            v.monitor v.src v.dst v.detail;
          Printf.bprintf buf
            "# replay hop by hop: prcli explain --scenario FILE --src %d --dst %d --at %g\n"
            v.src v.dst v.time;
          Option.iter
            (fun tr ->
              List.iter
                (fun line -> if line <> "" then Printf.bprintf buf "# %s\n" line)
                (String.split_on_char '\n' tr))
            v.trace;
          Some (Buffer.contents buf))

(* ---- flight-ledger and live-progress plumbing ----

   Every substantial run (bench, chaos, swap, report) appends one
   {!Pr_telemetry.Flight} record to the ledger — the append-only JSONL
   trail `prcli history` and CI read back.  --no-ledger opts out.  The
   progress heartbeat draws on stderr when it is a TTY or when
   --progress forces it; TTY policy lives here because the telemetry
   library does not link unix. *)

let ledger_arg =
  Arg.(value & opt string "FLIGHT_ledger.jsonl" & info [ "ledger" ]
         ~docv:"FILE"
         ~doc:"Flight-ledger file this run appends its record to.")

let no_ledger_arg =
  Arg.(value & flag & info [ "no-ledger" ]
         ~doc:"Do not append a flight record for this run.")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Draw the live progress heartbeat on stderr even when it is
               not a TTY (a TTY gets it automatically).")

let progress_on ~forced ~label =
  if forced || Unix.isatty Unix.stderr then
    Pr_telemetry.Flight.Progress.enable ~label ()

let progress_off () = Pr_telemetry.Flight.Progress.disable ()

let ledger_append ~no_ledger ~ledger fl =
  if not no_ledger then Pr_telemetry.Flight.append ~path:ledger fl

let chaos name embedding seed horizon rate mix_spec hold_down detect_delay
    control_delay schemes_spec no_shrink out replay backend_spec timeline
    corrupt corrupt_events shortcut ledger no_ledger =
  if corrupt && replay <> None then begin
    Printf.eprintf
      "--corrupt and --replay are mutually exclusive (corruption campaigns \
       are replayed by seed)\n";
    exit 1
  end;
  if corrupt && corrupt_events < 1 then begin
    Printf.eprintf "--corrupt-events must be >= 1\n";
    exit 1
  end;
  if shortcut <> None && not corrupt then begin
    Printf.eprintf
      "--shortcut needs --corrupt (the link-fault campaign schemes do not \
       carry the hint)\n";
    exit 1
  end;
  if corrupt then begin
    let topo = load_topology name in
    let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
    let rotation = Pr_exp.Fig2.resolve_rotation config topo in
    let dd_bits =
      Pr_core.Routing.dd_bits (Pr_core.Routing.build topo.Topology.graph)
    in
    let shortcut = shortcut_or_die ~dd_bits shortcut in
    let cfg =
      {
        (Pr_chaos.Corrupt.default_config topo rotation ~seed) with
        Pr_chaos.Corrupt.events = corrupt_events;
        shortcut;
      }
    in
    match Pr_chaos.Corrupt.run cfg with
    | Error msg ->
        Printf.eprintf "corruption campaign failed: %s\n" msg;
        exit 2
    | Ok result ->
        print_string (Pr_chaos.Corrupt.report cfg result);
        let fl = Pr_telemetry.Flight.create ~cmd:"chaos" ~seed () in
        Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
        Pr_telemetry.Flight.knob_str fl "mode" "corrupt";
        Pr_telemetry.Flight.knob_int fl "events" corrupt_events;
        Pr_telemetry.Flight.count fl "passed"
          (if Pr_chaos.Corrupt.passed result then 1 else 0);
        ledger_append ~no_ledger ~ledger fl;
        if not (Pr_chaos.Corrupt.passed result) then begin
          (match out with
          | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let path =
                Filename.concat dir (topo.Topology.name ^ "-corrupt.chaos")
              in
              let oc = open_out path in
              output_string oc (Pr_chaos.Corrupt.repro cfg result);
              close_out oc;
              Printf.printf "wrote %s\n" path
          | None -> print_string (Pr_chaos.Corrupt.repro cfg result));
          exit 2
        end
  end
  else
  match replay with
  | Some path -> (
      match Pr_chaos.Scenario.load path with
      | Error msg ->
          Printf.eprintf "cannot replay %s: %s\n" path msg;
          exit 1
      | Ok scenario -> (
          Printf.printf "replaying %s: %d link events, %d injection(s), scheme %s\n"
            scenario.Pr_chaos.Scenario.name
            (List.length scenario.Pr_chaos.Scenario.link_events)
            (List.length scenario.Pr_chaos.Scenario.injections)
            (Pr_sim.Engine.scheme_name scenario.Pr_chaos.Scenario.scheme);
          match Pr_chaos.Scenario.check scenario with
          | Error msg ->
              Printf.eprintf "replay failed: %s\n" msg;
              exit 1
          | Ok (monitor, outcome) ->
              Format.printf "%a@." Pr_sim.Metrics.pp
                outcome.Pr_sim.Engine.metrics;
              print_string (Pr_chaos.Monitor.report monitor)))
  | None ->
      let topo = load_topology name in
      let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
      let rotation = Pr_exp.Fig2.resolve_rotation config topo in
      let mix = parse_comma_list Pr_chaos.Gen.of_name "generator" mix_spec in
      let schemes = parse_comma_list parse_scheme "scheme" schemes_spec in
      let detection =
        Option.map
          (fun d ->
            { Pr_sim.Detector.default with
              Pr_sim.Detector.down_delay = d; up_delay = d; seed })
          detect_delay
      in
      let control =
        Option.map
          (fun d ->
            if d < 0.0 then begin
              Printf.eprintf "control delay must be non-negative\n";
              exit 1
            end;
            { Pr_sim.Engine.default_control with Pr_sim.Engine.delay = d })
          control_delay
      in
      let campaign =
        {
          (Pr_chaos.Campaign.default_config topo rotation ~seed) with
          horizon;
          rate;
          mix;
          hold_down;
          detection;
          control;
          schemes;
          shrink = not no_shrink;
          backend = parse_backend backend_spec;
          timeline;
        }
      in
      (match Pr_chaos.Campaign.run campaign with
      | Error msg ->
          Printf.eprintf "chaos campaign failed: %s\n" msg;
          exit 2
      | Ok result ->
          print_string (Pr_chaos.Campaign.report campaign result);
          let fl = Pr_telemetry.Flight.create ~cmd:"chaos" ~seed () in
          Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
          Pr_telemetry.Flight.knob fl "horizon" (Pr_util.Json.number horizon);
          Pr_telemetry.Flight.knob fl "rate" (Pr_util.Json.number rate);
          Pr_telemetry.Flight.knob_str fl "mix" mix_spec;
          Pr_telemetry.Flight.knob_str fl "schemes" schemes_spec;
          Pr_telemetry.Flight.count fl "link_events"
            (List.length result.Pr_chaos.Campaign.link_events);
          List.iter
            (fun (r : Pr_chaos.Campaign.scheme_result) ->
              let m = r.outcome.Pr_sim.Engine.metrics in
              let pre = Pr_sim.Engine.scheme_name r.scheme in
              Pr_telemetry.Flight.count fl (pre ^ ".injected")
                m.Pr_sim.Metrics.injected;
              Pr_telemetry.Flight.count fl (pre ^ ".delivered")
                m.Pr_sim.Metrics.delivered;
              Pr_telemetry.Flight.count fl (pre ^ ".dropped")
                m.Pr_sim.Metrics.dropped;
              Pr_telemetry.Flight.count fl (pre ^ ".looped")
                m.Pr_sim.Metrics.looped;
              Pr_telemetry.Flight.count fl (pre ^ ".violated")
                (if r.shrunk = None then 0 else 1))
            result.Pr_chaos.Campaign.results;
          ledger_append ~no_ledger ~ledger fl;
          List.iter
            (fun (r : Pr_chaos.Campaign.scheme_result) ->
              match (r.shrunk, out) with
              | Some s, Some dir ->
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  let path =
                    Filename.concat dir (s.Pr_chaos.Scenario.name ^ ".chaos")
                  in
                  Pr_chaos.Scenario.save path s;
                  (match shrunk_trace_comment s with
                  | Some comment ->
                      let oc =
                        open_out_gen [ Open_append; Open_text ] 0o644 path
                      in
                      output_string oc comment;
                      close_out oc
                  | None -> ());
                  Printf.printf "wrote %s (replay with: prcli chaos --replay %s)\n"
                    path path
              | Some s, None ->
                  print_newline ();
                  print_endline "# shrunk scenario (save and replay with prcli chaos --replay):";
                  print_string (Pr_chaos.Scenario.to_string s);
                  Option.iter print_string (shrunk_trace_comment s)
              | None, _ -> ())
            result.Pr_chaos.Campaign.results)

let chaos_cmd =
  let horizon =
    Arg.(value & opt float 60.0 & info [ "horizon" ] ~docv:"TIME"
           ~doc:"Campaign duration in simulated time units.")
  in
  let rate =
    Arg.(value & opt float 20.0 & info [ "rate" ] ~docv:"PKTS"
           ~doc:"Packet injections per time unit.")
  in
  let mix =
    Arg.(value & opt string "srlg,regional,crash,cascade,flap,blip"
         & info [ "mix" ] ~docv:"KINDS"
             ~doc:"Comma-separated fault generators: $(b,srlg), $(b,regional), $(b,crash), $(b,cascade), $(b,flap), $(b,blip), $(b,swap).")
  in
  let hold_down =
    Arg.(value & opt float 0.0 & info [ "hold-down" ] ~docv:"TIME"
           ~doc:"Hold-down damping applied to up-transitions (0 disables).")
  in
  let schemes =
    Arg.(value & opt string "pr,lfa,reconv" & info [ "schemes" ] ~docv:"LIST"
           ~doc:"Comma-separated schemes: $(b,pr), $(b,pr-simple), $(b,lfa), $(b,reconv), $(b,reconv-jitter).")
  in
  let detect_delay =
    Arg.(value & opt (some float) None & info [ "detect" ] ~docv:"DELAY"
           ~doc:"Run routers on per-endpoint failure detection with this
                 delay (seconds) instead of the global truth; monitors
                 switch to the detection-quiescence invariants.")
  in
  let control_delay =
    Arg.(value & opt (some float) None & info [ "control" ] ~docv:"DELAY"
           ~doc:"Run a live control plane: this many time units after each
                 link transition the tables are incrementally recompiled
                 and hot-swapped; the monitors arm the
                 zero-loss-across-updates swap invariant (PR schemes
                 only).")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ]
           ~doc:"Skip minimising violating scenarios.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write shrunk scenarios as replayable .chaos files.")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a saved scenario instead of running a campaign.")
  in
  let timeline =
    Arg.(value & opt (some float) None & info [ "timeline" ] ~docv:"WIDTH"
           ~doc:"Record a per-scheme observability timeline with this
                 window width (simulated time units) and render it in
                 the campaign report.")
  in
  let corrupt =
    Arg.(value & flag & info [ "corrupt" ]
           ~doc:"Run the corruption campaign instead of the link-fault one:
                 header bit-flips through both guarded backends, FIB-cell
                 damage on scratch images, stale-epoch reads and journalled
                 crash/recovery checks.  Exits 2 (with a .chaos artifact
                 under $(b,--out)) on any invariant violation.")
  in
  let corrupt_events =
    Arg.(value & opt int 96 & info [ "corrupt-events" ] ~docv:"INT"
           ~doc:"Corruption descriptors to draw with $(b,--corrupt).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Chaos campaign: correlated fault injection with online invariant              monitors; violations are shrunk to replayable scenarios.")
    Term.(const chaos $ topo_arg $ embedding_arg $ seed_arg $ horizon $ rate
          $ mix $ hold_down $ detect_delay $ control_delay $ schemes
          $ no_shrink $ out $ replay $ backend_arg $ timeline $ corrupt
          $ corrupt_events $ shortcut_arg $ ledger_arg $ no_ledger_arg)

(* ---- swap: scripted control-plane sessions over the compiled image ---- *)

module Fib = Pr_fastpath.Fib
module Delta = Pr_fastpath.Fib.Delta

(* One non-blank line of the edit script = one epoch batch; `,'
   separates edits within a batch and `#' starts a comment.  Edits name
   nodes by label: `down A B', `up A B', `weight A B 2.5'.  Syntax
   errors die with a one-line message and exit 1, the malformed-input
   convention; semantic errors (unknown links, duplicate or redundant
   edits, bad weights) surface through {!Delta}'s typed loci the same
   way, at apply time. *)
let parse_edit_script topo path =
  let die lineno msg =
    Printf.eprintf "%s:%d: %s\n" path lineno msg;
    exit 1
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let batches = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let raw = input_line ic in
       incr lineno;
       let body =
         match String.index_opt raw '#' with
         | Some i -> String.sub raw 0 i
         | None -> raw
       in
       if String.trim body <> "" then begin
         let node label =
           match Topology.node_id topo label with
           | id -> id
           | exception Not_found ->
               die !lineno (Printf.sprintf "unknown node label %S" label)
         in
         let parse_one spec =
           match
             List.filter
               (fun s -> s <> "")
               (String.split_on_char ' ' (String.trim spec))
           with
           | [ "down"; a; b ] ->
               { Delta.u = node a; v = node b; change = Delta.Down }
           | [ "up"; a; b ] ->
               { Delta.u = node a; v = node b; change = Delta.Up }
           | [ "weight"; a; b; w ] -> (
               match float_of_string_opt w with
               | Some w ->
                   { Delta.u = node a; v = node b; change = Delta.Weight w }
               | None -> die !lineno (Printf.sprintf "bad weight %S" w))
           | _ ->
               die !lineno
                 (Printf.sprintf
                    "cannot parse edit %S (expected `down A B', `up A B' or \
                     `weight A B W')"
                    (String.trim spec))
         in
         batches :=
           (!lineno, List.map parse_one (String.split_on_char ',' body))
           :: !batches
       end
     done
   with End_of_file -> close_in ic);
  if !batches = [] then begin
    Printf.eprintf "%s: no edits (every line blank or a comment)\n" path;
    exit 1
  end;
  List.rev !batches

let swap_session name embedding seed edits_file threshold json_flag
    journal_path crash_after ledger no_ledger =
  if threshold < 0.0 then begin
    Printf.eprintf "threshold must be non-negative\n";
    exit 1
  end;
  (match (journal_path, crash_after) with
  | None, Some _ ->
      Printf.eprintf "--crash-after needs --journal (nothing to recover from)\n";
      exit 1
  | _, Some k when k < 1 ->
      Printf.eprintf "--crash-after must be >= 1\n";
      exit 1
  | _ -> ());
  let topo = load_topology name in
  let fig2 = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation fig2 topo in
  let g = topo.Topology.graph in
  let base =
    Fib.of_tables_exn (Pr_core.Routing.build g)
      (Pr_core.Cycle_table.build rotation)
  in
  let store = Pr_fastpath.Swap.create base in
  let kernel = Pr_fastpath.Kernel.create base in
  let n = Pr_graph.Graph.n g in
  (* Failure-free all-pairs sweep on the current image: administrative
     removals are the only failures, so per-epoch verdicts and loads
     show what each swap did to the traffic. *)
  let sweep fib =
    let ll = Pr_obs.Linkload.create g in
    Pr_fastpath.Kernel.set_linkload kernel (Some ll);
    let failures = Pr_core.Failure.of_list g (Fib.admin_down fib) in
    Pr_fastpath.Kernel.set_failures kernel failures;
    let c = Pr_fastpath.Kernel.fresh_counters () in
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then
          if Pr_core.Failure.pair_connected failures src dst then
            Pr_fastpath.Kernel.forward_into kernel c ~src ~dst
          else Pr_fastpath.Kernel.record_unreachable c
      done
    done;
    Pr_fastpath.Kernel.set_linkload kernel None;
    (c, ll)
  in
  let loads ll =
    let tbl = Hashtbl.create 64 in
    Pr_obs.Linkload.iter ll (fun ~node ~next ~counts ->
        let l = Array.fold_left ( + ) 0 counts in
        if l <> 0 then Hashtbl.replace tbl (node, next) l);
    tbl
  in
  let label = Topology.label topo in
  let describe_edit (e : Delta.edit) =
    match e.Delta.change with
    | Delta.Down -> Printf.sprintf "down %s-%s" (label e.Delta.u) (label e.Delta.v)
    | Delta.Up -> Printf.sprintf "up %s-%s" (label e.Delta.u) (label e.Delta.v)
    | Delta.Weight w ->
        Printf.sprintf "weight %s-%s %g" (label e.Delta.u) (label e.Delta.v) w
  in
  let batches = parse_edit_script topo edits_file in
  (* The write-ahead journal: checkpoint the base, log each batch before
     it is applied, mark it committed after its epoch is published.
     --crash-after kills the session between apply and commit, leaving
     the journal `prcli recover` replays. *)
  let journal =
    Option.map
      (fun path ->
        match Pr_fastpath.Journal.writer path with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok w ->
            Pr_fastpath.Journal.log_checkpoint w ~seq:0 base;
            w)
      journal_path
  in
  let c0, ll0 = sweep base in
  let prev_loads = ref (loads ll0) in
  let mismatches = ref 0 in
  let records = ref [] in
  let counters_line (c : Pr_fastpath.Kernel.counters) ll =
    Printf.sprintf
      "delivered %d/%d  dropped %d  looped %d  unreachable %d  load total %d  max %d"
      c.Pr_fastpath.Kernel.delivered c.Pr_fastpath.Kernel.injected
      c.Pr_fastpath.Kernel.dropped c.Pr_fastpath.Kernel.looped
      c.Pr_fastpath.Kernel.unreachable (Pr_obs.Linkload.total ll)
      (Pr_obs.Linkload.max_load ll)
  in
  if not json_flag then begin
    Printf.printf "swap session: %s, %d scripted epoch(s), threshold %g\n"
      topo.Topology.name (List.length batches) threshold;
    Printf.printf "epoch 0 (base): %s\n" (counters_line c0 ll0)
  end;
  let seq = ref 0 in
  let crashed = ref false in
  List.iter
    (fun (lineno, batch) ->
      if !crashed then ()
      else begin
      incr seq;
      Option.iter
        (fun w -> Pr_fastpath.Journal.log_batch w ~seq:!seq batch)
        journal;
      match Delta.apply ~threshold (Pr_fastpath.Swap.current store) batch with
      | Error err ->
          Printf.eprintf "%s:%d: %s\n" edits_file lineno
            (Delta.describe_error err);
          exit 1
      | Ok (_, _) when crash_after = Some !seq ->
          (* The §crash window: the batch is journalled and applied, the
             publish never happens.  Recovery must replay it anyway. *)
          crashed := true
      | Ok (next, stats) ->
          let epoch = Pr_fastpath.Swap.publish store next in
          Option.iter
            (fun w -> Pr_fastpath.Journal.log_commit w ~seq:!seq)
            journal;
          let pinned, image = Pr_fastpath.Swap.pin store in
          Pr_fastpath.Kernel.rebind kernel image;
          let c, ll = sweep image in
          Pr_fastpath.Swap.unpin store ~epoch:pinned;
          (* Referee every epoch against a full recompile of the same
             administrative state — the differential pin, live. *)
          let ok = Fib.equal image (Delta.recompile image) in
          if not ok then incr mismatches;
          let cur_loads = loads ll in
          let delta_tbl = Hashtbl.create 64 in
          Hashtbl.iter (fun k l -> Hashtbl.replace delta_tbl k l) cur_loads;
          Hashtbl.iter
            (fun k l ->
              Hashtbl.replace delta_tbl k
                (Option.value ~default:0 (Hashtbl.find_opt delta_tbl k) - l))
            !prev_loads;
          let movers =
            Hashtbl.fold
              (fun (u, v) d acc -> if d = 0 then acc else (u, v, d) :: acc)
              delta_tbl []
            |> List.sort (fun (u1, v1, d1) (u2, v2, d2) ->
                   match compare (abs d2) (abs d1) with
                   | 0 -> compare (u1, v1) (u2, v2)
                   | c -> c)
          in
          prev_loads := cur_loads;
          if json_flag then
            records :=
              Printf.sprintf
                "{\"epoch\":%d,\"line\":%d,\"edits\":%d,\"dirty\":%d,\"full\":%b,\"differential\":%S,\"delivered\":%d,\"injected\":%d,\"dropped\":%d,\"looped\":%d,\"unreachable\":%d,\"load_total\":%d,\"load_max\":%d}"
                epoch lineno stats.Delta.edits stats.Delta.dirty
                stats.Delta.full
                (if ok then "ok" else "mismatch")
                c.Pr_fastpath.Kernel.delivered c.Pr_fastpath.Kernel.injected
                c.Pr_fastpath.Kernel.dropped c.Pr_fastpath.Kernel.looped
                c.Pr_fastpath.Kernel.unreachable (Pr_obs.Linkload.total ll)
                (Pr_obs.Linkload.max_load ll)
              :: !records
          else begin
            Printf.printf "epoch %d: %s  (%d dirty row(s)%s)  differential %s\n"
              epoch
              (String.concat ", " (List.map describe_edit batch))
              stats.Delta.dirty
              (if stats.Delta.full then ", full recompile fall-back" else "")
              (if ok then "OK" else "MISMATCH");
            Printf.printf "  %s\n" (counters_line c ll);
            match movers with
            | [] -> Printf.printf "  link load unchanged\n"
            | _ ->
                Printf.printf "  load movers:%s\n"
                  (String.concat ""
                     (List.map
                        (fun (u, v, d) ->
                          Printf.sprintf " %s->%s %+d" (label u) (label v) d)
                        (List.filteri (fun i _ -> i < 3) movers)))
          end
      end)
    batches;
  Option.iter Pr_fastpath.Journal.close journal;
  if !crashed then
    Printf.printf
      "simulated crash after batch %d: journalled but never published — \
       replay with: prcli recover -t %s --journal %s\n"
      !seq topo.Topology.name
      (Option.value ~default:"JOURNAL" journal_path);
  if json_flag then Printf.printf "[%s]\n" (String.concat ",\n " (List.rev !records))
  else begin
    let s = Pr_fastpath.Swap.stats store in
    Printf.printf "store: %d epoch(s) published, %d retired, %s\n"
      s.Pr_fastpath.Swap.published s.Pr_fastpath.Swap.retired
      (if Pr_fastpath.Swap.quiescent store then "quiescent"
       else "pins still live")
  end;
  let fl = Pr_telemetry.Flight.create ~cmd:"swap" ~seed () in
  Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
  Pr_telemetry.Flight.knob fl "threshold" (Pr_util.Json.number threshold);
  Pr_telemetry.Flight.count fl "epochs" !seq;
  Pr_telemetry.Flight.count fl "mismatches" !mismatches;
  Pr_telemetry.Flight.count fl "crashed" (if !crashed then 1 else 0);
  Pr_telemetry.Flight.count fl "base.delivered" c0.Pr_fastpath.Kernel.delivered;
  Pr_telemetry.Flight.count fl "base.injected" c0.Pr_fastpath.Kernel.injected;
  ledger_append ~no_ledger ~ledger fl;
  if !mismatches > 0 then begin
    Printf.eprintf "%d epoch(s) diverged from the full-recompile referee\n"
      !mismatches;
    exit 2
  end

let swap_cmd =
  let edits =
    Arg.(required & opt (some string) None & info [ "edits" ] ~docv:"FILE"
           ~doc:"Edit script: one line per epoch, comma-separated edits
                 ($(b,down A B), $(b,up A B), $(b,weight A B W) over node
                 labels), $(b,#) comments.")
  in
  let threshold =
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~docv:"FRACTION"
           ~doc:"Dirty-destination fraction past which an epoch falls back
                 to a full recompile.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one JSON array of per-epoch records instead of text.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write-ahead journal: checkpoint the base image, log each
                 batch before it is applied and mark it committed once its
                 epoch publishes, so $(b,prcli recover) can replay the
                 session after a crash.")
  in
  let crash_after =
    Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"N"
           ~doc:"Simulate a control-plane crash after batch N was
                 journalled and applied but before it published; requires
                 $(b,--journal).")
  in
  Cmd.v
    (Cmd.info "swap"
       ~doc:"Replay a scripted control-plane session: apply each edit batch
             as an incremental FIB recompile, hot-swap the compiled image
             through the epoch store, referee every epoch byte-for-byte
             against a full recompile, and report per-epoch verdicts and
             link-load movers.  Exits 1 on malformed scripts, 2 on any
             differential mismatch.")
    Term.(const swap_session $ topo_arg $ embedding_arg $ seed_arg $ edits
          $ threshold $ json $ journal $ crash_after $ ledger_arg
          $ no_ledger_arg)

(* ---- recover: replay a write-ahead journal after a crash ---- *)

let recover name embedding seed journal_path json_flag =
  let topo = load_topology name in
  let fig2 = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation fig2 topo in
  let g = topo.Topology.graph in
  let base =
    Fib.of_tables_exn (Pr_core.Routing.build g)
      (Pr_core.Cycle_table.build rotation)
  in
  match Pr_fastpath.Journal.recover ~base journal_path with
  | Error msg ->
      (* Unreadable, truncated mid-file, checkpoint-less or otherwise
         malformed journals are all one-line exit-1 failures, the
         malformed-input convention. *)
      Printf.eprintf "%s\n" msg;
      exit 1
  | Ok r ->
      let image = r.Pr_fastpath.Journal.image in
      (* The recovery invariant: the replayed image is byte-equal to a
         cold full recompile of the final effective topology. *)
      let ok = Fib.equal image (Delta.recompile image) in
      let admin = Fib.admin_down image in
      if json_flag then
        Printf.printf
          "{\"journal\":%S,\"checkpoint_seq\":%d,\"replayed\":%d,\"uncommitted\":%d,\"torn_tail\":%b,\"admin_down\":%d,\"recompile\":%S}\n"
          journal_path r.Pr_fastpath.Journal.checkpoint_seq
          r.Pr_fastpath.Journal.replayed r.Pr_fastpath.Journal.uncommitted
          r.Pr_fastpath.Journal.torn_tail (List.length admin)
          (if ok then "ok" else "mismatch")
      else begin
        Printf.printf
          "recovered %s from %s: checkpoint seq %d, %d batch(es) replayed \
           (%d uncommitted)%s\n"
          topo.Topology.name journal_path r.Pr_fastpath.Journal.checkpoint_seq
          r.Pr_fastpath.Journal.replayed r.Pr_fastpath.Journal.uncommitted
          (if r.Pr_fastpath.Journal.torn_tail then ", torn tail dropped"
           else "");
        let label = Topology.label topo in
        (match admin with
        | [] -> Printf.printf "  administrative state: all links live\n"
        | l ->
            Printf.printf "  administratively down:%s\n"
              (String.concat ""
                 (List.map
                    (fun (u, v) ->
                      Printf.sprintf " %s-%s" (label u) (label v))
                    l)));
        Printf.printf "  full-recompile referee: %s\n"
          (if ok then "byte-equal" else "MISMATCH")
      end;
      if not ok then exit 2

let recover_cmd =
  let journal =
    Arg.(required & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"The write-ahead journal a crashed $(b,prcli swap
                 --journal) session left behind.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one JSON object instead of text.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild the image a crashed control plane should republish:
             decode the journal's last checkpoint and redo every
             journalled edit batch after it, committed or not, then
             referee the result byte-for-byte against a full recompile.
             Exits 1 on an unreadable or damaged journal, 2 if the
             recovered image diverges from the referee.")
    Term.(const recover $ topo_arg $ embedding_arg $ seed_arg $ journal
          $ json)

(* ---- detect: detection-delay sweep ---- *)

let parse_delay s =
  match float_of_string_opt s with
  | Some d when d >= 0.0 && Float.is_finite d -> Ok d
  | _ -> Error "want a non-negative number"

let detect name embedding seed delays_spec horizon rate mtbf mttr fp hold_down
    jitter guard schemes_spec =
  let topo = load_topology name in
  let g = topo.Topology.graph in
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  let delays = parse_comma_list parse_delay "detection delay" delays_spec in
  let schemes = parse_comma_list parse_scheme "scheme" schemes_spec in
  let rng = Pr_util.Rng.create ~seed in
  let link_events =
    Pr_sim.Workload.failure_process (Pr_util.Rng.copy rng) g ~mtbf ~mttr ~horizon
  in
  let injections =
    Pr_sim.Workload.poisson_flows (Pr_util.Rng.copy rng) g ~rate ~horizon
  in
  Printf.printf
    "detection-delay sweep: %s (%s embedding), seed %d, horizon %g\n"
    topo.Topology.name
    (Pr_exp.Ablation.embedding_name embedding)
    seed horizon;
  Printf.printf
    "  %d link events (mtbf %g, mttr %g), %d packets (rate %g)\n"
    (List.length link_events) mtbf mttr (List.length injections) rate;
  Printf.printf "  detector: jitter %g, false-positive rate %g, hold-down %g%s\n\n"
    jitter fp hold_down
    (if guard > 0 then Printf.sprintf ", budget guard %d" guard else "");
  let detection_for delay =
    {
      Pr_sim.Detector.down_delay = delay;
      up_delay = delay;
      jitter;
      false_positive_rate = fp;
      false_positive_hold = 0.5;
      hold_down;
      backoff = 2.0;
      max_backoff = 8.0;
      budget_guard = guard;
      seed;
    }
  in
  let results =
    try
      List.map
        (fun delay ->
          let detection = detection_for delay in
          let row =
            List.map
              (fun scheme ->
                match
                  Pr_sim.Engine.run ~detection
                    { Pr_sim.Engine.topology = topo; rotation; scheme }
                    ~link_events ~injections
                with
                | Ok outcome -> outcome.Pr_sim.Engine.metrics
                | Error e ->
                    Printf.eprintf "bad workload: %s\n"
                      (Pr_sim.Engine.describe_workload_error e);
                    exit 1)
              schemes
          in
          (delay, row))
        delays
    with Invalid_argument msg ->
      Printf.eprintf "detect: %s\n" msg;
      exit 1
  in
  let loss_cell (m : Pr_sim.Metrics.t) =
    let deliverable = m.Pr_sim.Metrics.injected - m.Pr_sim.Metrics.unreachable in
    let lost = m.Pr_sim.Metrics.dropped + m.Pr_sim.Metrics.looped in
    if deliverable = 0 then "-"
    else
      Printf.sprintf "%d/%d (%.2f%%)" lost deliverable
        (100.0 *. float_of_int lost /. float_of_int deliverable)
  in
  Pr_util.Tablefmt.print
    ~header:("delay"
             :: List.map
                  (fun s -> Pr_sim.Engine.scheme_name s ^ " lost")
                  schemes)
    (List.map
       (fun (delay, row) ->
         Printf.sprintf "%g" delay :: List.map loss_cell row)
       results);
  (* Per-reason breakdown for the first PR scheme in the list. *)
  let rec pr_index i = function
    | [] -> None
    | Pr_sim.Engine.Pr_scheme _ :: _ -> Some i
    | _ :: rest -> pr_index (i + 1) rest
  in
  match pr_index 0 schemes with
  | None -> ()
  | Some i ->
      let metrics_at row = List.nth row i in
      let reasons =
        List.filter
          (fun r ->
            List.exists
              (fun (_, row) -> Pr_sim.Metrics.drop_count (metrics_at row) r > 0)
              results)
          Pr_sim.Metrics.all_reasons
      in
      Printf.printf "\n%s drop and degradation breakdown:\n"
        (Pr_sim.Engine.scheme_name (List.nth schemes i));
      Pr_util.Tablefmt.print
        ~header:(("delay" :: List.map Pr_sim.Metrics.reason_name reasons)
                 @ [ "retries"; "lfa-rescue"; "dd-sat" ])
        (List.map
           (fun (delay, row) ->
             let m = metrics_at row in
             (Printf.sprintf "%g" delay
              :: List.map
                   (fun r -> string_of_int (Pr_sim.Metrics.drop_count m r))
                   reasons)
             @ [
                 string_of_int m.Pr_sim.Metrics.complementary_retries;
                 string_of_int m.Pr_sim.Metrics.lfa_rescues;
                 string_of_int m.Pr_sim.Metrics.dd_saturations;
               ])
           results)

let detect_cmd =
  let delays =
    Arg.(value & opt string "0,0.01,0.05,0.1,0.2,0.5"
         & info [ "delays" ] ~docv:"LIST"
             ~doc:"Comma-separated detection delays to sweep (applied to both
                   failure and repair detection).")
  in
  let horizon =
    Arg.(value & opt float 60.0 & info [ "horizon" ] ~docv:"TIME"
           ~doc:"Simulated duration.")
  in
  let rate =
    Arg.(value & opt float 50.0 & info [ "rate" ] ~docv:"PKTS"
           ~doc:"Packet injections per time unit.")
  in
  let mtbf =
    Arg.(value & opt float 20.0 & info [ "mtbf" ] ~docv:"TIME"
           ~doc:"Mean time between failures per link.")
  in
  let mttr =
    Arg.(value & opt float 2.0 & info [ "mttr" ] ~docv:"TIME"
           ~doc:"Mean time to repair per link.")
  in
  let fp =
    Arg.(value & opt float 0.0 & info [ "fp" ] ~docv:"RATE"
           ~doc:"False-positive rate per observed transition per endpoint.")
  in
  let hold_down =
    Arg.(value & opt float 0.0 & info [ "hold-down" ] ~docv:"TIME"
           ~doc:"Per-router hold-down on repair detection (0 disables).")
  in
  let jitter =
    Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"TIME"
           ~doc:"Per-endpoint uniform extra detection delay in [0, jitter);
                 nonzero values open unidirectional-failure windows.")
  in
  let guard =
    Arg.(value & opt int 0 & info [ "budget-guard" ] ~docv:"HOPS"
           ~doc:"Arm the degradation ladder's hop-budget rung this many hops
                 before TTL exhaustion (0 disables).")
  in
  let schemes =
    Arg.(value & opt string "pr,lfa,reconv" & info [ "schemes" ] ~docv:"LIST"
           ~doc:"Comma-separated schemes: $(b,pr), $(b,pr-simple), $(b,lfa),
                 $(b,reconv), $(b,reconv-jitter).")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Detection-delay sweep: per-scheme loss under imperfect              per-router failure detection, with the PR drop-reason breakdown.")
    Term.(const detect $ topo_arg $ embedding_arg $ seed_arg $ delays $ horizon
          $ rate $ mtbf $ mttr $ fp $ hold_down $ jitter $ guard $ schemes)

(* ---- overhead / ablation / coverage ---- *)

let overhead () =
  print_string (Pr_exp.Overhead.table (Pr_topo.Zoo.paper_evaluation ()))

let overhead_cmd =
  Cmd.v (Cmd.info "overhead" ~doc:"The paper's §6 overhead comparison.")
    Term.(const overhead $ const ())

let ablation what seed =
  let topologies = Pr_topo.Zoo.paper_evaluation () in
  match what with
  | `Embedding -> print_string (Pr_exp.Ablation.embedding_table ~seed topologies)
  | `Discriminator -> print_string (Pr_exp.Ablation.discriminator_table topologies)

let ablation_cmd =
  let what =
    Arg.(
      value
      & opt (enum [ ("embedding", `Embedding); ("discriminator", `Discriminator) ]) `Embedding
      & info [ "what" ] ~docv:"KIND" ~doc:"$(b,embedding) or $(b,discriminator).")
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations.")
    Term.(const ablation $ what $ seed_arg)

let coverage name kmax samples seed =
  let topo = load_topology name in
  let ks = List.init kmax (fun i -> i + 1) in
  print_string (Pr_exp.Coverage.table (Pr_exp.Coverage.sweep ~seed ~samples topo ~ks))

let coverage_cmd =
  let kmax =
    Arg.(value & opt int 6 & info [ "kmax" ] ~docv:"INT" ~doc:"Sweep k = 1 .. kmax.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "samples" ] ~docv:"INT" ~doc:"Scenarios per k.")
  in
  Cmd.v (Cmd.info "coverage" ~doc:"Delivery-ratio sweep (PR vs simple PR vs LFA).")
    Term.(const coverage $ topo_arg $ kmax $ samples $ seed_arg)

(* ---- bench: the all-pairs single-failure sweep, timed ---- *)

(* Committed artifacts are history ([bench --history] reads them back);
   clobbering one silently would erase a baseline, so overwriting is an
   explicit choice. *)
let refuse_overwrite ~force path =
  if (not force) && Sys.file_exists path then begin
    Printf.eprintf "%s exists; pass --force to overwrite it\n" path;
    exit 1
  end

(* The scale observatory: synthetic BA/Waxman campaigns, exiting before
   any named-topology work — the campaign generates its own graphs. *)
let bench_scale ~domains ~seed ~repeat ~force ~scale_nodes ~scale_family
    ~scale_scenarios ~scale_pairs ~scale_out ~scale_spans_out ~progress ~ledger
    ~no_ledger =
  refuse_overwrite ~force scale_out;
  refuse_overwrite ~force scale_spans_out;
  let sizes =
    String.split_on_char ',' scale_nodes
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some n when n >= 8 -> n
           | _ ->
               Printf.eprintf "bad --scale-nodes entry %S (want ints >= 8)\n" s;
               exit 1)
  in
  let families =
    match scale_family with
    | "both" -> [ Pr_report.Scale.Ba; Pr_report.Scale.Waxman ]
    | s -> (
        match Pr_report.Scale.family_of_string s with
        | Some f -> [ f ]
        | None ->
            Printf.eprintf "bad --scale-family %S (ba, waxman or both)\n" s;
            exit 1)
  in
  if sizes = [] then begin
    Printf.eprintf "--scale-nodes named no sizes\n";
    exit 1
  end;
  if scale_scenarios < 1 then begin
    Printf.eprintf "bad --scale-scenarios %d (want >= 1)\n" scale_scenarios;
    exit 1
  end;
  if scale_pairs < 1 then begin
    Printf.eprintf "bad --scale-pairs %d (want >= 1)\n" scale_pairs;
    exit 1
  end;
  progress_on ~forced:progress ~label:"bench --scale";
  let c =
    Fun.protect ~finally:progress_off (fun () ->
        Pr_report.Scale.run ~domains ~scenarios:scale_scenarios
          ~pairs:scale_pairs ~repeat ~families ~sizes ~seed ())
  in
  print_string (Pr_report.Scale.render c);
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write scale_out (Pr_report.Scale.to_json c);
  write scale_spans_out (Pr_report.Scale.spans_json c);
  Printf.printf "wrote %s and %s\n" scale_out scale_spans_out;
  (* The flight record: seeded counts and sketch quantiles land in the
     fingerprinted stable body (bit-identical across --domains, which is
     why the domain count itself is recorded as a volatile metric);
     wall-clock ratios go to the volatile tail. *)
  let fl = Pr_telemetry.Flight.create ~cmd:"bench-scale" ~seed () in
  Pr_telemetry.Flight.knob_str fl "families" scale_family;
  Pr_telemetry.Flight.knob_str fl "nodes" scale_nodes;
  Pr_telemetry.Flight.knob_int fl "scenarios" scale_scenarios;
  Pr_telemetry.Flight.knob_int fl "pairs" scale_pairs;
  Pr_telemetry.Flight.knob_int fl "repeat" repeat;
  List.iter
    (fun (r : Pr_report.Scale.result) ->
      let pre = Printf.sprintf "%s.%d" r.family r.n in
      Pr_telemetry.Flight.count fl (pre ^ ".edges") r.m;
      Pr_telemetry.Flight.count fl (pre ^ ".delivered") r.delivered;
      Pr_telemetry.Flight.count fl (pre ^ ".dropped") r.dropped;
      Pr_telemetry.Flight.count fl (pre ^ ".looped") r.looped;
      Pr_telemetry.Flight.count fl (pre ^ ".unreachable") r.unreachable;
      Pr_telemetry.Flight.count fl (pre ^ ".image_bytes") r.image_bytes;
      let bank qs vs = Array.map2 (fun q v -> (q, v)) qs vs in
      Pr_telemetry.Flight.quantiles fl (pre ^ ".stretch")
        (bank Probe.sketch_qs r.stretch_q);
      Pr_telemetry.Flight.quantiles fl (pre ^ ".hops")
        (bank Probe.sketch_qs r.hops_q))
    c.Pr_report.Scale.results;
  Pr_telemetry.Flight.metric fl "domains" (float_of_int domains);
  Pr_telemetry.Flight.metric fl "overhead_ratio"
    c.Pr_report.Scale.overhead_ratio;
  Pr_telemetry.Flight.metric fl "span_coverage_min"
    c.Pr_report.Scale.span_coverage_min;
  Pr_telemetry.Flight.artifact fl scale_out;
  Pr_telemetry.Flight.artifact fl scale_spans_out;
  Pr_telemetry.Flight.set_spans fl
    (List.map (fun (r : Pr_report.Scale.result) -> r.span)
       c.Pr_report.Scale.results);
  ledger_append ~no_ledger ~ledger fl;
  (* The <= 1.10x sketch budget and the >= 95% span-accounting floor are
     this campaign's pass/fail line, mirrored by the CI gate. *)
  exit
    (if
       c.Pr_report.Scale.overhead_ratio <= 1.10
       && c.Pr_report.Scale.span_coverage_min >= 0.95
     then 0
     else 1)

let bench name embedding seed backend_spec domains json probe repeat probe_out
    force linkload_flag linkload_out swap_flag swap_out guard_flag guard_out
    history history_dir shortcut shortcut_out scale scale_nodes scale_family
    scale_scenarios scale_pairs scale_out scale_spans_out progress_flag ledger
    no_ledger =
  let backend = parse_backend backend_spec in
  if domains < 1 then begin
    Printf.eprintf "domains must be >= 1\n";
    exit 1
  end;
  if repeat < 1 then begin
    Printf.eprintf "repeat must be >= 1\n";
    exit 1
  end;
  if scale then
    bench_scale ~domains ~seed ~repeat ~force ~scale_nodes ~scale_family
      ~scale_scenarios ~scale_pairs ~scale_out ~scale_spans_out
      ~progress:progress_flag ~ledger ~no_ledger;
  (* Malformed widths die before the clobber checks, which die before
     any timing work is spent. *)
  let shortcut = shortcut_range_or_die shortcut in
  if probe then refuse_overwrite ~force probe_out;
  if linkload_flag then refuse_overwrite ~force linkload_out;
  if swap_flag then refuse_overwrite ~force swap_out;
  if guard_flag then refuse_overwrite ~force guard_out;
  if shortcut <> None then refuse_overwrite ~force shortcut_out;
  let topo = load_topology name in
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  if history then begin
    match
      Pr_report.Report.check_history ~repeat:(max repeat 3) ~dir:history_dir
        topo rotation
    with
    | Error msg ->
        Printf.eprintf "bench --history: %s\n" msg;
        exit 2
    | Ok h ->
        print_string (Pr_report.Report.render_history h);
        exit (if h.Pr_report.Report.regressed then 1 else 0)
  end;
  let g = topo.Topology.graph in
  let fl =
    Pr_telemetry.Flight.create ~cmd:"bench" ~seed
      ~backend:(Pr_sim.Engine.backend_name backend) ()
  in
  Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
  Pr_telemetry.Flight.knob_int fl "repeat" repeat;
  Pr_telemetry.Flight.metric fl "domains" (float_of_int domains);
  (* The control-plane build runs under its own span recorder: the
     library stages (routing.build, fib.compile and its per-plane
     children) land in the flight record, and their Enter/Leave events
     drive the progress heartbeat.  The recorder is gone again before
     any timed sweep starts. *)
  let recorder = Pr_telemetry.Span.create () in
  Pr_telemetry.Span.install recorder;
  progress_on ~forced:progress_flag
    ~label:(Printf.sprintf "bench %s" topo.Topology.name);
  let routing, shortcut, cycles, fib =
    Fun.protect
      ~finally:(fun () ->
        progress_off ();
        Pr_telemetry.Span.uninstall ())
      (fun () ->
        let routing = Pr_core.Routing.build g in
        let shortcut =
          shortcut_or_die ~dd_bits:(Pr_core.Routing.dd_bits routing) shortcut
        in
        let cycles =
          Pr_telemetry.Span.timed "cycles.build" (fun () ->
              Pr_core.Cycle_table.build rotation)
        in
        let fib = Pr_fastpath.Fib.of_tables_exn routing cycles in
        (routing, shortcut, cycles, fib))
  in
  Pr_telemetry.Flight.set_spans fl (Pr_telemetry.Span.roots recorder);
  Option.iter (fun w -> Pr_telemetry.Flight.knob_int fl "shortcut" w) shortcut;
  Pr_telemetry.Flight.section fl "footprint"
    (Pr_fastpath.Fib.footprint_json (Pr_fastpath.Fib.footprint fib));
  let items = Pr_fastpath.Parallel.all_pairs_single_failures fib in
  let packets =
    Array.fold_left
      (fun acc (it : Pr_fastpath.Parallel.item) -> acc + Array.length it.pairs)
      0 items
  in
  (* The sweeps are deterministic, so best-of-[repeat] timing keeps the
     result and discards scheduler noise. *)
  let best_of run =
    let best = ref infinity and result = ref None in
    for _ = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let r = run () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let reference_sweep ?probe ?linkload () =
    let metrics = Pr_sim.Metrics.create () in
    Array.iter
      (fun (it : Pr_fastpath.Parallel.item) ->
        let failures = it.failures in
        Array.iter
          (fun (src, dst) ->
            if not (Pr_core.Failure.pair_connected failures src dst) then begin
              Pr_sim.Metrics.record_unreachable metrics;
              Option.iter Probe.record_unreachable probe
            end
            else
              let trace =
                Pr_core.Forward.run
                  ~termination:Pr_core.Forward.Distance_discriminator
                  ~routing ~cycles ~failures ?probe ?linkload ~src ~dst ()
              in
              match trace.Pr_core.Forward.outcome with
              | Pr_core.Forward.Delivered ->
                  Pr_sim.Metrics.record_delivery metrics
                    ~stretch:
                      (Pr_core.Forward.stretch ~routing ~trace ~src ~dst)
              | Pr_core.Forward.Ttl_exceeded ->
                  Pr_sim.Metrics.record_loop metrics
              | Pr_core.Forward.Dropped_no_interface
              | Pr_core.Forward.Dropped_unreachable ->
                  Pr_sim.Metrics.record_drop metrics
              | Pr_core.Forward.Dropped_corrupt ->
                  Pr_sim.Metrics.record_drop ~reason:Pr_sim.Metrics.Corrupt
                    metrics)
          it.pairs)
      items;
    metrics
  in
  let run_off () =
    match backend with
    | `Compiled ->
        Pr_sim.Metrics.of_fastpath
          (Pr_fastpath.Parallel.run ~domains ~seed fib items)
    | `Reference -> reference_sweep ()
  in
  let metrics, elapsed = best_of run_off in
  let ns_per_packet = elapsed *. 1e9 /. float_of_int (max 1 packets) in
  if json then
    Printf.printf
      "{\"topology\":%S,\"backend\":%S,\"domains\":%d,\"scenarios\":%d,\"packets\":%d,\"elapsed_s\":%.6f,\"ns_per_packet\":%.1f,\"injected\":%d,\"delivered\":%d,\"dropped\":%d,\"looped\":%d,\"unreachable\":%d,\"delivery_ratio\":%.6f,\"mean_stretch\":%.6f}\n"
      topo.Topology.name
      (Pr_sim.Engine.backend_name backend)
      domains (Array.length items) packets elapsed ns_per_packet
      metrics.Pr_sim.Metrics.injected metrics.Pr_sim.Metrics.delivered
      metrics.Pr_sim.Metrics.dropped metrics.Pr_sim.Metrics.looped
      metrics.Pr_sim.Metrics.unreachable
      (Pr_sim.Metrics.delivery_ratio metrics)
      (Pr_sim.Metrics.mean_stretch metrics)
  else begin
    Printf.printf
      "bench: %s all-pairs single-failure sweep, %s backend, %d domain(s)\n"
      topo.Topology.name
      (Pr_sim.Engine.backend_name backend)
      domains;
    Printf.printf "  %d scenario(s), %d packet(s), %.3f ms, %.0f ns/packet\n"
      (Array.length items) packets (elapsed *. 1e3) ns_per_packet;
    Format.printf "  %a@." Pr_sim.Metrics.pp metrics
  end;
  Pr_telemetry.Flight.count fl "scenarios" (Array.length items);
  Pr_telemetry.Flight.count fl "packets" packets;
  Pr_telemetry.Flight.count fl "injected" metrics.Pr_sim.Metrics.injected;
  Pr_telemetry.Flight.count fl "delivered" metrics.Pr_sim.Metrics.delivered;
  Pr_telemetry.Flight.count fl "dropped" metrics.Pr_sim.Metrics.dropped;
  Pr_telemetry.Flight.count fl "looped" metrics.Pr_sim.Metrics.looped;
  Pr_telemetry.Flight.count fl "unreachable" metrics.Pr_sim.Metrics.unreachable;
  Pr_telemetry.Flight.metric fl "elapsed_s" elapsed;
  Pr_telemetry.Flight.metric fl "ns_per_packet" ns_per_packet;
  if probe then begin
    let run_on () =
      match backend with
      | `Compiled ->
          let total, p =
            Pr_fastpath.Parallel.run_probed ~domains ~seed fib items
          in
          (Pr_sim.Metrics.of_fastpath total, p)
      | `Reference ->
          let p = Probe.create () in
          let m = reference_sweep ~probe:p () in
          (m, p)
    in
    let (metrics_on, probe_t), elapsed_on = best_of run_on in
    let render m = Format.asprintf "%a" Pr_sim.Metrics.pp m in
    if render metrics_on <> render metrics then begin
      Printf.eprintf "probe-on run changed the metrics — telemetry bug\n";
      exit 1
    end;
    let ns_on = elapsed_on *. 1e9 /. float_of_int (max 1 packets) in
    let ratio = if elapsed > 0.0 then elapsed_on /. elapsed else 1.0 in
    let oc = open_out probe_out in
    Printf.fprintf oc
      "{\n\
      \  \"suite\": \"probe\",\n\
      \  \"topology\": %S,\n\
      \  \"backend\": %S,\n\
      \  \"domains\": %d,\n\
      \  \"repeat\": %d,\n\
      \  \"scenarios\": %d,\n\
      \  \"packets\": %d,\n\
      \  \"probe_off\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"probe_on\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"overhead_ratio\": %.4f,\n\
      \  \"probe\": %s\n\
       }\n"
      topo.Topology.name
      (Pr_sim.Engine.backend_name backend)
      domains repeat (Array.length items) packets elapsed ns_per_packet
      elapsed_on ns_on ratio
      (Probe.to_json probe_t);
    close_out oc;
    Printf.printf
      "  probe: off %.0f ns/packet, on %.0f ns/packet (x%.3f); wrote %s\n"
      ns_per_packet ns_on ratio probe_out;
    Pr_telemetry.Flight.metric fl "probe_overhead" ratio;
    Pr_telemetry.Flight.artifact fl probe_out
  end;
  if linkload_flag then begin
    let run_on () =
      match backend with
      | `Compiled ->
          let total, ll =
            Pr_fastpath.Parallel.run_loaded ~domains ~seed fib items
          in
          (Pr_sim.Metrics.of_fastpath total, ll)
      | `Reference ->
          let ll = Pr_obs.Linkload.create g in
          let m = reference_sweep ~linkload:ll () in
          (m, ll)
    in
    let (metrics_on, ll), elapsed_on = best_of run_on in
    let render m = Format.asprintf "%a" Pr_sim.Metrics.pp m in
    if render metrics_on <> render metrics then begin
      Printf.eprintf "linkload-on run changed the metrics — accounting bug\n";
      exit 1
    end;
    let ns_on = elapsed_on *. 1e9 /. float_of_int (max 1 packets) in
    let ratio = if elapsed > 0.0 then elapsed_on /. elapsed else 1.0 in
    let oc = open_out linkload_out in
    Printf.fprintf oc
      "{\n\
      \  \"suite\": \"linkload\",\n\
      \  \"topology\": %S,\n\
      \  \"backend\": %S,\n\
      \  \"domains\": %d,\n\
      \  \"repeat\": %d,\n\
      \  \"scenarios\": %d,\n\
      \  \"packets\": %d,\n\
      \  \"linkload_off\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"linkload_on\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"overhead_ratio\": %.4f,\n\
      \  \"linkload\": %s\n\
       }\n"
      topo.Topology.name
      (Pr_sim.Engine.backend_name backend)
      domains repeat (Array.length items) packets elapsed ns_per_packet
      elapsed_on ns_on ratio
      (Pr_obs.Linkload.to_json ll);
    close_out oc;
    Printf.printf
      "  linkload: off %.0f ns/packet, on %.0f ns/packet (x%.3f); wrote %s\n"
      ns_per_packet ns_on ratio linkload_out;
    Pr_telemetry.Flight.metric fl "linkload_overhead" ratio;
    Pr_telemetry.Flight.artifact fl linkload_out
  end;
  if swap_flag then begin
    (* Control-plane costs: per-edge single-edit incremental recompile
       vs a full recompile of the same image, and the hot-swap pause
       (publish + pin + kernel rebind + unpin).  Threshold 1.1 keeps
       every single-link edit on the incremental path so the two legs
       measure different code, not the fall-back measuring itself. *)
    let edges =
      Pr_graph.Graph.fold_edges
        (fun _ (e : Pr_graph.Graph.edge) acc -> (e.u, e.v) :: acc)
        g []
    in
    let n_edges = List.length edges in
    let down u v =
      [ { Pr_fastpath.Fib.Delta.u; v; change = Pr_fastpath.Fib.Delta.Down } ]
    in
    let incremental () =
      List.iter
        (fun (u, v) ->
          ignore
            (Pr_fastpath.Fib.Delta.apply_exn ~threshold:1.1 fib (down u v)))
        edges
    in
    let images =
      List.map
        (fun (u, v) ->
          fst (Pr_fastpath.Fib.Delta.apply_exn ~threshold:1.1 fib (down u v)))
        edges
    in
    let full () =
      List.iter
        (fun image -> ignore (Pr_fastpath.Fib.Delta.recompile image))
        images
    in
    let swap_pause () =
      let store = Pr_fastpath.Swap.create fib in
      let kernel = Pr_fastpath.Kernel.create fib in
      List.iter
        (fun image ->
          ignore (Pr_fastpath.Swap.publish store image);
          let epoch, pinned = Pr_fastpath.Swap.pin store in
          Pr_fastpath.Kernel.rebind kernel pinned;
          Pr_fastpath.Swap.unpin store ~epoch)
        images
    in
    let per run = snd (best_of run) *. 1e9 /. float_of_int (max 1 n_edges) in
    let incremental_ns = per incremental in
    let full_ns = per full in
    let pause_ns = per swap_pause in
    let norm = if full_ns > 0.0 then incremental_ns /. full_ns else 1.0 in
    let oc = open_out swap_out in
    Printf.fprintf oc
      "{\n\
      \  \"suite\": \"swap\",\n\
      \  \"topology\": %S,\n\
      \  \"repeat\": %d,\n\
      \  \"edges\": %d,\n\
      \  \"incremental_ns\": %.1f,\n\
      \  \"full_ns\": %.1f,\n\
      \  \"swap_pause_ns\": %.1f,\n\
      \  \"norm\": %.4f\n\
       }\n"
      topo.Topology.name repeat n_edges incremental_ns full_ns pause_ns norm;
    close_out oc;
    Printf.printf
      "  swap: incremental %.0f ns, full %.0f ns per recompile (x%.3f), \
       pause %.0f ns; wrote %s\n"
      incremental_ns full_ns norm pause_ns swap_out;
    Pr_telemetry.Flight.metric fl "swap_incremental_ns" incremental_ns;
    Pr_telemetry.Flight.metric fl "swap_full_ns" full_ns;
    Pr_telemetry.Flight.metric fl "swap_pause_ns" pause_ns;
    Pr_telemetry.Flight.metric fl "swap_norm" norm;
    Pr_telemetry.Flight.artifact fl swap_out
  end;
  if guard_flag then begin
    (* Guard-mode overhead: the same single-threaded kernel sweep with the
       FIB-cell bounds checks off and on.  Clean traffic must keep every
       verdict — the counters are compared exactly — so the ratio prices
       the checks alone. *)
    let sweep ~guard () =
      let kernel = Pr_fastpath.Kernel.create fib in
      Pr_fastpath.Kernel.set_guard kernel guard;
      let counters = Pr_fastpath.Kernel.fresh_counters () in
      Array.iter
        (fun (it : Pr_fastpath.Parallel.item) ->
          Pr_fastpath.Kernel.set_failures kernel it.failures;
          Array.iter
            (fun (src, dst) ->
              if not (Pr_core.Failure.pair_connected it.failures src dst) then
                Pr_fastpath.Kernel.record_unreachable counters
              else Pr_fastpath.Kernel.forward_into kernel counters ~src ~dst)
            it.pairs)
        items;
      counters
    in
    let off, elapsed_guard_off = best_of (fun () -> sweep ~guard:false ()) in
    let on, elapsed_guard_on = best_of (fun () -> sweep ~guard:true ()) in
    if not (Pr_fastpath.Kernel.equal_counters off on) then begin
      Printf.eprintf "guard-on run changed the verdicts — guard bug\n";
      exit 1
    end;
    let ns_off =
      elapsed_guard_off *. 1e9 /. float_of_int (max 1 packets)
    in
    let ns_on = elapsed_guard_on *. 1e9 /. float_of_int (max 1 packets) in
    let ratio =
      if elapsed_guard_off > 0.0 then elapsed_guard_on /. elapsed_guard_off
      else 1.0
    in
    let oc = open_out guard_out in
    Printf.fprintf oc
      "{\n\
      \  \"suite\": \"guard\",\n\
      \  \"topology\": %S,\n\
      \  \"backend\": \"compiled\",\n\
      \  \"repeat\": %d,\n\
      \  \"scenarios\": %d,\n\
      \  \"packets\": %d,\n\
      \  \"guard_off\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"guard_on\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
      \  \"overhead_ratio\": %.4f\n\
       }\n"
      topo.Topology.name repeat (Array.length items) packets elapsed_guard_off
      ns_off elapsed_guard_on ns_on ratio;
    close_out oc;
    Printf.printf
      "  guard: off %.0f ns/packet, on %.0f ns/packet (x%.3f); wrote %s\n"
      ns_off ns_on ratio guard_out;
    Pr_telemetry.Flight.metric fl "guard_overhead" ratio;
    Pr_telemetry.Flight.artifact fl guard_out
  end;
  (match shortcut with
  | None -> ()
  | Some w ->
      (* Shortcut-rung overhead: the same single-threaded kernel sweep
         with the deja-vu hint disarmed and armed.  Shortcutting may
         reroute a recycled walk early but never changes a verdict —
         the verdict counters are compared exactly — so the ratio
         prices the hint updates and the grant checks alone. *)
      let sweep ~shortcut () =
        let kernel = Pr_fastpath.Kernel.create fib in
        Pr_fastpath.Kernel.set_shortcut kernel shortcut;
        let counters = Pr_fastpath.Kernel.fresh_counters () in
        Array.iter
          (fun (it : Pr_fastpath.Parallel.item) ->
            Pr_fastpath.Kernel.set_failures kernel it.failures;
            Array.iter
              (fun (src, dst) ->
                if not (Pr_core.Failure.pair_connected it.failures src dst)
                then Pr_fastpath.Kernel.record_unreachable counters
                else Pr_fastpath.Kernel.forward_into kernel counters ~src ~dst)
              it.pairs)
          items;
        counters
      in
      let off, elapsed_sc_off = best_of (fun () -> sweep ~shortcut:None ()) in
      let on, elapsed_sc_on =
        best_of (fun () -> sweep ~shortcut:(Some w) ())
      in
      let verdicts (c : Pr_fastpath.Kernel.counters) =
        ( c.Pr_fastpath.Kernel.injected,
          c.Pr_fastpath.Kernel.delivered,
          c.Pr_fastpath.Kernel.dropped,
          c.Pr_fastpath.Kernel.looped,
          c.Pr_fastpath.Kernel.unreachable )
      in
      if verdicts off <> verdicts on then begin
        Printf.eprintf "shortcut-on run changed the verdicts — shortcut bug\n";
        exit 1
      end;
      let ns_off = elapsed_sc_off *. 1e9 /. float_of_int (max 1 packets) in
      let ns_on = elapsed_sc_on *. 1e9 /. float_of_int (max 1 packets) in
      let ratio =
        if elapsed_sc_off > 0.0 then elapsed_sc_on /. elapsed_sc_off else 1.0
      in
      let oc = open_out shortcut_out in
      Printf.fprintf oc
        "{\n\
        \  \"suite\": \"shortcut\",\n\
        \  \"topology\": %S,\n\
        \  \"backend\": \"compiled\",\n\
        \  \"repeat\": %d,\n\
        \  \"scenarios\": %d,\n\
        \  \"packets\": %d,\n\
        \  \"width\": %d,\n\
        \  \"shortcut_off\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
        \  \"shortcut_on\": {\"elapsed_s\": %.6f, \"ns_per_packet\": %.2f},\n\
        \  \"shortcut_exits\": %d,\n\
        \  \"overhead_ratio\": %.4f\n\
         }\n"
        topo.Topology.name repeat (Array.length items) packets w elapsed_sc_off
        ns_off elapsed_sc_on ns_on on.Pr_fastpath.Kernel.shortcut_exits ratio;
      close_out oc;
      Printf.printf
        "  shortcut: off %.0f ns/packet, on %.0f ns/packet (x%.3f), %d \
         exit(s); wrote %s\n"
        ns_off ns_on ratio on.Pr_fastpath.Kernel.shortcut_exits shortcut_out;
      Pr_telemetry.Flight.metric fl "shortcut_overhead" ratio;
      Pr_telemetry.Flight.count fl "shortcut_exits"
        on.Pr_fastpath.Kernel.shortcut_exits;
      Pr_telemetry.Flight.artifact fl shortcut_out);
  ledger_append ~no_ledger ~ledger fl

let bench_cmd =
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"INT"
           ~doc:"Worker domains (compiled backend only).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one JSON object on stdout instead of text.")
  in
  let probe =
    Arg.(value & flag & info [ "probe" ]
           ~doc:"Also run the sweep with a telemetry probe attached and
                 write its counters and histograms, plus the probe-on vs
                 probe-off timing delta, as JSON.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"INT"
           ~doc:"Time each sweep this many times and keep the best run
                 (the sweeps are deterministic).")
  in
  let probe_out =
    Arg.(value & opt string "BENCH_probe.json" & info [ "probe-out" ]
           ~docv:"FILE" ~doc:"Where --probe writes its JSON.")
  in
  let force =
    Arg.(value & flag & info [ "force" ]
           ~doc:"Overwrite existing --probe-out / --linkload-out files
                 instead of refusing.")
  in
  let linkload =
    Arg.(value & flag & info [ "linkload" ]
           ~doc:"Also run the sweep with per-link load accounting attached
                 and write the merged table, plus the on vs off timing
                 delta, as JSON.")
  in
  let linkload_out =
    Arg.(value & opt string "BENCH_linkload.json" & info [ "linkload-out" ]
           ~docv:"FILE" ~doc:"Where --linkload writes its JSON.")
  in
  let swap =
    Arg.(value & flag & info [ "swap" ]
           ~doc:"Also time the control plane: per-edge incremental FIB
                 recompile vs full recompile, and the epoch-store hot-swap
                 pause, written as JSON.")
  in
  let swap_out =
    Arg.(value & opt string "BENCH_swap.json" & info [ "swap-out" ]
           ~docv:"FILE" ~doc:"Where --swap writes its JSON.")
  in
  let guard =
    Arg.(value & flag & info [ "guard" ]
           ~doc:"Also time the kernel sweep with guard mode (FIB-cell
                 bounds checks) off and on, verify the verdicts are
                 unchanged, and write the overhead ratio as JSON.")
  in
  let guard_out =
    Arg.(value & opt string "BENCH_guard.json" & info [ "guard-out" ]
           ~docv:"FILE" ~doc:"Where --guard writes its JSON.")
  in
  let history =
    Arg.(value & flag & info [ "history" ]
           ~doc:"Regression check: parse the committed BENCH_*.json
                 artifacts, re-measure the normalised compiled/reference
                 per-packet time, and exit non-zero if it regressed more
                 than 15% against the best committed baseline.")
  in
  let history_dir =
    Arg.(value & opt string "." & info [ "history-dir" ] ~docv:"DIR"
           ~doc:"Where --history looks for BENCH_*.json artifacts.")
  in
  let shortcut_out =
    Arg.(value & opt string "BENCH_shortcut.json" & info [ "shortcut-out" ]
           ~docv:"FILE" ~doc:"Where --shortcut writes its JSON.")
  in
  let scale =
    Arg.(value & flag & info [ "scale" ]
           ~doc:"Run the scale observatory instead of a named-topology
                 sweep: generate BA/Waxman topologies at --scale-nodes
                 sizes, run the full pipeline under span timing, and
                 write per-stage wall time, exact image bytes, streaming
                 stretch/hop quantiles and the sketch-armed overhead
                 ratio as JSON.  Exits non-zero if sketch overhead
                 exceeds 1.10x or the span tree accounts for less than
                 95% of a case's wall time.")
  in
  let scale_nodes =
    Arg.(value & opt string "1000,3000,10000" & info [ "scale-nodes" ]
           ~docv:"LIST" ~doc:"Comma-separated node counts for --scale.")
  in
  let scale_family =
    Arg.(value & opt string "both" & info [ "scale-family" ] ~docv:"FAM"
           ~doc:"Topology family for --scale: ba, waxman or both.")
  in
  let scale_scenarios =
    Arg.(value & opt int 4 & info [ "scale-scenarios" ] ~docv:"INT"
           ~doc:"Sampled single-failure scenarios per --scale case.")
  in
  let scale_pairs =
    Arg.(value & opt int 20000 & info [ "scale-pairs" ] ~docv:"INT"
           ~doc:"Sampled (src, dst) pairs per --scale scenario.")
  in
  let scale_out =
    Arg.(value & opt string "BENCH_scale.json" & info [ "scale-out" ]
           ~docv:"FILE" ~doc:"Where --scale writes its bench JSON.")
  in
  let scale_spans_out =
    Arg.(value & opt string "SPANS_scale.json" & info [ "scale-spans-out" ]
           ~docv:"FILE" ~doc:"Where --scale writes the span-tree JSON.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Time the all-pairs single-failure PR sweep on the reference or
             compiled data plane.")
    Term.(const bench $ topo_arg $ embedding_arg $ seed_arg $ backend_arg
          $ domains $ json $ probe $ repeat $ probe_out $ force $ linkload
          $ linkload_out $ swap $ swap_out $ guard $ guard_out $ history
          $ history_dir $ shortcut_arg $ shortcut_out $ scale $ scale_nodes
          $ scale_family $ scale_scenarios $ scale_pairs $ scale_out
          $ scale_spans_out $ progress_arg $ ledger_arg $ no_ledger_arg)

(* ---- report: the network observatory rollup ---- *)

let report name embedding seed domains top json out shortcut compile_flag
    progress_flag ledger no_ledger =
  if domains < 1 then begin
    Printf.eprintf "domains must be >= 1\n";
    exit 1
  end;
  let topo = load_topology name in
  let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
  let rotation = Pr_exp.Fig2.resolve_rotation config topo in
  let write_or_print text =
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "report written to %s\n" path
  in
  if compile_flag then begin
    (* Compile-cost attribution: one FIB compile under a recorder, the
       per-plane sub-spans and the sampled per-destination histogram —
       the hotspot table for compile optimisation work. *)
    progress_on ~forced:progress_flag
      ~label:(Printf.sprintf "report --compile %s" topo.Topology.name);
    let p =
      Fun.protect ~finally:progress_off (fun () ->
          Pr_report.Report.profile_compile ~top topo rotation)
    in
    write_or_print
      (if json then Pr_report.Report.compile_to_json p
       else Pr_report.Report.render_compile p);
    let fl = Pr_telemetry.Flight.create ~cmd:"report-compile" ~seed () in
    Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
    Pr_telemetry.Flight.count fl "cost_samples"
      (List.length p.Pr_report.Report.costs);
    Pr_telemetry.Flight.metric fl "compile_ms"
      (Pr_telemetry.Span.wall_ms p.Pr_report.Report.compile);
    List.iter
      (fun (pl : Pr_telemetry.Span.node) ->
        Pr_telemetry.Flight.metric fl (pl.name ^ "_ms")
          (Pr_telemetry.Span.wall_ms pl))
      p.Pr_report.Report.planes;
    Pr_telemetry.Flight.set_spans fl [ p.Pr_report.Report.compile ];
    ledger_append ~no_ledger ~ledger fl;
    exit 0
  end;
  let dd_bits =
    Pr_core.Routing.dd_bits (Pr_core.Routing.build topo.Topology.graph)
  in
  let shortcut = shortcut_or_die ~dd_bits shortcut in
  progress_on ~forced:progress_flag
    ~label:(Printf.sprintf "report %s" topo.Topology.name);
  let s =
    Fun.protect ~finally:progress_off (fun () ->
        Pr_report.Report.sweep ~domains ?shortcut topo rotation)
  in
  let text =
    if json then Pr_report.Report.to_json ~top s
    else Pr_report.Report.render ~top s
  in
  write_or_print text;
  let fl = Pr_telemetry.Flight.create ~cmd:"report" ~seed () in
  Pr_telemetry.Flight.knob_str fl "topology" topo.Topology.name;
  Option.iter (fun w -> Pr_telemetry.Flight.knob_int fl "shortcut" w) shortcut;
  Pr_telemetry.Flight.metric fl "domains" (float_of_int domains);
  Pr_telemetry.Flight.count fl "scenarios" s.Pr_report.Report.scenarios;
  Pr_telemetry.Flight.count fl "packets" s.Pr_report.Report.packets;
  Pr_telemetry.Flight.count fl "delivered"
    s.Pr_report.Report.counters.Pr_fastpath.Kernel.delivered;
  Pr_telemetry.Flight.count fl "dropped"
    s.Pr_report.Report.counters.Pr_fastpath.Kernel.dropped;
  Pr_telemetry.Flight.count fl "unreachable"
    s.Pr_report.Report.counters.Pr_fastpath.Kernel.unreachable;
  Pr_telemetry.Flight.count fl "linkload_bytes"
    s.Pr_report.Report.linkload_bytes;
  Pr_telemetry.Flight.count fl "agree"
    (if Pr_report.Report.agree s then 1 else 0);
  Pr_telemetry.Flight.section fl "footprint"
    (Pr_fastpath.Fib.footprint_json s.Pr_report.Report.footprint);
  Option.iter (fun path -> Pr_telemetry.Flight.artifact fl path) out;
  ledger_append ~no_ledger ~ledger fl;
  if not (Pr_report.Report.agree s) then begin
    Printf.eprintf
      "cross-backend observability mismatch: linkload %s, counters %s\n"
      (if s.Pr_report.Report.loads_agree then "ok" else "diverged")
      (if s.Pr_report.Report.counters_agree then "ok" else "diverged");
    exit 1
  end

let report_cmd =
  let domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"INT"
           ~doc:"Worker domains for the parallel backend leg.")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K"
           ~doc:"How many hottest directed links to list.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as JSON instead of text.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the report to a file instead of stdout.")
  in
  let compile =
    Arg.(value & flag & info [ "compile" ]
           ~doc:"Compile-cost attribution instead of the sweep: compile the
                 FIB image once under span timing and render the hotspot
                 table — per-plane wall time and allocation, the sampled
                 per-destination cost quantiles, and the costliest
                 destinations.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run the all-pairs single-failure sweep on all three data planes
             with link-load accounting attached, check the tables agree, and
             render the campaign rollup: hottest links with their
             shortest/recycled/rescue split, the max-link-load CCDF and the
             stretch CCDF.  Exits non-zero on any cross-backend mismatch.")
    Term.(const report $ topo_arg $ embedding_arg $ seed_arg $ domains $ top
          $ json $ out $ shortcut_arg $ compile $ progress_arg $ ledger_arg
          $ no_ledger_arg)

(* ---- history: the perf-trend anomaly observatory ---- *)

let history_run dir ledger measure name embedding seed repeat json_flag out =
  let extra =
    if not measure then []
    else begin
      (* The old flat gate's measured leg: re-time the fastpath norm now
         and let it join the committed series as its latest point. *)
      let topo = load_topology name in
      let config = { (Pr_exp.Fig2.default topo ~k:1) with embedding; seed } in
      let rotation = Pr_exp.Fig2.resolve_rotation config topo in
      let norm =
        Pr_report.Report.measure_norm ~repeat:(max repeat 3) topo rotation
      in
      [ ("bench.fastpath", { Pr_report.History.source = "measured"; value = norm }) ]
    end
  in
  let r = Pr_report.History.run ?ledger ~extra ~dir () in
  print_string (Pr_report.History.render r);
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Pr_report.History.to_json r);
      close_out oc;
      Printf.printf "history report written to %s\n" path);
  if json_flag && out = None then print_string (Pr_report.History.to_json r);
  exit (if r.Pr_report.History.anomalies > 0 then 1 else 0)

let history_cmd =
  let dir =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR"
           ~doc:"Where to look for BENCH_*.json artifacts and FLIGHT_*.jsonl
                 ledgers.")
  in
  let ledger =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"An additional flight-ledger file to fold in (e.g. one
                 written outside $(b,--dir)).")
  in
  let measure =
    Arg.(value & flag & info [ "measure" ]
           ~doc:"Also re-measure the normalised compiled/reference per-packet
                 time on $(b,--topology) now and append it to the
                 $(b,bench.fastpath) series before assessment — the live leg
                 of the CI regression gate.")
  in
  let repeat =
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"INT"
           ~doc:"Timing repetitions for --measure (best run kept).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Also emit the machine-readable pr.history/1 report on
                 stdout.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the pr.history/1 JSON report to a file.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"The perf-history anomaly observatory: fold every committed
             BENCH_*.json artifact and FLIGHT_*.jsonl flight ledger into
             named series, assess each series' latest point with a robust
             median-absolute-deviation rule (falling back to the flat 1.15x
             gate on short series), render sparkline trends, and exit
             non-zero if any series is anomalous.")
    Term.(const history_run $ dir $ ledger $ measure $ topo_arg
          $ embedding_arg $ seed_arg $ repeat $ json $ out)

let main_cmd =
  Cmd.group
    (Cmd.info "prcli" ~version:"1.0.0"
       ~doc:"Packet Re-cycling (HotNets 2010) reproduction toolkit.")
    [
      topo_cmd; embed_cmd; table_cmd; trace_cmd; explain_cmd; fig2_cmd;
      figures_cmd; hunt_cmd; overhead_cmd; ablation_cmd; coverage_cmd;
      chaos_cmd; swap_cmd; recover_cmd; detect_cmd; bench_cmd; report_cmd;
      history_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
