type quality = {
  rotation : Rotation.t;
  certified_planar : bool;
  genus : int;
  curved_edges : int;
}

let describe ~certified_planar rotation =
  let faces = Faces.compute rotation in
  let genus =
    if Pr_graph.Connectivity.is_connected (Rotation.graph rotation) then
      Surface.genus faces
    else 0
  in
  {
    rotation;
    certified_planar;
    genus;
    curved_edges = List.length (Validate.curved_edges faces);
  }

let for_graph ?(seed = 42) ?coords g =
  match Planar.embed g with
  | Some rotation -> describe ~certified_planar:true rotation
  | None ->
      let seeds =
        match coords with
        | Some coords -> [ Geometric.of_coords g coords ]
        | None -> []
      in
      (* Run both objectives: the min-genus search sometimes lands on a
         curved-edge-free embedding with fewer handles than the
         lexicographic Pr_safe search finds.  Rank by removable curved
         edges first, then genus. *)
      let candidates =
        List.map
          (fun objective ->
            let rotation =
              Optimize.best_of ~objective ~steps:8000 ~restarts:6 ~seeds
                (Pr_util.Rng.create ~seed) g
            in
            let faces = Faces.compute rotation in
            let removable = List.length (Validate.removable_curved_edges faces) in
            ((removable, Surface.genus faces), rotation))
          [ Optimize.Pr_safe; Optimize.Min_genus ]
      in
      let best =
        List.fold_left
          (fun acc candidate ->
            match acc with
            | None -> Some candidate
            | Some (score, _) ->
                if fst candidate < score then Some candidate else acc)
          None candidates
      in
      (match best with
      | Some (_, rotation) -> describe ~certified_planar:false rotation
      | None -> assert false)

let for_topology ?seed (topo : Pr_topo.Topology.t) =
  for_graph ?seed ~coords:topo.coords topo.graph

let rotation ?seed topo = (for_topology ?seed topo).rotation
