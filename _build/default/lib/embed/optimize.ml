module Graph = Pr_graph.Graph
module Rng = Pr_util.Rng

type objective = Min_genus | Pr_safe

type report = {
  initial_faces : int;
  final_faces : int;
  final_curved : int;
  steps_taken : int;
  improved_at : int list;
}

(* Larger is better.  For [Pr_safe] each curved edge costs more than any
   possible face-count gain (faces <= 2m), making the search lexicographic. *)
let score objective rot =
  let faces = Faces.compute rot in
  let face_count = Faces.count faces in
  match objective with
  | Min_genus -> face_count
  | Pr_safe ->
      let curved = List.length (Validate.curved_edges faces) in
      face_count - (((2 * Graph.m (Rotation.graph rot)) + 1) * curved)

let curved_count rot = List.length (Validate.curved_edges (Faces.compute rot))

let transpose_move rng orders =
  (* Swap two positions in the cyclic order of a random node of degree >= 3
     (transpositions at degree <= 2 nodes do not change the embedding). *)
  let candidates =
    Array.to_list orders
    |> List.mapi (fun v row -> (v, List.length row))
    |> List.filter (fun (_, d) -> d >= 3)
  in
  match candidates with
  | [] -> None
  | _ ->
      let v, d = List.nth candidates (Rng.int rng (List.length candidates)) in
      let i = Rng.int rng d in
      let j = (i + 1 + Rng.int rng (d - 1)) mod d in
      let row = Array.of_list orders.(v) in
      let tmp = row.(i) in
      row.(i) <- row.(j);
      row.(j) <- tmp;
      let fresh = Array.copy orders in
      fresh.(v) <- Array.to_list row;
      Some fresh

let anneal ?(objective = Min_genus) ?(steps = 4000) ?(initial_temperature = 1.0)
    ?(cooling = 0.999) rng rot =
  let g = Rotation.graph rot in
  let current = ref (Rotation.orders rot) in
  let current_score = ref (score objective rot) in
  let best = ref !current in
  let best_score = ref !current_score in
  let initial_faces = Faces.count (Faces.compute rot) in
  let improved = ref [] in
  let temperature = ref initial_temperature in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < steps do
    incr step;
    (match transpose_move rng !current with
    | None -> continue := false (* no degree-3 node: embedding is unique *)
    | Some candidate ->
        let candidate_score = score objective (Rotation.of_orders g candidate) in
        let delta = float_of_int (candidate_score - !current_score) in
        let accept =
          delta >= 0.0
          || Rng.float rng 1.0 < exp (delta /. Float.max 1e-9 !temperature)
        in
        if accept then begin
          current := candidate;
          current_score := candidate_score;
          if candidate_score > !best_score then begin
            best := candidate;
            best_score := candidate_score;
            improved := !step :: !improved
          end
        end);
    temperature := !temperature *. cooling
  done;
  let best_rot = Rotation.of_orders g !best in
  ( best_rot,
    {
      initial_faces;
      final_faces = Faces.count (Faces.compute best_rot);
      final_curved = curved_count best_rot;
      steps_taken = !step;
      improved_at = List.rev !improved;
    } )

let best_of ?(objective = Min_genus) ?steps ?(restarts = 4) ?(seeds = []) rng g =
  let starting_points =
    (Rotation.adjacency g :: seeds)
    @ List.init restarts (fun _ -> Rotation.random rng g)
  in
  let annealed =
    List.map
      (fun rot ->
        let best, _report = anneal ~objective ?steps rng rot in
        (best, score objective best))
      starting_points
  in
  match annealed with
  | [] -> assert false
  | first :: rest ->
      fst
        (List.fold_left
           (fun (r, s) (r', s') -> if s' > s then (r', s') else (r, s))
           first rest)
