module Graph = Pr_graph.Graph

(* ------------------------------------------------------------------ *)
(* DMP on one biconnected block.                                       *)
(*                                                                     *)
(* The embedded subgraph H grows one path at a time.  Faces are kept   *)
(* as boundary walks of directed arcs; in a biconnected embedding      *)
(* every boundary is a simple cycle, so a vertex appears at most once  *)
(* per face and splitting a face along a path is unambiguous.  At the  *)
(* end the rotation is recovered from the face-successor relation:     *)
(* next_v u = head of the arc following (u, v) on its face.            *)
(* ------------------------------------------------------------------ *)

module Block = struct
  type t = {
    vertices : int list;
    adj : (int, int list) Hashtbl.t; (* block-restricted adjacency *)
    edges : (int * int) list;        (* canonical *)
  }

  let make edges =
    let adj = Hashtbl.create 16 in
    let add u v =
      Hashtbl.replace adj u (v :: Option.value ~default:[] (Hashtbl.find_opt adj u))
    in
    List.iter
      (fun (u, v) ->
        add u v;
        add v u)
      edges;
    let vertices = Hashtbl.fold (fun v _ acc -> v :: acc) adj [] |> List.sort compare in
    { vertices; adj; edges }

  let neighbours t v = Option.value ~default:[] (Hashtbl.find_opt t.adj v)
end

(* An initial cycle of a biconnected block: any edge (u, v) plus a
   shortest u-v path avoiding that edge. *)
let initial_cycle (b : Block.t) =
  match b.edges with
  | [] -> invalid_arg "Planar.initial_cycle: empty block"
  | (u, v) :: _ ->
      let parent = Hashtbl.create 16 in
      let queue = Queue.create () in
      Hashtbl.replace parent u u;
      Queue.add u queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let x = Queue.take queue in
        List.iter
          (fun y ->
            let skip = (x = u && y = v) || (x = v && y = u) in
            if (not skip) && not (Hashtbl.mem parent y) then begin
              Hashtbl.replace parent y x;
              if y = v then found := true else Queue.add y queue
            end)
          (Block.neighbours b x)
      done;
      if not !found then invalid_arg "Planar.initial_cycle: block not biconnected";
      let rec unwind x acc = if x = u then u :: acc else unwind (Hashtbl.find parent x) (x :: acc) in
      unwind v []

type fragment = {
  attachments : int list;      (* embedded vertices it touches, sorted *)
  interior : int list;         (* non-embedded vertices, [] for a chord *)
  chord : (int * int) option;  (* the edge itself when interior = [] *)
}

let fragments_of (b : Block.t) ~in_h ~edge_embedded =
  let chords =
    List.filter_map
      (fun (u, v) ->
        if in_h u && in_h v && not (edge_embedded u v) then
          Some { attachments = List.sort compare [ u; v ]; interior = []; chord = Some (u, v) }
        else None)
      b.edges
  in
  (* Connected components of the non-embedded vertices. *)
  let seen = Hashtbl.create 16 in
  let components =
    List.filter_map
      (fun start ->
        if in_h start || Hashtbl.mem seen start then None
        else begin
          let interior = ref [] in
          let attachments = Hashtbl.create 8 in
          let queue = Queue.create () in
          Hashtbl.replace seen start ();
          Queue.add start queue;
          while not (Queue.is_empty queue) do
            let x = Queue.take queue in
            interior := x :: !interior;
            List.iter
              (fun y ->
                if in_h y then Hashtbl.replace attachments y ()
                else if not (Hashtbl.mem seen y) then begin
                  Hashtbl.replace seen y ();
                  Queue.add y queue
                end)
              (Block.neighbours b x)
          done;
          Some
            {
              attachments =
                Hashtbl.fold (fun v () acc -> v :: acc) attachments []
                |> List.sort compare;
              interior = List.sort compare !interior;
              chord = None;
            }
        end)
      b.vertices
  in
  chords @ components

(* A path between two distinct attachments whose interior avoids H. *)
let fragment_path (b : Block.t) ~in_h fragment =
  match fragment.chord with
  | Some (u, v) -> [ u; v ]
  | None ->
      let a = List.hd fragment.attachments in
      let inside = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace inside v ()) fragment.interior;
      let parent = Hashtbl.create 16 in
      let queue = Queue.create () in
      Hashtbl.replace parent a a;
      (* First hop must enter the fragment interior. *)
      List.iter
        (fun y ->
          if Hashtbl.mem inside y && not (Hashtbl.mem parent y) then begin
            Hashtbl.replace parent y a;
            Queue.add y queue
          end)
        (Block.neighbours b a);
      let target = ref None in
      while !target = None && not (Queue.is_empty queue) do
        let x = Queue.take queue in
        List.iter
          (fun y ->
            if !target = None && not (Hashtbl.mem parent y) then
              if in_h y then begin
                if y <> a then begin
                  Hashtbl.replace parent y x;
                  target := Some y
                end
              end
              else begin
                Hashtbl.replace parent y x;
                Queue.add y queue
              end)
          (Block.neighbours b x)
      done;
      (match !target with
      | None -> invalid_arg "Planar.fragment_path: fragment with one attachment"
      | Some b_end ->
          let rec unwind x acc =
            if x = a then a :: acc else unwind (Hashtbl.find parent x) (x :: acc)
          in
          unwind b_end [])

let arcs_of_path path =
  let rec pair = function
    | x :: (y :: _ as rest) -> (x, y) :: pair rest
    | [ _ ] | [] -> []
  in
  pair path

let face_vertices face = List.map fst face

(* Split face [f] along [path] (whose endpoints lie on [f]). *)
let split_face face path =
  let a = List.hd path and b = List.nth path (List.length path - 1) in
  let arr = Array.of_list face in
  let len = Array.length arr in
  let index_of v =
    let rec scan i = if i >= len then raise Not_found else if fst arr.(i) = v then i else scan (i + 1) in
    scan 0
  in
  let ia = index_of a and ib = index_of b in
  let segment from_ to_ =
    (* arcs from index [from_] up to (excluding) index [to_], cyclically *)
    let rec collect i acc = if i = to_ then List.rev acc else collect ((i + 1) mod len) (arr.(i) :: acc) in
    if from_ = to_ then [] else collect from_ []
  in
  let s1 = segment ia ib (* a -> ... -> b *) in
  let s2 = segment ib ia (* b -> ... -> a *) in
  let forward = arcs_of_path path in
  let backward = arcs_of_path (List.rev path) in
  (forward @ s2, s1 @ backward)

(* Embed one biconnected block; gives each block vertex its local cyclic
   neighbour order, or None if the block is non-planar. *)
let embed_block edges =
  match edges with
  | [] -> Some []
  | [ (u, v) ] -> Some [ (u, [ v ]); (v, [ u ]) ]
  | _ ->
      let b = Block.make edges in
      let in_h = Hashtbl.create 16 in
      let embedded_edges = Hashtbl.create 16 in
      let canon u v = if u < v then (u, v) else (v, u) in
      let mark_path path =
        List.iter (fun v -> Hashtbl.replace in_h v ()) path;
        List.iter (fun (u, v) -> Hashtbl.replace embedded_edges (canon u v) ()) (arcs_of_path path)
      in
      let cycle = initial_cycle b in
      let closed = cycle @ [ List.hd cycle ] in
      mark_path closed;
      let faces = ref [ arcs_of_path closed; arcs_of_path (List.rev closed) ] in
      let exception Non_planar in
      (try
         let continue = ref true in
         while !continue do
           let frs =
             fragments_of b
               ~in_h:(Hashtbl.mem in_h)
               ~edge_embedded:(fun u v -> Hashtbl.mem embedded_edges (canon u v))
           in
           if frs = [] then continue := false
           else begin
             (* Admissible faces per fragment; fail fast on zero, prefer
                forced fragments (exactly one admissible face). *)
             let scored =
               List.map
                 (fun fr ->
                   let admissible =
                     List.filter
                       (fun face ->
                         let vs = face_vertices face in
                         List.for_all (fun a -> List.mem a vs) fr.attachments)
                       !faces
                   in
                   (fr, admissible))
                 frs
             in
             (match List.find_opt (fun (_, adm) -> adm = []) scored with
             | Some _ -> raise Non_planar
             | None -> ());
             let fr, admissible =
               match List.find_opt (fun (_, adm) -> List.length adm = 1) scored with
               | Some choice -> choice
               | None -> List.hd scored
             in
             let face = List.hd admissible in
             let path = fragment_path b ~in_h:(Hashtbl.mem in_h) fr in
             mark_path path;
             let f1, f2 = split_face face path in
             faces := f1 :: f2 :: List.filter (fun f -> f != face) !faces
           end
         done;
         (* Recover the rotation from the face-successor relation. *)
         let next = Hashtbl.create 64 in
         List.iter
           (fun face ->
             let arr = Array.of_list face in
             let len = Array.length arr in
             Array.iteri
               (fun i (u, v) ->
                 let _, w = arr.((i + 1) mod len) in
                 (* succ (u,v) = (v,w): at node v, u is followed by w. *)
                 Hashtbl.replace next (v, u) w)
               arr)
           !faces;
         let order_at v =
           let nbrs = Block.neighbours b v in
           match nbrs with
           | [] -> []
           | first :: _ ->
               let rec follow u acc remaining =
                 if remaining = 0 then List.rev acc
                 else follow (Hashtbl.find next (v, u)) (u :: acc) (remaining - 1)
               in
               follow first [] (List.length nbrs)
         in
         Some (List.map (fun v -> (v, order_at v)) b.vertices)
       with Non_planar -> None)

(* ------------------------------------------------------------------ *)
(* Whole graphs: blocks, then merge rotations at cut vertices.         *)
(* ------------------------------------------------------------------ *)

let embed g =
  let block_edge_lists = Pr_graph.Connectivity.blocks g in
  let per_vertex : (int, int list list) Hashtbl.t = Hashtbl.create 64 in
  let add_block_orders orders =
    List.iter
      (fun (v, order) ->
        if order <> [] then
          Hashtbl.replace per_vertex v
            (order :: Option.value ~default:[] (Hashtbl.find_opt per_vertex v)))
      orders
  in
  let rec embed_all = function
    | [] -> true
    | edges :: rest -> (
        match embed_block edges with
        | None -> false
        | Some orders ->
            add_block_orders orders;
            embed_all rest)
  in
  if not (embed_all block_edge_lists) then None
  else begin
    (* Concatenating the per-block cyclic orders at a cut vertex merges one
       face of each block: Euler characteristic stays 2 per component. *)
    let orders =
      Array.init (Graph.n g) (fun v ->
          List.concat (Option.value ~default:[] (Hashtbl.find_opt per_vertex v)))
    in
    Some (Rotation.of_orders g orders)
  end

let is_planar g = Option.is_some (embed g)

let embed_exn g =
  match embed g with
  | Some rotation -> rotation
  | None -> invalid_arg "Planar.embed_exn: graph is not planar"
