(** The dual view of an embedding: which cells border which.

    Every link of the primal graph corresponds to a dual adjacency between
    the (at most two) faces on its sides; curved links become dual self
    loops.  The dual drives analysis of the cycle system — face sizes
    bound PR's per-episode stretch, and the dual's connectivity is what
    the §5 region-joining argument manipulates. *)

val adjacencies : Faces.t -> (int * int * int) list
(** One entry per primal link, in edge-index order:
    [(face_of u->v, face_of v->u, edge_index)].  Equal faces mark curved
    links. *)

val face_sizes : Faces.t -> int list
(** Boundary length of each face, in face-id order. *)

val largest_face : Faces.t -> int
(** Size of the largest cell: a packet re-cycling around a single failure
    traverses at most this many links per episode. *)

val is_connected : Faces.t -> bool
(** Whether the dual is connected (always true for an embedding of a
    connected graph). *)
