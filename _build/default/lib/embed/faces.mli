(** Face tracing: recover the cells of the embedding from a rotation system.

    Directed arcs are indexed densely: the edge with dense index [k] yields
    arc [2k] (canonical u->v orientation, u < v) and arc [2k+1] (v->u).
    The face successor of arc (u, v) is (v, next_v u); iterating the
    successor partitions the arc set into face boundary cycles — the
    paper's cellular cycle system.  Every undirected link lies on exactly
    two directed cycles (possibly the same cycle traversed twice when the
    link is a bridge). *)

type t

val rotation : t -> Rotation.t

val compute : Rotation.t -> t

val arc_count : t -> int
(** Always [2 * m]. *)

val arc_id : t -> tail:int -> head:int -> int
(** Raises [Not_found] when the nodes are not adjacent. *)

val arc_endpoints : t -> int -> int * int
(** (tail, head) of an arc id. *)

val successor : t -> int -> int
(** Face successor of an arc (also available before [compute] as
    [Rotation.next], but here by arc id). *)

val count : t -> int
(** Number of faces. *)

val face_of_arc : t -> int -> int

val face_arcs : t -> int -> int list
(** Arc ids of a face, in boundary order (starting from the lowest arc id
    on the face). *)

val face_nodes : t -> int -> int list
(** Tails of the face's arcs, in boundary order. *)

val face_length : t -> int -> int

val complementary_face : t -> tail:int -> head:int -> int
(** The face containing the reverse arc (head -> tail): the paper's
    complementary cycle of the link for that direction of traversal. *)

val pp : Format.formatter -> t -> unit
