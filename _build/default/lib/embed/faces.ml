module Graph = Pr_graph.Graph

type t = {
  rot : Rotation.t;
  face_of : int array; (* arc id -> face id *)
  faces : int list array; (* face id -> arc ids in boundary order *)
}

let rotation t = t.rot

let graph t = Rotation.graph t.rot

let arc_count t = 2 * Graph.m (graph t)

let arc_id_in g ~tail ~head =
  let k = Graph.edge_index g tail head in
  let e = Graph.edge g k in
  if e.u = tail then 2 * k else (2 * k) + 1

let arc_endpoints_in g arc =
  let e = Graph.edge g (arc / 2) in
  if arc mod 2 = 0 then (e.u, e.v) else (e.v, e.u)

let arc_id t ~tail ~head = arc_id_in (graph t) ~tail ~head

let arc_endpoints t arc = arc_endpoints_in (graph t) arc

let successor_in rot arc =
  let g = Rotation.graph rot in
  let tail, head = arc_endpoints_in g arc in
  arc_id_in g ~tail:head ~head:(Rotation.next rot head tail)

let compute rot =
  let g = Rotation.graph rot in
  let arcs = 2 * Graph.m g in
  let face_of = Array.make arcs (-1) in
  let faces = ref [] in
  let count = ref 0 in
  for start = 0 to arcs - 1 do
    if face_of.(start) = -1 then begin
      let id = !count in
      incr count;
      let rec walk arc acc =
        face_of.(arc) <- id;
        let nxt = successor_in rot arc in
        if nxt = start then List.rev (arc :: acc) else walk nxt (arc :: acc)
      in
      faces := walk start [] :: !faces
    end
  done;
  { rot; face_of; faces = Array.of_list (List.rev !faces) }

let successor t arc = successor_in t.rot arc

let count t = Array.length t.faces

let face_of_arc t arc = t.face_of.(arc)

let face_arcs t face = t.faces.(face)

let face_nodes t face =
  List.map (fun arc -> fst (arc_endpoints t arc)) t.faces.(face)

let face_length t face = List.length t.faces.(face)

let complementary_face t ~tail ~head = t.face_of.(arc_id t ~tail:head ~head:tail)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d faces:" (count t);
  Array.iteri
    (fun id _ ->
      Format.fprintf ppf "@,  f%d: %a" id
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Format.pp_print_int)
        (face_nodes t id))
    t.faces;
  Format.fprintf ppf "@]"
