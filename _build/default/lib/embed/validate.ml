module Graph = Pr_graph.Graph

type problem =
  | Arc_not_covered of int
  | Arc_covered_twice of int
  | Boundary_sum_mismatch of int * int
  | Odd_euler_defect of int

let check faces =
  let g = Rotation.graph (Faces.rotation faces) in
  let arcs = Faces.arc_count faces in
  let cover = Array.make arcs 0 in
  let boundary_sum = ref 0 in
  for f = 0 to Faces.count faces - 1 do
    let face = Faces.face_arcs faces f in
    boundary_sum := !boundary_sum + List.length face;
    List.iter (fun arc -> cover.(arc) <- cover.(arc) + 1) face
  done;
  let problems = ref [] in
  Array.iteri
    (fun arc c ->
      if c = 0 then problems := Arc_not_covered arc :: !problems
      else if c > 1 then problems := Arc_covered_twice arc :: !problems)
    cover;
  if !boundary_sum <> 2 * Graph.m g then
    problems := Boundary_sum_mismatch (!boundary_sum, 2 * Graph.m g) :: !problems;
  let chi = Graph.n g - Graph.m g + Faces.count faces in
  (* Arc tracing cannot see the face around an isolated vertex, so the
     parity check only applies when there are edges. *)
  if Graph.m g > 0 && Pr_graph.Connectivity.is_connected g && (2 - chi) mod 2 <> 0
  then problems := Odd_euler_defect chi :: !problems;
  List.rev !problems

let is_valid faces = check faces = []

let edge_cycle_property faces =
  let g = Rotation.graph (Faces.rotation faces) in
  let ok = ref true in
  Graph.iter_edges
    (fun _ (e : Graph.edge) ->
      (* Both orientations must each lie on exactly one face; validity of
         the partition is checked separately, so here we simply require the
         lookups to succeed and be total. *)
      let forward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.u ~head:e.v) in
      let backward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.v ~head:e.u) in
      if forward < 0 || backward < 0 then ok := false)
    g;
  !ok

let curved_edges faces =
  let g = Rotation.graph (Faces.rotation faces) in
  Graph.fold_edges
    (fun _ (e : Graph.edge) acc ->
      let forward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.u ~head:e.v) in
      let backward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.v ~head:e.u) in
      if forward = backward then (e.u, e.v) :: acc else acc)
    g []
  |> List.rev

let is_pr_safe faces = is_valid faces && curved_edges faces = []

let removable_curved_edges faces =
  let g = Rotation.graph (Faces.rotation faces) in
  let bridges = Pr_graph.Connectivity.bridges g in
  List.filter (fun e -> not (List.mem e bridges)) (curved_edges faces)

let pp_problem ppf = function
  | Arc_not_covered arc -> Format.fprintf ppf "arc %d not on any face" arc
  | Arc_covered_twice arc -> Format.fprintf ppf "arc %d on several faces" arc
  | Boundary_sum_mismatch (got, want) ->
      Format.fprintf ppf "face boundary lengths sum to %d, expected %d" got want
  | Odd_euler_defect chi -> Format.fprintf ppf "odd Euler defect (chi = %d)" chi
