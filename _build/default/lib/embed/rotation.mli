(** Rotation systems: the combinatorial form of a cellular embedding.

    A rotation system assigns to every node a cyclic order of its incident
    edges.  By the Heffter–Edmonds principle, each rotation system of a
    connected graph corresponds to exactly one cellular embedding of the
    graph on an orientable closed surface; the faces of that embedding are
    recovered by {!Faces.compute}.  This is the object the paper computes
    offline and distributes to routers. *)

type t

val graph : t -> Pr_graph.Graph.t

val of_orders : Pr_graph.Graph.t -> int list array -> t
(** [of_orders g orders] where [orders.(v)] lists the neighbours of [v] in
    cyclic order.  Raises [Invalid_argument] unless each list is a
    permutation of [Graph.neighbours g v]. *)

val adjacency : Pr_graph.Graph.t -> t
(** Neighbours in increasing id order — an arbitrary but deterministic
    baseline rotation. *)

val random : Pr_util.Rng.t -> Pr_graph.Graph.t -> t
(** Independent uniform shuffle of every node's order. *)

val order : t -> int -> int array
(** Cyclic order at a node (owned by the rotation; do not mutate). *)

val next : t -> int -> int -> int
(** [next t v u] is the neighbour following [u] in the cyclic order at [v].
    Raises [Invalid_argument] if [u] is not adjacent to [v].  This is the
    permutation the paper's cycle following tables implement. *)

val prev : t -> int -> int -> int
(** Inverse of {!next}. *)

val orders : t -> int list array
(** Copy of all orders, suitable for editing and re-validation. *)

val equal : t -> t -> bool
(** Same graph structure and same cyclic orders up to rotation of each
    list. *)

val pp : Format.formatter -> t -> unit
