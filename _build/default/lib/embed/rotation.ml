module Graph = Pr_graph.Graph

type t = {
  g : Graph.t;
  order_at : int array array;
  position : (int, int) Hashtbl.t; (* key v * n + u -> index of u in order_at.(v) *)
}

let graph t = t.g

let key t v u = (v * Graph.n t.g) + u

let index t v u =
  match Hashtbl.find_opt t.position (key t v u) with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Rotation: %d is not a neighbour of %d" u v)

let build g order_at =
  let t = { g; order_at; position = Hashtbl.create (4 * Graph.m g) } in
  Array.iteri
    (fun v row -> Array.iteri (fun i u -> Hashtbl.replace t.position (key t v u) i) row)
    order_at;
  t

let of_orders g orders =
  if Array.length orders <> Graph.n g then
    invalid_arg "Rotation.of_orders: wrong number of nodes";
  let order_at =
    Array.mapi
      (fun v neighbours_in_order ->
        let row = Array.of_list neighbours_in_order in
        let reference = Array.copy (Graph.neighbours g v) in
        let sorted = Array.copy row in
        Array.sort compare sorted;
        if sorted <> reference then
          invalid_arg
            (Printf.sprintf
               "Rotation.of_orders: order at node %d is not a permutation of its neighbours"
               v);
        row)
      orders
  in
  build g order_at

let adjacency g =
  build g (Array.init (Graph.n g) (fun v -> Array.copy (Graph.neighbours g v)))

let random rng g =
  let order_at =
    Array.init (Graph.n g) (fun v ->
        let row = Array.copy (Graph.neighbours g v) in
        Pr_util.Rng.shuffle rng row;
        row)
  in
  build g order_at

let order t v = t.order_at.(v)

let next t v u =
  let row = t.order_at.(v) in
  row.((index t v u + 1) mod Array.length row)

let prev t v u =
  let row = t.order_at.(v) in
  let len = Array.length row in
  row.((index t v u + len - 1) mod len)

let orders t = Array.map Array.to_list t.order_at

let canonical_row row =
  (* Rotate the cyclic order so the smallest neighbour comes first. *)
  let len = Array.length row in
  if len = 0 then []
  else begin
    let start = ref 0 in
    Array.iteri (fun i u -> if u < row.(!start) then start := i) row;
    List.init len (fun i -> row.((!start + i) mod len))
  end

let equal a b =
  Graph.equal_structure a.g b.g
  && Array.for_all2
       (fun ra rb -> canonical_row ra = canonical_row rb)
       a.order_at b.order_at

let pp ppf t =
  Format.fprintf ppf "@[<v>rotation system:";
  Array.iteri
    (fun v row ->
      Format.fprintf ppf "@,  %d: (%a)" v
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Format.pp_print_int)
        (Array.to_list row))
    t.order_at;
  Format.fprintf ppf "@]"
