module Graph = Pr_graph.Graph

let adjacencies faces =
  let g = Rotation.graph (Faces.rotation faces) in
  Graph.fold_edges
    (fun i (e : Graph.edge) acc ->
      let forward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.u ~head:e.v) in
      let backward = Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.v ~head:e.u) in
      (forward, backward, i) :: acc)
    g []
  |> List.rev

let face_sizes faces =
  List.init (Faces.count faces) (Faces.face_length faces)

let largest_face faces = List.fold_left max 0 (face_sizes faces)

let is_connected faces =
  let count = Faces.count faces in
  if count <= 1 then true
  else begin
    let uf = Pr_util.Union_find.create count in
    List.iter (fun (a, b, _) -> ignore (Pr_util.Union_find.union uf a b)) (adjacencies faces);
    Pr_util.Union_find.count uf = 1
  end
