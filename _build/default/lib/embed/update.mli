(** Incremental embedding maintenance.

    The paper (§4.3) recomputes the embedding only on long-term topology
    changes.  For the common changes — provisioning or decommissioning a
    single link — a full recomputation is unnecessary:

    - {!remove_link} deletes the link from both rotations.  The two faces
      it separated merge (or its face unglues), never increasing genus.
    - {!add_link} inserts the link as a chord of a face containing both
      endpoints when one exists — genus is {e unchanged} — and otherwise
      joins two distinct faces, which costs exactly one handle
      (genus + 1); the result reports which happened so the operator can
      decide to re-run the full pipeline. *)

type grown = Chord | Handle
(** [Chord]: endpoints shared a face, genus unchanged.  [Handle]: they did
    not, genus increased by one. *)

val remove_link : Rotation.t -> int -> int -> Rotation.t
(** New rotation over the graph without the link (same node set, same
    weights elsewhere).  Raises [Invalid_argument] if the pair is not a
    link. *)

val add_link : Rotation.t -> int -> int -> weight:float -> Rotation.t * grown
(** Raises [Invalid_argument] if the link already exists, endpoints are
    out of range or equal, or the weight is not positive. *)
