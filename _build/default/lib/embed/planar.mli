(** Certified planar embedding (Demoucron–Malgrange–Pertuiset).

    The paper notes that minimum-genus embedding is NP-hard in general but
    that "in the case of planar graphs, very efficient O(n) algorithms are
    available".  This module implements the classical DMP incremental
    algorithm — O(n²) rather than O(n), which is ample for PoP-level maps —
    yielding a rotation system whose faces realise a genus-0 embedding, or
    a verdict of non-planarity.

    Planar embeddings are exactly the embeddings on which this
    reproduction found PR's full-coverage claim to hold (EXPERIMENTS.md),
    so for a planar backbone this is the embedding to deploy.

    The graph is decomposed into biconnected blocks; DMP runs per block
    and the block rotations are merged at cut vertices (which cannot
    create crossings). *)

val embed : Pr_graph.Graph.t -> Rotation.t option
(** [Some rotation] realising genus 0 when the graph is planar (works for
    disconnected graphs too — each component contributes faces), [None]
    when it contains a K5 or K3,3 subdivision. *)

val is_planar : Pr_graph.Graph.t -> bool

val embed_exn : Pr_graph.Graph.t -> Rotation.t
(** Raises [Invalid_argument] on non-planar input. *)
