(** Stochastic search for good rotation systems.

    Minimum-genus embedding is NP-hard in general (Mohar & Thomassen); the
    paper computes embeddings offline and leaves the algorithm open.  This
    module provides a simulated-annealing local search over rotation
    systems; moves transpose two neighbours in one node's cyclic order.

    Two objectives are supported:
    - {!Min_genus}: maximise the face count (equivalently minimise genus),
      which minimises PR's path stretch;
    - {!Pr_safe}: lexicographically minimise the number of curved edges
      (links with both arcs on one face — see {!Validate.curved_edges}),
      then maximise faces.  Curved edges break PR's delivery guarantee, so
      this is the objective to use when building deployable cycle
      following tables for non-planar maps. *)

type objective = Min_genus | Pr_safe

type report = {
  initial_faces : int;
  final_faces : int;
  final_curved : int; (** curved edges in the returned rotation *)
  steps_taken : int;
  improved_at : int list; (** steps where a new best was found, oldest first *)
}

val anneal :
  ?objective:objective ->
  ?steps:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  Pr_util.Rng.t ->
  Rotation.t ->
  Rotation.t * report
(** Defaults: {!Min_genus}, 4000 steps, temperature 1.0, geometric cooling
    0.999.  Returns the best rotation seen. *)

val best_of :
  ?objective:objective ->
  ?steps:int ->
  ?restarts:int ->
  ?seeds:Rotation.t list ->
  Pr_util.Rng.t ->
  Pr_graph.Graph.t ->
  Rotation.t
(** Anneal from the adjacency rotation, the given [seeds] and [restarts]
    (default 4) random rotations; keep the best result under the
    objective. *)
