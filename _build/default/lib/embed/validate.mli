(** Structural validation of embeddings — the invariants the paper's
    correctness argument rests on. *)

type problem =
  | Arc_not_covered of int        (** an arc belongs to no face *)
  | Arc_covered_twice of int      (** an arc belongs to several faces *)
  | Boundary_sum_mismatch of int * int  (** sum of face lengths <> 2m *)
  | Odd_euler_defect of int       (** 2 - chi is odd: not an orientable embedding *)

val check : Faces.t -> problem list
(** Empty list = valid cellular embedding data. *)

val is_valid : Faces.t -> bool

val edge_cycle_property : Faces.t -> bool
(** The paper's §3 invariant: every link belongs to exactly two directed
    cycles, one per orientation (they may be the same face twice). *)

val curved_edges : Faces.t -> (int * int) list
(** Links both of whose arcs lie on the {e same} face — the paper §3's
    "curved cell" case where a cycle meets itself along the link and the
    main cycle coincides with its complement.  When such a link fails, its
    complementary cycle re-crosses the failure and cycle following can
    loop: see EXPERIMENTS.md.  Bridges are always curved (they border a
    single face) — but a bridge failure disconnects, so PR owes nothing
    there.  Empty on every 2-connected planar embedding.

    An embedding with no curved edges is a {e closed 2-cell (strong)
    embedding}; whether one exists for every 2-connected graph is the
    open Strong Embedding Conjecture — {!Optimize.Pr_safe} searches for
    one heuristically and found one for every topology in this
    repository's experiments. *)

val is_pr_safe : Faces.t -> bool
(** Valid embedding with no curved edges: the condition under which PR's
    single-failure guarantee holds on this embedding.  Always false in
    the presence of bridges; use {!removable_curved_edges} to check only
    the links PR could actually protect. *)

val removable_curved_edges : Faces.t -> (int * int) list
(** {!curved_edges} minus the bridges: the curved links whose failure
    would leave the pair connected yet loop the packet — the ones an
    embedding change can and should fix. *)

val pp_problem : Format.formatter -> problem -> unit
