(** Serialisation of rotation systems.

    The paper's deployment story computes the embedding "offline, on a
    server designated for that purpose" and uploads the resulting cycle
    following tables to all routers.  This is the interchange format for
    that step: one line per node listing its neighbours in cyclic order.

    {v
    # rotation system, one line per node
    0: 1 4 2
    1: 0 2
    v} *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val to_string : Rotation.t -> string

val of_string : Pr_graph.Graph.t -> string -> Rotation.t
(** Validates against the graph: every node present exactly once, every
    line a permutation of the node's neighbours. *)

val save : string -> Rotation.t -> unit

val load : Pr_graph.Graph.t -> string -> Rotation.t
