module Graph = Pr_graph.Graph

type grown = Chord | Handle

let rebuild_graph g ~drop ~add =
  let edges =
    Graph.fold_edges
      (fun _ (e : Graph.edge) acc ->
        match drop with
        | Some (u, v) when (e.u, e.v) = (min u v, max u v) -> acc
        | Some _ | None -> (e.u, e.v, e.w) :: acc)
      g []
    |> List.rev
  in
  let edges = match add with Some (u, v, w) -> (u, v, w) :: edges | None -> edges in
  Graph.create ~n:(Graph.n g) edges

let remove_link rot u v =
  let g = Rotation.graph rot in
  if not (Graph.has_edge g u v) then invalid_arg "Update.remove_link: not a link";
  let fresh = rebuild_graph g ~drop:(Some (u, v)) ~add:None in
  let orders =
    Array.mapi
      (fun x order ->
        if x = u then List.filter (fun y -> y <> v) order
        else if x = v then List.filter (fun y -> y <> u) order
        else order)
      (Rotation.orders rot)
  in
  Rotation.of_orders fresh orders

(* Insert [elt] right after [anchor] in a cyclic order. *)
let insert_after order ~anchor ~elt =
  List.concat_map (fun y -> if y = anchor then [ y; elt ] else [ y ]) order

let add_link rot u v ~weight =
  let g = Rotation.graph rot in
  let n = Graph.n g in
  if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Update.add_link: out of range";
  if u = v then invalid_arg "Update.add_link: self loop";
  if Graph.has_edge g u v then invalid_arg "Update.add_link: link exists";
  if not (Float.is_finite weight) || weight <= 0.0 then
    invalid_arg "Update.add_link: bad weight";
  let fresh = rebuild_graph g ~drop:None ~add:(Some (u, v, weight)) in
  let orders = Rotation.orders rot in
  (* Find a face whose boundary visits both endpoints: the chord insertion
     derived from the face-successor rule.  If the face contains
     ... (p -> u)(u -> q) ... (r -> v)(v -> s) ..., then inserting v after
     p at u and u after r at v splits the face in two: genus unchanged. *)
  let anchors =
    if Graph.degree g u = 0 || Graph.degree g v = 0 then None
    else begin
      let faces = Faces.compute rot in
      let rec scan f =
        if f >= Faces.count faces then None
        else begin
          let arcs =
            List.map (Faces.arc_endpoints faces) (Faces.face_arcs faces f)
          in
          let into x = List.find_opt (fun (_, head) -> head = x) arcs in
          match (into u, into v) with
          | Some (p, _), Some (r, _) -> Some (p, r)
          | _ -> scan (f + 1)
        end
      in
      scan 0
    end
  in
  let orders =
    Array.mapi
      (fun x order ->
        if x <> u && x <> v then order
        else begin
          match anchors with
          | Some (p, r) ->
              if x = u then insert_after order ~anchor:p ~elt:v
              else insert_after order ~anchor:r ~elt:u
          | None ->
              (* No common face (or an isolated endpoint): append anywhere;
                 costs one handle when both endpoints had edges. *)
              let elt = if x = u then v else u in
              order @ [ elt ]
        end)
      orders
  in
  let pendant = Graph.degree g u = 0 || Graph.degree g v = 0 in
  (* Attaching a so-far isolated endpoint tucks the new link into a corner
     of an existing face: no handle either. *)
  let grown = if anchors <> None || pendant then Chord else Handle in
  (Rotation.of_orders fresh orders, grown)
