module Graph = Pr_graph.Graph

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let to_string rot =
  let g = Rotation.graph rot in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# rotation system, one line per node\n";
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (string_of_int v);
    Buffer.add_char buf ':';
    Array.iter
      (fun u ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int u))
      (Rotation.order rot v);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_string g text =
  let orders = Array.make (Graph.n g) None in
  let parse_int lineno token =
    match int_of_string_opt token with
    | Some v -> v
    | None -> fail lineno "expected an integer, got %S" token
  in
  let handle lineno line =
    let line =
      match String.index_opt line '#' with
      | None -> line
      | Some i -> String.sub line 0 i
    in
    let line = String.trim line in
    if line <> "" then begin
      match String.split_on_char ':' line with
      | [ node_part; order_part ] ->
          let v = parse_int lineno (String.trim node_part) in
          if v < 0 || v >= Graph.n g then fail lineno "node %d out of range" v;
          if orders.(v) <> None then fail lineno "duplicate line for node %d" v;
          let order =
            String.split_on_char ' ' order_part
            |> List.filter (fun s -> s <> "")
            |> List.map (parse_int lineno)
          in
          orders.(v) <- Some order
      | _ -> fail lineno "expected `node: neighbours...`"
    end
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle (i + 1) l);
  let complete =
    Array.mapi
      (fun v order ->
        match order with
        | Some o -> o
        | None ->
            if Graph.degree g v = 0 then []
            else fail 0 "missing line for node %d" v)
      orders
  in
  try Rotation.of_orders g complete
  with Invalid_argument msg -> fail 0 "invalid rotation: %s" msg

let save path rot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string rot))

let load g path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_string g (In_channel.input_all ic))
