lib/embed/update.mli: Rotation
