lib/embed/recommend.ml: Faces Geometric List Optimize Planar Pr_graph Pr_topo Pr_util Rotation Surface Validate
