lib/embed/surface.mli: Faces Pr_graph
