lib/embed/dual.mli: Faces
