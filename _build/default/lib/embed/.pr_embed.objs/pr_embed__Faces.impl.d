lib/embed/faces.ml: Array Format List Pr_graph Rotation
