lib/embed/rotation.mli: Format Pr_graph Pr_util
