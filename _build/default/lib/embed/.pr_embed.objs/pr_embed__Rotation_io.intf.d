lib/embed/rotation_io.mli: Pr_graph Rotation
