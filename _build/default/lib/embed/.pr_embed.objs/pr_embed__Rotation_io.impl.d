lib/embed/rotation_io.ml: Array Buffer Fun In_channel List Pr_graph Printf Rotation String
