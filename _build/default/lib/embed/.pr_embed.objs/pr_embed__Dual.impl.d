lib/embed/dual.ml: Faces List Pr_graph Pr_util Rotation
