lib/embed/validate.mli: Faces Format
