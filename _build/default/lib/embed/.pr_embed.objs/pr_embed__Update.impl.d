lib/embed/update.ml: Array Faces Float List Pr_graph Rotation
