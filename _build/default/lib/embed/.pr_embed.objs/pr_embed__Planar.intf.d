lib/embed/planar.mli: Pr_graph Rotation
