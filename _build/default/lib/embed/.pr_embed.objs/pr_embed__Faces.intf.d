lib/embed/faces.mli: Format Rotation
