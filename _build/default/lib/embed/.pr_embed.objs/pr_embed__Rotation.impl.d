lib/embed/rotation.ml: Array Format Hashtbl List Pr_graph Pr_util Printf
