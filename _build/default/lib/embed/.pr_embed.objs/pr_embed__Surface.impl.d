lib/embed/surface.ml: Faces Pr_graph Printf Rotation
