lib/embed/optimize.mli: Pr_graph Pr_util Rotation
