lib/embed/recommend.mli: Pr_graph Pr_topo Rotation
