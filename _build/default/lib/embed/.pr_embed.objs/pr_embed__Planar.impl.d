lib/embed/planar.ml: Array Hashtbl List Option Pr_graph Queue Rotation
