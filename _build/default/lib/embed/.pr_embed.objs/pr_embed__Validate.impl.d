lib/embed/validate.ml: Array Faces Format List Pr_graph Rotation
