lib/embed/optimize.ml: Array Faces Float List Pr_graph Pr_util Rotation Validate
