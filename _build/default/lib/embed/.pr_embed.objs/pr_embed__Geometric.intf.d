lib/embed/geometric.mli: Pr_graph Pr_topo Rotation
