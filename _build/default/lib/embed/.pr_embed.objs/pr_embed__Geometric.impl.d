lib/embed/geometric.ml: Array List Pr_graph Pr_topo Printf Rotation
