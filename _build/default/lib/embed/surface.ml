module Graph = Pr_graph.Graph

let euler_characteristic faces =
  let g = Rotation.graph (Faces.rotation faces) in
  Graph.n g - Graph.m g + Faces.count faces

let genus faces =
  let g = Rotation.graph (Faces.rotation faces) in
  if not (Pr_graph.Connectivity.is_connected g) then
    invalid_arg "Surface.genus: graph must be connected";
  if Graph.m g = 0 then 0 (* a lone vertex sits on the sphere *)
  else
  let chi = euler_characteristic faces in
  if (2 - chi) mod 2 <> 0 then
    invalid_arg "Surface.genus: odd defect — embedding invariant violated";
  (2 - chi) / 2

let is_planar_embedding faces = genus faces = 0

let max_genus_bound g =
  if not (Pr_graph.Connectivity.is_connected g) then
    invalid_arg "Surface.max_genus_bound: graph must be connected";
  (Graph.m g - Graph.n g + 1) / 2

let describe faces =
  Printf.sprintf "faces=%d chi=%d genus=%d" (Faces.count faces)
    (euler_characteristic faces) (genus faces)
