(** The embedding pipeline a deployment should use (EXPERIMENTS.md):

    + if the map is planar, the certified DMP embedding — genus 0, where
      PR's full-coverage claim provably holds empirically;
    + otherwise, the PR-safe annealed embedding seeded with the geometric
      rotation — no curved edges (single-failure guarantee restored) and
      as few handles as the search finds. *)

type quality = {
  rotation : Rotation.t;
  certified_planar : bool;  (** produced by {!Planar.embed} *)
  genus : int;
  curved_edges : int;
}

val for_topology : ?seed:int -> Pr_topo.Topology.t -> quality

val for_graph :
  ?seed:int -> ?coords:(float * float) array -> Pr_graph.Graph.t -> quality
(** Without coordinates the annealer is seeded from the adjacency rotation
    only. *)

val rotation : ?seed:int -> Pr_topo.Topology.t -> Rotation.t
(** Just the rotation of {!for_topology}. *)
