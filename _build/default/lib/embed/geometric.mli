(** Rotation system induced by node coordinates.

    Sorting each node's neighbours counter-clockwise by bearing gives, for
    a graph drawn without crossings (ISP backbones very nearly are), the
    planar — hence minimum-genus — embedding.  This is the practical
    stand-in for the paper's offline embedding server. *)

val of_topology : Pr_topo.Topology.t -> Rotation.t

val of_coords : Pr_graph.Graph.t -> (float * float) array -> Rotation.t
(** Raises [Invalid_argument] on length mismatch or if two adjacent nodes
    share identical coordinates. *)
