(** Surface invariants of an embedding (Euler characteristic, genus).

    For a connected graph embedded cellularly, V - E + F = 2 - 2g.  Lower
    genus means more faces, hence shorter cellular cycles, hence lower PR
    stretch — which is why the paper wants minimum-genus embeddings. *)

val euler_characteristic : Faces.t -> int
(** V - E + F. *)

val genus : Faces.t -> int
(** (2 - chi) / 2 for a connected graph.  Raises [Invalid_argument] when
    the underlying graph is disconnected (the formula needs one component;
    embed components separately instead). *)

val is_planar_embedding : Faces.t -> bool
(** Genus 0, i.e. an embedding on the sphere. *)

val max_genus_bound : Pr_graph.Graph.t -> int
(** Upper bound [floor ((m - n + 1) / 2)] on the genus of any cellular
    embedding of a connected graph (its cycle rank halved). *)

val describe : Faces.t -> string
(** One-line summary: faces, characteristic, genus. *)
