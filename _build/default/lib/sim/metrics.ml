type t = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable looped : int;
  mutable unreachable : int;
  mutable stretch_sum : float;
  mutable worst_stretch : float;
}

let create () =
  {
    injected = 0;
    delivered = 0;
    dropped = 0;
    looped = 0;
    unreachable = 0;
    stretch_sum = 0.0;
    worst_stretch = 0.0;
  }

let record_delivery t ~stretch =
  t.injected <- t.injected + 1;
  t.delivered <- t.delivered + 1;
  t.stretch_sum <- t.stretch_sum +. stretch;
  if stretch > t.worst_stretch then t.worst_stretch <- stretch

let record_drop t =
  t.injected <- t.injected + 1;
  t.dropped <- t.dropped + 1

let record_loop t =
  t.injected <- t.injected + 1;
  t.looped <- t.looped + 1

let record_unreachable t =
  t.injected <- t.injected + 1;
  t.unreachable <- t.unreachable + 1

let delivery_ratio t =
  let deliverable = t.injected - t.unreachable in
  if deliverable = 0 then 1.0
  else float_of_int t.delivered /. float_of_int deliverable

let mean_stretch t =
  if t.delivered = 0 then 0.0 else t.stretch_sum /. float_of_int t.delivered

let pp ppf t =
  Format.fprintf ppf
    "injected=%d delivered=%d dropped=%d looped=%d unreachable=%d delivery=%.4f mean_stretch=%.3f"
    t.injected t.delivered t.dropped t.looped t.unreachable (delivery_ratio t)
    (mean_stretch t)
