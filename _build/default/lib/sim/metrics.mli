(** Outcome accounting for simulation runs. *)

type t = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;       (** dropped at a failed link / no route *)
  mutable looped : int;        (** TTL exhausted although a path existed *)
  mutable unreachable : int;   (** destination disconnected at injection time:
                                   no scheme could have delivered *)
  mutable stretch_sum : float; (** over delivered packets *)
  mutable worst_stretch : float;
}

val create : unit -> t

val record_delivery : t -> stretch:float -> unit

val record_drop : t -> unit

val record_loop : t -> unit

val record_unreachable : t -> unit

val delivery_ratio : t -> float
(** Delivered over deliverable (injected minus unreachable). *)

val mean_stretch : t -> float
(** Over delivered packets; 0 when none. *)

val pp : Format.formatter -> t -> unit
