(** Hold-down damping for flapping links (paper §7).

    PR must ensure a packet that saw a link down does not meet the same
    link up again while still cycle following.  The standard mitigation the
    paper proposes is to delay the up-transition until the link has been
    stable for a hold-down period; rapid down/up oscillations are then
    suppressed entirely. *)

val apply_hold_down :
  Workload.link_event list -> hold_down:float -> Workload.link_event list
(** Input events must be time-sorted (as produced by {!Workload}); each
    link's events must alternate starting with a down.  Every up-transition
    is delayed by [hold_down]; an up is cancelled when its link fails again
    before the hold-down expires.  The result is time-sorted and contains
    no redundant transitions. *)

val transitions_per_link :
  Workload.link_event list -> ((int * int) * int) list
(** Count of state transitions per link — a measure of the churn the
    control plane sees. *)
