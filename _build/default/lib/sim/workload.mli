(** Traffic and failure workload generation for the simulator. *)

type injection = { time : float; src : int; dst : int }

val poisson_flows :
  Pr_util.Rng.t ->
  Pr_graph.Graph.t ->
  rate:float ->
  horizon:float ->
  injection list
(** Packets between uniformly random distinct pairs, arriving as a Poisson
    process of [rate] packets per time unit until [horizon].  Sorted by
    time. *)

val exponential : Pr_util.Rng.t -> mean:float -> float
(** One exponential draw (used for failure and repair holding times). *)

type link_event = { time : float; u : int; v : int; up : bool }

val failure_process :
  Pr_util.Rng.t ->
  Pr_graph.Graph.t ->
  mtbf:float ->
  mttr:float ->
  horizon:float ->
  link_event list
(** Independent per-link alternating renewal process: each link fails after
    an exponential up-time of mean [mtbf] and recovers after an exponential
    down-time of mean [mttr].  Sorted by time. *)

val flapping_link :
  Pr_util.Rng.t ->
  u:int ->
  v:int ->
  period:float ->
  duty_down:float ->
  flaps:int ->
  link_event list
(** A deterministic-period flapping link (paper §7): [flaps] cycles of
    [period], down for [duty_down * period] at the start of each cycle,
    with ±10% jitter. *)
