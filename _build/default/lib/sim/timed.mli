(** Packet-level simulation with per-hop latency.

    Unlike {!Engine} (which traces a packet's whole path against a frozen
    failure snapshot), packets here move one hop per event and take
    [latency] time units per link, so link state can change {e while a
    packet is in flight}.  This is exactly the regime of the paper's §7
    flapping discussion: a PR packet that saw a link down can meet the
    same link up again while still cycle following, and the DD invariant
    that guarantees termination no longer holds.  The mitigation the paper
    proposes — hold down the up-transition until the link has been stable —
    is {!Flap.apply_hold_down}; this module lets you measure both sides.

    Each router runs {!Pr_core.Forward.step} on the link state at the
    moment the packet arrives. *)

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  termination : Pr_core.Forward.termination;
  latency : float;      (** per-hop transmission time *)
  ttl : int;            (** hop budget per packet *)
}

val default_config : Pr_topo.Topology.t -> Pr_embed.Rotation.t -> config
(** DD termination, latency 0.1, TTL {!Pr_core.Forward.default_ttl}. *)

type outcome = {
  metrics : Metrics.t;
  finished_at : float;
  max_hops : int;         (** longest hop count of any delivered packet *)
}

val run :
  config ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  outcome
(** Packets injected while their destination is unreachable count as
    [unreachable] only if they also fail to arrive; a repair mid-flight
    can still save them. *)
