module Graph = Pr_graph.Graph
module Rng = Pr_util.Rng

type injection = { time : float; src : int; dst : int }

let exponential rng ~mean =
  if mean <= 0.0 then invalid_arg "Workload.exponential: mean must be positive";
  let u = Float.max 1e-12 (Rng.float rng 1.0) in
  -.mean *. log u

let poisson_flows rng g ~rate ~horizon =
  if rate <= 0.0 || horizon <= 0.0 then invalid_arg "Workload.poisson_flows";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Workload.poisson_flows: need two nodes";
  let rec loop t acc =
    let t = t +. exponential rng ~mean:(1.0 /. rate) in
    if t > horizon then List.rev acc
    else begin
      let src = Rng.int rng n in
      let dst =
        let d = Rng.int rng (n - 1) in
        if d >= src then d + 1 else d
      in
      loop t ({ time = t; src; dst } :: acc)
    end
  in
  loop 0.0 []

type link_event = { time : float; u : int; v : int; up : bool }

let failure_process rng g ~mtbf ~mttr ~horizon =
  if horizon <= 0.0 then invalid_arg "Workload.failure_process";
  let events = ref [] in
  let per_link (e : Graph.edge) =
    let rec cycle t =
      let down_at = t +. exponential rng ~mean:mtbf in
      if down_at <= horizon then begin
        events := { time = down_at; u = e.u; v = e.v; up = false } :: !events;
        let up_at = down_at +. exponential rng ~mean:mttr in
        if up_at <= horizon then begin
          events := { time = up_at; u = e.u; v = e.v; up = true } :: !events;
          cycle up_at
        end
      end
    in
    cycle 0.0
  in
  Array.iter per_link (Graph.edges g);
  List.sort (fun a b -> compare a.time b.time) !events

let flapping_link rng ~u ~v ~period ~duty_down ~flaps =
  if period <= 0.0 || duty_down <= 0.0 || duty_down >= 1.0 then
    invalid_arg "Workload.flapping_link";
  let jitter () = 1.0 +. (0.2 *. (Rng.float rng 1.0 -. 0.5)) in
  let events = ref [] in
  for i = 0 to flaps - 1 do
    let start = float_of_int i *. period in
    let down_at = start *. 1.0 in
    let up_at = start +. (duty_down *. period *. jitter ()) in
    events := { time = up_at; u; v; up = true } :: { time = down_at; u; v; up = false } :: !events
  done;
  List.sort (fun a b -> compare a.time b.time) !events
