lib/sim/engine.ml: Array Event Float List Metrics Netstate Pr_baselines Pr_core Pr_embed Pr_graph Pr_topo Pr_util Workload
