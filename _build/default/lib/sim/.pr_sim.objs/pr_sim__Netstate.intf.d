lib/sim/netstate.mli: Pr_core Pr_graph
