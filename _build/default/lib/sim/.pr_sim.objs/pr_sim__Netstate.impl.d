lib/sim/netstate.ml: Array List Pr_core Pr_graph
