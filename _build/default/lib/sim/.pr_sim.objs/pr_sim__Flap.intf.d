lib/sim/flap.mli: Workload
