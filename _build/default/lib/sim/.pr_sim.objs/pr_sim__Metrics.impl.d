lib/sim/metrics.ml: Format
