lib/sim/workload.ml: Array Float List Pr_graph Pr_util
