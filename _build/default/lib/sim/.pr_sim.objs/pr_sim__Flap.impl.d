lib/sim/flap.ml: Hashtbl List Option Workload
