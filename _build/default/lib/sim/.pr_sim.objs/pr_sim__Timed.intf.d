lib/sim/timed.mli: Metrics Pr_core Pr_embed Pr_topo Workload
