lib/sim/engine.mli: Metrics Pr_core Pr_embed Pr_topo Workload
