lib/sim/workload.mli: Pr_graph Pr_util
