lib/sim/timed.ml: Event List Metrics Netstate Pr_core Pr_embed Pr_graph Pr_topo Workload
