lib/sim/event.mli:
