lib/sim/event.ml: Float Option Pr_util
