type 'a t = 'a Pr_util.Heap.t

let create () = Pr_util.Heap.create ()

let schedule q ~time payload =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg "Event.schedule: bad time";
  Pr_util.Heap.push q time payload

let next q = Pr_util.Heap.pop q

let peek_time q = Option.map fst (Pr_util.Heap.peek q)

let is_empty q = Pr_util.Heap.is_empty q

let size q = Pr_util.Heap.size q
