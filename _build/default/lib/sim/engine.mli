(** Discrete-event simulation of a routed network under failures.

    The engine replays a time-ordered workload of link events and packet
    injections against one forwarding scheme and accounts outcomes.  The
    same workload can be replayed against each scheme for an
    apples-to-apples comparison — this is how the repository quantifies the
    paper's motivation ("more than a quarter of a million packets lost per
    second of downtime" under reconvergence, none under PR).

    Schemes:
    - {!Pr_scheme}: PR forwarding off the failure-free tables plus cycle
      following; reacts instantly and locally to adjacent link state.
    - {!Lfa_scheme}: loop-free alternates off the failure-free tables.
    - {!Reconvergence_scheme}: global SPF recomputation completes
      [convergence_delay] time units after each topology change; in the
      window, packets are forwarded on stale trees and die at failed links
      (the drops the paper wants to eliminate).
    - {!Reconvergence_jittered}: each router converges independently at a
      uniform time in [min_delay, max_delay] after the change, so packets
      can cross routers with inconsistent views and micro-loop — the
      harsher (and more realistic) reconvergence model. *)

type scheme =
  | Pr_scheme of { termination : Pr_core.Forward.termination }
  | Lfa_scheme
  | Reconvergence_scheme of { convergence_delay : float }
  | Reconvergence_jittered of {
      min_delay : float;
      max_delay : float;
      seed : int;
    }

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t; (** used by {!Pr_scheme} *)
  scheme : scheme;
}

type outcome = {
  metrics : Metrics.t;
  spf_runs : int;        (** full-table SPF recomputations performed *)
  link_transitions : int;
  finished_at : float;   (** time of the last processed event *)
}

val run :
  config ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  outcome
(** Replays both streams merged in time order (the streams themselves must
    each be time-sorted). *)

val scheme_name : scheme -> string
