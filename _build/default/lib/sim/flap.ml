type state = Link_up | Link_down

let canon u v = if u < v then (u, v) else (v, u)

let apply_hold_down events ~hold_down =
  if hold_down < 0.0 then invalid_arg "Flap.apply_hold_down: negative hold-down";
  (* Group per link, preserving time order. *)
  let by_link = Hashtbl.create 16 in
  List.iter
    (fun (e : Workload.link_event) ->
      let key = canon e.u e.v in
      Hashtbl.replace by_link key
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_link key))))
    events;
  let damped_for_link events_rev =
    let rec walk state pending out = function
      | [] ->
          let out =
            match (state, pending) with
            | Link_down, Some (e, eff) ->
                { e with Workload.time = eff; up = true } :: out
            | _ -> out
          in
          List.rev out
      | (e : Workload.link_event) :: rest ->
          if e.up then begin
            match state with
            | Link_up -> walk state pending out rest (* redundant up *)
            | Link_down ->
                (* Tentatively schedule the damped up-transition. *)
                walk state (Some (e, e.time +. hold_down)) out rest
          end
          else begin
            match (state, pending) with
            | Link_down, Some (_, eff) when e.time < eff ->
                (* Failed again inside the hold-down window: cancel. *)
                walk Link_down None out rest
            | Link_down, Some (pe, eff) ->
                (* The pending up matured before this failure. *)
                let out = { pe with Workload.time = eff; up = true } :: out in
                walk Link_down None ({ e with Workload.time = e.time } :: out) rest
            | Link_down, None -> walk Link_down None out rest (* redundant down *)
            | Link_up, _ -> walk Link_down None (e :: out) rest
          end
    in
    walk Link_up None [] (List.rev events_rev)
  in
  Hashtbl.fold (fun _ evs acc -> damped_for_link evs @ acc) by_link []
  |> List.sort (fun (a : Workload.link_event) b -> compare a.time b.time)

let transitions_per_link events =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (e : Workload.link_event) ->
      let key = canon e.u e.v in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    events;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts [] |> List.sort compare
