(** Time-ordered event queue for the discrete-event simulator. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on negative or non-finite times. *)

val next : 'a t -> (float * 'a) option
(** Pop the earliest event; ties pop in scheduling order. *)

val peek_time : 'a t -> float option

val is_empty : 'a t -> bool

val size : 'a t -> int
