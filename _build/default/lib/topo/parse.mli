(** Plain-text topology interchange format.

    Line-oriented; [#] starts a comment.  Grammar:

    {v
    topology NAME
    node LABEL [X Y]
    edge LABEL1 LABEL2 [WEIGHT]
    v}

    Nodes must be declared before the edges that use them.  Weight defaults
    to 1.0.  [to_string]/[of_string] round-trip. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : string -> Topology.t

val to_string : Topology.t -> string

val load : string -> Topology.t
(** Read a topology from a file path. *)

val save : string -> Topology.t -> unit
