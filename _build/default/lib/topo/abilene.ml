let labels =
  [|
    "STTL" (* Seattle *);
    "SNVA" (* Sunnyvale *);
    "LOSA" (* Los Angeles *);
    "DNVR" (* Denver *);
    "KSCY" (* Kansas City *);
    "HSTN" (* Houston *);
    "IPLS" (* Indianapolis *);
    "CHIN" (* Chicago *);
    "ATLA" (* Atlanta *);
    "WASH" (* Washington DC *);
    "NYCM" (* New York *);
  |]

let coords =
  [|
    (-122.33, 47.61);
    (-122.04, 37.37);
    (-118.24, 34.05);
    (-104.99, 39.74);
    (-94.58, 39.10);
    (-95.37, 29.76);
    (-86.16, 39.77);
    (-87.63, 41.88);
    (-84.39, 33.75);
    (-77.04, 38.91);
    (-74.01, 40.71);
  |]

let sttl = 0
let snva = 1
let losa = 2
let dnvr = 3
let kscy = 4
let hstn = 5
let ipls = 6
let chin = 7
let atla = 8
let wash = 9
let nycm = 10

let links =
  [
    (sttl, snva);
    (sttl, dnvr);
    (snva, dnvr);
    (snva, losa);
    (losa, hstn);
    (dnvr, kscy);
    (kscy, hstn);
    (kscy, ipls);
    (hstn, atla);
    (ipls, chin);
    (ipls, atla);
    (chin, nycm);
    (nycm, wash);
    (atla, wash);
  ]

let topology () =
  Topology.make ~name:"abilene" ~labels ~coords
    (List.map (fun (u, v) -> (u, v, 1.0)) links)

let weighted () = Topology.with_geographic_weights (topology ())
