let builders : (string * (unit -> Topology.t)) list =
  [
    ("abilene", Abilene.topology);
    ("abilene-km", Abilene.weighted);
    ("teleglobe", Teleglobe.topology);
    ("teleglobe-km", Teleglobe.weighted);
    ("geant", Geant.topology);
    ("geant-km", Geant.weighted);
    ("fig1", Example.topology);
    ("grid5x5", fun () -> Generate.grid ~rows:5 ~cols:5);
    ("torus4x4", fun () -> Generate.torus ~rows:4 ~cols:4);
    ("ring8", fun () -> Generate.ring 8);
    ("petersen", Generate.petersen);
    ("wheel8", fun () -> Generate.wheel 8);
    ("q3", fun () -> Generate.hypercube 3);
    ("q4", fun () -> Generate.hypercube 4);
    ("k5", fun () -> Generate.complete 5);
    ( "hier6x5",
      fun () ->
        Generate.hierarchical (Pr_util.Rng.create ~seed:11) ~regions:6
          ~per_region:5 ~extra:4 );
  ]

let names () = List.map fst builders |> List.sort compare

let find name =
  match List.assoc_opt name builders with
  | Some build -> build ()
  | None -> raise Not_found

let paper_evaluation () =
  [ Abilene.topology (); Teleglobe.topology (); Geant.topology () ]
