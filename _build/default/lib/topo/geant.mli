(** The GÉANT2 pan-European research backbone, 2009-era snapshot: 34 PoPs
    and 53 links, used in the paper's Figure 2(c)/(f).

    The exact snapshot the paper used (geant.net, 2009) is no longer
    available; this is a documented reconstruction from published GN2 maps
    with the same scale and redundancy structure (see DESIGN.md §3).  Every
    PoP is at least dual-homed so the map has no single point of failure. *)

val topology : unit -> Topology.t
(** Unit link weights, capital-city longitude/latitude coordinates. *)

val weighted : unit -> Topology.t
(** Great-circle link weights in kilometres. *)
