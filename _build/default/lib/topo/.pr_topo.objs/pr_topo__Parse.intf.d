lib/topo/parse.mli: Topology
