lib/topo/geant.ml: List Topology
