lib/topo/generate.ml: Array Float Hashtbl List Pr_graph Pr_util Printf Topology
