lib/topo/geant.mli: Topology
