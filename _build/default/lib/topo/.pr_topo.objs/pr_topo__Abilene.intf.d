lib/topo/abilene.mli: Topology
