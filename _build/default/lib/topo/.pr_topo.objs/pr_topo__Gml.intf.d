lib/topo/gml.mli: Topology
