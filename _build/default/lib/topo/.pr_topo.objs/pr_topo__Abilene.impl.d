lib/topo/abilene.ml: List Topology
