lib/topo/topology.ml: Array Float Format Hashtbl List Pr_graph Printf
