lib/topo/topology.mli: Format Pr_graph
