lib/topo/example.mli: Topology
