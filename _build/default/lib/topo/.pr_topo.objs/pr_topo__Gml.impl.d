lib/topo/gml.ml: Array Buffer Filename Fun Hashtbl In_channel List Option Pr_graph Printf String Topology
