lib/topo/teleglobe.mli: Topology
