lib/topo/generate.mli: Pr_util Topology
