lib/topo/teleglobe.ml: List Topology
