lib/topo/example.ml: Topology
