lib/topo/parse.ml: Array Buffer Fun Hashtbl In_channel List Option Pr_graph Printf String Topology
