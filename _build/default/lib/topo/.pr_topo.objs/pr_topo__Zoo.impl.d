lib/topo/zoo.ml: Abilene Example Geant Generate List Pr_util Teleglobe Topology
