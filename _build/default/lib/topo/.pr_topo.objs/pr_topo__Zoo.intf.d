lib/topo/zoo.mli: Topology
