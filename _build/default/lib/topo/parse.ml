exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let float_of_token lineno token =
  match float_of_string_opt token with
  | Some f -> f
  | None -> fail lineno "expected a number, got %S" token

let of_string text =
  let name = ref None in
  let node_labels = ref [] in
  let node_coords = ref [] in
  let node_count = ref 0 in
  let ids = Hashtbl.create 64 in
  let edges = ref [] in
  let node_id lineno label =
    match Hashtbl.find_opt ids label with
    | Some id -> id
    | None -> fail lineno "unknown node %S" label
  in
  let handle lineno line =
    match tokens (strip_comment line) with
    | [] -> ()
    | [ "topology"; n ] ->
        if !name <> None then fail lineno "duplicate topology line";
        name := Some n
    | "node" :: label :: rest ->
        if Hashtbl.mem ids label then fail lineno "duplicate node %S" label;
        let coord =
          match rest with
          | [] -> None
          | [ x; y ] -> Some (float_of_token lineno x, float_of_token lineno y)
          | _ -> fail lineno "node takes a label and optionally x y"
        in
        Hashtbl.replace ids label !node_count;
        node_labels := label :: !node_labels;
        node_coords := coord :: !node_coords;
        incr node_count
    | "edge" :: a :: b :: rest ->
        let w =
          match rest with
          | [] -> 1.0
          | [ w ] -> float_of_token lineno w
          | _ -> fail lineno "edge takes two labels and optionally a weight"
        in
        edges := (node_id lineno a, node_id lineno b, w) :: !edges
    | keyword :: _ -> fail lineno "unknown directive %S" keyword
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle (i + 1) l);
  let labels = Array.of_list (List.rev !node_labels) in
  let raw_coords = Array.of_list (List.rev !node_coords) in
  let coords =
    if Array.for_all Option.is_some raw_coords && Array.length raw_coords > 0 then
      Some (Array.map Option.get raw_coords)
    else None
  in
  let name = Option.value !name ~default:"unnamed" in
  try Topology.make ~name ~labels ?coords (List.rev !edges)
  with Invalid_argument msg -> fail 0 "invalid topology: %s" msg

let to_string (t : Topology.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "topology %s\n" t.name);
  Array.iteri
    (fun i label ->
      let x, y = t.coords.(i) in
      Buffer.add_string buf (Printf.sprintf "node %s %g %g\n" label x y))
    t.labels;
  Pr_graph.Graph.iter_edges
    (fun _ (e : Pr_graph.Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %g\n" t.labels.(e.u) t.labels.(e.v) e.w))
    t.graph;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
