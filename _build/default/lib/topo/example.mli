(** The six-node network of Figure 1 in the paper.

    Link weights are chosen so that the shortest-path tree towards F matches
    the one drawn in the figure (A routes to F via B, D via E), and the
    fixed rotation system reproduces the paper's cycles c1–c4 and the cycle
    following table of Table 1 verbatim.  The unit tests in
    [test/test_paper_example.ml] assert all of this. *)

val a : int
val b : int
val c : int
val d : int
val e : int
val f : int

val topology : unit -> Topology.t

val rotation_orders : int list array
(** [rotation_orders.(v)] lists the neighbours of [v] in the cyclic order of
    the paper's embedding: the successor of the neighbour at position [i] is
    the neighbour at position [i+1 mod degree]. *)

val expected_faces : int list list
(** The four cells of the embedding (c1, c2, c3, c4) as node cycles; each
    cycle [x0; x1; ...] stands for the directed arcs x0->x1->...->x0. *)
