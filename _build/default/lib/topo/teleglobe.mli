(** Teleglobe (VSNL International, AS6453), Rocketfuel-era PoP-level map:
    23 PoPs and 38 links, used in the paper's Figure 2(b)/(e).

    The original Rocketfuel traces are not redistributable and unavailable
    offline; this is a documented reconstruction of the PoP-level backbone
    from published Rocketfuel statistics (see DESIGN.md §3): a North
    American / European double ring with transatlantic, transpacific and
    Indian-Ocean legs, every PoP at least dual-homed. *)

val topology : unit -> Topology.t
(** Unit link weights, PoP longitude/latitude coordinates. *)

val weighted : unit -> Topology.t
(** Great-circle link weights in kilometres. *)
