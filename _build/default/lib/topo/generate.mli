(** Synthetic topology generators.

    All random generators are deterministic given the supplied
    {!Pr_util.Rng.t}.  Weights are 1.0 unless stated otherwise. *)

val ring : int -> Topology.t
(** Cycle on [n >= 3] nodes. *)

val complete : int -> Topology.t

val grid : rows:int -> cols:int -> Topology.t
(** Planar grid; nodes are row-major. *)

val torus : rows:int -> cols:int -> Topology.t
(** Grid with wrap-around links; genus-1 when [rows, cols >= 3]. *)

val wheel : int -> Topology.t
(** Hub plus an [n-1]-cycle; planar and 2-connected for [n >= 4]. *)

val hypercube : int -> Topology.t
(** The [d]-dimensional hypercube ([2^d] nodes); genus grows with [d], a
    stress case for the embedding optimiser.  [1 <= d <= 10]. *)

val petersen : unit -> Topology.t
(** The Petersen graph (non-planar, genus 1): a stress case for
    embeddings. *)

val erdos_renyi : Pr_util.Rng.t -> n:int -> p:float -> Topology.t
(** G(n, p); may be disconnected. *)

val gnm : Pr_util.Rng.t -> n:int -> m:int -> Topology.t
(** Uniform graph with exactly [m] distinct edges.  Raises
    [Invalid_argument] if [m] exceeds [n (n-1) / 2]. *)

val waxman :
  Pr_util.Rng.t -> n:int -> alpha:float -> beta:float -> Topology.t
(** Waxman's geographic model on the unit square: link probability
    [alpha * exp (-d / (beta * sqrt 2.))].  Euclidean edge weights. *)

val barabasi_albert : Pr_util.Rng.t -> n:int -> k:int -> Topology.t
(** Preferential attachment: each new node links to [k] distinct existing
    nodes.  Connected by construction when [k >= 1]. *)

val hierarchical :
  Pr_util.Rng.t -> regions:int -> per_region:int -> extra:int -> Topology.t
(** A two-level ISP-like topology: [regions] rings of [per_region] nodes
    (metro networks), their gateways joined by a core ring, plus [extra]
    random inter-region shortcut links.  2-edge-connected by construction;
    [regions >= 3], [per_region >= 3]. *)

val apollonian : Pr_util.Rng.t -> n:int -> Topology.t
(** Random Apollonian network: start from a triangle and repeatedly place
    a new node inside a random triangular face, joined to its corners.
    Maximal planar (adding any edge breaks planarity) and 3-connected —
    the reference workload for the planarity tests.  [n >= 3]. *)

val two_connected : Pr_util.Rng.t -> n:int -> extra:int -> Topology.t
(** A random Hamiltonian cycle plus [extra] random chords: 2-connected by
    construction.  The workhorse of the property-based tests. *)
