exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* ---- tokenizer ---- *)

type token = Lbracket | Rbracket | Word of string | Str of string | Num of float

let tokenize text =
  let len = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let peek () = if !i < len then Some text.[!i] else None in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '+'
  in
  while !i < len do
    match text.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '#' ->
        (* comment to end of line *)
        while !i < len && text.[!i] <> '\n' do
          incr i
        done
    | '[' ->
        tokens := Lbracket :: !tokens;
        incr i
    | ']' ->
        tokens := Rbracket :: !tokens;
        incr i
    | '"' ->
        incr i;
        let start = !i in
        while !i < len && text.[!i] <> '"' do
          incr i
        done;
        if !i >= len then fail "unterminated string";
        tokens := Str (String.sub text start (!i - start)) :: !tokens;
        incr i
    | c when is_word c ->
        let start = !i in
        while (match peek () with Some c -> is_word c | None -> false) do
          incr i
        done;
        let word = String.sub text start (!i - start) in
        (match float_of_string_opt word with
        | Some f -> tokens := Num f :: !tokens
        | None -> tokens := Word word :: !tokens)
    | c -> fail "unexpected character %C" c
  done;
  List.rev !tokens

(* ---- recursive-descent parse into key/value trees ---- *)

type value = Scalar_num of float | Scalar_str of string | Record of (string * value) list

let rec parse_record tokens =
  (* Parses key-value pairs until Rbracket or end of input. *)
  match tokens with
  | [] -> ([], [])
  | Rbracket :: rest -> ([], rest)
  | Word key :: Lbracket :: rest ->
      let fields, rest = parse_record rest in
      let siblings, rest = parse_record rest in
      ((String.lowercase_ascii key, Record fields) :: siblings, rest)
  | Word key :: Num v :: rest ->
      let siblings, rest = parse_record rest in
      ((String.lowercase_ascii key, Scalar_num v) :: siblings, rest)
  | Word key :: Str s :: rest ->
      let siblings, rest = parse_record rest in
      ((String.lowercase_ascii key, Scalar_str s) :: siblings, rest)
  | Word key :: Word w :: rest ->
      (* bare-word value, e.g. `Backbone yes` *)
      let siblings, rest = parse_record rest in
      ((String.lowercase_ascii key, Scalar_str w) :: siblings, rest)
  | _ -> fail "malformed GML structure"

let find_all key fields = List.filter_map (fun (k, v) -> if k = key then Some v else None) fields

let find_num key fields =
  List.find_map (fun (k, v) -> match v with Scalar_num f when k = key -> Some f | _ -> None) fields

let find_str key fields =
  List.find_map
    (fun (k, v) ->
      match v with
      | Scalar_str s when k = key -> Some s
      | Scalar_num f when k = key -> Some (Printf.sprintf "%g" f)
      | _ -> None)
    fields

type import = { topology : Topology.t; dropped_parallel : int; dropped_self : int }

let of_string ?name text =
  let fields, _rest = parse_record (tokenize text) in
  let graph_fields =
    match find_all "graph" fields with
    | [ Record g ] -> g
    | [] -> fail "no graph [ ... ] block"
    | _ -> fail "multiple graph blocks"
  in
  let node_records =
    find_all "node" graph_fields
    |> List.map (function Record r -> r | _ -> fail "node is not a record")
  in
  let edge_records =
    find_all "edge" graph_fields
    |> List.map (function Record r -> r | _ -> fail "edge is not a record")
  in
  if node_records = [] then fail "no nodes";
  let ids = Hashtbl.create 64 in
  let labels = ref [] and coords = ref [] in
  List.iteri
    (fun dense node ->
      let id =
        match find_num "id" node with
        | Some f -> int_of_float f
        | None -> fail "node without id"
      in
      if Hashtbl.mem ids id then fail "duplicate node id %d" id;
      Hashtbl.replace ids id dense;
      let label =
        match find_str "label" node with
        | Some l -> Printf.sprintf "%s" l
        | None -> string_of_int id
      in
      labels := label :: !labels;
      coords := (find_num "longitude" node, find_num "latitude" node) :: !coords)
    node_records;
  let labels = Array.of_list (List.rev !labels) in
  (* Zoo files reuse labels across PoPs in the same city; disambiguate. *)
  let seen = Hashtbl.create 64 in
  let labels =
    Array.map
      (fun l ->
        match Hashtbl.find_opt seen l with
        | None ->
            Hashtbl.replace seen l 1;
            l
        | Some k ->
            Hashtbl.replace seen l (k + 1);
            Printf.sprintf "%s#%d" l (k + 1))
      labels
  in
  let coords_raw = Array.of_list (List.rev !coords) in
  let coords =
    if Array.for_all (fun (x, y) -> x <> None && y <> None) coords_raw then
      Some (Array.map (fun (x, y) -> (Option.get x, Option.get y)) coords_raw)
    else None
  in
  let dropped_parallel = ref 0 and dropped_self = ref 0 in
  let edge_set = Hashtbl.create 128 in
  let edges =
    List.filter_map
      (fun edge ->
        let endpoint key =
          match find_num key edge with
          | Some f -> (
              let id = int_of_float f in
              match Hashtbl.find_opt ids id with
              | Some dense -> dense
              | None -> fail "edge references unknown node %d" id)
          | None -> fail "edge without %s" key
        in
        let u = endpoint "source" and v = endpoint "target" in
        let w =
          match find_num "value" edge with
          | Some w when w > 0.0 -> w
          | Some _ | None -> (
              match find_num "weight" edge with Some w when w > 0.0 -> w | _ -> 1.0)
        in
        if u = v then begin
          incr dropped_self;
          None
        end
        else begin
          let canon = if u < v then (u, v) else (v, u) in
          if Hashtbl.mem edge_set canon then begin
            incr dropped_parallel;
            None
          end
          else begin
            Hashtbl.replace edge_set canon ();
            Some (u, v, w)
          end
        end)
      edge_records
  in
  let name =
    match name with
    | Some n -> n
    | None -> Option.value (find_str "label" graph_fields) ~default:"unnamed"
  in
  let topology =
    try Topology.make ~name ~labels ?coords edges
    with Invalid_argument msg -> fail "invalid topology: %s" msg
  in
  { topology; dropped_parallel = !dropped_parallel; dropped_self = !dropped_self }

let to_string (t : Topology.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph [\n  label \"%s\"\n" t.name);
  Array.iteri
    (fun i label ->
      let x, y = t.coords.(i) in
      Buffer.add_string buf
        (Printf.sprintf "  node [ id %d label \"%s\" Longitude %g Latitude %g ]\n"
           i label x y))
    t.labels;
  Pr_graph.Graph.iter_edges
    (fun _ (e : Pr_graph.Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  edge [ source %d target %d value %g ]\n" e.u e.v e.w))
    t.graph;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_string
        ~name:Filename.(remove_extension (basename path))
        (In_channel.input_all ic))

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
