(** Registry of built-in topologies, addressable by name (used by the CLI
    and the benchmark harness). *)

val names : unit -> string list
(** All registered names, sorted. *)

val find : string -> Topology.t
(** Raises [Not_found] for unknown names. *)

val paper_evaluation : unit -> Topology.t list
(** The three topologies of the paper's Figure 2, in paper order:
    Abilene, Teleglobe, Géant. *)
