(** A named network topology: a graph plus node labels and coordinates.

    Coordinates are (longitude, latitude) for the ISP maps and abstract
    (x, y) positions for synthetic topologies; they seed the geometric
    embedding heuristic. *)

type t = {
  name : string;
  graph : Pr_graph.Graph.t;
  labels : string array;
  coords : (float * float) array;
}

val make :
  name:string ->
  labels:string array ->
  ?coords:(float * float) array ->
  (int * int * float) list ->
  t
(** Node count is the length of [labels]; coordinates default to a unit
    circle layout.  Raises [Invalid_argument] on length mismatches or on any
    condition {!Pr_graph.Graph.create} rejects. *)

val of_graph : name:string -> Pr_graph.Graph.t -> t
(** Numeric labels, unit-circle coordinates. *)

val n : t -> int

val m : t -> int

val node_id : t -> string -> int
(** Label lookup.  Raises [Not_found]. *)

val label : t -> int -> string

val coord : t -> int -> float * float

val with_unit_weights : t -> t
(** Same topology with all link weights replaced by 1.0 (hop metric). *)

val with_geographic_weights : t -> t
(** Link weights replaced by great-circle distance in kilometres between the
    endpoints' (longitude, latitude) coordinates, with a floor of 1.0 km. *)

val pp : Format.formatter -> t -> unit

val summary : t -> string
(** One line: name, node count, link count, diameter in hops. *)
