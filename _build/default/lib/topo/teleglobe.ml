let labels =
  [|
    "NYC" (* New York *);
    "NWK" (* Newark *);
    "WDC" (* Washington DC *);
    "MIA" (* Miami *);
    "ATL" (* Atlanta *);
    "CHI" (* Chicago *);
    "MTL" (* Montreal *);
    "TOR" (* Toronto *);
    "SEA" (* Seattle *);
    "SJC" (* San Jose *);
    "LAX" (* Los Angeles *);
    "LON" (* London *);
    "PAR" (* Paris *);
    "FRA" (* Frankfurt *);
    "AMS" (* Amsterdam *);
    "BRU" (* Brussels *);
    "MAD" (* Madrid *);
    "LIS" (* Lisbon *);
    "MRS" (* Marseille *);
    "SIN" (* Singapore *);
    "HKG" (* Hong Kong *);
    "TYO" (* Tokyo *);
    "BOM" (* Mumbai *);
  |]

let coords =
  [|
    (-74.01, 40.71);
    (-74.17, 40.73);
    (-77.04, 38.91);
    (-80.19, 25.76);
    (-84.39, 33.75);
    (-87.63, 41.88);
    (-73.57, 45.50);
    (-79.38, 43.65);
    (-122.33, 47.61);
    (-121.89, 37.34);
    (-118.24, 34.05);
    (-0.13, 51.51);
    (2.35, 48.86);
    (8.68, 50.11);
    (4.90, 52.37);
    (4.35, 50.85);
    (-3.70, 40.42);
    (-9.14, 38.72);
    (5.37, 43.30);
    (103.85, 1.29);
    (114.17, 22.32);
    (139.69, 35.69);
    (72.88, 19.08);
  |]

let nyc = 0
let nwk = 1
let wdc = 2
let mia = 3
let atl = 4
let chi = 5
let mtl = 6
let tor = 7
let sea = 8
let sjc = 9
let lax = 10
let lon = 11
let par = 12
let fra = 13
let ams = 14
let bru = 15
let mad = 16
let lis = 17
let mrs = 18
let sin = 19
let hkg = 20
let tyo = 21
let bom = 22

let links =
  [
    (* North American core *)
    (nyc, nwk);
    (nyc, wdc);
    (nyc, mtl);
    (nyc, tor);
    (nwk, wdc);
    (nwk, chi);
    (wdc, atl);
    (atl, mia);
    (atl, chi);
    (mia, wdc);
    (chi, tor);
    (chi, sea);
    (mtl, tor);
    (sea, sjc);
    (sjc, lax);
    (lax, chi);
    (* Transatlantic *)
    (nyc, lon);
    (nwk, par);
    (mtl, lon);
    (lis, mia);
    (* European core *)
    (lon, par);
    (lon, ams);
    (par, fra);
    (par, mrs);
    (fra, ams);
    (ams, bru);
    (bru, lon);
    (mad, par);
    (mad, lis);
    (lis, lon);
    (mrs, mad);
    (* Asia via Indian Ocean and Pacific *)
    (mrs, bom);
    (bom, sin);
    (sin, hkg);
    (hkg, tyo);
    (tyo, lax);
    (tyo, sea);
    (sin, lon);
  ]

let topology () =
  Topology.make ~name:"teleglobe" ~labels ~coords
    (List.map (fun (u, v) -> (u, v, 1.0)) links)

let weighted () = Topology.with_geographic_weights (topology ())
