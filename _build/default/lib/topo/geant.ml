let labels =
  [|
    "AT" (* Vienna *);
    "BE" (* Brussels *);
    "BG" (* Sofia *);
    "CH" (* Geneva *);
    "CY" (* Nicosia *);
    "CZ" (* Prague *);
    "DE" (* Frankfurt *);
    "DK" (* Copenhagen *);
    "EE" (* Tallinn *);
    "ES" (* Madrid *);
    "FI" (* Helsinki *);
    "FR" (* Paris *);
    "GR" (* Athens *);
    "HR" (* Zagreb *);
    "HU" (* Budapest *);
    "IE" (* Dublin *);
    "IL" (* Tel Aviv *);
    "IS" (* Reykjavik *);
    "IT" (* Milan *);
    "LT" (* Kaunas *);
    "LU" (* Luxembourg *);
    "LV" (* Riga *);
    "MT" (* Valletta *);
    "NL" (* Amsterdam *);
    "NO" (* Oslo *);
    "PL" (* Poznan *);
    "PT" (* Lisbon *);
    "RO" (* Bucharest *);
    "RU" (* Moscow *);
    "SE" (* Stockholm *);
    "SI" (* Ljubljana *);
    "SK" (* Bratislava *);
    "TR" (* Ankara *);
    "UK" (* London *);
  |]

let coords =
  [|
    (16.37, 48.21);
    (4.35, 50.85);
    (23.32, 42.70);
    (6.14, 46.20);
    (33.38, 35.19);
    (14.42, 50.09);
    (8.68, 50.11);
    (12.57, 55.68);
    (24.75, 59.44);
    (-3.70, 40.42);
    (24.94, 60.17);
    (2.35, 48.86);
    (23.73, 37.98);
    (15.98, 45.81);
    (19.04, 47.50);
    (-6.26, 53.35);
    (34.78, 32.08);
    (-21.94, 64.15);
    (9.19, 45.46);
    (23.90, 54.90);
    (6.13, 49.61);
    (24.11, 56.95);
    (14.51, 35.90);
    (4.90, 52.37);
    (10.75, 59.91);
    (16.93, 52.41);
    (-9.14, 38.72);
    (26.10, 44.43);
    (37.62, 55.76);
    (18.07, 59.33);
    (14.51, 46.06);
    (17.11, 48.15);
    (32.85, 39.93);
    (-0.13, 51.51);
  |]

let at = 0
let be = 1
let bg = 2
let ch = 3
let cy = 4
let cz = 5
let de = 6
let dk = 7
let ee = 8
let es = 9
let fi = 10
let fr = 11
let gr = 12
let hr = 13
let hu = 14
let ie = 15
let il = 16
let is_ = 17
let it = 18
let lt = 19
let lu = 20
let lv = 21
let mt = 22
let nl = 23
let no = 24
let pl = 25
let pt = 26
let ro = 27
let ru = 28
let se = 29
let si = 30
let sk = 31
let tr = 32
let uk = 33

let links =
  [
    (at, ch);
    (at, cz);
    (at, de);
    (at, hu);
    (at, si);
    (at, sk);
    (be, fr);
    (be, nl);
    (bg, gr);
    (bg, ro);
    (ch, de);
    (ch, fr);
    (ch, it);
    (cy, gr);
    (cy, il);
    (cz, de);
    (cz, sk);
    (de, dk);
    (de, il);
    (de, it);
    (de, nl);
    (de, pl);
    (de, ru);
    (dk, nl);
    (dk, no);
    (dk, se);
    (ee, fi);
    (ee, lv);
    (es, fr);
    (es, it);
    (es, pt);
    (fi, se);
    (fr, lu);
    (fr, uk);
    (gr, it);
    (gr, mt);
    (hr, hu);
    (hr, si);
    (hu, ro);
    (ie, nl);
    (ie, uk);
    (is_, dk);
    (is_, uk);
    (it, mt);
    (lt, lv);
    (lt, pl);
    (lu, de);
    (nl, uk);
    (no, se);
    (pt, uk);
    (ro, tr);
    (ru, se);
    (tr, gr);
  ]

let topology () =
  Topology.make ~name:"geant" ~labels ~coords
    (List.map (fun (u, v) -> (u, v, 1.0)) links)

let weighted () = Topology.with_geographic_weights (topology ())
