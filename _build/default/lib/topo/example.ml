let a = 0
let b = 1
let c = 2
let d = 3
let e = 4
let f = 5

(* Weights reverse-engineered from the paper's walkthroughs:
   - D must reach F via E even though D-F is a link, so w(D,F) = 3;
   - A must route to F via B (tie with the A-C branch broken to B);
   - B must route via D, so the B-C branch carries weight 2.
   Hop counts along these shortest paths then give exactly the distance
   discriminators used in Section 4.3 (D: 2, B: 3, C: 2, E: 1). *)
let topology () =
  Topology.make ~name:"fig1"
    ~labels:[| "A"; "B"; "C"; "D"; "E"; "F" |]
    ~coords:[| (0.0, 2.0); (-1.0, 0.0); (1.0, 0.0); (-1.0, 1.0); (1.0, 1.0); (0.0, 3.0) |]
    [
      (a, b, 1.0);
      (a, c, 2.0);
      (b, c, 2.0);
      (b, d, 1.0);
      (c, e, 1.0);
      (d, e, 1.0);
      (d, f, 3.0);
      (e, f, 1.0);
    ]

(* Rotation system recovered from the paper's cycles:
     c1 = F->D->E->F, c2 = E->D->B->C->E, c3 = B->A->C->B,
     c4 = A->B->D->F->E->C->A (the outer cell of the stereographic
     projection, which is why it appears to run "the other way" on paper). *)
let rotation_orders =
  [|
    [ b; c ] (* A: next(B)=C, next(C)=B *);
    [ d; c; a ] (* B *);
    [ b; e; a ] (* C *);
    [ f; e; b ] (* D: next(F)=E, next(E)=B, next(B)=F — Table 1 *);
    [ d; f; c ] (* E *);
    [ e; d ] (* F *);
  |]

let expected_faces =
  [
    [ f; d; e ] (* c1 *);
    [ e; d; b; c ] (* c2 *);
    [ b; a; c ] (* c3 *);
    [ a; b; d; f; e; c ] (* c4, outer *);
  ]
