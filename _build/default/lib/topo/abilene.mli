(** The Abilene research backbone (Internet2, 2004 snapshot): 11 PoPs and
    14 links, as used in the paper's Figure 2(a)/(d).

    Abilene is 2-connected, so PR covers every single link failure on it. *)

val topology : unit -> Topology.t
(** Unit link weights (hop metric), PoP longitude/latitude coordinates. *)

val weighted : unit -> Topology.t
(** Great-circle link weights in kilometres. *)
