(** GML (Graph Modelling Language) import/export, the format of the
    Internet Topology Zoo — the public successor to the Rocketfuel maps
    the paper drew Teleglobe from.  Supports the subset those files use:

    {v
    graph [
      node [ id 0 label "Seattle" Longitude -122.33 Latitude 47.61 ]
      edge [ source 0 target 1 value 2.0 ]
    ]
    v}

    Node ids may be sparse; they are compacted in file order.  Longitude
    and Latitude become the topology's coordinates when present on every
    node; [value] (or [weight]) gives the link weight, default 1.0.
    Parallel edges and self loops — present in some Zoo files — are
    dropped with their count reported. *)

exception Parse_error of string

type import = {
  topology : Topology.t;
  dropped_parallel : int;  (** duplicate links ignored *)
  dropped_self : int;      (** self loops ignored *)
}

val of_string : ?name:string -> string -> import
(** [name] overrides the file's [label]/[id] attribute (default
    "unnamed"). *)

val to_string : Topology.t -> string
(** Round-trips through {!of_string}. *)

val load : string -> import

val save : string -> Topology.t -> unit
