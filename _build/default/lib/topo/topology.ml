module Graph = Pr_graph.Graph

type t = {
  name : string;
  graph : Graph.t;
  labels : string array;
  coords : (float * float) array;
}

let unit_circle n =
  Array.init n (fun i ->
      let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int (max 1 n) in
      (cos angle, sin angle))

let make ~name ~labels ?coords edges =
  let n = Array.length labels in
  let coords =
    match coords with
    | None -> unit_circle n
    | Some c ->
        if Array.length c <> n then
          invalid_arg "Topology.make: coords length mismatch";
        c
  in
  let seen = Hashtbl.create (2 * n) in
  Array.iter
    (fun l ->
      if Hashtbl.mem seen l then
        invalid_arg (Printf.sprintf "Topology.make: duplicate label %S" l);
      Hashtbl.replace seen l ())
    labels;
  { name; graph = Graph.create ~n edges; labels; coords }

let of_graph ~name graph =
  let n = Graph.n graph in
  {
    name;
    graph;
    labels = Array.init n string_of_int;
    coords = unit_circle n;
  }

let n t = Graph.n t.graph

let m t = Graph.m t.graph

let node_id t label =
  let found = ref (-1) in
  Array.iteri (fun i l -> if l = label then found := i) t.labels;
  if !found < 0 then raise Not_found else !found

let label t v = t.labels.(v)

let coord t v = t.coords.(v)

let remap_weights t f =
  let edges =
    Graph.fold_edges
      (fun _ (e : Graph.edge) acc -> (e.u, e.v, f e) :: acc)
      t.graph []
  in
  { t with graph = Graph.create ~n:(n t) (List.rev edges) }

let with_unit_weights t = remap_weights t (fun _ -> 1.0)

let earth_radius_km = 6371.0

let great_circle_km (lon1, lat1) (lon2, lat2) =
  let rad d = d *. Float.pi /. 180.0 in
  let phi1 = rad lat1 and phi2 = rad lat2 in
  let dphi = rad (lat2 -. lat1) and dlambda = rad (lon2 -. lon1) in
  let a =
    (sin (dphi /. 2.0) ** 2.0)
    +. (cos phi1 *. cos phi2 *. (sin (dlambda /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. atan2 (sqrt a) (sqrt (1.0 -. a))

let with_geographic_weights t =
  remap_weights t (fun e ->
      Float.max 1.0 (great_circle_km t.coords.(e.u) t.coords.(e.v)))

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d nodes, %d links" t.name (n t) (m t);
  Graph.iter_edges
    (fun _ (e : Graph.edge) ->
      Format.fprintf ppf "@,  %s -- %s (w=%g)" t.labels.(e.u) t.labels.(e.v) e.w)
    t.graph;
  Format.fprintf ppf "@]"

let summary t =
  Printf.sprintf "%s: n=%d m=%d diameter=%d hops" t.name (n t) (m t)
    (Pr_graph.Dijkstra.diameter_hops t.graph)
