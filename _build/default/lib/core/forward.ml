module Graph = Pr_graph.Graph

type termination = Simple | Distance_discriminator

type outcome =
  | Delivered
  | Dropped_no_interface
  | Dropped_unreachable
  | Ttl_exceeded

type hop_header = { pr_bit : bool; dd_value : float }

let fresh_header = { pr_bit = false; dd_value = 0.0 }

type step_result =
  | Transmit of {
      next : int;
      header : hop_header;
      episode_started : bool;
      failure_hits : int;
    }
  | Stuck of { outcome : outcome; failure_hits : int }

let step ?(termination = Distance_discriminator) ?(quantise = false) ~routing
    ~cycles ~failures ~dst ~node ~arrived_from ~header () =
  let g = Routing.graph routing in
  let x = node in
  let up w = Failure.link_up failures x w in
  (* Header-faithful mode: discriminators live in the integer DD bits. *)
  let as_carried v =
    if quantise then float_of_int (Routing.quantise_dd routing v) else v
  in
  let failure_hits = ref 0 in
  (* Start the complementary cycle of the failed interface (x, failed):
     rotate from [failed] to the first live interface.  Each dead interface
     passed is a further failure encounter; under the DD condition the
     comparison that would run at each encounter uses the same local
     discriminator and the same header DD, so its outcome cannot change
     mid-rotation and skipping straight to the first live interface is
     faithful to the protocol. *)
  let start_complementary failed ~dd ~episode_started =
    let deg = Graph.degree g x in
    let rec rotate candidate remaining =
      if remaining = 0 then
        Stuck { outcome = Dropped_no_interface; failure_hits = !failure_hits }
      else if up candidate then
        Transmit
          {
            next = candidate;
            header = { pr_bit = true; dd_value = dd };
            episode_started;
            failure_hits = !failure_hits;
          }
      else begin
        incr failure_hits;
        rotate
          (Cycle_table.complement_for_failed cycles ~node:x ~failed:candidate)
          (remaining - 1)
      end
    in
    rotate (Cycle_table.complement_for_failed cycles ~node:x ~failed) deg
  in
  (* Normal shortest-path forwarding; on a failed next hop, start a PR
     episode with the local discriminator in the DD bits (§4.2/§4.3). *)
  let routed () =
    match Routing.next_hop routing ~node:x ~dst with
    | None -> Stuck { outcome = Dropped_unreachable; failure_hits = !failure_hits }
    | Some w ->
        if up w then
          Transmit
            {
              next = w;
              header = fresh_header;
              episode_started = false;
              failure_hits = !failure_hits;
            }
        else begin
          incr failure_hits;
          let dd = as_carried (Routing.disc routing ~node:x ~dst) in
          start_complementary w ~dd ~episode_started:true
        end
  in
  if not header.pr_bit then routed ()
  else
    match arrived_from with
    | None ->
        (* A PR-marked packet always has a previous hop; treat a source
           with a stale PR bit as freshly injected. *)
        routed ()
    | Some y ->
        (* Cycle following. *)
        let w = Cycle_table.cycle_next cycles ~node:x ~from_:y in
        if up w then
          Transmit
            {
              next = w;
              header;
              episode_started = false;
              failure_hits = !failure_hits;
            }
        else begin
          incr failure_hits;
          match termination with
          | Simple -> routed ()
          | Distance_discriminator ->
              if as_carried (Routing.disc routing ~node:x ~dst) < header.dd_value
              then routed ()
              else start_complementary w ~dd:header.dd_value ~episode_started:false
        end

type trace = {
  outcome : outcome;
  path : int list;
  pr_episodes : int;
  failure_hits : int;
  max_header : Header.t;
  episodes : (int * float) list;
}

let default_ttl g = (2 * Graph.m g * (Graph.n g + 2)) + Graph.n g + 16

let run ?termination ?ttl ?quantise ~routing ~cycles ~failures ~src ~dst () =
  let g = Routing.graph routing in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Forward.run: node out of range";
  if src = dst then invalid_arg "Forward.run: src = dst";
  let ttl = match ttl with Some t -> t | None -> default_ttl g in
  let pr_episodes = ref 0 in
  let failure_hits = ref 0 in
  let max_dd = ref 0.0 in
  let episodes = ref [] in
  let rec walk x arrived_from header ~ttl acc =
    if x = dst then finish Delivered acc
    else if ttl = 0 then finish Ttl_exceeded acc
    else begin
      match
        step ?termination ?quantise ~routing ~cycles ~failures ~dst ~node:x
          ~arrived_from ~header ()
      with
      | Stuck { outcome; failure_hits = hits } ->
          failure_hits := !failure_hits + hits;
          finish outcome acc
      | Transmit { next; header; episode_started; failure_hits = hits } ->
          failure_hits := !failure_hits + hits;
          if episode_started then begin
            incr pr_episodes;
            episodes := (x, header.dd_value) :: !episodes;
            if header.dd_value > !max_dd then max_dd := header.dd_value
          end;
          walk next (Some x) header ~ttl:(ttl - 1) (next :: acc)
    end
  and finish outcome acc =
    {
      outcome;
      path = List.rev acc;
      pr_episodes = !pr_episodes;
      failure_hits = !failure_hits;
      max_header =
        {
          Header.pr = !pr_episodes > 0;
          dd = Routing.quantise_dd routing !max_dd;
        };
      episodes = List.rev !episodes;
    }
  in
  walk src None fresh_header ~ttl [ src ]

let path_cost g trace = Pr_graph.Paths.cost g trace.path

let stretch ~routing ~trace ~src ~dst =
  match trace.outcome with
  | Delivered ->
      let base = Routing.distance routing ~node:src ~dst in
      path_cost (Routing.graph routing) trace /. base
  | Dropped_no_interface | Dropped_unreachable | Ttl_exceeded -> infinity
