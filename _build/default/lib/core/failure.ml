module Graph = Pr_graph.Graph

type t = { g : Graph.t; failed : Pr_util.Bitset.t }

let none g = { g; failed = Pr_util.Bitset.create (Graph.m g) }

let of_list g pairs =
  let failed = Pr_util.Bitset.create (Graph.m g) in
  List.iter
    (fun (u, v) ->
      if not (Graph.has_edge g u v) then
        invalid_arg (Printf.sprintf "Failure.of_list: (%d,%d) is not a link" u v);
      Pr_util.Bitset.add failed (Graph.edge_index g u v))
    pairs;
  { g; failed }

let of_nodes g nodes =
  let failed = Pr_util.Bitset.create (Graph.m g) in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Failure.of_nodes: node out of range";
      Array.iter
        (fun u -> Pr_util.Bitset.add failed (Graph.edge_index g v u))
        (Graph.neighbours g v))
    nodes;
  { g; failed }

let combine a b =
  if not (Graph.equal_structure a.g b.g) then
    invalid_arg "Failure.combine: different graphs";
  let failed = Pr_util.Bitset.create (Graph.m a.g) in
  Pr_util.Bitset.iter (Pr_util.Bitset.add failed) a.failed;
  Pr_util.Bitset.iter (Pr_util.Bitset.add failed) b.failed;
  { g = a.g; failed }

let graph t = t.g

let is_failed_index t i = Pr_util.Bitset.mem t.failed i

let is_failed t u v = is_failed_index t (Graph.edge_index t.g u v)

let link_up t u v = not (is_failed t u v)

let edges t =
  Pr_util.Bitset.fold
    (fun i acc ->
      let e = Graph.edge t.g i in
      (e.u, e.v) :: acc)
    t.failed []
  |> List.sort compare

let count t = Pr_util.Bitset.cardinal t.failed

let survives_connected t =
  Pr_graph.Connectivity.is_connected ~blocked:(is_failed_index t) t.g

let pair_connected t a b =
  let hops = Pr_graph.Traversal.bfs_hops ~blocked:(is_failed_index t) t.g ~source:a in
  hops.(b) < max_int

let pp ppf t =
  Format.fprintf ppf "@[<h>failures {%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges t)
