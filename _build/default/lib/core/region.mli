(** The topological machinery behind the paper's §5 correctness argument.

    §5.1 claims: when a packet encounters failures, the route cycle
    following takes (with no termination condition) coincides with a
    boundary component of the region obtained by {e joining} all cells
    that have a failed link on their boundary.  This module computes both
    sides of that claim — the joined regions and the boundary walks — so
    the test suite can check it structurally (it holds on genus-0
    embeddings; see EXPERIMENTS.md for how it fails on handles). *)

type regions = {
  face_region : int array;  (** face id -> region id *)
  count : int;              (** number of regions *)
}

val join : Pr_embed.Faces.t -> Failure.t -> regions
(** Union the two faces of every failed link (the paper's join
    operation).  Untouched faces are singleton regions. *)

val region_of_arc : Pr_embed.Faces.t -> regions -> tail:int -> head:int -> int
(** Region of the face the arc lies on. *)

val boundary_walk :
  cycles:Cycle_table.t ->
  failures:Failure.t ->
  start:int * int ->
  (int * int) list
(** The closed walk of the cycle following protocol with no termination
    condition, starting from the live arc [start]: repeatedly take the
    face successor, rotating past failed links.  Returns the arcs in
    order; the walk provably closes (the transition is a bijection on
    live arcs).  Raises [Invalid_argument] if [start] is not a live
    link. *)

val live_arcs_of_region :
  Pr_embed.Faces.t -> regions -> Failure.t -> region:int -> (int * int) list
(** All arcs on the region's faces whose links are up — the candidate
    boundary arcs the walks must partition. *)
