module Graph = Pr_graph.Graph

let single_links ?(keep_connected = true) g =
  Graph.fold_edges
    (fun _ (e : Graph.edge) acc ->
      let scenario = [ (e.u, e.v) ] in
      if keep_connected && not (Pr_graph.Connectivity.connected_without g scenario)
      then acc
      else scenario :: acc)
    g []
  |> List.rev

let random_multi rng g ~k ~samples =
  let m = Graph.m g in
  if k < 1 || k > m then invalid_arg "Scenario.random_multi: k out of range";
  if samples < 0 then invalid_arg "Scenario.random_multi: negative samples";
  let edge_pair i =
    let e = Graph.edge g i in
    (e.u, e.v)
  in
  let attempt () =
    let chosen = Pr_util.Rng.sample_without_replacement rng ~k ~n:m in
    let scenario = List.map edge_pair chosen in
    if Pr_graph.Connectivity.connected_without g scenario then Some scenario
    else None
  in
  let max_attempts_per_sample = 10_000 in
  let rec draw tries =
    if tries = 0 then
      failwith
        (Printf.sprintf
           "Scenario.random_multi: no connected scenario with k=%d found" k)
    else match attempt () with Some s -> s | None -> draw (tries - 1)
  in
  List.init samples (fun _ -> draw max_attempts_per_sample)

let double_links ?(keep_connected = true) g =
  let m = Graph.m g in
  let pair i j =
    let e = Graph.edge g i and f = Graph.edge g j in
    [ (e.Graph.u, e.Graph.v); (f.Graph.u, f.Graph.v) ]
  in
  let out = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let scenario = pair i j in
      if
        (not keep_connected)
        || Pr_graph.Connectivity.connected_without g scenario
      then out := scenario :: !out
    done
  done;
  List.rev !out

let random_nodes rng g ~k ~samples =
  let n = Graph.n g in
  if k < 1 || k >= n - 1 then invalid_arg "Scenario.random_nodes: k out of range";
  if samples < 0 then invalid_arg "Scenario.random_nodes: negative samples";
  let survivors_connected nodes =
    let failed = Hashtbl.create (2 * k) in
    List.iter (fun v -> Hashtbl.replace failed v ()) nodes;
    let blocked i =
      let e = Graph.edge g i in
      Hashtbl.mem failed e.u || Hashtbl.mem failed e.v
    in
    let label, _ = Pr_graph.Connectivity.components ~blocked g in
    (* All surviving nodes must share one component. *)
    let reference = ref (-1) in
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (Hashtbl.mem failed v) then
        if !reference = -1 then reference := label.(v)
        else if label.(v) <> !reference then ok := false
    done;
    !ok
  in
  let attempt () =
    let nodes = Pr_util.Rng.sample_without_replacement rng ~k ~n in
    if survivors_connected nodes then Some nodes else None
  in
  let max_attempts_per_sample = 10_000 in
  let rec draw tries =
    if tries = 0 then
      failwith
        (Printf.sprintf
           "Scenario.random_nodes: no connected scenario with k=%d found" k)
    else match attempt () with Some s -> s | None -> draw (tries - 1)
  in
  List.init samples (fun _ -> draw max_attempts_per_sample)

let affected_pairs routing failures =
  let g = Routing.graph routing in
  let n = Graph.n g in
  let affected = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        match Routing.shortest_path routing ~src ~dst with
        | None -> ()
        | Some path ->
            let crosses =
              List.exists
                (fun i -> Failure.is_failed_index failures i)
                (Pr_graph.Paths.edges_of_walk g path)
            in
            if crosses then affected := (src, dst) :: !affected
      end
    done
  done;
  List.rev !affected

let connected_affected_pairs routing failures =
  List.filter
    (fun (src, dst) -> Failure.pair_connected failures src dst)
    (affected_pairs routing failures)
