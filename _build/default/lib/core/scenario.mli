(** Failure-scenario generation for the experiments (paper §6).

    Figure 2 uses (a–c) every single link failure and (d–f) random
    simultaneous failures of k links.  Scenarios that disconnect the
    network are excluded, as no scheme (PR included) can recover across a
    partition; pairs whose failure-free path does not meet a failure are
    excluded by {!affected_pairs} — the figure conditions on "| path". *)

val single_links : ?keep_connected:bool -> Pr_graph.Graph.t -> (int * int) list list
(** One scenario per link, in edge-index order.  With [keep_connected]
    (default true), bridges are skipped. *)

val random_multi :
  Pr_util.Rng.t ->
  Pr_graph.Graph.t ->
  k:int ->
  samples:int ->
  (int * int) list list
(** [samples] scenarios of [k] distinct links each, drawn uniformly among
    the k-subsets whose removal keeps the graph connected (by rejection).
    Raises [Invalid_argument] if [k] is out of range, or [Failure] if no
    connected-surviving scenario can be found in a generous number of
    attempts. *)

val double_links :
  ?keep_connected:bool -> Pr_graph.Graph.t -> (int * int) list list
(** Every unordered pair of distinct links, in edge-index order; with
    [keep_connected] (default true) only pairs whose removal keeps the
    graph connected.  Exhaustive ground truth for k = 2 studies (the
    sampled {!random_multi} is preferred beyond that). *)

val random_nodes :
  Pr_util.Rng.t ->
  Pr_graph.Graph.t ->
  k:int ->
  samples:int ->
  int list list
(** [samples] scenarios of [k] distinct failed routers each, drawn so that
    the surviving routers (all others) remain connected through surviving
    links.  Same rejection/exception behaviour as {!random_multi}. *)

val affected_pairs : Routing.t -> Failure.t -> (int * int) list
(** Ordered (src, dst) pairs, src <> dst, whose failure-free forwarding
    path traverses at least one failed link. *)

val connected_affected_pairs : Routing.t -> Failure.t -> (int * int) list
(** {!affected_pairs} restricted to pairs still connected in the surviving
    graph — the population over which stretch is measured. *)
