(** Distance discriminators (paper §4.3).

    A discriminator is a strictly increasing function of the links along
    the shortest path to a destination.  The paper proposes two candidates:
    the hop count and the sum of link weights along that path.  Termination
    of cycle following compares the local discriminator against the value
    carried in the packet's DD bits. *)

type kind =
  | Hops      (** hop count along the chosen shortest path; needs
                  ~log2(diameter) DD bits *)
  | Weighted  (** weighted cost of the chosen shortest path *)

val value : kind -> Pr_graph.Dijkstra.tree -> int -> float
(** [value kind tree v] — discriminator from [v] to the tree's root.
    [infinity] when unreachable. *)

val bits_needed : kind -> Pr_graph.Graph.t -> int
(** Number of DD bits PR needs on this graph: [ceil (log2 (d + 1))] where
    [d] is the (hop or weighted, rounded up) diameter.  This is the paper's
    O(log2 d) header-overhead claim. *)

val to_string : kind -> string
