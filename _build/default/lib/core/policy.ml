type class_id = int

type t = { protected_mask : int }

let check_class c =
  if c < 0 || c > 7 then invalid_arg "Policy: class out of range (0..7)"

let make ~protected_classes =
  List.iter check_class protected_classes;
  { protected_mask = List.fold_left (fun m c -> m lor (1 lsl c)) 0 protected_classes }

let protect_all = { protected_mask = 0xFF }

let protect_none = { protected_mask = 0 }

let protects t c =
  check_class c;
  t.protected_mask land (1 lsl c) <> 0

let protected_classes t =
  List.filter (protects t) (List.init 8 Fun.id)

type outcome =
  | Forwarded of Forward.trace
  | Shortest_path of int list
  | Dropped_at of { node : int; walked : int list }

(* Plain shortest-path forwarding with no repair: what an unprotected class
   experiences between failure and reconvergence. *)
let plain_walk ~routing ~failures ~src ~dst =
  let n = Pr_graph.Graph.n (Routing.graph routing) in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Policy.forward: node out of range";
  if src = dst then invalid_arg "Policy.forward: src = dst";
  let rec walk x acc =
    if x = dst then Shortest_path (List.rev acc)
    else
      match Routing.next_hop routing ~node:x ~dst with
      | None -> Dropped_at { node = x; walked = List.rev acc }
      | Some w ->
          if Failure.link_up failures x w then walk w (w :: acc)
          else Dropped_at { node = x; walked = List.rev acc }
  in
  walk src [ src ]

let forward t ~class_id ~routing ~cycles ~failures ~src ~dst =
  if protects t class_id then
    Forwarded (Forward.run ~routing ~cycles ~failures ~src ~dst ())
  else plain_walk ~routing ~failures ~src ~dst

let delivered = function
  | Forwarded trace -> trace.Forward.outcome = Forward.Delivered
  | Shortest_path _ -> true
  | Dropped_at _ -> false

let path_of = function
  | Forwarded trace -> trace.Forward.path
  | Shortest_path path -> path
  | Dropped_at { walked; _ } -> walked
