(** Failure sets: bidirectional link failures (paper §4 assumption).

    Node (router) failures — the other half of the paper's title — are
    modelled as the failure of every link incident to the node, which is
    how a neighbouring PR router perceives them. *)

type t

val none : Pr_graph.Graph.t -> t

val of_list : Pr_graph.Graph.t -> (int * int) list -> t
(** Raises [Invalid_argument] if a pair is not an edge of the graph.
    Duplicates are tolerated. *)

val of_nodes : Pr_graph.Graph.t -> int list -> t
(** Every link incident to any of the nodes fails.  Raises
    [Invalid_argument] on out-of-range nodes. *)

val combine : t -> t -> t
(** Union of two failure sets over the same graph ([Invalid_argument]
    otherwise). *)

val graph : t -> Pr_graph.Graph.t

val is_failed : t -> int -> int -> bool
(** By endpoints (either orientation). *)

val is_failed_index : t -> int -> bool
(** By dense edge index; usable as Dijkstra's [blocked]. *)

val link_up : t -> int -> int -> bool

val edges : t -> (int * int) list
(** Canonical orientation, sorted. *)

val count : t -> int

val survives_connected : t -> bool
(** Is the surviving graph connected? *)

val pair_connected : t -> int -> int -> bool
(** Are the two nodes still connected in the surviving graph? *)

val pp : Format.formatter -> t -> unit
