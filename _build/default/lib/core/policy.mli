(** Traffic-class policy (paper §7).

    "ISPs can include extra rules and policies to limit PR to certain types
    of traffic (for example by limiting it to certain classes identifiable
    by the remaining DSCP bits)."

    Classes are DSCP class selectors 0–7.  Protected classes are forwarded
    with PR; unprotected classes get plain shortest-path forwarding and die
    at the first failed link, exactly like pre-convergence traffic. *)

type class_id = int
(** 0 .. 7. *)

type t

val make : protected_classes:class_id list -> t
(** Raises [Invalid_argument] on out-of-range classes. *)

val protect_all : t

val protect_none : t

val protects : t -> class_id -> bool
(** Raises [Invalid_argument] on out-of-range classes. *)

val protected_classes : t -> class_id list
(** In increasing order. *)

type outcome =
  | Forwarded of Forward.trace  (** protected: the PR trace *)
  | Shortest_path of int list   (** unprotected, path survived *)
  | Dropped_at of { node : int; walked : int list }
      (** unprotected, died at [node] after visiting [walked] *)

val forward :
  t ->
  class_id:class_id ->
  routing:Routing.t ->
  cycles:Cycle_table.t ->
  failures:Failure.t ->
  src:int ->
  dst:int ->
  outcome

val delivered : outcome -> bool

val path_of : outcome -> int list
(** Nodes visited, whatever the outcome. *)
