lib/core/scenario.ml: Array Failure Hashtbl List Pr_graph Pr_util Printf Routing
