lib/core/cycle_table.ml: Array List Pr_embed Pr_graph
