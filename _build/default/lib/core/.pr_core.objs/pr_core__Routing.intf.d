lib/core/routing.mli: Discriminator Pr_graph
