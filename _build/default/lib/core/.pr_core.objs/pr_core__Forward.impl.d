lib/core/forward.ml: Cycle_table Failure Header List Pr_graph Routing
