lib/core/discriminator.mli: Pr_graph
