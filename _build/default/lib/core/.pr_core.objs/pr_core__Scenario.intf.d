lib/core/scenario.mli: Failure Pr_graph Pr_util Routing
