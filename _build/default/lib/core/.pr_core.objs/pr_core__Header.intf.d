lib/core/header.mli: Format
