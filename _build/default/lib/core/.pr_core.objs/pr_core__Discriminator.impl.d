lib/core/discriminator.ml: Float Pr_graph
