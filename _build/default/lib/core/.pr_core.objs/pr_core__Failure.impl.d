lib/core/failure.ml: Array Format List Pr_graph Pr_util Printf
