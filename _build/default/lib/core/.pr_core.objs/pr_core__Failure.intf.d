lib/core/failure.mli: Format Pr_graph
