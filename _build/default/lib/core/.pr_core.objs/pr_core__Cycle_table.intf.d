lib/core/cycle_table.mli: Pr_embed Pr_graph
