lib/core/forward.mli: Cycle_table Failure Header Pr_graph Routing
