lib/core/policy.mli: Cycle_table Failure Forward Routing
