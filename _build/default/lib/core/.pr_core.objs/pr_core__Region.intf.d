lib/core/region.mli: Cycle_table Failure Pr_embed
