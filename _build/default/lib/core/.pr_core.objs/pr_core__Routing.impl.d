lib/core/routing.ml: Array Discriminator Float Pr_graph
