lib/core/region.ml: Array Cycle_table Failure Hashtbl List Pr_embed Pr_graph Pr_util
