lib/core/header.ml: Format Printf
