lib/core/policy.ml: Failure Forward Fun List Pr_graph Routing
