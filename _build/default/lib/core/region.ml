module Graph = Pr_graph.Graph
module Faces = Pr_embed.Faces

type regions = { face_region : int array; count : int }

let join faces failures =
  let face_count = Faces.count faces in
  let uf = Pr_util.Union_find.create face_count in
  let g = Pr_embed.Rotation.graph (Faces.rotation faces) in
  Graph.iter_edges
    (fun i (e : Graph.edge) ->
      if Failure.is_failed_index failures i then
        ignore
          (Pr_util.Union_find.union uf
             (Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.u ~head:e.v))
             (Faces.face_of_arc faces (Faces.arc_id faces ~tail:e.v ~head:e.u))))
    g;
  (* Re-label representatives densely, in order of first appearance. *)
  let labels = Hashtbl.create face_count in
  let face_region =
    Array.init face_count (fun f ->
        let root = Pr_util.Union_find.find uf f in
        match Hashtbl.find_opt labels root with
        | Some l -> l
        | None ->
            let l = Hashtbl.length labels in
            Hashtbl.replace labels root l;
            l)
  in
  { face_region; count = Hashtbl.length labels }

let region_of_arc faces regions ~tail ~head =
  regions.face_region.(Faces.face_of_arc faces (Faces.arc_id faces ~tail ~head))

let boundary_walk ~cycles ~failures ~start =
  let tail, head = start in
  let g = Cycle_table.graph cycles in
  if not (Graph.has_edge g tail head) then
    invalid_arg "Region.boundary_walk: start is not a link";
  if Failure.is_failed failures tail head then
    invalid_arg "Region.boundary_walk: start link is down";
  (* Successor of live arc (y, x): rotate at x from y past failed links. *)
  let successor (y, x) =
    let deg = Graph.degree g x in
    let rec rotate w remaining =
      if remaining = 0 then None
      else if Failure.link_up failures x w then Some (x, w)
      else rotate (Cycle_table.complement_for_failed cycles ~node:x ~failed:w) (remaining - 1)
    in
    rotate (Cycle_table.cycle_next cycles ~node:x ~from_:y) deg
  in
  let limit = (2 * Graph.m g) + 1 in
  let rec walk arc acc remaining =
    if remaining = 0 then List.rev acc (* unreachable: the map is a bijection *)
    else
      match successor arc with
      | None -> List.rev (arc :: acc)
      | Some next -> if next = start then List.rev (arc :: acc) else walk next (arc :: acc) (remaining - 1)
  in
  walk start [] limit

let live_arcs_of_region faces regions failures ~region =
  let g = Pr_embed.Rotation.graph (Faces.rotation faces) in
  let out = ref [] in
  Graph.iter_edges
    (fun i (e : Graph.edge) ->
      if not (Failure.is_failed_index failures i) then begin
        let forward = Faces.arc_id faces ~tail:e.u ~head:e.v in
        let backward = Faces.arc_id faces ~tail:e.v ~head:e.u in
        if regions.face_region.(Faces.face_of_arc faces forward) = region then
          out := (e.u, e.v) :: !out;
        if regions.face_region.(Faces.face_of_arc faces backward) = region then
          out := (e.v, e.u) :: !out
      end)
    g;
  List.rev !out
