type kind = Hops | Weighted

let value kind tree v =
  match kind with
  | Hops ->
      let h = Pr_graph.Dijkstra.hop_count tree v in
      if h = max_int then infinity else float_of_int h
  | Weighted -> Pr_graph.Dijkstra.distance tree v

let bits_for_range max_value =
  (* Smallest b with 2^b > max_value, i.e. values 0..max_value encodable. *)
  let rec loop b capacity =
    if capacity > max_value then b else loop (b + 1) (2 * capacity)
  in
  loop 0 1

let bits_needed kind g =
  match kind with
  | Hops -> bits_for_range (Pr_graph.Dijkstra.diameter_hops g)
  | Weighted ->
      bits_for_range (int_of_float (Float.ceil (Pr_graph.Dijkstra.diameter_weight g)))

let to_string = function Hops -> "hops" | Weighted -> "weighted"
