(** Coverage validation: the paper's central claim is that PR repairs
    every failure combination that leaves source and destination
    connected.  This experiment measures delivery ratios across increasing
    failure counts for:
    - PR on the deployable PR-safe annealed embedding,
    - PR on the plain geometric embedding (shows curved-edge losses),
    - PR with the §4.2 simple termination (safe embedding),
    - LFA (RFC 5286),
    - MRC (Kvalbein et al., link-protecting variant).

    The reproduction finding (EXPERIMENTS.md): PR reaches 1.0 exactly when
    the embedding has genus 0, and for k = 1 whenever it has no curved
    edges. *)

type row = {
  topology : string;
  k : int;
  scenarios : int;
  pairs : int;              (** connected affected pairs measured *)
  pr_delivered : int;       (** DD termination, PR-safe embedding *)
  pr_geometric_delivered : int; (** DD termination, geometric embedding *)
  pr_simple_delivered : int;    (** simple termination, PR-safe embedding *)
  lfa_delivered : int;
  mrc_delivered : int;   (** -1 when MRC could not be built *)
}

val measure :
  ?seed:int ->
  ?samples:int ->
  ?safe_rotation:Pr_embed.Rotation.t ->
  Pr_topo.Topology.t ->
  k:int ->
  row
(** k = 1 is exhaustive over non-disconnecting links; defaults: seed 42,
    samples 100.  [safe_rotation] overrides the (expensive) annealed
    embedding, letting callers compute it once per topology. *)

val measure_double :
  ?seed:int ->
  ?safe_rotation:Pr_embed.Rotation.t ->
  Pr_topo.Topology.t ->
  row
(** Exhaustive ground truth at k = 2: every pair of links whose joint
    removal keeps the graph connected.  The row's topology name is
    suffixed ["(all pairs)"]. *)

val measure_nodes :
  ?seed:int ->
  ?samples:int ->
  ?safe_rotation:Pr_embed.Rotation.t ->
  Pr_topo.Topology.t ->
  k:int ->
  row
(** Router-failure variant (NF1 in DESIGN.md): each scenario fails [k]
    routers (all their incident links); k = 1 enumerates every router whose
    loss keeps the survivors connected.  The row's topology name is
    suffixed ["+nodes"]. *)

val sweep :
  ?seed:int -> ?samples:int -> Pr_topo.Topology.t -> ks:int list -> row list
(** Runs {!measure} for each feasible [k] with a shared safe rotation;
    values of [k] above the cycle rank [m - n + 1] (beyond which no
    connected survivor exists) are skipped. *)

val table : row list -> string
(** Rendered rows with delivery ratios. *)
