(** Beyond the paper: does Figure 2's story generalise past the three ISP
    maps?  Single-failure sweeps over standard synthetic families, each
    embedded through the {!Pr_embed.Recommend} pipeline. *)

type row = {
  topology : string;
  nodes : int;
  links : int;
  certified_planar : bool;
  genus : int;
  curved : int;          (** non-bridge curved links (bridges are always
                             curved but their failure disconnects) *)
  reconv_mean : float;   (** mean stretch over affected pairs *)
  fcp_mean : float;
  pr_mean : float;
  pr_p95 : float;
  pr_undelivered : int;
}

val families : ?seed:int -> unit -> Pr_topo.Topology.t list
(** Waxman, Barabási–Albert, random 2-connected, grid, torus, hypercube,
    Apollonian, hierarchical ISP — seeded and deterministic. *)

val measure : ?seed:int -> Pr_topo.Topology.t -> row

val table : ?seed:int -> unit -> string
