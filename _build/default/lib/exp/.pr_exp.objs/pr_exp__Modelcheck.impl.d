lib/exp/modelcheck.ml: Hashtbl Pr_core Pr_graph
