lib/exp/overhead.ml: List Pr_baselines Pr_core Pr_embed Pr_graph Pr_topo Pr_util
