lib/exp/modelcheck.mli: Pr_core
