lib/exp/ttl_study.mli: Pr_embed Pr_topo
