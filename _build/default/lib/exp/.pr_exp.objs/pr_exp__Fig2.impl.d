lib/exp/fig2.ml: List Option Pr_baselines Pr_core Pr_embed Pr_graph Pr_stats Pr_topo Pr_util Printf String
