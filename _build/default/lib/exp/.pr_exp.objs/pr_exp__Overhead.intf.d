lib/exp/overhead.mli: Pr_topo
