lib/exp/fig2.mli: Pr_core Pr_embed Pr_stats Pr_topo
