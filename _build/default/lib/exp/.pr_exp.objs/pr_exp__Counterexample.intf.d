lib/exp/counterexample.mli: Pr_core Pr_graph
