lib/exp/report.mli: Fig2
