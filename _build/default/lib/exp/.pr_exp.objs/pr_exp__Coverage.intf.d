lib/exp/coverage.mli: Pr_embed Pr_topo
