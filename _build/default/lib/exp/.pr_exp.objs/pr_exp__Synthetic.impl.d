lib/exp/synthetic.ml: Array Fig2 Fun List Option Pr_embed Pr_graph Pr_stats Pr_topo Pr_util
