lib/exp/report.ml: Fig2 Filename Fun List Pr_stats Pr_topo Printf String Sys
