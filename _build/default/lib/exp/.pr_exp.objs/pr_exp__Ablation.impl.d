lib/exp/ablation.ml: Fig2 List Option Pr_core Pr_embed Pr_stats Pr_topo Pr_util
