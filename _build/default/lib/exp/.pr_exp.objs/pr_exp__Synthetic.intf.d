lib/exp/synthetic.mli: Pr_topo
