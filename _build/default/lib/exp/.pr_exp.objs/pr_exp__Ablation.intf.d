lib/exp/ablation.mli: Fig2 Pr_core Pr_topo
