lib/exp/ttl_study.ml: List Pr_core Pr_embed Pr_graph Pr_topo Pr_util Printf
