lib/exp/counterexample.ml: Array Buffer Fun List Pr_core Pr_embed Pr_graph Pr_topo Pr_util Printf String
