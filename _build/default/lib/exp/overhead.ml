module Graph = Pr_graph.Graph
module Topology = Pr_topo.Topology

type row = {
  topology : string;
  nodes : int;
  links : int;
  diameter_hops : int;
  pr_dd_bits : int;
  pr_header_bits : int;
  pr_fits_dscp : bool;
  fcp_bits_per_failure : int;
  fcp_header_bits_worst : int;
  pr_cycle_entries : int;
  pr_routing_entries : int;
  pr_spf_per_failure : int;
  reconv_spf_per_failure : int;
  mrc_configurations : int;
  mrc_header_bits : int;
  mrc_routing_entries : int;
}

let measure (topo : Topology.t) =
  let g = topo.graph in
  let routing = Pr_core.Routing.build g in
  let dd_bits = Pr_core.Routing.dd_bits routing in
  let fcp_worst = ref 0 in
  let single_failure scenario =
    let failures = Pr_core.Failure.of_list g scenario in
    let pairs = Pr_core.Scenario.connected_affected_pairs routing failures in
    List.iter
      (fun (src, dst) ->
        let trace = Pr_baselines.Fcp.run g ~failures ~src ~dst () in
        fcp_worst := max !fcp_worst (Pr_baselines.Fcp.header_bits g trace))
      pairs
  in
  List.iter single_failure (Pr_core.Scenario.single_links g);
  let rotation = Pr_embed.Geometric.of_topology topo in
  let cycles = Pr_core.Cycle_table.build rotation in
  {
    topology = topo.name;
    nodes = Graph.n g;
    links = Graph.m g;
    diameter_hops = Pr_graph.Dijkstra.diameter_hops g;
    pr_dd_bits = dd_bits;
    pr_header_bits = Pr_core.Header.bits_used ~dd_bits;
    pr_fits_dscp = Pr_core.Header.fits_in_dscp ~dd_bits;
    fcp_bits_per_failure = Pr_baselines.Fcp.bits_per_failure g;
    fcp_header_bits_worst = !fcp_worst;
    pr_cycle_entries = Pr_core.Cycle_table.memory_entries cycles;
    pr_routing_entries = Pr_core.Routing.memory_entries routing;
    pr_spf_per_failure = 0;
    reconv_spf_per_failure = Graph.n g;
    mrc_configurations =
      (match Pr_baselines.Mrc.build g with
      | Some t -> Pr_baselines.Mrc.configurations t
      | None -> -1);
    mrc_header_bits =
      (match Pr_baselines.Mrc.build g with
      | Some t -> Pr_baselines.Mrc.header_bits t
      | None -> -1);
    mrc_routing_entries =
      (match Pr_baselines.Mrc.build g with
      | Some t ->
          (Pr_baselines.Mrc.configurations t + 1) * Graph.n g * (Graph.n g - 1)
      | None -> -1);
  }

let table topologies =
  let rows = List.map measure topologies in
  let cells r =
    [
      r.topology;
      string_of_int r.nodes;
      string_of_int r.links;
      string_of_int r.diameter_hops;
      string_of_int r.pr_header_bits;
      (if r.pr_fits_dscp then "yes" else "no");
      string_of_int r.fcp_bits_per_failure;
      string_of_int r.fcp_header_bits_worst;
      string_of_int r.pr_cycle_entries;
      string_of_int r.pr_routing_entries;
      string_of_int r.pr_spf_per_failure;
      string_of_int r.reconv_spf_per_failure;
      string_of_int r.mrc_configurations;
      string_of_int r.mrc_header_bits;
      string_of_int r.mrc_routing_entries;
    ]
  in
  Pr_util.Tablefmt.render
    ~header:
      [
        "topology";
        "n";
        "m";
        "diam";
        "PR hdr bits";
        "fits DSCP";
        "FCP bits/fail";
        "FCP worst hdr";
        "PR cycle entries";
        "PR rt entries";
        "PR SPF/fail";
        "reconv SPF/fail";
        "MRC cfgs";
        "MRC hdr bits";
        "MRC rt entries";
      ]
    (List.map cells rows)
