module Graph = Pr_graph.Graph
module Topology = Pr_topo.Topology

type scheme = Reconvergence | Fcp | Pr

type embedding_choice = Geometric | Adjacency | Random_rotation | Optimised | Safe_optimised

type config = {
  topology : Topology.t;
  k : int;
  samples : int;
  seed : int;
  termination : Pr_core.Forward.termination;
  discriminator : Pr_core.Discriminator.kind;
  quantise_dd : bool;
  embedding : embedding_choice;
}

let default topology ~k =
  {
    topology;
    k;
    samples = 200;
    seed = 42;
    termination = Pr_core.Forward.Distance_discriminator;
    discriminator = Pr_core.Discriminator.Hops;
    quantise_dd = false;
    embedding = Geometric;
  }

type result = {
  config : config;
  scenarios : int;
  pairs_measured : int;
  genus : int;
  curved_edges : int;
  curves : (scheme * Pr_stats.Ccdf.t) list;
  pr_failures : (int * int * (int * int) list) list;
}

let scheme_name = function
  | Reconvergence -> "reconvergence"
  | Fcp -> "fcp"
  | Pr -> "pr"

let resolve_rotation config (topo : Topology.t) =
  match config.embedding with
  | Geometric -> Pr_embed.Geometric.of_topology topo
  | Adjacency -> Pr_embed.Rotation.adjacency topo.graph
  | Random_rotation ->
      Pr_embed.Rotation.random (Pr_util.Rng.create ~seed:config.seed) topo.graph
  | Optimised ->
      Pr_embed.Optimize.best_of
        (Pr_util.Rng.create ~seed:config.seed)
        topo.graph
  | Safe_optimised ->
      (Pr_embed.Recommend.for_topology ~seed:config.seed topo).rotation

let scenarios_of config g =
  if config.k = 1 then Pr_core.Scenario.single_links g
  else
    Pr_core.Scenario.random_multi
      (Pr_util.Rng.create ~seed:config.seed)
      g ~k:config.k ~samples:config.samples

let run config =
  let topo = config.topology in
  let g = topo.graph in
  let routing = Pr_core.Routing.build ~kind:config.discriminator g in
  let rotation = resolve_rotation config topo in
  let cycles = Pr_core.Cycle_table.build rotation in
  let faces = Pr_embed.Faces.compute rotation in
  let genus = Pr_embed.Surface.genus faces in
  let curved_edges = List.length (Pr_embed.Validate.curved_edges faces) in
  let scenarios = scenarios_of config g in
  let reconv = ref [] and fcp = ref [] and pr = ref [] in
  let pairs_measured = ref 0 in
  let pr_failures = ref [] in
  let measure scenario =
    let failures = Pr_core.Failure.of_list g scenario in
    let pairs = Pr_core.Scenario.connected_affected_pairs routing failures in
    let per_pair (src, dst) =
      incr pairs_measured;
      reconv :=
        Pr_baselines.Reconvergence.stretch ~routing ~failures ~src ~dst
        :: !reconv;
      let fcp_trace = Pr_baselines.Fcp.run g ~failures ~src ~dst () in
      fcp := Pr_baselines.Fcp.stretch ~routing ~trace:fcp_trace ~src ~dst :: !fcp;
      let pr_trace =
        Pr_core.Forward.run ~termination:config.termination
          ~quantise:config.quantise_dd ~routing ~cycles ~failures ~src ~dst ()
      in
      if pr_trace.outcome <> Pr_core.Forward.Delivered then
        pr_failures := (src, dst, scenario) :: !pr_failures;
      pr := Pr_core.Forward.stretch ~routing ~trace:pr_trace ~src ~dst :: !pr
    in
    List.iter per_pair pairs
  in
  List.iter measure scenarios;
  let curve samples =
    match samples with [] -> None | s -> Some (Pr_stats.Ccdf.of_samples s)
  in
  let curves =
    List.filter_map
      (fun (scheme, samples) ->
        Option.map (fun c -> (scheme, c)) (curve samples))
      [ (Reconvergence, !reconv); (Fcp, !fcp); (Pr, !pr) ]
  in
  {
    config;
    scenarios = List.length scenarios;
    pairs_measured = !pairs_measured;
    genus;
    curved_edges;
    curves;
    pr_failures = List.rev !pr_failures;
  }

let xs_grid = List.init 29 (fun i -> 1.0 +. (0.5 *. float_of_int i))

let print_gnuplot result =
  Printf.printf
    "# %s, k=%d: %d scenarios, %d affected pairs, genus %d, curved edges %d\n"
    result.config.topology.name result.config.k result.scenarios
    result.pairs_measured result.genus result.curved_edges;
  Printf.printf "# x";
  List.iter (fun (s, _) -> Printf.printf "  P(%s>x)" (scheme_name s)) result.curves;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%5.1f" x;
      List.iter
        (fun (_, ccdf) -> Printf.printf "  %8.4f" (Pr_stats.Ccdf.eval ccdf x))
        result.curves;
      print_newline ())
    xs_grid;
  if result.pr_failures <> [] then begin
    let total = List.length result.pr_failures in
    Printf.printf
      "# WARNING: PR failed to deliver %d connected pairs (%.2f%%) — see EXPERIMENTS.md on genus > 0:\n"
      total
      (100.0 *. float_of_int total /. float_of_int (max 1 result.pairs_measured));
    List.iteri
      (fun i (src, dst, scenario) ->
        if i < 5 then
          Printf.printf "#   %d -> %d under {%s}\n" src dst
            (String.concat ", "
               (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) scenario)))
      result.pr_failures;
    if total > 5 then Printf.printf "#   ... and %d more\n" (total - 5)
  end
