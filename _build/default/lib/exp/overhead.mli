(** The paper's §6 overhead comparison, quantified per topology:
    header bits, router memory and per-failure computation of PR, FCP and
    reconvergence. *)

type row = {
  topology : string;
  nodes : int;
  links : int;
  diameter_hops : int;
  pr_dd_bits : int;          (** DD bits for the hop discriminator *)
  pr_header_bits : int;      (** 1 + DD bits *)
  pr_fits_dscp : bool;       (** the paper's DSCP pool-2 deployment claim *)
  fcp_bits_per_failure : int;(** bits to name one link in the header *)
  fcp_header_bits_worst : int;
      (** worst observed header across all single-failure runs *)
  pr_cycle_entries : int;    (** cycle-following entries network-wide, 2m *)
  pr_routing_entries : int;  (** routing entries network-wide, n(n-1) *)
  pr_spf_per_failure : int;  (** SPF recomputations PR needs at failure time: 0 *)
  reconv_spf_per_failure : int; (** every router recomputes: n *)
  mrc_configurations : int;  (** backup configurations MRC needs; -1 if unbuildable *)
  mrc_header_bits : int;     (** bits to carry the configuration id *)
  mrc_routing_entries : int; (** routing entries across all configurations *)
}

val measure : Pr_topo.Topology.t -> row
(** FCP's worst header is measured by running FCP on every non-bridge
    single-link failure and every affected pair. *)

val table : Pr_topo.Topology.t list -> string
(** Rendered comparison table. *)
