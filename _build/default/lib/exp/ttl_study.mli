(** Deployment question the paper leaves open: PR's recovery walks can be
    long (stretch up to ~15 in Figure 2), and in a real network the IP TTL
    caps them.  This experiment measures, per TTL budget, how many
    otherwise-recoverable packets die of TTL expiry while re-cycling. *)

type row = {
  topology : string;
  k : int;
  ttl : int;
  pairs : int;           (** connected affected pairs *)
  delivered : int;       (** within the TTL budget *)
  died_of_ttl : int;     (** delivered with unlimited TTL, lost with this one *)
  undeliverable : int;   (** lost even with unlimited TTL (genus residue) *)
}

val measure :
  ?seed:int ->
  ?samples:int ->
  ?safe_rotation:Pr_embed.Rotation.t ->
  Pr_topo.Topology.t ->
  k:int ->
  ttls:int list ->
  row list
(** One row per TTL over a shared scenario set (k = 1 exhaustive,
    otherwise [samples] random connected-surviving sets; defaults
    seed 42, samples 60). *)

val table : row list -> string
