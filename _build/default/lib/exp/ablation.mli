(** Ablations for the design choices the paper leaves open (§7):
    how much the embedding quality and the discriminator choice matter. *)

type embedding_row = {
  topology : string;
  embedding : Fig2.embedding_choice;
  faces : int;
  genus : int;
  curved : int;             (** links with both arcs on one face *)
  mean_stretch : float;       (** PR mean stretch over single failures *)
  p95_stretch : float;
  worst_stretch : float;
  undelivered : int;          (** connected pairs PR failed — expect 0 *)
}

val embedding_sweep :
  ?seed:int -> Pr_topo.Topology.t -> embedding_row list
(** One row per embedding choice (geometric, adjacency, random,
    optimised), single-failure workload. *)

val embedding_table : ?seed:int -> Pr_topo.Topology.t list -> string

type discriminator_row = {
  topology : string;
  k : int;
  kind : Pr_core.Discriminator.kind;
  quantised : bool;   (** header-faithful integer DD comparison *)
  dd_bits : int;
  mean_stretch : float;
  undelivered : int;
}

val discriminator_sweep : ?k:int -> Pr_topo.Topology.t -> discriminator_row list
(** Hops, exact weighted, and quantised weighted discriminators on the
    same (PR-safe) embedding and workload ([k] failures per scenario,
    default 1).  For single failures the termination point is the same
    under every discriminator — the difference only shows in header size
    and, at k > 1, in which node ends cycle following. *)

val discriminator_table : Pr_topo.Topology.t list -> string

val embedding_name : Fig2.embedding_choice -> string
