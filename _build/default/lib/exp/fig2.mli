(** The paper's Figure 2: stretch CCDFs of reconvergence, FCP and PR under
    single and multiple link failures on Abilene, Teleglobe and Géant.

    Protocol per panel:
    + enumerate failure scenarios — every non-disconnecting single link for
      k = 1, otherwise [samples] random connected-surviving k-link sets;
    + for every scenario, take the (src, dst) pairs whose failure-free path
      crosses a failure and that remain connected;
    + for every such pair compute the stretch of each scheme (actual path
      cost over failure-free shortest-path cost);
    + plot P(Stretch > x | path). *)

type scheme = Reconvergence | Fcp | Pr

type embedding_choice =
  | Geometric          (** rotation from node coordinates (default) *)
  | Adjacency          (** neighbours in id order — an arbitrary embedding *)
  | Random_rotation    (** uniform random rotation (seeded) *)
  | Optimised          (** annealed minimum-genus search (seeded) *)
  | Safe_optimised     (** the {!Pr_embed.Recommend} pipeline: certified
                           planar embedding when the map is planar,
                           otherwise a curved-edge-free annealed embedding.
                           The deployable choice. *)

type config = {
  topology : Pr_topo.Topology.t;
  k : int;
  samples : int;       (** scenarios when k > 1 (k = 1 is exhaustive) *)
  seed : int;
  termination : Pr_core.Forward.termination;
  discriminator : Pr_core.Discriminator.kind;
  quantise_dd : bool;  (** compare DD values as the integer DD bits carry
                           them (header-faithful mode) *)
  embedding : embedding_choice;
}

val default : Pr_topo.Topology.t -> k:int -> config
(** samples = 200, seed = 42, DD termination, hop discriminator, geometric
    embedding. *)

type result = {
  config : config;
  scenarios : int;
  pairs_measured : int;
  genus : int;                          (** of the embedding used *)
  curved_edges : int;                   (** links with both arcs on one face *)
  curves : (scheme * Pr_stats.Ccdf.t) list;
  pr_failures : (int * int * (int * int) list) list;
      (** (src, dst, failure set) of any connected pair PR failed to
          deliver — expected empty; surfaced rather than hidden *)
}

val scheme_name : scheme -> string

val resolve_rotation :
  config -> Pr_topo.Topology.t -> Pr_embed.Rotation.t
(** The rotation system a config selects (exposed for the ablation and the
    CLI). *)

val run : config -> result

val xs_grid : float list
(** 1.0, 1.5, ..., 15.0 — the paper's x-axis. *)

val print_gnuplot : result -> unit
(** Columns: x, then one CCDF column per scheme — directly plottable. *)
