module Topology = Pr_topo.Topology

let embedding_name = function
  | Fig2.Geometric -> "geometric"
  | Fig2.Adjacency -> "adjacency"
  | Fig2.Random_rotation -> "random"
  | Fig2.Optimised -> "optimised"
  | Fig2.Safe_optimised -> "safe-optimised"

type embedding_row = {
  topology : string;
  embedding : Fig2.embedding_choice;
  faces : int;
  genus : int;
  curved : int;
  mean_stretch : float;
  p95_stretch : float;
  worst_stretch : float;
  undelivered : int;
}

let pr_curve (result : Fig2.result) =
  match List.assoc_opt Fig2.Pr result.curves with
  | Some c -> c
  | None -> invalid_arg "Ablation: no PR curve (no affected pairs?)"

let embedding_sweep ?(seed = 42) topo =
  let choices =
    [
      Fig2.Geometric;
      Fig2.Adjacency;
      Fig2.Random_rotation;
      Fig2.Optimised;
      Fig2.Safe_optimised;
    ]
  in
  let for_choice embedding =
    let config = { (Fig2.default topo ~k:1) with embedding; seed } in
    let rotation = Fig2.resolve_rotation config topo in
    let faces = Pr_embed.Faces.compute rotation in
    let result = Fig2.run config in
    let curve = pr_curve result in
    {
      topology = topo.Topology.name;
      embedding;
      faces = Pr_embed.Faces.count faces;
      genus = Pr_embed.Surface.genus faces;
      curved = List.length (Pr_embed.Validate.curved_edges faces);
      mean_stretch = Option.value ~default:infinity (Pr_stats.Ccdf.mean_finite curve);
      p95_stretch = Pr_stats.Ccdf.quantile curve 0.95;
      worst_stretch =
        Option.value ~default:infinity (Pr_stats.Ccdf.max_finite curve);
      undelivered = List.length result.pr_failures;
    }
  in
  List.map for_choice choices

let embedding_table ?seed topologies =
  let rows = List.concat_map (embedding_sweep ?seed) topologies in
  Pr_util.Tablefmt.render
    ~header:
      [
        "topology"; "embedding"; "faces"; "genus"; "curved"; "mean"; "p95";
        "worst"; "undelivered";
      ]
    (List.map
       (fun r ->
         [
           r.topology;
           embedding_name r.embedding;
           string_of_int r.faces;
           string_of_int r.genus;
           string_of_int r.curved;
           Pr_util.Tablefmt.float_cell r.mean_stretch;
           Pr_util.Tablefmt.float_cell r.p95_stretch;
           Pr_util.Tablefmt.float_cell r.worst_stretch;
           string_of_int r.undelivered;
         ])
       rows)

type discriminator_row = {
  topology : string;
  k : int;
  kind : Pr_core.Discriminator.kind;
  quantised : bool;
  dd_bits : int;
  mean_stretch : float;
  undelivered : int;
}

let discriminator_sweep ?(k = 1) topo =
  let for_kind kind quantised =
    (* The PR-safe embedding isolates the discriminator comparison from
       curved-edge losses. *)
    let config =
      {
        (Fig2.default topo ~k) with
        samples = 100;
        discriminator = kind;
        quantise_dd = quantised;
        embedding = Fig2.Safe_optimised;
      }
    in
    let result = Fig2.run config in
    let curve = pr_curve result in
    {
      topology = topo.Topology.name;
      k;
      kind;
      quantised;
      dd_bits = Pr_core.Discriminator.bits_needed kind topo.Topology.graph;
      mean_stretch = Option.value ~default:infinity (Pr_stats.Ccdf.mean_finite curve);
      undelivered = List.length result.pr_failures;
    }
  in
  [
    for_kind Pr_core.Discriminator.Hops false;
    for_kind Pr_core.Discriminator.Weighted false;
    for_kind Pr_core.Discriminator.Weighted true;
  ]

let discriminator_table topologies =
  let rows =
    List.concat_map
      (fun topo -> discriminator_sweep ~k:1 topo @ discriminator_sweep ~k:3 topo)
      topologies
  in
  Pr_util.Tablefmt.render
    ~header:
      [ "topology"; "k"; "discriminator"; "quantised"; "DD bits"; "mean stretch"; "undelivered" ]
    (List.map
       (fun r ->
         [
           r.topology;
           string_of_int r.k;
           Pr_core.Discriminator.to_string r.kind;
           (if r.quantised then "yes" else "no");
           string_of_int r.dd_bits;
           Pr_util.Tablefmt.float_cell r.mean_stretch;
           string_of_int r.undelivered;
         ])
       rows)
