module Forward = Pr_core.Forward

type verdict = Delivers of int | Drops | Loops of int

type state = {
  at : int;
  from_ : int option;
  pr : bool;
  dd : float;
}

let verdict ?termination ~routing ~cycles ~failures ~src ~dst () =
  let seen = Hashtbl.create 64 in
  let rec advance state hops =
    if state.at = dst then Delivers hops
    else if Hashtbl.mem seen state then Loops hops
    else begin
      Hashtbl.replace seen state ();
      match
        Forward.step ?termination ~routing ~cycles ~failures ~dst
          ~node:state.at ~arrived_from:state.from_
          ~header:{ Forward.pr_bit = state.pr; dd_value = state.dd }
          ()
      with
      | Forward.Stuck _ -> Drops
      | Forward.Transmit { next; header; _ } ->
          advance
            {
              at = next;
              from_ = Some state.at;
              pr = header.Forward.pr_bit;
              dd = header.Forward.dd_value;
            }
            (hops + 1)
    end
  in
  advance { at = src; from_ = None; pr = false; dd = 0.0 } 0

let agrees_with_engine ?termination ~routing ~cycles ~failures ~src ~dst () =
  let exact = verdict ?termination ~routing ~cycles ~failures ~src ~dst () in
  (* A TTL beyond the state-space size, so the engine's Ttl_exceeded can
     only mean a genuine loop. *)
  let n = Pr_graph.Graph.n (Pr_core.Routing.graph routing) in
  let ttl = (4 * n * n * n) + 16 in
  let trace = Forward.run ?termination ~ttl ~routing ~cycles ~failures ~src ~dst () in
  match (exact, trace.Forward.outcome) with
  | Delivers hops, Forward.Delivered ->
      hops = Pr_graph.Paths.hops trace.Forward.path
  | Drops, (Forward.Dropped_no_interface | Forward.Dropped_unreachable) -> true
  | Loops _, Forward.Ttl_exceeded -> true
  | (Delivers _ | Drops | Loops _), _ -> false
