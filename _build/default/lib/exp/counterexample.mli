(** Counterexample search for PR's delivery guarantee.

    Randomly samples small 2-edge-connected graphs, rotation systems and
    connected-surviving failure sets, looking for a (src, dst) pair the DD
    termination condition fails to deliver; any hit is then greedily
    minimised (failures first, then chords).  Running this against planar
    embeddings finds nothing (the guarantee holds there — a standing
    property test); against random rotations it produces the small
    genus > 0 witnesses documented in EXPERIMENTS.md. *)

type found = {
  graph : Pr_graph.Graph.t;
  orders : int list array;        (** the rotation system, per node *)
  failures : (int * int) list;
  src : int;
  dst : int;
  genus : int;
  curved_edges : int;
  outcome : Pr_core.Forward.outcome;
}

val search :
  ?max_nodes:int ->
  ?max_failures:int ->
  ?attempts:int ->
  seed:int ->
  unit ->
  found option
(** Defaults: graphs of up to 9 nodes, up to 3 simultaneous failures,
    2000 attempts.  Deterministic in [seed]. *)

val verify : found -> bool
(** Re-runs the forwarding engine on the witness: true when it still
    fails to deliver (used to guard minimisation and by the tests). *)

val describe : found -> string
(** Human-readable report of the witness. *)
