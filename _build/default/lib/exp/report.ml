let paper_panels () =
  let abilene = Pr_topo.Abilene.topology () in
  let teleglobe = Pr_topo.Teleglobe.topology () in
  let geant = Pr_topo.Geant.topology () in
  let safe config = { config with Fig2.embedding = Fig2.Safe_optimised } in
  [
    ("fig2a", Fig2.default abilene ~k:1);
    ("fig2b", safe (Fig2.default teleglobe ~k:1));
    ("fig2c", safe (Fig2.default geant ~k:1));
    ("fig2d", { (Fig2.default abilene ~k:4) with samples = 100 });
    ("fig2e", safe { (Fig2.default teleglobe ~k:10) with samples = 100 });
    ("fig2f", safe { (Fig2.default geant ~k:16) with samples = 100 });
  ]

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Report: %s exists and is not a directory" dir)

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let scheme_title = function
  | Fig2.Reconvergence -> "Re-convergence"
  | Fig2.Fcp -> "Failure-Carrying Packets"
  | Fig2.Pr -> "Packet Re-cycling"

let write_fig2 ~dir ~name (result : Fig2.result) =
  ensure_dir dir;
  let dat = Filename.concat dir (name ^ ".dat") in
  with_file dat (fun oc ->
      Printf.fprintf oc "# %s k=%d scenarios=%d pairs=%d genus=%d curved=%d\n"
        result.config.topology.name result.config.k result.scenarios
        result.pairs_measured result.genus result.curved_edges;
      Printf.fprintf oc "# x";
      List.iter
        (fun (s, _) -> Printf.fprintf oc " %s" (Fig2.scheme_name s))
        result.curves;
      output_char oc '\n';
      List.iter
        (fun x ->
          Printf.fprintf oc "%g" x;
          List.iter
            (fun (_, ccdf) -> Printf.fprintf oc " %.6f" (Pr_stats.Ccdf.eval ccdf x))
            result.curves;
          output_char oc '\n')
        Fig2.xs_grid);
  let gp = Filename.concat dir (name ^ ".gp") in
  with_file gp (fun oc ->
      Printf.fprintf oc "set terminal pngcairo size 640,480\n";
      Printf.fprintf oc "set output '%s.png'\n" name;
      Printf.fprintf oc "set xlabel 'Stretch'\n";
      Printf.fprintf oc "set ylabel 'P(Stretch > x | path)'\n";
      Printf.fprintf oc "set xrange [1:15]\nset yrange [0:1]\nset key top right\n";
      Printf.fprintf oc "set title '%s, k = %d failures'\n"
        result.config.topology.name result.config.k;
      let plots =
        List.mapi
          (fun i (s, _) ->
            Printf.sprintf "'%s.dat' using 1:%d with linespoints title '%s'"
              name (i + 2) (scheme_title s))
          result.curves
      in
      Printf.fprintf oc "plot %s\n" (String.concat ", \\\n     " plots))

let write_paper_figures ?(echo = ignore) ~dir () =
  ensure_dir dir;
  let names =
    List.map
      (fun (name, config) ->
        let result = Fig2.run config in
        write_fig2 ~dir ~name result;
        echo
          (Printf.sprintf "%s: %d pairs, genus %d, %d PR losses -> %s/%s.dat"
             name result.Fig2.pairs_measured result.Fig2.genus
             (List.length result.Fig2.pr_failures)
             dir name);
        name)
      (paper_panels ())
  in
  with_file (Filename.concat dir "fig2.gp") (fun oc ->
      Printf.fprintf oc "set terminal pngcairo size 1800,900\n";
      Printf.fprintf oc "set output 'fig2.png'\n";
      Printf.fprintf oc "set multiplot layout 2,3\n";
      Printf.fprintf oc "set xlabel 'Stretch'\nset ylabel 'P(Stretch > x | path)'\n";
      Printf.fprintf oc "set xrange [1:15]\nset yrange [0:1]\n";
      List.iter
        (fun name ->
          Printf.fprintf oc
            "plot '%s.dat' using 1:2 with linespoints title 'Re-convergence', \\\n\
            \     '%s.dat' using 1:3 with linespoints title 'FCP', \\\n\
            \     '%s.dat' using 1:4 with linespoints title 'PR'\n"
            name name name)
        names;
      Printf.fprintf oc "unset multiplot\n")
