(** Exact loop detection for the forwarding protocol.

    A packet's journey is a deterministic walk over the finite state space
    (current node, previous node, PR bit, DD value), so instead of bounding
    it with a TTL we can detect repetition exactly: the packet loops if
    and only if a state recurs.  This gives a second, independent
    implementation of the forwarding semantics used to differentially test
    {!Pr_core.Forward.run} (same paths, same verdicts, no TTL
    approximation). *)

type verdict =
  | Delivers of int   (** hops taken *)
  | Drops             (** no live interface / no route *)
  | Loops of int      (** exact loop detected after this many hops *)

val verdict :
  ?termination:Pr_core.Forward.termination ->
  routing:Pr_core.Routing.t ->
  cycles:Pr_core.Cycle_table.t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  verdict

val agrees_with_engine :
  ?termination:Pr_core.Forward.termination ->
  routing:Pr_core.Routing.t ->
  cycles:Pr_core.Cycle_table.t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  bool
(** Differential test: the exact verdict matches {!Pr_core.Forward.run}'s
    outcome ([Loops] ↔ [Ttl_exceeded], [Drops] ↔ [Dropped_*]). *)
