module Topology = Pr_topo.Topology

type row = {
  topology : string;
  k : int;
  scenarios : int;
  pairs : int;
  pr_delivered : int;
  pr_geometric_delivered : int;
  pr_simple_delivered : int;
  lfa_delivered : int;
  mrc_delivered : int;
}

let safe_rotation_of ?seed (topo : Topology.t) =
  (Pr_embed.Recommend.for_topology ?seed topo).Pr_embed.Recommend.rotation

let run ?(seed = 42) ?safe_rotation (topo : Topology.t) ~name ~k failures_list =
  let g = topo.graph in
  let routing = Pr_core.Routing.build g in
  let safe_rotation =
    match safe_rotation with Some r -> r | None -> safe_rotation_of ~seed topo
  in
  let safe_cycles = Pr_core.Cycle_table.build safe_rotation in
  let geo_cycles = Pr_core.Cycle_table.build (Pr_embed.Geometric.of_topology topo) in
  let mrc = Pr_baselines.Mrc.build g in
  let pairs = ref 0 in
  let pr_delivered = ref 0 in
  let pr_geometric_delivered = ref 0 in
  let pr_simple_delivered = ref 0 in
  let lfa_delivered = ref 0 in
  let mrc_delivered = ref 0 in
  let delivered_pr ?termination cycles failures src dst =
    let trace =
      Pr_core.Forward.run ?termination ~routing ~cycles ~failures ~src ~dst ()
    in
    trace.Pr_core.Forward.outcome = Pr_core.Forward.Delivered
  in
  let run_scenario failures =
    let connected = Pr_core.Scenario.connected_affected_pairs routing failures in
    let per_pair (src, dst) =
      incr pairs;
      if delivered_pr safe_cycles failures src dst then incr pr_delivered;
      if delivered_pr geo_cycles failures src dst then incr pr_geometric_delivered;
      if
        delivered_pr ~termination:Pr_core.Forward.Simple safe_cycles failures
          src dst
      then incr pr_simple_delivered;
      let lfa_trace = Pr_baselines.Lfa.run routing ~failures ~src ~dst () in
      if lfa_trace.Pr_baselines.Lfa.outcome = Pr_baselines.Lfa.Delivered then
        incr lfa_delivered;
      match mrc with
      | None -> ()
      | Some t ->
          if
            (Pr_baselines.Mrc.run t ~failures ~src ~dst ()).Pr_baselines.Mrc.outcome
            = Pr_baselines.Mrc.Delivered
          then incr mrc_delivered
    in
    List.iter per_pair connected
  in
  List.iter run_scenario failures_list;
  {
    topology = name;
    k;
    scenarios = List.length failures_list;
    pairs = !pairs;
    pr_delivered = !pr_delivered;
    pr_geometric_delivered = !pr_geometric_delivered;
    pr_simple_delivered = !pr_simple_delivered;
    lfa_delivered = !lfa_delivered;
    mrc_delivered = (match mrc with None -> -1 | Some _ -> !mrc_delivered);
  }

let measure ?seed ?(samples = 100) ?safe_rotation (topo : Topology.t) ~k =
  let g = topo.graph in
  let scenarios =
    if k = 1 then Pr_core.Scenario.single_links g
    else
      Pr_core.Scenario.random_multi
        (Pr_util.Rng.create ~seed:(Option.value seed ~default:42))
        g ~k ~samples
  in
  run ?seed ?safe_rotation topo ~name:topo.name ~k
    (List.map (Pr_core.Failure.of_list g) scenarios)

let measure_double ?seed ?safe_rotation (topo : Topology.t) =
  let g = topo.graph in
  run ?seed ?safe_rotation topo ~name:(topo.name ^ " (all pairs)") ~k:2
    (List.map (Pr_core.Failure.of_list g) (Pr_core.Scenario.double_links g))

let measure_nodes ?seed ?(samples = 100) ?safe_rotation (topo : Topology.t) ~k =
  let g = topo.graph in
  let node_scenarios =
    if k = 1 then
      (* Every router whose loss keeps the survivors connected. *)
      List.filter_map
        (fun v ->
          let blocked i =
            let e = Pr_graph.Graph.edge g i in
            e.u = v || e.v = v
          in
          let label, _ = Pr_graph.Connectivity.components ~blocked g in
          let reference = ref (-1) in
          let connected = ref true in
          for w = 0 to Pr_graph.Graph.n g - 1 do
            if w <> v then
              if !reference = -1 then reference := label.(w)
              else if label.(w) <> !reference then connected := false
          done;
          if !connected then Some [ v ] else None)
        (List.init (Pr_graph.Graph.n g) Fun.id)
    else
      Pr_core.Scenario.random_nodes
        (Pr_util.Rng.create ~seed:(Option.value seed ~default:42))
        g ~k ~samples
  in
  run ?seed ?safe_rotation topo ~name:(topo.name ^ "+nodes") ~k
    (List.map (Pr_core.Failure.of_nodes g) node_scenarios)

let sweep ?seed ?samples (topo : Topology.t) ~ks =
  let cycle_rank =
    Pr_graph.Graph.m topo.graph - Pr_graph.Graph.n topo.graph + 1
  in
  let safe_rotation = safe_rotation_of ?seed topo in
  List.filter_map
    (fun k ->
      if k >= 1 && k <= cycle_rank then
        Some (measure ?seed ?samples ~safe_rotation topo ~k)
      else None)
    ks

let ratio num denom =
  if denom = 0 then "n/a"
  else Pr_util.Tablefmt.float_cell (float_of_int num /. float_of_int denom)

let table rows =
  Pr_util.Tablefmt.render
    ~header:
      [
        "topology"; "k"; "scenarios"; "pairs"; "PR(safe)"; "PR(geometric)";
        "PR(simple)"; "LFA"; "MRC";
      ]
    (List.map
       (fun r ->
         [
           r.topology;
           string_of_int r.k;
           string_of_int r.scenarios;
           string_of_int r.pairs;
           ratio r.pr_delivered r.pairs;
           ratio r.pr_geometric_delivered r.pairs;
           ratio r.pr_simple_delivered r.pairs;
           ratio r.lfa_delivered r.pairs;
           (if r.mrc_delivered < 0 then "n/a" else ratio r.mrc_delivered r.pairs);
         ])
       rows)
