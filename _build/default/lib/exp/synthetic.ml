module Topology = Pr_topo.Topology

type row = {
  topology : string;
  nodes : int;
  links : int;
  certified_planar : bool;
  genus : int;
  curved : int;
  reconv_mean : float;
  fcp_mean : float;
  pr_mean : float;
  pr_p95 : float;
  pr_undelivered : int;
}

(* Waxman graphs can come out disconnected: keep the giant component. *)
let giant_component (topo : Topology.t) =
  let labels', count = Pr_graph.Connectivity.components topo.graph in
  if count <= 1 then topo
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) labels';
    let best = ref 0 in
    Array.iteri (fun c size -> if size > sizes.(!best) then best := c) sizes;
    let nodes =
      List.filter (fun v -> labels'.(v) = !best) (List.init (Topology.n topo) Fun.id)
    in
    let graph, mapping = Pr_graph.Graph.induced topo.graph nodes in
    Topology.make ~name:topo.name
      ~labels:(Array.map (fun v -> topo.labels.(v)) mapping)
      ~coords:(Array.map (fun v -> topo.coords.(v)) mapping)
      (Pr_graph.Graph.fold_edges
         (fun _ (e : Pr_graph.Graph.edge) acc -> (e.u, e.v, e.w) :: acc)
         graph []
      |> List.rev)
  end

let families ?(seed = 42) () =
  let rng = Pr_util.Rng.create ~seed in
  [
    Pr_topo.Generate.waxman (Pr_util.Rng.split rng) ~n:40 ~alpha:0.9 ~beta:0.12
    |> Topology.with_unit_weights |> giant_component;
    Pr_topo.Generate.barabasi_albert (Pr_util.Rng.split rng) ~n:40 ~k:2;
    Pr_topo.Generate.two_connected (Pr_util.Rng.split rng) ~n:30 ~extra:12;
    Pr_topo.Generate.grid ~rows:6 ~cols:6;
    Pr_topo.Generate.torus ~rows:5 ~cols:5;
    Pr_topo.Generate.hypercube 5;
    Pr_topo.Generate.apollonian (Pr_util.Rng.split rng) ~n:30;
    Pr_topo.Generate.hierarchical (Pr_util.Rng.split rng) ~regions:8
      ~per_region:6 ~extra:6;
  ]

let mean_of ccdf = Option.value ~default:infinity (Pr_stats.Ccdf.mean_finite ccdf)

let measure ?(seed = 42) topo =
  let quality = Pr_embed.Recommend.for_topology ~seed topo in
  let removable_curved =
    List.length
      (Pr_embed.Validate.removable_curved_edges
         (Pr_embed.Faces.compute quality.Pr_embed.Recommend.rotation))
  in
  let config =
    { (Fig2.default topo ~k:1) with seed; embedding = Fig2.Safe_optimised }
  in
  let result = Fig2.run config in
  let curve scheme = List.assoc scheme result.Fig2.curves in
  let pr = curve Fig2.Pr in
  {
    topology = topo.Topology.name;
    nodes = Topology.n topo;
    links = Topology.m topo;
    certified_planar = quality.Pr_embed.Recommend.certified_planar;
    genus = quality.Pr_embed.Recommend.genus;
    curved = removable_curved;
    reconv_mean = mean_of (curve Fig2.Reconvergence);
    fcp_mean = mean_of (curve Fig2.Fcp);
    pr_mean = mean_of pr;
    pr_p95 = Pr_stats.Ccdf.quantile pr 0.95;
    pr_undelivered = List.length result.Fig2.pr_failures;
  }

let table ?seed () =
  let rows = List.map (measure ?seed) (families ?seed ()) in
  Pr_util.Tablefmt.render
    ~header:
      [
        "topology"; "n"; "m"; "planar"; "genus"; "curved"; "reconv mean";
        "FCP mean"; "PR mean"; "PR p95"; "PR undelivered";
      ]
    (List.map
       (fun r ->
         [
           r.topology;
           string_of_int r.nodes;
           string_of_int r.links;
           (if r.certified_planar then "yes" else "no");
           string_of_int r.genus;
           string_of_int r.curved;
           Pr_util.Tablefmt.float_cell r.reconv_mean;
           Pr_util.Tablefmt.float_cell r.fcp_mean;
           Pr_util.Tablefmt.float_cell r.pr_mean;
           Pr_util.Tablefmt.float_cell r.pr_p95;
           string_of_int r.pr_undelivered;
         ])
       rows)
