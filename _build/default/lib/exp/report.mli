(** File output for the experiments: gnuplot-ready data and scripts that
    redraw the paper's Figure 2 panels. *)

val paper_panels : unit -> (string * Fig2.config) list
(** The six configurations of the paper's Figure 2, in paper order
    ("fig2a" … "fig2f"): Abilene/Teleglobe/Géant × single/multi failures.
    Abilene uses its (planar) geometric embedding; the non-planar maps use
    the PR-safe annealed embedding (DESIGN.md §3). *)

val write_fig2 : dir:string -> name:string -> Fig2.result -> unit
(** Writes [name.dat] (columns: x, then one CCDF per scheme) and [name.gp]
    (a gnuplot script in the paper's panel style) into [dir], creating it
    if needed. *)

val write_paper_figures : ?echo:(string -> unit) -> dir:string -> unit -> unit
(** Runs all six panels, writes their data and scripts plus a [fig2.gp]
    master script that renders the full 2x3 figure.  [echo] receives a
    progress line per panel. *)
