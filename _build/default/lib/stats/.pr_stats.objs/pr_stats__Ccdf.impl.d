lib/stats/ccdf.ml: Array Float List
