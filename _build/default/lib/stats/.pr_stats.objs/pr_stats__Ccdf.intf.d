lib/stats/ccdf.mli:
