type t = { sorted : float array }

let of_samples samples =
  if samples = [] then invalid_arg "Ccdf.of_samples: empty";
  List.iter
    (fun s -> if Float.is_nan s then invalid_arg "Ccdf.of_samples: NaN sample")
    samples;
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Index of the first element > x, by binary search. *)
let first_greater t x =
  let lo = ref 0 and hi = ref (Array.length t.sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sorted.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let eval t x =
  let above = Array.length t.sorted - first_greater t x in
  float_of_int above /. float_of_int (Array.length t.sorted)

let series t ~xs = List.map (fun x -> (x, eval t x)) xs

let min_sample t = t.sorted.(0)

let max_finite t =
  let rec scan i =
    if i < 0 then None
    else if Float.is_finite t.sorted.(i) then Some t.sorted.(i)
    else scan (i - 1)
  in
  scan (Array.length t.sorted - 1)

let infinite_fraction t =
  let infinite = Array.fold_left (fun acc s -> if Float.is_finite s then acc else acc + 1) 0 t.sorted in
  float_of_int infinite /. float_of_int (Array.length t.sorted)

let mean_finite t =
  let sum, count =
    Array.fold_left
      (fun (sum, count) s -> if Float.is_finite s then (sum +. s, count + 1) else (sum, count))
      (0.0, 0) t.sorted
  in
  if count = 0 then None else Some (sum /. float_of_int count)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Ccdf.quantile: q out of range";
  let n = Array.length t.sorted in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  t.sorted.(max 0 (min (n - 1) (rank - 1)))
