(** Scalar summaries of sample sets. *)

type t = {
  count : int;
  mean : float;
  stddev : float;   (** population standard deviation *)
  min : float;
  max : float;
}

val of_samples : float list -> t
(** Raises [Invalid_argument] on an empty list or non-finite samples. *)

val pp : Format.formatter -> t -> unit
