type t = { count : int; mean : float; stddev : float; min : float; max : float }

let of_samples samples =
  if samples = [] then invalid_arg "Summary.of_samples: empty";
  List.iter
    (fun s ->
      if not (Float.is_finite s) then
        invalid_arg "Summary.of_samples: non-finite sample")
    samples;
  let count = List.length samples in
  let fcount = float_of_int count in
  let mean = List.fold_left ( +. ) 0.0 samples /. fcount in
  let var =
    List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.0)) 0.0 samples /. fcount
  in
  {
    count;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity samples;
    max = List.fold_left Float.max neg_infinity samples;
  }

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count t.mean
    t.stddev t.min t.max
