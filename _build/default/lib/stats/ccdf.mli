(** Complementary cumulative distribution functions — the form of every
    panel in the paper's Figure 2, P(Stretch > x | path). *)

type t

val of_samples : float list -> t
(** Non-finite samples are kept and counted as larger than every finite
    threshold (an undelivered packet has infinite stretch).  Raises
    [Invalid_argument] on an empty list. *)

val size : t -> int

val eval : t -> float -> float
(** [eval t x] = fraction of samples strictly greater than [x]. *)

val series : t -> xs:float list -> (float * float) list
(** CCDF evaluated on a grid — the plotted curve. *)

val min_sample : t -> float

val max_finite : t -> float option
(** Largest finite sample, if any. *)

val infinite_fraction : t -> float

val mean_finite : t -> float option

val quantile : t -> float -> float
(** [quantile t q] with [0 <= q <= 1]: smallest sample [s] such that at
    least a [q] fraction of samples are [<= s] (nearest-rank).  May be
    [infinity] if the distribution has non-finite mass there. *)
