let components ?blocked g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) = -1 then begin
      let hops = Traversal.bfs_hops ?blocked g ~source:v in
      Array.iteri (fun w h -> if h < max_int then label.(w) <- !count) hops;
      incr count
    end
  done;
  (label, !count)

let is_connected ?blocked g =
  let _, count = components ?blocked g in
  count <= 1

let same_component ?blocked g a b =
  let label, _ = components ?blocked g in
  label.(a) = label.(b)

let connected_without g removals =
  let removed = Hashtbl.create (2 * List.length removals) in
  List.iter
    (fun (u, v) -> Hashtbl.replace removed (Graph.edge_index g u v) ())
    removals;
  let uf = Pr_util.Union_find.create (Graph.n g) in
  Graph.iter_edges
    (fun i e ->
      if not (Hashtbl.mem removed i) then ignore (Pr_util.Union_find.union uf e.u e.v))
    g;
  Pr_util.Union_find.count uf <= 1

(* Iterative Tarjan lowlink computation shared by bridges and articulation
   points.  The traversal is iterative to survive large random graphs in
   property tests without stack overflows. *)
type lowlink = {
  disc : int array;
  low : int array;
  parent_edge : int array; (* edge index used to enter the node, -1 at roots *)
}

let lowlinks g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let parent_edge = Array.make n (-1) in
  let time = ref 0 in
  let on_finish = ref (fun ~child:_ ~parent:_ -> ()) in
  let visit_root root children_of_root =
    (* Explicit stack of (node, neighbour cursor). *)
    let stack = Stack.create () in
    disc.(root) <- !time;
    low.(root) <- !time;
    incr time;
    Stack.push (root, ref 0) stack;
    while not (Stack.is_empty stack) do
      let v, cursor = Stack.top stack in
      let nbrs = Graph.neighbours g v in
      if !cursor < Array.length nbrs then begin
        let w = nbrs.(!cursor) in
        incr cursor;
        let via = Graph.edge_index g v w in
        if disc.(w) = -1 then begin
          parent_edge.(w) <- via;
          disc.(w) <- !time;
          low.(w) <- !time;
          incr time;
          if v = root then incr children_of_root;
          Stack.push (w, ref 0) stack
        end
        else if via <> parent_edge.(v) then low.(v) <- min low.(v) disc.(w)
      end
      else begin
        ignore (Stack.pop stack);
        if not (Stack.is_empty stack) then begin
          let p, _ = Stack.top stack in
          low.(p) <- min low.(p) low.(v);
          !on_finish ~child:v ~parent:p
        end
      end
    done
  in
  let run ~finish =
    on_finish := finish;
    Array.fill disc 0 n (-1);
    Array.fill low 0 n max_int;
    Array.fill parent_edge 0 n (-1);
    time := 0;
    let roots = ref [] in
    for v = 0 to n - 1 do
      if disc.(v) = -1 then begin
        let children = ref 0 in
        visit_root v children;
        roots := (v, !children) :: !roots
      end
    done;
    !roots
  in
  ({ disc; low; parent_edge }, run)

let bridges g =
  let state, run = lowlinks g in
  let found = ref [] in
  let finish ~child ~parent =
    if state.low.(child) > state.disc.(parent) then begin
      let u, v = if parent < child then (parent, child) else (child, parent) in
      found := (u, v) :: !found
    end
  in
  let _ = run ~finish in
  List.sort compare !found

let articulation_points g =
  let state, run = lowlinks g in
  let cut = Array.make (Graph.n g) false in
  let finish ~child ~parent =
    if state.low.(child) >= state.disc.(parent) then cut.(parent) <- true
  in
  let roots = run ~finish in
  (* Root rule: a DFS root is an articulation point iff it has >= 2 DFS
     children. The finish rule above may have marked it spuriously. *)
  List.iter (fun (root, children) -> cut.(root) <- children >= 2) roots;
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if cut.(v) then out := v :: !out
  done;
  !out

let blocks g =
  (* Hopcroft–Tarjan: DFS with an edge stack; when a child's lowlink
     reaches its parent's discovery time, pop the edges of one block. *)
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let parent_edge = Array.make n (-1) in
  let time = ref 0 in
  let edge_stack = Stack.create () in
  let out = ref [] in
  let canon u v = if u < v then (u, v) else (v, u) in
  let pop_block ~until =
    let block = ref [] in
    let continue = ref true in
    while !continue && not (Stack.is_empty edge_stack) do
      let e = Stack.pop edge_stack in
      block := e :: !block;
      if e = until then continue := false
    done;
    out := List.sort compare !block :: !out
  in
  let rec visit v =
    disc.(v) <- !time;
    low.(v) <- !time;
    incr time;
    Array.iter
      (fun w ->
        let via = Graph.edge_index g v w in
        if disc.(w) = -1 then begin
          parent_edge.(w) <- via;
          Stack.push (canon v w) edge_stack;
          visit w;
          low.(v) <- min low.(v) low.(w);
          if low.(w) >= disc.(v) then pop_block ~until:(canon v w)
        end
        else if via <> parent_edge.(v) && disc.(w) < disc.(v) then begin
          (* Back edge, recorded once (towards the ancestor). *)
          Stack.push (canon v w) edge_stack;
          low.(v) <- min low.(v) disc.(w)
        end)
      (Graph.neighbours g v)
  in
  for v = 0 to n - 1 do
    if disc.(v) = -1 then visit v
  done;
  List.sort compare !out

let is_two_edge_connected g =
  Graph.n g >= 2 && is_connected g && bridges g = []

let is_biconnected g =
  Graph.n g >= 3 && is_connected g && articulation_points g = []
