type tree = {
  root : int;
  dist : float array;
  parent : int array;
  hops : int array;
}

let tree ?(blocked = fun _ -> false) g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Dijkstra.tree: root out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let hops = Array.make n max_int in
  let settled = Array.make n false in
  let heap = Pr_util.Heap.create () in
  dist.(root) <- 0.0;
  parent.(root) <- root;
  hops.(root) <- 0;
  Pr_util.Heap.push heap 0.0 root;
  let rec drain () =
    match Pr_util.Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) && d <= dist.(v) then begin
          settled.(v) <- true;
          let relax w =
            if not settled.(w) && not (blocked (Graph.edge_index g v w)) then begin
              let candidate = dist.(v) +. Graph.weight g v w in
              if candidate < dist.(w) then begin
                dist.(w) <- candidate;
                parent.(w) <- v;
                hops.(w) <- hops.(v) + 1;
                Pr_util.Heap.push heap candidate w
              end
              else if candidate = dist.(w) && v < parent.(w) then begin
                (* Deterministic tie-break: among equal-cost predecessors pick
                   the smallest id.  Distances are unchanged so the heap needs
                   no update. *)
                parent.(w) <- v;
                hops.(w) <- hops.(v) + 1
              end
            end
          in
          Array.iter relax (Graph.neighbours g v)
        end;
        drain ()
  in
  drain ();
  { root; dist; parent; hops }

let all_roots ?blocked g = Array.init (Graph.n g) (fun root -> tree ?blocked g ~root)

let reachable t v = t.dist.(v) < infinity

let next_hop t v =
  if v = t.root || not (reachable t v) then None else Some t.parent.(v)

let distance t v = t.dist.(v)

let hop_count t v = t.hops.(v)

let path_to_root t v =
  if not (reachable t v) then None
  else begin
    let rec walk v acc =
      if v = t.root then List.rev (v :: acc) else walk t.parent.(v) (v :: acc)
    in
    Some (walk v [])
  end

let diameter_fold f init g =
  let trees = all_roots g in
  Array.fold_left
    (fun acc t ->
      let acc = ref acc in
      for v = 0 to Graph.n g - 1 do
        if reachable t v then acc := f !acc t v
      done;
      !acc)
    init trees

let diameter_hops g = diameter_fold (fun acc t v -> max acc t.hops.(v)) 0 g

let diameter_weight g = diameter_fold (fun acc t v -> Float.max acc t.dist.(v)) 0.0 g
