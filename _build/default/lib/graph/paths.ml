let rec pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: pairs rest
  | [ _ ] | [] -> []

let is_walk g path = List.for_all (fun (u, v) -> Graph.has_edge g u v) (pairs path)

let cost g path =
  List.fold_left (fun acc (u, v) -> acc +. Graph.weight g u v) 0.0 (pairs path)

let hops path = max 0 (List.length path - 1)

let edges_of_walk g path = List.map (fun (u, v) -> Graph.edge_index g u v) (pairs path)

let uses_edge g path u v =
  let target = Graph.edge_index g u v in
  List.exists (fun i -> i = target) (edges_of_walk g path)

let pp ppf path =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
       Format.pp_print_int)
    path
