(** Connectivity, components, bridges and biconnectivity.

    PR's single-failure guarantee requires 2-edge-connectivity; failure
    scenario generation must keep the surviving graph connected.  These are
    the predicates that enforce both. *)

val components : ?blocked:(int -> bool) -> Graph.t -> int array * int
(** [components g] labels each node with a component id in [\[0, count)];
    returns the labels and the component count.  Component ids are assigned
    in increasing order of their smallest node. *)

val is_connected : ?blocked:(int -> bool) -> Graph.t -> bool
(** True when the graph has at most one component ([n <= 1] counts). *)

val same_component : ?blocked:(int -> bool) -> Graph.t -> int -> int -> bool

val connected_without : Graph.t -> (int * int) list -> bool
(** [connected_without g removals] — connectivity of the surviving graph,
    computed with union-find without rebuilding the graph. *)

val bridges : Graph.t -> (int * int) list
(** Bridge edges (canonical orientation, increasing order). *)

val articulation_points : Graph.t -> int list

val blocks : Graph.t -> (int * int) list list
(** Biconnected components (blocks): a partition of the edge set such that
    two edges share a block iff they lie on a common simple cycle.
    Bridges form singleton blocks.  Edges are in canonical orientation;
    blocks are sorted by their smallest edge.  Planarity and embedding
    algorithms work block by block. *)

val is_two_edge_connected : Graph.t -> bool
(** Connected, at least 2 nodes, and bridge-free. *)

val is_biconnected : Graph.t -> bool
(** Connected, at least 3 nodes, and articulation-free. *)
