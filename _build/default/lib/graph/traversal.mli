(** Breadth-first and depth-first primitives. *)

val bfs_hops : ?blocked:(int -> bool) -> Graph.t -> source:int -> int array
(** Hop distances from [source]; [max_int] where unreachable.  [blocked]
    hides edges by dense index. *)

val bfs_order : ?blocked:(int -> bool) -> Graph.t -> source:int -> int list
(** Visit order, starting with [source]. *)

val dfs_preorder : Graph.t -> source:int -> int list

val reachable_set : ?blocked:(int -> bool) -> Graph.t -> source:int -> Pr_util.Bitset.t
