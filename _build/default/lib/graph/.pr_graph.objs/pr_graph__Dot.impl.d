lib/graph/dot.ml: Buffer Fun Graph Hashtbl List Printf
