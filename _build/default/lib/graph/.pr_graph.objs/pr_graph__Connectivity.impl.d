lib/graph/connectivity.ml: Array Graph Hashtbl List Pr_util Stack Traversal
