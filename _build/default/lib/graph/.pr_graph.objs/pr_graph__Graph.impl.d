lib/graph/graph.ml: Array Float Format Hashtbl List Printf
