lib/graph/paths.ml: Format Graph List
