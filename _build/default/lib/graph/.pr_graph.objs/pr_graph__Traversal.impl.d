lib/graph/traversal.ml: Array Graph List Pr_util Queue
