lib/graph/dijkstra.ml: Array Float Graph List Pr_util
