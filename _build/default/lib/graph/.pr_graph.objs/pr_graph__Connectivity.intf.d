lib/graph/connectivity.mli: Graph
