lib/graph/dot.mli: Graph
