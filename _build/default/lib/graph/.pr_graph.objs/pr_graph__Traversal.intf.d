lib/graph/traversal.mli: Graph Pr_util
