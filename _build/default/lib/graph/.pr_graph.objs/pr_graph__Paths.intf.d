lib/graph/paths.mli: Format Graph
