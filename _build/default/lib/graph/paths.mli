(** Helpers over node-sequence paths (as produced by forwarding traces). *)

val is_walk : Graph.t -> int list -> bool
(** Every consecutive pair is an edge.  Empty and singleton lists are
    walks. *)

val cost : Graph.t -> int list -> float
(** Sum of edge weights along the walk.  Raises [Not_found] when two
    consecutive nodes are not adjacent. *)

val hops : int list -> int
(** Number of edges in the walk. *)

val edges_of_walk : Graph.t -> int list -> int list
(** Dense edge indices traversed, in order. *)

val uses_edge : Graph.t -> int list -> int -> int -> bool
(** Does the walk traverse the given edge (in either direction)? *)

val pp : Format.formatter -> int list -> unit
