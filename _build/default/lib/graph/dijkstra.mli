(** Single-source shortest paths with deterministic tie-breaking.

    Routing in the paper is destination-rooted: [tree g ~root:d] yields, for
    every node [v], the next hop from [v] towards [d] ([parent]), the path
    cost ([dist]) and the hop count along the chosen shortest path ([hops]).
    Because edge weights are symmetric, the tree rooted at the destination
    gives each node's forwarding entry for that destination, exactly like an
    OSPF/IS-IS SPF run.

    Ties are broken towards the smaller parent id so that the forwarding
    tables — and therefore every experiment — are reproducible. *)

type tree = private {
  root : int;
  dist : float array;   (** [dist.(v)] = cost from [v] to [root]; [infinity] if unreachable *)
  parent : int array;   (** next hop from [v] towards [root]; [root] at the root; [-1] if unreachable *)
  hops : int array;     (** hop count of the chosen shortest path; [max_int] if unreachable *)
}

val tree : ?blocked:(int -> bool) -> Graph.t -> root:int -> tree
(** [blocked i] hides edge index [i] (used to model failed links without
    rebuilding the graph). *)

val all_roots : ?blocked:(int -> bool) -> Graph.t -> tree array
(** One tree per root; index = root id. *)

val reachable : tree -> int -> bool

val next_hop : tree -> int -> int option
(** Next hop towards the root, [None] at the root itself or if unreachable. *)

val distance : tree -> int -> float

val hop_count : tree -> int -> int

val path_to_root : tree -> int -> int list option
(** Node sequence [v; ...; root], [None] if unreachable. *)

val diameter_hops : Graph.t -> int
(** Maximum over connected pairs of the hop count of the chosen shortest
    paths.  0 for graphs with no connected pair. *)

val diameter_weight : Graph.t -> float
