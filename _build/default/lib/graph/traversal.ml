let bfs ?(blocked = fun _ -> false) g ~source ~visit =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Traversal.bfs: source out of range";
  let hops = Array.make n max_int in
  let queue = Queue.create () in
  hops.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    visit v;
    let expand w =
      if hops.(w) = max_int && not (blocked (Graph.edge_index g v w)) then begin
        hops.(w) <- hops.(v) + 1;
        Queue.add w queue
      end
    in
    Array.iter expand (Graph.neighbours g v)
  done;
  hops

let bfs_hops ?blocked g ~source = bfs ?blocked g ~source ~visit:ignore

let bfs_order ?blocked g ~source =
  let order = ref [] in
  let _ = bfs ?blocked g ~source ~visit:(fun v -> order := v :: !order) in
  List.rev !order

let dfs_preorder g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Traversal.dfs_preorder";
  let seen = Array.make n false in
  let order = ref [] in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      order := v :: !order;
      Array.iter visit (Graph.neighbours g v)
    end
  in
  visit source;
  List.rev !order

let reachable_set ?blocked g ~source =
  let hops = bfs_hops ?blocked g ~source in
  let set = Pr_util.Bitset.create (Graph.n g) in
  Array.iteri (fun v h -> if h < max_int then Pr_util.Bitset.add set v) hops;
  set
