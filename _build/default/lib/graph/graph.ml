type edge = { u : int; v : int; w : float }

type t = {
  n : int;
  edge_array : edge array;
  adj : int array array;
  edge_of : (int, int) Hashtbl.t; (* key u * n + v, both orientations *)
}

let key t u v = (u * t.n) + v

let create ~n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  let seen = Hashtbl.create (2 * List.length edge_list) in
  let canonical =
    List.map
      (fun (u, v, w) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg
            (Printf.sprintf "Graph.create: endpoint out of range (%d,%d)" u v);
        if u = v then invalid_arg "Graph.create: self loop";
        if not (Float.is_finite w) || w <= 0.0 then
          invalid_arg "Graph.create: weights must be finite and positive";
        let u, v = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen (u, v) then
          invalid_arg (Printf.sprintf "Graph.create: duplicate edge (%d,%d)" u v);
        Hashtbl.replace seen (u, v) ();
        { u; v; w })
      edge_list
  in
  let edge_array = Array.of_list canonical in
  let degree = Array.make n 0 in
  Array.iter
    (fun e ->
      degree.(e.u) <- degree.(e.u) + 1;
      degree.(e.v) <- degree.(e.v) + 1)
    edge_array;
  let adj = Array.init n (fun i -> Array.make degree.(i) (-1)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun e ->
      adj.(e.u).(fill.(e.u)) <- e.v;
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- e.u;
      fill.(e.v) <- fill.(e.v) + 1)
    edge_array;
  Array.iter (fun row -> Array.sort compare row) adj;
  let t = { n; edge_array; adj; edge_of = Hashtbl.create (4 * Array.length edge_array) } in
  Array.iteri
    (fun i e ->
      Hashtbl.replace t.edge_of (key t e.u e.v) i;
      Hashtbl.replace t.edge_of (key t e.v e.u) i)
    edge_array;
  t

let unweighted ~n pairs = create ~n (List.map (fun (u, v) -> (u, v, 1.0)) pairs)

let n t = t.n

let m t = Array.length t.edge_array

let neighbours t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.neighbours: node out of range";
  t.adj.(v)

let degree t v = Array.length (neighbours t v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (degree t v)
  done;
  !best

let has_edge t u v =
  u >= 0 && u < t.n && v >= 0 && v < t.n && Hashtbl.mem t.edge_of (key t u v)

let edge_index t u v =
  match Hashtbl.find_opt t.edge_of (key t u v) with
  | Some i -> i
  | None -> raise Not_found

let edge t i = t.edge_array.(i)

let weight t u v = (edge t (edge_index t u v)).w

let edges t = t.edge_array

let fold_edges f t init =
  let acc = ref init in
  Array.iteri (fun i e -> acc := f i e !acc) t.edge_array;
  !acc

let iter_edges f t = Array.iteri f t.edge_array

let total_weight t = Array.fold_left (fun acc e -> acc +. e.w) 0.0 t.edge_array

let without_edges t removals =
  let removed = Hashtbl.create (2 * List.length removals) in
  List.iter
    (fun (u, v) ->
      if not (has_edge t u v) then
        invalid_arg (Printf.sprintf "Graph.without_edges: no edge (%d,%d)" u v);
      Hashtbl.replace removed (edge_index t u v) ())
    removals;
  let kept =
    fold_edges
      (fun i e acc -> if Hashtbl.mem removed i then acc else (e.u, e.v, e.w) :: acc)
      t []
  in
  create ~n:t.n (List.rev kept)

let induced t nodes =
  let nodes = List.sort_uniq compare nodes in
  List.iter
    (fun v ->
      if v < 0 || v >= t.n then invalid_arg "Graph.induced: node out of range")
    nodes;
  let mapping = Array.of_list nodes in
  let back = Hashtbl.create (2 * Array.length mapping) in
  Array.iteri (fun fresh original -> Hashtbl.replace back original fresh) mapping;
  let kept =
    fold_edges
      (fun _ e acc ->
        match (Hashtbl.find_opt back e.u, Hashtbl.find_opt back e.v) with
        | Some u', Some v' -> (u', v', e.w) :: acc
        | _ -> acc)
      t []
  in
  (create ~n:(Array.length mapping) (List.rev kept), mapping)

let equal_structure a b =
  n a = n b && m a = m b
  && fold_edges
       (fun _ e acc -> acc && has_edge b e.u e.v && weight b e.u e.v = e.w)
       a true

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" t.n (m t);
  iter_edges (fun _ e -> Format.fprintf ppf "@,  %d -- %d  w=%g" e.u e.v e.w) t;
  Format.fprintf ppf "@]"
