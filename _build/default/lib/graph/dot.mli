(** Graphviz export, for inspecting topologies and embeddings. *)

val to_dot :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?highlight_edges:(int * int) list ->
  Graph.t ->
  string
(** Undirected dot output.  [highlight_edges] are drawn dashed red (used for
    failed links). *)

val write_file :
  path:string ->
  ?name:string ->
  ?node_label:(int -> string) ->
  ?highlight_edges:(int * int) list ->
  Graph.t ->
  unit
