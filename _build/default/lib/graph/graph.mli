(** Undirected, simple, positively-weighted graphs with dense integer nodes.

    This is the substrate every other library builds on: nodes are
    [0 .. n-1], edges are unordered pairs with a strictly positive weight.
    The structure is immutable once created; "removing" edges (to model
    failures) produces a view through {!val:Failureable} helpers in client
    code, or a fresh graph through {!without_edges}. *)

type t

type edge = { u : int; v : int; w : float }
(** Canonical representation has [u < v]. *)

val create : n:int -> (int * int * float) list -> t
(** [create ~n edges] builds a graph with [n] nodes.  Raises
    [Invalid_argument] on: out-of-range endpoints, self loops, duplicate
    edges (in either orientation), non-positive or non-finite weights. *)

val unweighted : n:int -> (int * int) list -> t
(** All weights 1.0. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val neighbours : t -> int -> int array
(** Neighbours in increasing id order.  The returned array is owned by the
    graph and must not be mutated. *)

val degree : t -> int -> int

val max_degree : t -> int

val has_edge : t -> int -> int -> bool

val weight : t -> int -> int -> float
(** Weight of the edge between two adjacent nodes.  Raises [Not_found] if
    they are not adjacent. *)

val edge_index : t -> int -> int -> int
(** Dense index in [\[0, m)] of the edge between two adjacent nodes (raises
    [Not_found] otherwise).  Stable across both orientations. *)

val edge : t -> int -> edge
(** Edge by dense index. *)

val edges : t -> edge array
(** All edges, canonical orientation, in index order.  Owned by the graph. *)

val fold_edges : (int -> edge -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (index, edge). *)

val iter_edges : (int -> edge -> unit) -> t -> unit

val total_weight : t -> float

val without_edges : t -> (int * int) list -> t
(** Fresh graph with the listed edges removed.  Unknown edges are an
    [Invalid_argument]. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] (deduplicated),
    together with the mapping from new ids to original ids. *)

val equal_structure : t -> t -> bool
(** Same node count and same weighted edge set. *)

val pp : Format.formatter -> t -> unit
