let to_dot ?(name = "g") ?(node_label = string_of_int) ?(highlight_edges = []) g =
  let buf = Buffer.create 1024 in
  let highlighted = Hashtbl.create 16 in
  List.iter
    (fun (u, v) -> Hashtbl.replace highlighted (Graph.edge_index g u v) ())
    highlight_edges;
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v (node_label v))
  done;
  Graph.iter_edges
    (fun i e ->
      let attrs =
        if Hashtbl.mem highlighted i then
          Printf.sprintf " [label=\"%g\", color=red, style=dashed]" e.w
        else Printf.sprintf " [label=\"%g\"]" e.w
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" e.u e.v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path ?name ?node_label ?highlight_edges g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?node_label ?highlight_edges g))
