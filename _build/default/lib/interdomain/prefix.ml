module Graph = Pr_graph.Graph
module Topology = Pr_topo.Topology

type t = {
  base_topo : Topology.t;
  extended : Topology.t;
  prefix_node : int;
  egress_list : int list;
}

let attach (topo : Topology.t) ~name ~egresses =
  if egresses = [] then invalid_arg "Prefix.attach: no egresses";
  let n = Topology.n topo in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, w) ->
      if v < 0 || v >= n then invalid_arg "Prefix.attach: egress out of range";
      if Hashtbl.mem seen v then invalid_arg "Prefix.attach: duplicate egress";
      if w <= 0.0 then invalid_arg "Prefix.attach: non-positive weight";
      Hashtbl.replace seen v ())
    egresses;
  let prefix_node = n in
  let edges =
    Graph.fold_edges
      (fun _ (e : Graph.edge) acc -> (e.u, e.v, e.w) :: acc)
      topo.graph []
    |> List.rev
  in
  let edges = edges @ List.map (fun (v, w) -> (v, prefix_node, w)) egresses in
  (* Place the virtual node well outside the map's bounding box (below the
     centroid of its egresses): external peers live "outside" the drawing,
     which keeps the geometric seed rotation close to planar. *)
  let cx =
    List.fold_left
      (fun sx (v, _) -> sx +. fst (Topology.coord topo v))
      0.0 egresses
    /. float_of_int (List.length egresses)
  in
  let ys = Array.to_list (Array.map snd topo.coords) in
  let min_y = List.fold_left Float.min infinity ys in
  let max_y = List.fold_left Float.max neg_infinity ys in
  let drop = Float.max 1.0 (max_y -. min_y) in
  let coords = Array.append topo.coords [| (cx, min_y -. drop) |] in
  let extended =
    Topology.make
      ~name:(topo.name ^ "+" ^ name)
      ~labels:(Array.append topo.labels [| name |])
      ~coords edges
  in
  {
    base_topo = topo;
    extended;
    prefix_node;
    egress_list = List.sort compare (List.map fst egresses);
  }

let base t = t.base_topo

let topology t = t.extended

let prefix_node t = t.prefix_node

let egresses t = t.egress_list

let egress_link t v =
  if List.mem v t.egress_list then (v, t.prefix_node) else raise Not_found

type protection = {
  prefix : t;
  routing : Pr_core.Routing.t;
  cycles : Pr_core.Cycle_table.t;
  genus : int;
  curved_edges : int;
}

let protect ?seed t =
  let quality = Pr_embed.Recommend.for_topology ?seed t.extended in
  {
    prefix = t;
    routing = Pr_core.Routing.build t.extended.graph;
    cycles = Pr_core.Cycle_table.build quality.Pr_embed.Recommend.rotation;
    genus = quality.Pr_embed.Recommend.genus;
    curved_edges = quality.Pr_embed.Recommend.curved_edges;
  }

let reach p ~failures ~src =
  Pr_core.Forward.run ~routing:p.routing ~cycles:p.cycles ~failures ~src
    ~dst:p.prefix.prefix_node ()

let best_egress p ~src =
  match
    Pr_core.Routing.shortest_path p.routing ~src ~dst:p.prefix.prefix_node
  with
  | None -> None
  | Some path ->
      let rec penultimate = function
        | [ e; _last ] -> Some e
        | _ :: rest -> penultimate rest
        | [] -> None
      in
      penultimate path
