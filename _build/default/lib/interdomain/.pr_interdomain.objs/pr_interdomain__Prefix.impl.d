lib/interdomain/prefix.ml: Array Float Hashtbl List Pr_core Pr_embed Pr_graph Pr_topo
