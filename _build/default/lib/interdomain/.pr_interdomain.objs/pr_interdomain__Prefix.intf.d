lib/interdomain/prefix.mli: Pr_core Pr_topo
