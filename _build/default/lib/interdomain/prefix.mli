(** Interdomain extension (paper §7).

    "Multihomed ISPs that receive several announcements for the same prefix
    via different outgoing links can map this onto a connectivity graph,
    and use our technique to obtain cycle following routes."

    An external prefix announced at several egress routers is modelled as a
    virtual node attached to each egress; PR then protects reachability of
    the prefix against both internal link failures and egress (inter-AS
    link) failures, as long as one egress remains reachable. *)

type t

val attach :
  Pr_topo.Topology.t ->
  name:string ->
  egresses:(int * float) list ->
  t
(** [attach topo ~name ~egresses] adds a virtual node for prefix [name]
    linked to each [(egress, weight)].  Raises [Invalid_argument] for
    out-of-range or duplicate egresses, non-positive weights, or an empty
    egress list. *)

val base : t -> Pr_topo.Topology.t

val topology : t -> Pr_topo.Topology.t
(** The extended topology (prefix node last, labelled [name]). *)

val prefix_node : t -> int

val egresses : t -> int list
(** In increasing order. *)

val egress_link : t -> int -> int * int
(** The virtual inter-AS link for an egress — usable in failure lists to
    model losing that announcement.  Raises [Not_found] for non-egress
    nodes. *)

type protection = {
  prefix : t;
  routing : Pr_core.Routing.t;        (** on the extended graph *)
  cycles : Pr_core.Cycle_table.t;     (** PR-safe embedding of it *)
  genus : int;                        (** of the embedding found *)
  curved_edges : int;                 (** 0 means the single-failure
                                          guarantee holds *)
}

val protect : ?seed:int -> t -> protection
(** Builds the tables PR needs on the extended graph, using the PR-safe
    annealed embedding seeded with the geometric rotation. *)

val reach :
  protection ->
  failures:Pr_core.Failure.t ->
  src:int ->
  Pr_core.Forward.trace
(** Trace a packet from an internal router to the prefix.  [failures] must
    be over the extended graph ({!topology}), so it can mix internal link
    failures with {!egress_link} failures. *)

val best_egress : protection -> src:int -> int option
(** The egress the failure-free shortest path to the prefix uses. *)
