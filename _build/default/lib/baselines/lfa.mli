(** Loop-Free Alternates (RFC 5286) — the canonical IPFRR scheme the paper
    cites as prior work that covers only some failures.

    A neighbour [w] of [x] is a loop-free alternate for destination [d]
    protecting the primary next hop when
    [dist w d < dist w x + dist x d]: sending to [w] cannot loop back
    through [x].  Unlike PR, coverage is partial; {!coverage} quantifies
    the gap the paper's full-coverage claim closes. *)

type alternates = {
  primary : int;
  alternate : int option;  (** best (lowest-cost) LFA, if any *)
}

val alternates_for :
  Pr_core.Routing.t -> node:int -> dst:int -> alternates option
(** [None] at the destination or when it is unreachable. *)

val coverage : Pr_core.Routing.t -> float
(** Fraction of (node, destination) pairs with a usable LFA, over all
    pairs that have a next hop.  1.0 would be full single-failure
    coverage. *)

type outcome = Delivered | Dropped | Ttl_exceeded

type trace = { outcome : outcome; path : int list }

val run :
  ?ttl:int ->
  Pr_core.Routing.t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  trace
(** Forwarding with LFA repair: primary next hop if up, otherwise the LFA
    if one exists (packets repaired by an LFA are forwarded normally
    downstream), otherwise the packet is dropped. *)

val stretch : routing:Pr_core.Routing.t -> trace:trace -> src:int -> dst:int -> float
