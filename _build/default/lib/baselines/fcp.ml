module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra

type outcome = Delivered | Disconnected | Ttl_exceeded

type trace = {
  outcome : outcome;
  path : int list;
  recomputations : int;
  carried : (int * int) list;
}

let run ?ttl g ~failures ~src ~dst () =
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Fcp.run: node out of range";
  if src = dst then invalid_arg "Fcp.run: src = dst";
  (* Between two failure learnings the packet follows one consistent tree
     (at most n hops); at most m failures can be learned. *)
  let ttl = match ttl with Some t -> t | None -> ((Graph.m g + 1) * n) + 16 in
  let known = Pr_util.Bitset.create (Graph.m g) in
  let recomputations = ref 0 in
  let compute_tree () =
    incr recomputations;
    Dijkstra.tree ~blocked:(Pr_util.Bitset.mem known) g ~root:dst
  in
  let tree = ref (compute_tree ()) in
  let rec step x ~ttl acc =
    if x = dst then finish Delivered acc
    else if ttl = 0 then finish Ttl_exceeded acc
    else begin
      match Dijkstra.next_hop !tree x with
      | None -> finish Disconnected acc
      | Some w ->
          if Pr_core.Failure.link_up failures x w then
            step w ~ttl:(ttl - 1) (w :: acc)
          else begin
            (* Learn the failure, recompute, retry at the same node. *)
            Pr_util.Bitset.add known (Graph.edge_index g x w);
            tree := compute_tree ();
            step x ~ttl:(ttl - 1) acc
          end
    end
  and finish outcome acc =
    let carried =
      Pr_util.Bitset.fold
        (fun i acc ->
          let e = Graph.edge g i in
          (e.u, e.v) :: acc)
        known []
      |> List.sort compare
    in
    { outcome; path = List.rev acc; recomputations = !recomputations; carried }
  in
  step src ~ttl [ src ]

let path_cost g trace = Pr_graph.Paths.cost g trace.path

let stretch ~routing ~trace ~src ~dst =
  match trace.outcome with
  | Delivered ->
      path_cost (Pr_core.Routing.graph routing) trace
      /. Pr_core.Routing.distance routing ~node:src ~dst
  | Disconnected | Ttl_exceeded -> infinity

let bits_per_failure g =
  let count = Graph.m g in
  let rec loop b capacity = if capacity >= count then b else loop (b + 1) (2 * capacity) in
  if count <= 1 then 1 else loop 0 1

let header_bits g trace = List.length trace.carried * bits_per_failure g
