(** Full routing-protocol reconvergence — the paper's second comparator.

    After the IGP floods the failures and every router re-runs SPF, packets
    follow the shortest path of the surviving graph.  That path's cost over
    the pre-failure shortest path cost is the stretch the paper plots; the
    packets lost *while* convergence is in progress are the paper's
    motivating problem and are modelled by {!Pr_sim}. *)

val path :
  Pr_graph.Graph.t -> failures:Pr_core.Failure.t -> src:int -> dst:int -> int list option
(** Shortest path in the surviving graph, [None] when disconnected. *)

val cost :
  Pr_graph.Graph.t -> failures:Pr_core.Failure.t -> src:int -> dst:int -> float
(** Cost of that path, [infinity] when disconnected. *)

val stretch :
  routing:Pr_core.Routing.t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  float
(** Post-convergence cost over failure-free cost ([>= 1.0]); [infinity]
    when disconnected. *)
