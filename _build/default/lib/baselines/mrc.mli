(** Multiple Routing Configurations (Kvalbein et al., INFOCOM 2006) —
    IPFRR via precomputed backup configurations, cited by the paper as
    prior work ([7]).

    This is the link-protecting variant: the link set is partitioned into
    a small number of backup configurations; each configuration's routing
    avoids its own links (they are "isolated") while the surviving links
    keep the graph connected.  When forwarding hits a failed link, the
    packet is stamped with the configuration that isolates it (log2 of the
    number of configurations in the header) and follows that
    configuration's shortest paths to the destination.  A second distinct
    failure in the backup configuration is not covered — the partial
    coverage PR's full-coverage claim is measured against. *)

type t

val build : ?max_configurations:int -> Pr_graph.Graph.t -> t option
(** Greedy partition of the links into at most [max_configurations]
    (default 8) isolation classes whose removal keeps the graph connected.
    [None] when the graph is not 2-edge-connected (a bridge can never be
    isolated) or the budget does not suffice. *)

val configurations : t -> int

val isolating_configuration : t -> int -> int -> int
(** The configuration that isolates the given link.  Raises [Not_found]
    for non-links. *)

val header_bits : t -> int
(** Bits to name a configuration: [ceil log2 (configurations + 1)]
    (configuration 0 is normal routing). *)

type outcome = Delivered | Dropped | Ttl_exceeded

type trace = {
  outcome : outcome;
  path : int list;
  switched_to : int option;  (** backup configuration used, if any *)
}

val run :
  ?ttl:int ->
  t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  trace
(** Normal shortest-path forwarding; on the first failed link, switch
    permanently to the isolating configuration; a further failed link in
    that configuration drops the packet (MRC is a single-failure
    mechanism). *)

val stretch :
  routing:Pr_core.Routing.t -> trace:trace -> src:int -> dst:int -> float
