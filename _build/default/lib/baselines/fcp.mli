(** Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007) — the
    paper's main comparator.

    Packets accumulate the failed links they encounter; every router
    forwards along the shortest path of the failure-free map minus the
    failures carried in the packet.  Delivery is guaranteed whenever the
    source and destination stay connected, at the cost of a per-packet
    failure list in the header and an SPF recomputation at every router
    that sees a new failure list. *)

type outcome = Delivered | Disconnected | Ttl_exceeded

type trace = {
  outcome : outcome;
  path : int list;            (** nodes visited, starting at the source *)
  recomputations : int;       (** SPF runs triggered by header changes *)
  carried : (int * int) list; (** failures in the header at the end *)
}

val run :
  ?ttl:int ->
  Pr_graph.Graph.t ->
  failures:Pr_core.Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  trace

val path_cost : Pr_graph.Graph.t -> trace -> float

val stretch : routing:Pr_core.Routing.t -> trace:trace -> src:int -> dst:int -> float
(** Traversed cost over the failure-free shortest-path cost; [infinity]
    when not delivered. *)

val bits_per_failure : Pr_graph.Graph.t -> int
(** Bits needed to name one link in the header: [ceil log2 m], at least 1. *)

val header_bits : Pr_graph.Graph.t -> trace -> int
(** Header overhead of the final packet: carried failures times
    {!bits_per_failure}. *)
