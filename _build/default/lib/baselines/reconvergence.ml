module Dijkstra = Pr_graph.Dijkstra

let tree g ~failures ~dst =
  Dijkstra.tree ~blocked:(Pr_core.Failure.is_failed_index failures) g ~root:dst

let path g ~failures ~src ~dst = Dijkstra.path_to_root (tree g ~failures ~dst) src

let cost g ~failures ~src ~dst = Dijkstra.distance (tree g ~failures ~dst) src

let stretch ~routing ~failures ~src ~dst =
  let g = Pr_core.Routing.graph routing in
  cost g ~failures ~src ~dst /. Pr_core.Routing.distance routing ~node:src ~dst
