lib/baselines/mrc.ml: Array List Pr_core Pr_graph
