lib/baselines/lfa.mli: Pr_core
