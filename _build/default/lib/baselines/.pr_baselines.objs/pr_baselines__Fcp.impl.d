lib/baselines/fcp.ml: List Pr_core Pr_graph Pr_util
