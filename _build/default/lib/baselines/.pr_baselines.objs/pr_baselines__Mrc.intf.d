lib/baselines/mrc.mli: Pr_core Pr_graph
