lib/baselines/reconvergence.ml: Pr_core Pr_graph
