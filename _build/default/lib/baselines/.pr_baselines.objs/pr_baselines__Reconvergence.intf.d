lib/baselines/reconvergence.mli: Pr_core Pr_graph
