lib/baselines/lfa.ml: Array List Pr_core Pr_graph
