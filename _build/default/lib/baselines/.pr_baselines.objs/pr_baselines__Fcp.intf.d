lib/baselines/fcp.mli: Pr_core Pr_graph
