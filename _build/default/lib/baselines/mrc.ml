module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra

type t = {
  g : Graph.t;
  config_of_edge : int array;          (* edge index -> configuration (1-based) *)
  trees : Dijkstra.tree array array;   (* configuration -> per-destination trees;
                                          index 0 = normal routing *)
}

let build ?(max_configurations = 8) g =
  if not (Pr_graph.Connectivity.is_two_edge_connected g) then None
  else begin
    let m = Graph.m g in
    let config_of_edge = Array.make m 0 in
    (* Greedy: put each link into the first configuration whose isolated
       set still leaves the graph connected after adding it. *)
    let members = Array.make (max_configurations + 1) [] in
    let fits c i =
      Pr_graph.Connectivity.connected_without g
        (List.map
           (fun j ->
             let e = Graph.edge g j in
             (e.Graph.u, e.Graph.v))
           (i :: members.(c)))
    in
    let ok = ref true in
    for i = 0 to m - 1 do
      if !ok then begin
        let rec place c =
          if c > max_configurations then false
          else if fits c i then begin
            members.(c) <- i :: members.(c);
            config_of_edge.(i) <- c;
            true
          end
          else place (c + 1)
        in
        if not (place 1) then ok := false
      end
    done;
    if not !ok then None
    else begin
      let used =
        Array.fold_left (fun acc c -> max acc c) 0 config_of_edge
      in
      let trees =
        Array.init (used + 1) (fun c ->
            let blocked i = c > 0 && config_of_edge.(i) = c in
            Dijkstra.all_roots ~blocked g)
      in
      Some { g; config_of_edge; trees }
    end
  end

let configurations t = Array.length t.trees - 1

let isolating_configuration t u v = t.config_of_edge.(Graph.edge_index t.g u v)

let header_bits t =
  let states = configurations t + 1 in
  let rec bits b capacity = if capacity >= states then b else bits (b + 1) (2 * capacity) in
  bits 0 1

type outcome = Delivered | Dropped | Ttl_exceeded

type trace = { outcome : outcome; path : int list; switched_to : int option }

let run ?ttl t ~failures ~src ~dst () =
  let n = Graph.n t.g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Mrc.run: node out of range";
  if src = dst then invalid_arg "Mrc.run: src = dst";
  let ttl = match ttl with Some v -> v | None -> (4 * n) + 16 in
  let rec walk x config ~ttl acc =
    if x = dst then
      {
        outcome = Delivered;
        path = List.rev acc;
        switched_to = (if config = 0 then None else Some config);
      }
    else if ttl = 0 then
      { outcome = Ttl_exceeded; path = List.rev acc; switched_to = Some config }
    else begin
      match Dijkstra.next_hop t.trees.(config).(dst) x with
      | None -> { outcome = Dropped; path = List.rev acc; switched_to = Some config }
      | Some w ->
          if Pr_core.Failure.link_up failures x w then
            walk w config ~ttl:(ttl - 1) (w :: acc)
          else if config = 0 then
            (* First failure: switch to the configuration isolating it. *)
            walk x (isolating_configuration t x w) ~ttl:(ttl - 1) acc
          else
            (* Second distinct failure: not covered. *)
            { outcome = Dropped; path = List.rev acc; switched_to = Some config }
    end
  in
  walk src 0 ~ttl [ src ]

let stretch ~routing ~trace ~src ~dst =
  match trace.outcome with
  | Delivered ->
      Pr_graph.Paths.cost (Pr_core.Routing.graph routing) trace.path
      /. Pr_core.Routing.distance routing ~node:src ~dst
  | Dropped | Ttl_exceeded -> infinity
