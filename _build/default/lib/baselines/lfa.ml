module Graph = Pr_graph.Graph
module Routing = Pr_core.Routing

type alternates = { primary : int; alternate : int option }

let alternates_for routing ~node ~dst =
  match Routing.next_hop routing ~node ~dst with
  | None -> None
  | Some primary ->
      let g = Routing.graph routing in
      let dist v = Routing.distance routing ~node:v ~dst in
      let dist_to_node w = Graph.weight g node w in
      let loop_free w =
        (* RFC 5286 basic inequality: D(w,d) < D(w,x) + D(x,d).  With
           symmetric weights D(w,x) is the link cost for a neighbour. *)
        w <> primary && dist w < dist_to_node w +. dist node
      in
      let best =
        Array.fold_left
          (fun acc w ->
            if loop_free w then
              match acc with
              | Some best when dist_to_node best +. dist best <= dist_to_node w +. dist w ->
                  acc
              | _ -> Some w
            else acc)
          None (Graph.neighbours g node)
      in
      Some { primary; alternate = best }

let coverage routing =
  let g = Routing.graph routing in
  let n = Graph.n g in
  let covered = ref 0 and total = ref 0 in
  for node = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if node <> dst then begin
        match alternates_for routing ~node ~dst with
        | None -> ()
        | Some { alternate; _ } ->
            incr total;
            if alternate <> None then incr covered
      end
    done
  done;
  if !total = 0 then 0.0 else float_of_int !covered /. float_of_int !total

type outcome = Delivered | Dropped | Ttl_exceeded

type trace = { outcome : outcome; path : int list }

let run ?ttl routing ~failures ~src ~dst () =
  let g = Routing.graph routing in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Lfa.run: node out of range";
  if src = dst then invalid_arg "Lfa.run: src = dst";
  let ttl = match ttl with Some t -> t | None -> (4 * n) + 16 in
  let rec step x ~ttl acc =
    if x = dst then { outcome = Delivered; path = List.rev acc }
    else if ttl = 0 then { outcome = Ttl_exceeded; path = List.rev acc }
    else begin
      match alternates_for routing ~node:x ~dst with
      | None -> { outcome = Dropped; path = List.rev acc }
      | Some { primary; alternate } ->
          if Pr_core.Failure.link_up failures x primary then
            step primary ~ttl:(ttl - 1) (primary :: acc)
          else begin
            match alternate with
            | Some w when Pr_core.Failure.link_up failures x w ->
                step w ~ttl:(ttl - 1) (w :: acc)
            | Some _ | None -> { outcome = Dropped; path = List.rev acc }
          end
    end
  in
  step src ~ttl [ src ]

let stretch ~routing ~trace ~src ~dst =
  match trace.outcome with
  | Delivered ->
      Pr_graph.Paths.cost (Routing.graph routing) trace.path
      /. Routing.distance routing ~node:src ~dst
  | Dropped | Ttl_exceeded -> infinity
