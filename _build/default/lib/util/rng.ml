type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into the 256-bit xoshiro
   state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let candidate = int t (j + 1) in
    if Hashtbl.mem chosen candidate then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen candidate ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen [] |> List.sort compare

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
