lib/util/tablefmt.ml: Buffer List Printf String
