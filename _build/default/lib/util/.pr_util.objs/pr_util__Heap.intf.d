lib/util/heap.mli:
