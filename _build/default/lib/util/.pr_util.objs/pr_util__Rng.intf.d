lib/util/rng.mli:
