lib/util/tablefmt.mli:
