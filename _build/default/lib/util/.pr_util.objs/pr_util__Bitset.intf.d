lib/util/bitset.mli:
