(** Mutable binary min-heap keyed by float priorities.

    Used by Dijkstra's algorithm; supports lazy deletion (duplicate inserts
    of the same payload are allowed and the consumer skips stale entries). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority payload] inserts an entry. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest priority.  Ties are broken
    by insertion order (first inserted pops first), which keeps algorithms
    built on the heap deterministic. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
