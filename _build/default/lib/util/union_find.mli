(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the sets of the two elements.  Returns [true] iff they were in
    different sets (i.e. the union did something). *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
