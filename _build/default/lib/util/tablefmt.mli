(** Minimal ASCII table rendering for experiment reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with one space of padding and a
    rule under the header.  [align] gives per-column alignment (defaults to
    left for the first column, right for the rest). *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering used across reports (default 3 decimals). *)
