type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let columns = List.length header in
  List.iter
    (fun row ->
      if List.length row <> columns then
        invalid_arg "Tablefmt.render: ragged row")
    rows;
  let aligns =
    match align with
    | Some a when List.length a = columns -> a
    | Some _ -> invalid_arg "Tablefmt.render: align length mismatch"
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
