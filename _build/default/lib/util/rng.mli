(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from an explicit integer seed.  The generator
    is xoshiro256** seeded through splitmix64, a standard high-quality
    non-cryptographic construction. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams
    obtained by successive splits are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] draws [k] distinct values from
    [\[0, n)].  Raises [Invalid_argument] if [k > n] or [k < 0]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
