type t = { words : int array; capacity : int }

let word_bits = 63 (* OCaml native ints: use 63 bits per word portably *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((capacity / word_bits) + 1) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])
