(** Fixed-capacity mutable bitsets over integers [0 .. capacity-1].

    Used to mark visited arcs during face tracing and visited states during
    forwarding-loop detection. *)

type t

val create : int -> t
(** All bits clear. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Reset every bit. *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)
