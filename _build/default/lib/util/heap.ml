type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty h = h.len = 0

let size h = h.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.data in
  if h.len = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) entry in
    Array.blit h.data 0 fresh 0 h.len;
    h.data <- fresh
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && less h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.len && less h.data.(right) h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio payload =
  let entry = { prio; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.prio, top.payload)
  end

let peek h = if h.len = 0 then None else Some (h.data.(0).prio, h.data.(0).payload)

let clear h =
  h.len <- 0;
  h.next_seq <- 0
