module Graph = Pr_graph.Graph
module Traversal = Pr_graph.Traversal

let test_bfs_hops () =
  let g = Graph.unweighted ~n:5 [ (0, 1); (1, 2); (2, 3); (0, 4) ] in
  let hops = Traversal.bfs_hops g ~source:0 in
  Alcotest.(check (array int)) "hop counts" [| 0; 1; 2; 3; 1 |] hops

let test_bfs_unreachable () =
  let g = Graph.unweighted ~n:3 [ (0, 1) ] in
  let hops = Traversal.bfs_hops g ~source:0 in
  Alcotest.(check int) "isolated is max_int" max_int hops.(2)

let test_bfs_order () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (1, 3) ] in
  Alcotest.(check (list int)) "level order" [ 0; 1; 2; 3 ] (Traversal.bfs_order g ~source:0)

let test_bfs_blocked () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let blocked i = i = Graph.edge_index g 0 1 in
  let hops = Traversal.bfs_hops ~blocked g ~source:0 in
  Alcotest.(check int) "reaches 1 the long way" 2 hops.(1)

let test_dfs_preorder () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3 ] (Traversal.dfs_preorder g ~source:0)

let test_reachable_set () =
  let g = Graph.unweighted ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  let set = Traversal.reachable_set g ~source:0 in
  Alcotest.(check (list int)) "component of 0" [ 0; 1; 2 ] (Pr_util.Bitset.to_list set)

let qcheck_bfs_equals_unit_dijkstra =
  QCheck.Test.make ~name:"BFS hops equal unit-weight Dijkstra" ~count:80
    (Helpers.arb_two_connected ())
    (fun g ->
      let hops = Traversal.bfs_hops g ~source:0 in
      let tree = Pr_graph.Dijkstra.tree g ~root:0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if hops.(v) <> int_of_float (Pr_graph.Dijkstra.distance tree v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "bfs hops" `Quick test_bfs_hops;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "bfs order" `Quick test_bfs_order;
    Alcotest.test_case "bfs with blocked edge" `Quick test_bfs_blocked;
    Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
    Alcotest.test_case "reachable set" `Quick test_reachable_set;
    QCheck_alcotest.to_alcotest qcheck_bfs_equals_unit_dijkstra;
  ]
