module Parse = Pr_topo.Parse
module Topology = Pr_topo.Topology

let sample_text =
  "# sample\n\
   topology demo\n\
   node a 0 0\n\
   node b 1 0\n\
   node c 1 1\n\
   edge a b 2.5\n\
   edge b c\n\
   edge a c 1\n"

let test_parse_basic () =
  let t = Parse.of_string sample_text in
  Alcotest.(check string) "name" "demo" t.Topology.name;
  Alcotest.(check int) "nodes" 3 (Topology.n t);
  Alcotest.(check int) "edges" 3 (Topology.m t);
  Alcotest.(check (float 0.0)) "explicit weight" 2.5
    (Pr_graph.Graph.weight t.Topology.graph 0 1);
  Alcotest.(check (float 0.0)) "default weight" 1.0
    (Pr_graph.Graph.weight t.Topology.graph 1 2)

let test_comments_and_blanks () =
  let t = Parse.of_string "topology x\n\n# nothing\nnode a\nnode b\nedge a b # trailing\n" in
  Alcotest.(check int) "parsed" 1 (Topology.m t)

let expect_error fragment text =
  match Parse.of_string text with
  | exception Parse.Parse_error (_, msg) ->
      let contains =
        let nh = String.length msg and nn = String.length fragment in
        let rec scan i = i + nn <= nh && (String.sub msg i nn = fragment || scan (i + 1)) in
        scan 0
      in
      if not contains then
        Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.failf "expected a parse error mentioning %S" fragment

let test_errors () =
  expect_error "unknown node" "topology x\nnode a\nedge a b\n";
  expect_error "duplicate node" "topology x\nnode a\nnode a\n";
  expect_error "duplicate topology" "topology x\ntopology y\n";
  expect_error "unknown directive" "link a b\n";
  expect_error "expected a number" "topology x\nnode a\nnode b\nedge a b fast\n";
  expect_error "invalid topology" "topology x\nnode a\nnode b\nedge a b\nedge b a\n"

let test_error_line_number () =
  match Parse.of_string "topology x\nnode a\nbogus\n" with
  | exception Parse.Parse_error (line, _) -> Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected error"

let test_roundtrip_builtin () =
  List.iter
    (fun topo ->
      let again = Parse.of_string (Parse.to_string topo) in
      Alcotest.(check string) "name survives" topo.Topology.name again.Topology.name;
      Alcotest.(check bool)
        (topo.Topology.name ^ " graph survives")
        true
        (Pr_graph.Graph.equal_structure topo.Topology.graph again.Topology.graph);
      Alcotest.(check bool) "labels survive" true
        (topo.Topology.labels = again.Topology.labels))
    (Pr_topo.Zoo.paper_evaluation ())

let test_file_roundtrip () =
  let path = Filename.temp_file "pr_test" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let topo = Pr_topo.Abilene.topology () in
      Parse.save path topo;
      let again = Parse.load path in
      Alcotest.(check bool) "file round-trip" true
        (Pr_graph.Graph.equal_structure topo.Topology.graph again.Topology.graph))

let suite =
  [
    Alcotest.test_case "basic parse" `Quick test_parse_basic;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_number;
    Alcotest.test_case "round-trip builtin maps" `Quick test_roundtrip_builtin;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
  ]
