module Graph = Pr_graph.Graph
module Conn = Pr_graph.Connectivity

let test_components () =
  let g = Graph.unweighted ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let labels, count = Conn.components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0 and 2 together" true (labels.(0) = labels.(2));
  Alcotest.(check bool) "0 and 3 apart" true (labels.(0) <> labels.(3));
  Alcotest.(check bool) "5 alone" true (labels.(5) <> labels.(3));
  Alcotest.(check bool) "not connected" false (Conn.is_connected g);
  Alcotest.(check bool) "same component" true (Conn.same_component g 0 2)

let test_component_labels_ordered () =
  let g = Graph.unweighted ~n:4 [ (2, 3) ] in
  let labels, _ = Conn.components g in
  Alcotest.(check int) "node 0 gets label 0" 0 labels.(0);
  Alcotest.(check int) "node 1 gets label 1" 1 labels.(1);
  Alcotest.(check int) "nodes 2,3 get label 2" 2 labels.(2)

let test_bridges_path () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list (pair int int))) "all edges are bridges"
    [ (0, 1); (1, 2); (2, 3) ]
    (Conn.bridges g)

let test_bridges_cycle () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check (list (pair int int))) "cycle has none" [] (Conn.bridges g);
  Alcotest.(check bool) "2-edge-connected" true (Conn.is_two_edge_connected g)

let test_bridge_between_cycles () =
  (* Two triangles joined by the bridge 2-3. *)
  let g =
    Graph.unweighted ~n:6
      [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  Alcotest.(check (list (pair int int))) "just the joint" [ (2, 3) ] (Conn.bridges g);
  Alcotest.(check (list int)) "cut vertices" [ 2; 3 ] (Conn.articulation_points g);
  Alcotest.(check bool) "not 2-edge-connected" false (Conn.is_two_edge_connected g);
  Alcotest.(check bool) "not biconnected" false (Conn.is_biconnected g)

let test_articulation_star () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (list int)) "hub is the cut vertex" [ 0 ] (Conn.articulation_points g)

let test_biconnected_cycle () =
  let g = Graph.unweighted ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  Alcotest.(check (list int)) "no cut vertices" [] (Conn.articulation_points g);
  Alcotest.(check bool) "biconnected" true (Conn.is_biconnected g)

let test_connected_without () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check bool) "one removal fine" true (Conn.connected_without g [ (0, 1) ]);
  Alcotest.(check bool) "two removals split" false
    (Conn.connected_without g [ (0, 1); (2, 3) ])

let brute_force_bridges g =
  (* A bridge increases the component count when removed (the graph itself
     may already be disconnected). *)
  let _, base = Conn.components g in
  Graph.fold_edges
    (fun i (e : Graph.edge) acc ->
      let _, without = Conn.components ~blocked:(fun j -> j = i) g in
      if without > base then (e.u, e.v) :: acc else acc)
    g []
  |> List.sort compare

let qcheck_bridges_match_brute_force =
  QCheck.Test.make ~name:"bridges = edges whose removal disconnects" ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_range 4 12))
    (fun (seed, n) ->
      (* A sparse random graph likely to contain bridges. *)
      let rng = Pr_util.Rng.create ~seed in
      let g = (Pr_topo.Generate.gnm rng ~n ~m:(n + 2)).Pr_topo.Topology.graph in
      Conn.bridges g = brute_force_bridges g)

let qcheck_two_connected_generator =
  QCheck.Test.make ~name:"Generate.two_connected is 2-edge-connected" ~count:80
    (Helpers.arb_two_connected ())
    Conn.is_two_edge_connected

let suite =
  [
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "component label order" `Quick test_component_labels_ordered;
    Alcotest.test_case "bridges of a path" `Quick test_bridges_path;
    Alcotest.test_case "bridges of a cycle" `Quick test_bridges_cycle;
    Alcotest.test_case "bridge between cycles" `Quick test_bridge_between_cycles;
    Alcotest.test_case "articulation of a star" `Quick test_articulation_star;
    Alcotest.test_case "biconnected cycle" `Quick test_biconnected_cycle;
    Alcotest.test_case "connected_without" `Quick test_connected_without;
    QCheck_alcotest.to_alcotest qcheck_bridges_match_brute_force;
    QCheck_alcotest.to_alcotest qcheck_two_connected_generator;
  ]
