module Topology = Pr_topo.Topology
module Graph = Pr_graph.Graph

let sample () =
  Topology.make ~name:"t"
    ~labels:[| "x"; "y"; "z" |]
    ~coords:[| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0) |]
    [ (0, 1, 2.0); (1, 2, 3.0) ]

let test_basic () =
  let t = sample () in
  Alcotest.(check int) "nodes" 3 (Topology.n t);
  Alcotest.(check int) "links" 2 (Topology.m t);
  Alcotest.(check string) "label" "y" (Topology.label t 1);
  Alcotest.(check int) "node_id" 2 (Topology.node_id t "z");
  Alcotest.check_raises "unknown label" Not_found (fun () ->
      ignore (Topology.node_id t "nope"))

let test_duplicate_labels_rejected () =
  match
    Topology.make ~name:"bad" ~labels:[| "a"; "a" |] [ (0, 1, 1.0) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_coords_length_checked () =
  match
    Topology.make ~name:"bad" ~labels:[| "a"; "b" |] ~coords:[| (0.0, 0.0) |]
      [ (0, 1, 1.0) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_unit_weights () =
  let t = Topology.with_unit_weights (sample ()) in
  Graph.iter_edges
    (fun _ (e : Graph.edge) -> Alcotest.(check (float 0.0)) "unit" 1.0 e.w)
    t.Topology.graph

let test_geographic_weights () =
  (* New York to London is about 5570 km. *)
  let t =
    Topology.make ~name:"atlantic"
      ~labels:[| "NYC"; "LON" |]
      ~coords:[| (-74.01, 40.71); (-0.13, 51.51) |]
      [ (0, 1, 1.0) ]
  in
  let w = Graph.weight (Topology.with_geographic_weights t).Topology.graph 0 1 in
  Alcotest.(check bool) "great circle plausible" true (w > 5400.0 && w < 5750.0)

let test_default_coords () =
  let t = Topology.make ~name:"circle" ~labels:[| "a"; "b"; "c" |] [ (0, 1, 1.0) ] in
  let distinct =
    [ 0; 1; 2 ]
    |> List.map (Topology.coord t)
    |> List.sort_uniq compare
    |> List.length
  in
  Alcotest.(check int) "unit-circle coords distinct" 3 distinct

let test_of_graph () =
  let g = Graph.unweighted ~n:3 [ (0, 1) ] in
  let t = Topology.of_graph ~name:"g" g in
  Alcotest.(check string) "numeric labels" "2" (Topology.label t 2)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_summary () =
  let s = Topology.summary (sample ()) in
  Alcotest.(check bool) "mentions node count" true (contains s "n=3");
  Alcotest.(check bool) "mentions link count" true (contains s "m=2")

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic;
    Alcotest.test_case "duplicate labels rejected" `Quick test_duplicate_labels_rejected;
    Alcotest.test_case "coords length checked" `Quick test_coords_length_checked;
    Alcotest.test_case "unit weights" `Quick test_unit_weights;
    Alcotest.test_case "geographic weights" `Quick test_geographic_weights;
    Alcotest.test_case "default coords" `Quick test_default_coords;
    Alcotest.test_case "of_graph" `Quick test_of_graph;
    Alcotest.test_case "summary" `Quick test_summary;
  ]
