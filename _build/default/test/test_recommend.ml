module Recommend = Pr_embed.Recommend

let test_planar_map_certified () =
  let q = Recommend.for_topology (Pr_topo.Abilene.topology ()) in
  Alcotest.(check bool) "certified" true q.Recommend.certified_planar;
  Alcotest.(check int) "genus 0" 0 q.Recommend.genus;
  Alcotest.(check int) "no curved edges" 0 q.Recommend.curved_edges

let test_geant_reconstruction_is_planar () =
  (* A fact about our reconstruction worth pinning: DMP certifies it, and
     it is why the Figure 2(c)/(f) panels deliver every pair. *)
  let q = Recommend.for_topology (Pr_topo.Geant.topology ()) in
  Alcotest.(check bool) "certified" true q.Recommend.certified_planar;
  Alcotest.(check int) "genus 0" 0 q.Recommend.genus

let test_non_planar_map_annealed () =
  let q = Recommend.for_topology (Pr_topo.Teleglobe.topology ()) in
  Alcotest.(check bool) "not certified" false q.Recommend.certified_planar;
  Alcotest.(check bool) "positive genus" true (q.Recommend.genus > 0);
  Alcotest.(check int) "curved edges eliminated" 0 q.Recommend.curved_edges

let test_for_graph_without_coords () =
  let g = (Pr_topo.Generate.petersen ()).Pr_topo.Topology.graph in
  let q = Recommend.for_graph g in
  Alcotest.(check bool) "petersen not planar" false q.Recommend.certified_planar;
  Alcotest.(check int) "petersen genus 1 reached" 1 q.Recommend.genus;
  Alcotest.(check int) "no curved edges" 0 q.Recommend.curved_edges

let test_removable_curved_on_bridges () =
  (* Path graph: both links are bridges — curved but not removable. *)
  let g = Pr_graph.Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let faces = Pr_embed.Faces.compute (Pr_embed.Rotation.adjacency g) in
  Alcotest.(check int) "two curved" 2
    (List.length (Pr_embed.Validate.curved_edges faces));
  Alcotest.(check (list (pair int int))) "none removable" []
    (Pr_embed.Validate.removable_curved_edges faces)

let suite =
  [
    Alcotest.test_case "planar map certified" `Quick test_planar_map_certified;
    Alcotest.test_case "geant reconstruction is planar" `Quick
      test_geant_reconstruction_is_planar;
    Alcotest.test_case "non-planar map annealed" `Slow test_non_planar_map_annealed;
    Alcotest.test_case "graph without coords" `Slow test_for_graph_without_coords;
    Alcotest.test_case "bridges not removable" `Quick test_removable_curved_on_bridges;
  ]
