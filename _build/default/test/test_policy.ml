module Graph = Pr_graph.Graph
module Policy = Pr_core.Policy
module Topology = Pr_topo.Topology

let setup () =
  let topo = Pr_topo.Abilene.topology () in
  let routing = Pr_core.Routing.build topo.Topology.graph in
  let cycles = Pr_core.Cycle_table.build (Pr_embed.Geometric.of_topology topo) in
  (topo, routing, cycles)

let test_class_sets () =
  let p = Policy.make ~protected_classes:[ 5; 6 ] in
  Alcotest.(check bool) "5 protected" true (Policy.protects p 5);
  Alcotest.(check bool) "0 not protected" false (Policy.protects p 0);
  Alcotest.(check (list int)) "listing" [ 5; 6 ] (Policy.protected_classes p);
  Alcotest.(check (list int)) "protect_all" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Policy.protected_classes Policy.protect_all);
  Alcotest.(check (list int)) "protect_none" [] (Policy.protected_classes Policy.protect_none)

let test_class_bounds () =
  (match Policy.make ~protected_classes:[ 8 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "class 8 accepted");
  match Policy.protects Policy.protect_all (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "class -1 accepted"

let test_protected_class_survives () =
  let topo, routing, cycles = setup () in
  let g = topo.Topology.graph in
  let failures = Pr_core.Failure.of_list g [ (3, 4) ] in
  let policy = Policy.make ~protected_classes:[ 5 ] in
  let outcome = Policy.forward policy ~class_id:5 ~routing ~cycles ~failures ~src:0 ~dst:6 in
  Alcotest.(check bool) "delivered" true (Policy.delivered outcome);
  match outcome with
  | Policy.Forwarded trace ->
      Alcotest.(check bool) "via PR" true (trace.Pr_core.Forward.pr_episodes >= 0)
  | Policy.Shortest_path _ | Policy.Dropped_at _ ->
      Alcotest.fail "protected class must use PR"

let test_unprotected_class_drops () =
  let topo, routing, cycles = setup () in
  let g = topo.Topology.graph in
  (* STTL(0)->IPLS(6) crosses DNVR-KSCY on the shortest path. *)
  let failures = Pr_core.Failure.of_list g [ (3, 4) ] in
  let policy = Policy.make ~protected_classes:[ 5 ] in
  let outcome = Policy.forward policy ~class_id:0 ~routing ~cycles ~failures ~src:0 ~dst:6 in
  Alcotest.(check bool) "dropped" false (Policy.delivered outcome);
  match outcome with
  | Policy.Dropped_at { node; walked } ->
      Alcotest.(check int) "dies at DNVR" 3 node;
      Alcotest.(check (list int)) "walked the prefix" [ 0; 3 ] walked
  | Policy.Forwarded _ | Policy.Shortest_path _ -> Alcotest.fail "expected a drop"

let test_unprotected_class_fine_without_failures () =
  let topo, routing, cycles = setup () in
  let failures = Pr_core.Failure.none topo.Topology.graph in
  let policy = Policy.protect_none in
  let outcome = Policy.forward policy ~class_id:0 ~routing ~cycles ~failures ~src:0 ~dst:6 in
  Alcotest.(check bool) "delivered on SP" true (Policy.delivered outcome);
  match outcome with
  | Policy.Shortest_path path ->
      Alcotest.(check (option (list int))) "exactly the shortest path"
        (Pr_core.Routing.shortest_path routing ~src:0 ~dst:6)
        (Some path)
  | Policy.Forwarded _ | Policy.Dropped_at _ -> Alcotest.fail "expected plain SP"

let suite =
  [
    Alcotest.test_case "class sets" `Quick test_class_sets;
    Alcotest.test_case "class bounds" `Quick test_class_bounds;
    Alcotest.test_case "protected class survives" `Quick test_protected_class_survives;
    Alcotest.test_case "unprotected class drops" `Quick test_unprotected_class_drops;
    Alcotest.test_case "unprotected class without failures" `Quick
      test_unprotected_class_fine_without_failures;
  ]
