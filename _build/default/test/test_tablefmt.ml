module T = Pr_util.Tablefmt

let test_render_shape () =
  let out = T.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  Alcotest.(check bool) "rule is dashes" true
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_alignment () =
  let out = T.render ~header:[ "h"; "n" ] [ [ "x"; "5" ] ] in
  (* Second column is right-aligned under default alignment. *)
  Alcotest.(check bool) "right aligned" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    let row = List.nth lines 2 in
    String.length row >= 4)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Tablefmt.render: ragged row")
    (fun () -> ignore (T.render ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_align_mismatch () =
  Alcotest.check_raises "align mismatch"
    (Invalid_argument "Tablefmt.render: align length mismatch") (fun () ->
      ignore (T.render ~align:[ T.Left ] ~header:[ "a"; "b" ] [ [ "1"; "2" ] ]))

let test_float_cell () =
  Alcotest.(check string) "default decimals" "1.500" (T.float_cell 1.5);
  Alcotest.(check string) "custom decimals" "1.50" (T.float_cell ~decimals:2 1.5)

let test_wide_cells_fit () =
  let out =
    T.render ~header:[ "h" ] [ [ "a-very-long-cell-content" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "rule spans widest cell" true
    (String.length (List.nth lines 1) >= String.length "a-very-long-cell-content")

let suite =
  [
    Alcotest.test_case "render shape" `Quick test_render_shape;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "align mismatch rejected" `Quick test_align_mismatch;
    Alcotest.test_case "float cell" `Quick test_float_cell;
    Alcotest.test_case "wide cells" `Quick test_wide_cells_fit;
  ]
