module Topology = Pr_topo.Topology
module Prefix = Pr_interdomain.Prefix
module Forward = Pr_core.Forward

let abilene_prefix () =
  let topo = Pr_topo.Abilene.topology () in
  let e name = Topology.node_id topo name in
  ( topo,
    Prefix.attach topo ~name:"p0"
      ~egresses:[ (e "NYCM", 1.0); (e "LOSA", 1.0); (e "HSTN", 2.0) ] )

let test_attach_shape () =
  let topo, prefix = abilene_prefix () in
  let ext = Prefix.topology prefix in
  Alcotest.(check int) "one extra node" (Topology.n topo + 1) (Topology.n ext);
  Alcotest.(check int) "three extra links" (Topology.m topo + 3) (Topology.m ext);
  Alcotest.(check int) "prefix node is last" (Topology.n topo) (Prefix.prefix_node prefix);
  Alcotest.(check string) "labelled" "p0" (Topology.label ext (Prefix.prefix_node prefix));
  Alcotest.(check int) "three egresses" 3 (List.length (Prefix.egresses prefix))

let test_attach_validation () =
  let topo = Pr_topo.Abilene.topology () in
  (match Prefix.attach topo ~name:"x" ~egresses:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty egresses accepted");
  (match Prefix.attach topo ~name:"x" ~egresses:[ (0, 1.0); (0, 2.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate egress accepted");
  match Prefix.attach topo ~name:"x" ~egresses:[ (99, 1.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad egress accepted"

let test_egress_link () =
  let topo, prefix = abilene_prefix () in
  let losa = Topology.node_id topo "LOSA" in
  Alcotest.(check (pair int int)) "virtual link"
    (losa, Prefix.prefix_node prefix)
    (Prefix.egress_link prefix losa);
  Alcotest.check_raises "non-egress" Not_found (fun () ->
      ignore (Prefix.egress_link prefix (Topology.node_id topo "DNVR")))

let test_protection_embedding_quality () =
  let _, prefix = abilene_prefix () in
  let p = Prefix.protect prefix in
  Alcotest.(check int) "extended abilene embeds planar" 0 p.Prefix.genus;
  Alcotest.(check int) "no curved edges" 0 p.Prefix.curved_edges

let test_reach_failure_free () =
  let topo, prefix = abilene_prefix () in
  let p = Prefix.protect prefix in
  let ext = Prefix.topology prefix in
  let failures = Pr_core.Failure.none ext.Topology.graph in
  let src = Topology.node_id topo "STTL" in
  let trace = Prefix.reach p ~failures ~src in
  Alcotest.(check bool) "delivered" true (trace.Forward.outcome = Forward.Delivered);
  Alcotest.(check (option int)) "primary egress is LOSA"
    (Some (Topology.node_id topo "LOSA"))
    (Prefix.best_egress p ~src)

let test_survives_announcement_withdrawal () =
  let topo, prefix = abilene_prefix () in
  let p = Prefix.protect prefix in
  let ext = Prefix.topology prefix in
  let losa = Topology.node_id topo "LOSA" in
  let nycm = Topology.node_id topo "NYCM" in
  (* Withdraw two of the three announcements from every source. *)
  let failures =
    Pr_core.Failure.of_list ext.Topology.graph
      [ Prefix.egress_link prefix losa; Prefix.egress_link prefix nycm ]
  in
  for src = 0 to Topology.n topo - 1 do
    let trace = Prefix.reach p ~failures ~src in
    if trace.Forward.outcome <> Forward.Delivered then
      Alcotest.failf "src %s lost the prefix" (Topology.label topo src)
  done

let test_survives_mixed_failures () =
  let topo, prefix = abilene_prefix () in
  let p = Prefix.protect prefix in
  let ext = Prefix.topology prefix in
  let failures =
    Pr_core.Failure.of_list ext.Topology.graph
      [
        Prefix.egress_link prefix (Topology.node_id topo "LOSA");
        (Topology.node_id topo "DNVR", Topology.node_id topo "KSCY");
      ]
  in
  let src = Topology.node_id topo "STTL" in
  let trace = Prefix.reach p ~failures ~src in
  Alcotest.(check bool) "delivered" true (trace.Forward.outcome = Forward.Delivered)

let test_all_withdrawn_is_unreachable () =
  let topo, prefix = abilene_prefix () in
  let p = Prefix.protect prefix in
  let ext = Prefix.topology prefix in
  let failures =
    Pr_core.Failure.of_list ext.Topology.graph
      (List.map (Prefix.egress_link prefix) (Prefix.egresses prefix))
  in
  let trace = Prefix.reach p ~failures ~src:(Topology.node_id topo "STTL") in
  Alcotest.(check bool) "not delivered" true (trace.Forward.outcome <> Forward.Delivered)

let suite =
  [
    Alcotest.test_case "attach shape" `Quick test_attach_shape;
    Alcotest.test_case "attach validation" `Quick test_attach_validation;
    Alcotest.test_case "egress link" `Quick test_egress_link;
    Alcotest.test_case "embedding quality" `Quick test_protection_embedding_quality;
    Alcotest.test_case "reach without failures" `Quick test_reach_failure_free;
    Alcotest.test_case "survives withdrawals" `Quick test_survives_announcement_withdrawal;
    Alcotest.test_case "survives mixed failures" `Quick test_survives_mixed_failures;
    Alcotest.test_case "all withdrawn unreachable" `Quick test_all_withdrawn_is_unreachable;
  ]
