(* Structural validation of the paper's §5.1 claim: cycle following with
   no termination condition walks the boundary of the region obtained by
   joining all cells with failed links on their boundary. *)

module Graph = Pr_graph.Graph
module Faces = Pr_embed.Faces
module Region = Pr_core.Region
module Failure = Pr_core.Failure

let fig1 () =
  let topo = Pr_topo.Example.topology () in
  let rotation = Pr_embed.Rotation.of_orders topo.graph Pr_topo.Example.rotation_orders in
  (topo.Pr_topo.Topology.graph, Faces.compute rotation, Pr_core.Cycle_table.build rotation)

let test_join_single_failure () =
  let g, faces, _ = fig1 () in
  (* Failing D-E joins its two faces (c1 and c2); the other two cells stay
     separate: 3 regions out of 4 faces. *)
  let failures = Failure.of_list g [ (Pr_topo.Example.d, Pr_topo.Example.e) ] in
  let regions = Region.join faces failures in
  Alcotest.(check int) "three regions" 3 regions.Region.count;
  let r_de =
    Region.region_of_arc faces regions ~tail:Pr_topo.Example.d ~head:Pr_topo.Example.e
  in
  let r_ed =
    Region.region_of_arc faces regions ~tail:Pr_topo.Example.e ~head:Pr_topo.Example.d
  in
  Alcotest.(check int) "both sides of the failed link joined" r_de r_ed

let test_join_no_failures () =
  let g, faces, _ = fig1 () in
  let regions = Region.join faces (Failure.none g) in
  Alcotest.(check int) "every face its own region" (Faces.count faces)
    regions.Region.count

let test_boundary_walk_fig1 () =
  (* The walkthrough of Figure 1(b), §5.1: the packet's route is the
     boundary of c1 joined with c2. *)
  let g, _, cycles = fig1 () in
  let d = Pr_topo.Example.d and e = Pr_topo.Example.e in
  let b = Pr_topo.Example.b and c = Pr_topo.Example.c and f = Pr_topo.Example.f in
  let failures = Failure.of_list g [ (d, e) ] in
  let walk = Region.boundary_walk ~cycles ~failures ~start:(d, b) in
  Alcotest.(check (list (pair int int))) "boundary of c1 (+) c2"
    [ (d, b); (b, c); (c, e); (e, f); (f, d) ]
    walk

let test_walk_avoids_failures () =
  let g, _, cycles = fig1 () in
  let failures =
    Failure.of_list g
      [ (Pr_topo.Example.d, Pr_topo.Example.e); (Pr_topo.Example.b, Pr_topo.Example.c) ]
  in
  let walk =
    Region.boundary_walk ~cycles ~failures ~start:(Pr_topo.Example.d, Pr_topo.Example.b)
  in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "live arc" true (Failure.link_up failures u v))
    walk

let test_walk_start_validation () =
  let g, _, cycles = fig1 () in
  let failures = Failure.of_list g [ (Pr_topo.Example.d, Pr_topo.Example.e) ] in
  (match
     Region.boundary_walk ~cycles ~failures
       ~start:(Pr_topo.Example.d, Pr_topo.Example.e)
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "failed start accepted");
  match
    Region.boundary_walk ~cycles ~failures ~start:(Pr_topo.Example.a, Pr_topo.Example.f)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-link start accepted"

let test_pr_route_is_walk_prefix () =
  (* The cycle-following segment of the PR route in Figure 1(b) is a
     prefix of the region boundary walk. *)
  let g, _, cycles = fig1 () in
  let d = Pr_topo.Example.d and b = Pr_topo.Example.b in
  let failures = Failure.of_list g [ (d, Pr_topo.Example.e) ] in
  let routing = Pr_core.Routing.build g in
  let trace =
    Pr_core.Forward.run ~routing ~cycles ~failures ~src:Pr_topo.Example.a
      ~dst:Pr_topo.Example.f ()
  in
  (* PR route: A B D B C E F; cycle following covers D->B,B->C,C->E. *)
  let walk = Region.boundary_walk ~cycles ~failures ~start:(d, b) in
  let rec arcs_of = function
    | x :: (y :: _ as rest) -> (x, y) :: arcs_of rest
    | [ _ ] | [] -> []
  in
  let route_arcs = arcs_of trace.Pr_core.Forward.path in
  (* drop the shortest-path prefix A->B, B->D *)
  let cycle_part = List.filteri (fun i _ -> i >= 2 && i < 5) route_arcs in
  let walk_prefix = List.filteri (fun i _ -> i < 3) walk in
  Alcotest.(check (list (pair int int))) "prefix property" walk_prefix cycle_part

(* §5.1 as a property: on a planar embedding, the boundary walks partition
   the live arcs of every joined region. *)
let qcheck_walks_partition_region_arcs =
  QCheck.Test.make
    ~name:"boundary walks partition each region's live arcs (planar)" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 3 5) (int_range 1 5))
    (fun (seed, side, k) ->
      let topo = Pr_topo.Generate.grid ~rows:side ~cols:side in
      let g = topo.Pr_topo.Topology.graph in
      let rotation = Pr_embed.Geometric.of_topology topo in
      let faces = Faces.compute rotation in
      let cycles = Pr_core.Cycle_table.build rotation in
      let rng = Pr_util.Rng.create ~seed in
      let k = min k (Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Graph.edge g i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      let regions = Region.join faces failures in
      let ok = ref true in
      for region = 0 to regions.Region.count - 1 do
        let live = Region.live_arcs_of_region faces regions failures ~region in
        (* Decompose into orbits of the boundary-walk map. *)
        let seen = Hashtbl.create 32 in
        List.iter
          (fun arc ->
            if not (Hashtbl.mem seen arc) then begin
              let walk = Region.boundary_walk ~cycles ~failures ~start:arc in
              List.iter
                (fun a ->
                  if Hashtbl.mem seen a then ok := false (* orbits must not overlap *)
                  else Hashtbl.replace seen a ();
                  (* every walk arc must belong to this region's live set *)
                  if not (List.mem a live) then ok := false)
                walk
            end)
          live;
        if Hashtbl.length seen <> List.length live then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "join, single failure" `Quick test_join_single_failure;
    Alcotest.test_case "join, no failures" `Quick test_join_no_failures;
    Alcotest.test_case "boundary walk (fig 1b)" `Quick test_boundary_walk_fig1;
    Alcotest.test_case "walk avoids failures" `Quick test_walk_avoids_failures;
    Alcotest.test_case "walk start validation" `Quick test_walk_start_validation;
    Alcotest.test_case "PR route prefixes the walk" `Quick test_pr_route_is_walk_prefix;
    QCheck_alcotest.to_alcotest qcheck_walks_partition_region_arcs;
  ]
