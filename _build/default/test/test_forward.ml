(* Protocol-level properties of the PR forwarding engine, beyond the paper
   walkthroughs of test_paper_example.ml.

   The central empirical findings this suite pins down:
   - on a genus-0 (planar) embedding, PR delivers every packet whose
     source and destination remain connected, for ANY failure set;
   - on any embedding without curved edges, PR covers every single link
     failure of a 2-edge-connected graph;
   - with a curved edge (both arcs of a link on one face), even a single
     failure can loop — the Teleglobe NWK-PAR regression. *)

module Graph = Pr_graph.Graph
module Forward = Pr_core.Forward
module Routing = Pr_core.Routing
module Failure = Pr_core.Failure
module Cycle_table = Pr_core.Cycle_table

let build (topo : Pr_topo.Topology.t) rotation =
  (Routing.build topo.graph, Cycle_table.build rotation)

let grid_setup rows cols =
  let topo, rot = Helpers.grid_with_rotation ~rows ~cols in
  let routing, cycles = build topo rot in
  (topo.Pr_topo.Topology.graph, routing, cycles)

let run ?termination ?ttl (routing, cycles) failures ~src ~dst =
  Forward.run ?termination ?ttl ~routing ~cycles ~failures ~src ~dst ()

let test_no_failure_is_shortest_path () =
  let g, routing, cycles = grid_setup 3 3 in
  List.iter
    (fun (src, dst) ->
      let trace = run (routing, cycles) (Failure.none g) ~src ~dst in
      Alcotest.(check bool) "delivered" true (trace.Forward.outcome = Forward.Delivered);
      Alcotest.(check (option (list int))) "exact shortest path"
        (Routing.shortest_path routing ~src ~dst)
        (Some trace.Forward.path);
      Alcotest.(check int) "no episodes" 0 trace.Forward.pr_episodes)
    (Helpers.all_pairs g)

let test_invalid_args () =
  let g, routing, cycles = grid_setup 2 2 in
  (match run (routing, cycles) (Failure.none g) ~src:0 ~dst:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "src = dst accepted");
  match run (routing, cycles) (Failure.none g) ~src:0 ~dst:99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range accepted"

let test_ttl_respected () =
  let g, routing, cycles = grid_setup 3 3 in
  let trace = run ~ttl:1 (routing, cycles) (Failure.none g) ~src:0 ~dst:8 in
  Alcotest.(check bool) "dies at ttl" true (trace.Forward.outcome = Forward.Ttl_exceeded);
  Alcotest.(check int) "walked exactly one hop" 1
    (Pr_graph.Paths.hops trace.Forward.path)

let test_isolated_source_drops () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2); ] in
  let topo = Pr_topo.Topology.of_graph ~name:"path" g in
  let routing, cycles = build topo (Pr_embed.Rotation.adjacency g) in
  let failures = Failure.of_list g [ (0, 1) ] in
  let trace = run (routing, cycles) failures ~src:0 ~dst:2 in
  Alcotest.(check bool) "no live interface" true
    (trace.Forward.outcome = Forward.Dropped_no_interface)

let test_disconnected_pair_does_not_deliver () =
  (* PR has no way to learn the destination is unreachable: the packet
     wanders until TTL — the documented behaviour. *)
  let g, routing, cycles = grid_setup 3 3 in
  (* Cut node 8 (corner) off: links 5-8 and 7-8. *)
  let failures = Failure.of_list g [ (5, 8); (7, 8) ] in
  let trace = run (routing, cycles) failures ~src:0 ~dst:8 in
  Alcotest.(check bool) "not delivered" true
    (trace.Forward.outcome <> Forward.Delivered)

let test_single_failure_walkthrough_stats () =
  let g, routing, cycles = grid_setup 3 3 in
  let failures = Failure.of_list g [ (0, 1) ] in
  let trace = run (routing, cycles) failures ~src:0 ~dst:1 in
  Alcotest.(check bool) "delivered" true (trace.Forward.outcome = Forward.Delivered);
  Alcotest.(check int) "one episode" 1 trace.Forward.pr_episodes;
  Alcotest.(check bool) "header saw the discriminator" true
    (trace.Forward.max_header.Pr_core.Header.dd >= 1);
  Alcotest.(check bool) "stretch at least 1" true
    (Forward.stretch ~routing ~trace ~src:0 ~dst:1 >= 1.0)

let test_curved_edge_single_failure_loops () =
  (* Regression: Teleglobe's geographic drawing makes NWK-PAR curved; a
     single failure of that link loops under both terminations. *)
  let topo = Pr_topo.Teleglobe.topology () in
  let routing, cycles = build topo (Pr_embed.Geometric.of_topology topo) in
  let nwk = Pr_topo.Topology.node_id topo "NWK"
  and par = Pr_topo.Topology.node_id topo "PAR"
  and nyc = Pr_topo.Topology.node_id topo "NYC" in
  let failures = Failure.of_list topo.graph [ (nwk, par) ] in
  let trace =
    Forward.run ~routing ~cycles ~failures ~src:nyc ~dst:par ()
  in
  Alcotest.(check bool) "loops (documented limitation)" true
    (trace.Forward.outcome = Forward.Ttl_exceeded)

let all_single_failures_delivered g routing cycles ~termination =
  List.for_all
    (fun scenario ->
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let trace =
            Forward.run ~termination ~routing ~cycles ~failures ~src ~dst ()
          in
          trace.Forward.outcome = Forward.Delivered)
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    (Pr_core.Scenario.single_links g)

let test_single_failure_full_coverage_grid () =
  let g, routing, cycles = grid_setup 4 4 in
  Alcotest.(check bool) "DD termination" true
    (all_single_failures_delivered g routing cycles
       ~termination:Forward.Distance_discriminator);
  Alcotest.(check bool) "simple termination" true
    (all_single_failures_delivered g routing cycles ~termination:Forward.Simple)

let test_single_failure_full_coverage_abilene () =
  let topo = Pr_topo.Abilene.topology () in
  let routing, cycles = build topo (Pr_embed.Geometric.of_topology topo) in
  Alcotest.(check bool) "abilene covered" true
    (all_single_failures_delivered topo.graph routing cycles
       ~termination:Forward.Distance_discriminator)

(* The genus-0 multi-failure guarantee, as a property test over grids with
   random failure sets that keep the pair connected. *)
let qcheck_planar_multi_failure_delivery =
  QCheck.Test.make
    ~name:"planar embedding: every connected pair survives any failure set"
    ~count:60
    QCheck.(
      triple (int_bound 1_000_000) (int_range 3 5) (int_range 1 6))
    (fun (seed, side, k) ->
      let topo, rot = Helpers.grid_with_rotation ~rows:side ~cols:side in
      let g = topo.Pr_topo.Topology.graph in
      let routing, cycles = build topo rot in
      let rng = Pr_util.Rng.create ~seed in
      let k = min k (Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Graph.edge g i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let trace =
            Forward.run ~routing ~cycles ~failures ~src ~dst ()
          in
          trace.Forward.outcome = Forward.Delivered
          && Forward.stretch ~routing ~trace ~src ~dst >= 1.0)
        (Pr_core.Scenario.connected_affected_pairs routing failures))

(* PR can never beat the post-convergence optimum. *)
let qcheck_stretch_lower_bounded_by_reconvergence =
  QCheck.Test.make ~name:"PR stretch >= reconvergence stretch" ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 3 5))
    (fun (seed, side) ->
      let topo, rot = Helpers.grid_with_rotation ~rows:side ~cols:side in
      let g = topo.Pr_topo.Topology.graph in
      let routing, cycles = build topo rot in
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let failures = Failure.of_list g [ (e.Graph.u, e.Graph.v) ] in
      List.for_all
        (fun (src, dst) ->
          let trace = Forward.run ~routing ~cycles ~failures ~src ~dst () in
          trace.Forward.outcome <> Forward.Delivered
          || Forward.stretch ~routing ~trace ~src ~dst +. 1e-9
             >= Pr_baselines.Reconvergence.stretch ~routing ~failures ~src ~dst)
        (Pr_core.Scenario.connected_affected_pairs routing failures))

(* §5.3's termination argument: successive PR episodes start with strictly
   smaller discriminators, so the intercalated routing/cycle-following
   process converges. *)
let qcheck_episode_dds_strictly_decrease =
  QCheck.Test.make ~name:"episode DDs strictly decrease (planar)" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 3 5) (int_range 1 6))
    (fun (seed, side, k) ->
      let topo, rot = Helpers.grid_with_rotation ~rows:side ~cols:side in
      let g = topo.Pr_topo.Topology.graph in
      let routing, cycles = build topo rot in
      let rng = Pr_util.Rng.create ~seed in
      let k = min k (Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Graph.edge g i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let trace = Forward.run ~routing ~cycles ~failures ~src ~dst () in
          let rec decreasing = function
            | (_, a) :: ((_, b) :: _ as rest) -> b < a && decreasing rest
            | [ _ ] | [] -> true
          in
          List.length trace.Forward.episodes = trace.Forward.pr_episodes
          && decreasing trace.Forward.episodes)
        (Pr_core.Scenario.connected_affected_pairs routing failures))

let qcheck_quantise_identity_for_hops =
  (* The hop discriminator is already integral: header-faithful mode must
     trace identical paths. *)
  QCheck.Test.make ~name:"quantised DD is the identity for hop counts" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 3 5))
    (fun (seed, side) ->
      let topo, rot = Helpers.grid_with_rotation ~rows:side ~cols:side in
      let g = topo.Pr_topo.Topology.graph in
      let routing, cycles = build topo rot in
      let rng = Pr_util.Rng.create ~seed in
      let k = min 3 (Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Graph.edge g i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let a = Forward.run ~routing ~cycles ~failures ~src ~dst () in
          let b = Forward.run ~quantise:true ~routing ~cycles ~failures ~src ~dst () in
          a.Forward.path = b.Forward.path && a.Forward.outcome = b.Forward.outcome)
        (Pr_core.Scenario.connected_affected_pairs routing failures))

let suite =
  [
    Alcotest.test_case "no failure = shortest path" `Quick test_no_failure_is_shortest_path;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "ttl respected" `Quick test_ttl_respected;
    Alcotest.test_case "isolated source drops" `Quick test_isolated_source_drops;
    Alcotest.test_case "disconnected pair" `Quick test_disconnected_pair_does_not_deliver;
    Alcotest.test_case "single failure stats" `Quick test_single_failure_walkthrough_stats;
    Alcotest.test_case "curved edge loops (regression)" `Quick
      test_curved_edge_single_failure_loops;
    Alcotest.test_case "grid single-failure coverage" `Quick
      test_single_failure_full_coverage_grid;
    Alcotest.test_case "abilene single-failure coverage" `Quick
      test_single_failure_full_coverage_abilene;
    QCheck_alcotest.to_alcotest qcheck_planar_multi_failure_delivery;
    QCheck_alcotest.to_alcotest qcheck_stretch_lower_bounded_by_reconvergence;
    QCheck_alcotest.to_alcotest qcheck_episode_dds_strictly_decrease;
    QCheck_alcotest.to_alcotest qcheck_quantise_identity_for_hops;
  ]
