module Heap = Pr_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check (option (pair (float 0.0) string))) "peek min" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.pop h = None)

let test_ties_fifo () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "first"; "second"; "third" ];
  Alcotest.(check (option (pair (float 0.0) string))) "fifo 1" (Some (1.0, "first")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "fifo 2" (Some (1.0, "second")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "fifo 3" (Some (1.0, "third")) (Heap.pop h)

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 1;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let drain h =
  let rec loop acc = match Heap.pop h with None -> List.rev acc | Some (p, _) -> loop (p :: acc) in
  loop []

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) priorities;
      drain h = List.sort compare priorities)

let qcheck_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop maintains min" ~count:100
    QCheck.(list (pair bool (float_range 0.0 100.0)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_pop, p) ->
          if is_pop then begin
            match (Heap.pop h, !model) with
            | None, [] -> ()
            | Some (got, _), (_ :: _ as m) ->
                let min_p = List.fold_left Float.min infinity m in
                if got <> min_p then ok := false
                else begin
                  (* remove one instance of min *)
                  let removed = ref false in
                  model :=
                    List.filter
                      (fun x ->
                        if x = min_p && not !removed then begin
                          removed := true;
                          false
                        end
                        else true)
                      m
                end
            | None, _ :: _ | Some _, [] -> ok := false
          end
          else begin
            Heap.push h p ();
            model := p :: !model
          end)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "ties are FIFO" `Quick test_ties_fifo;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest qcheck_heap_sorts;
    QCheck_alcotest.to_alcotest qcheck_interleaved;
  ]
