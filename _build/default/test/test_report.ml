let read_file path = In_channel.with_open_text path In_channel.input_all

let with_temp_dir f =
  let dir = Filename.temp_file "pr_report" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_paper_panels_shape () =
  let panels = Pr_exp.Report.paper_panels () in
  Alcotest.(check (list string)) "six panels, paper order"
    [ "fig2a"; "fig2b"; "fig2c"; "fig2d"; "fig2e"; "fig2f" ]
    (List.map fst panels);
  let ks = List.map (fun (_, c) -> c.Pr_exp.Fig2.k) panels in
  Alcotest.(check (list int)) "failure counts" [ 1; 1; 1; 4; 10; 16 ] ks

let test_write_fig2 () =
  with_temp_dir (fun dir ->
      let result =
        Pr_exp.Fig2.run (Pr_exp.Fig2.default (Pr_topo.Abilene.topology ()) ~k:1)
      in
      Pr_exp.Report.write_fig2 ~dir ~name:"panel" result;
      let dat = read_file (Filename.concat dir "panel.dat") in
      let gp = read_file (Filename.concat dir "panel.gp") in
      (* 29 grid rows + 2 comment lines. *)
      let lines = String.split_on_char '\n' dat |> List.filter (fun l -> l <> "") in
      Alcotest.(check int) "data rows" 31 (List.length lines);
      let data_lines =
        List.filter (fun l -> String.length l > 0 && l.[0] <> '#') lines
      in
      List.iter
        (fun line ->
          Alcotest.(check int) "x + three schemes" 4
            (List.length
               (String.split_on_char ' ' line |> List.filter (fun s -> s <> ""))))
        data_lines;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "gp mentions data file" true (contains gp "panel.dat");
      Alcotest.(check bool) "gp titles the schemes" true
        (contains gp "Packet Re-cycling"))

let suite =
  [
    Alcotest.test_case "paper panels" `Quick test_paper_panels_shape;
    Alcotest.test_case "write fig2 files" `Quick test_write_fig2;
  ]
