module Uf = Pr_util.Union_find

let test_singletons () =
  let uf = Uf.create 5 in
  Alcotest.(check int) "5 sets" 5 (Uf.count uf);
  for i = 0 to 4 do
    Alcotest.(check int) "own root" i (Uf.find uf i)
  done

let test_union () =
  let uf = Uf.create 4 in
  Alcotest.(check bool) "union works" true (Uf.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Uf.union uf 1 0);
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "not same" false (Uf.same uf 0 2);
  Alcotest.(check int) "3 sets" 3 (Uf.count uf)

let test_transitivity () =
  let uf = Uf.create 6 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 1 2);
  Alcotest.(check bool) "0~3" true (Uf.same uf 0 3);
  Alcotest.(check int) "3 sets remain" 3 (Uf.count uf)

let qcheck_matches_model =
  (* Compare against a naive model that relabels on every union. *)
  QCheck.Test.make ~name:"union-find matches naive model" ~count:100
    QCheck.(list (pair (int_bound 14) (int_bound 14)))
    (fun unions ->
      let n = 15 in
      let uf = Uf.create n in
      let model = Array.init n Fun.id in
      List.iter
        (fun (a, b) ->
          ignore (Uf.union uf a b);
          let la = model.(a) and lb = model.(b) in
          if la <> lb then
            Array.iteri (fun i l -> if l = lb then model.(i) <- la) model)
        unions;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Uf.same uf i j <> (model.(i) = model.(j)) then ok := false
        done
      done;
      let classes = Array.to_list model |> List.sort_uniq compare |> List.length in
      !ok && classes = Uf.count uf)

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    QCheck_alcotest.to_alcotest qcheck_matches_model;
  ]
