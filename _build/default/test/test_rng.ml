module Rng = Pr_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differ = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differ := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differ

let test_copy_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  let _ = Rng.bits64 a in
  ()

let test_split_diverges () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 200 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_float_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_int_covers_range () =
  let rng = Rng.create ~seed:10 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng ~k:5 ~n:12 in
    Alcotest.(check int) "k values" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 12)) s
  done;
  Alcotest.(check (list int)) "k = n is everything"
    [ 0; 1; 2; 3 ]
    (Rng.sample_without_replacement rng ~k:4 ~n:4);
  Alcotest.(check (list int)) "k = 0 empty" []
    (Rng.sample_without_replacement rng ~k:0 ~n:4)

let qcheck_sample_uniformity =
  QCheck.Test.make ~name:"sample_without_replacement covers all indices"
    ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let s = Rng.sample_without_replacement rng ~k:n ~n in
      s = List.init n Fun.id)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
    QCheck_alcotest.to_alcotest qcheck_sample_uniformity;
  ]
