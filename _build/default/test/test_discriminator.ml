module Graph = Pr_graph.Graph
module Discriminator = Pr_core.Discriminator
module Dijkstra = Pr_graph.Dijkstra

let weighted_path () =
  Graph.create ~n:4 [ (0, 1, 2.5); (1, 2, 2.5); (2, 3, 2.5) ]

let test_values () =
  let g = weighted_path () in
  let tree = Dijkstra.tree g ~root:3 in
  Alcotest.(check (float 0.0)) "hops" 3.0 (Discriminator.value Discriminator.Hops tree 0);
  Alcotest.(check (float 0.0)) "weighted" 7.5
    (Discriminator.value Discriminator.Weighted tree 0);
  Alcotest.(check (float 0.0)) "at root" 0.0 (Discriminator.value Discriminator.Hops tree 3)

let test_unreachable () =
  let g = Graph.unweighted ~n:3 [ (0, 1) ] in
  let tree = Dijkstra.tree g ~root:0 in
  Alcotest.(check bool) "hops infinite" true
    (Discriminator.value Discriminator.Hops tree 2 = infinity);
  Alcotest.(check bool) "weighted infinite" true
    (Discriminator.value Discriminator.Weighted tree 2 = infinity)

let test_bits_needed () =
  (* diameter 3 hops: values 0..3 need 2 bits. *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "2 bits for diameter 3" 2
    (Discriminator.bits_needed Discriminator.Hops g);
  (* Abilene: diameter 5 -> 3 bits (2^3 = 8 > 5). *)
  let abilene = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  Alcotest.(check int) "abilene 3 bits" 3
    (Discriminator.bits_needed Discriminator.Hops abilene)

let test_to_string () =
  Alcotest.(check string) "hops" "hops" (Discriminator.to_string Discriminator.Hops);
  Alcotest.(check string) "weighted" "weighted"
    (Discriminator.to_string Discriminator.Weighted)

let qcheck_strictly_decreasing_along_path =
  (* The defining property (§4.3): the discriminator strictly decreases
     along the shortest path towards the destination. *)
  QCheck.Test.make ~name:"discriminator strictly decreases towards the root"
    ~count:80
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let ok = ref true in
      Array.iter
        (fun tree ->
          for v = 0 to Graph.n g - 1 do
            match Dijkstra.next_hop tree v with
            | None -> ()
            | Some w ->
                List.iter
                  (fun kind ->
                    if
                      Discriminator.value kind tree w
                      >= Discriminator.value kind tree v
                    then ok := false)
                  [ Discriminator.Hops; Discriminator.Weighted ]
          done)
        (Dijkstra.all_roots g);
      !ok)

let suite =
  [
    Alcotest.test_case "values" `Quick test_values;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "bits needed" `Quick test_bits_needed;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest qcheck_strictly_decreasing_along_path;
  ]
