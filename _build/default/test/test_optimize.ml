module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces
module Surface = Pr_embed.Surface
module Optimize = Pr_embed.Optimize

let rng () = Pr_util.Rng.create ~seed:31

let test_report_consistency () =
  let g = (Pr_topo.Generate.petersen ()).Pr_topo.Topology.graph in
  let best, report = Optimize.anneal ~steps:500 (rng ()) (Rotation.adjacency g) in
  Alcotest.(check bool) "never worse than start" true
    (report.Optimize.final_faces >= report.Optimize.initial_faces);
  Alcotest.(check int) "report matches returned rotation"
    (Faces.count (Faces.compute best))
    report.Optimize.final_faces;
  Alcotest.(check bool) "steps bounded" true (report.Optimize.steps_taken <= 500)

let test_improvements_monotonic () =
  let g = (Pr_topo.Generate.petersen ()).Pr_topo.Topology.graph in
  let _, report = Optimize.anneal ~steps:800 (rng ()) (Rotation.random (rng ()) g) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "improvement steps increase" true
    (increasing report.Optimize.improved_at)

let test_degree_two_graph_stops () =
  (* A plain cycle has a unique embedding: no degree-3 node to transpose. *)
  let g = Graph.unweighted ~n:5 (List.init 5 (fun i -> (i, (i + 1) mod 5))) in
  let _, report = Optimize.anneal ~steps:100 (rng ()) (Rotation.adjacency g) in
  Alcotest.(check bool) "stops early" true (report.Optimize.steps_taken <= 1)

let test_petersen_reaches_genus_one () =
  (* Petersen's orientable genus is exactly 1; the annealer should find it
     from a few restarts (faces = 5 at genus 1). *)
  let g = (Pr_topo.Generate.petersen ()).Pr_topo.Topology.graph in
  let best = Optimize.best_of ~steps:3000 ~restarts:4 (rng ()) g in
  Alcotest.(check int) "genus 1 found" 1 (Surface.genus (Faces.compute best))

let test_abilene_reaches_planar () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let best = Optimize.best_of ~steps:3000 ~restarts:4 (rng ()) g in
  Alcotest.(check int) "planar found" 0 (Surface.genus (Faces.compute best))

let test_pr_safe_objective () =
  (* The PR-safe objective eliminates curved edges on the evaluation maps. *)
  List.iter
    (fun (topo : Pr_topo.Topology.t) ->
      let best =
        Optimize.best_of ~objective:Optimize.Pr_safe ~steps:3000
          ~seeds:[ Pr_embed.Geometric.of_topology topo ]
          (rng ()) topo.graph
      in
      let faces = Faces.compute best in
      Alcotest.(check (list (pair int int)))
        (topo.Pr_topo.Topology.name ^ " has no curved edges")
        []
        (Pr_embed.Validate.curved_edges faces))
    [ Pr_topo.Teleglobe.topology (); Pr_topo.Geant.topology () ]

let test_best_of_uses_seeds () =
  (* Seeding with a planar rotation can only help: result must be planar
     for Abilene even with zero annealing steps beyond the seeds. *)
  let topo = Pr_topo.Abilene.topology () in
  let best =
    Optimize.best_of ~steps:1 ~restarts:0
      ~seeds:[ Pr_embed.Geometric.of_topology topo ]
      (rng ()) topo.Pr_topo.Topology.graph
  in
  Alcotest.(check int) "planar preserved" 0 (Surface.genus (Faces.compute best))

let suite =
  [
    Alcotest.test_case "report consistency" `Quick test_report_consistency;
    Alcotest.test_case "improvements monotonic" `Quick test_improvements_monotonic;
    Alcotest.test_case "unique embedding stops" `Quick test_degree_two_graph_stops;
    Alcotest.test_case "petersen genus 1" `Slow test_petersen_reaches_genus_one;
    Alcotest.test_case "abilene planar" `Slow test_abilene_reaches_planar;
    Alcotest.test_case "PR-safe objective" `Slow test_pr_safe_objective;
    Alcotest.test_case "seeds respected" `Quick test_best_of_uses_seeds;
  ]
