module Dot = Pr_graph.Dot
module Graph = Pr_graph.Graph

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_basic_shape () =
  let g = Graph.create ~n:3 [ (0, 1, 1.0); (1, 2, 2.5) ] in
  let dot = Dot.to_dot ~name:"demo" g in
  Alcotest.(check bool) "graph header" true (contains dot "graph demo {");
  Alcotest.(check bool) "edge present" true (contains dot "0 -- 1");
  Alcotest.(check bool) "weight label" true (contains dot "label=\"2.5\"");
  Alcotest.(check bool) "closes" true (contains dot "}")

let test_node_labels () =
  let topo = Pr_topo.Abilene.topology () in
  let dot =
    Dot.to_dot ~node_label:(Pr_topo.Topology.label topo) topo.Pr_topo.Topology.graph
  in
  Alcotest.(check bool) "PoP names appear" true (contains dot "STTL")

let test_highlighted_failures () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Dot.to_dot ~highlight_edges:[ (1, 0) ] g in
  Alcotest.(check bool) "failure styled" true (contains dot "style=dashed");
  Alcotest.(check bool) "colored red" true (contains dot "color=red")

let test_write_file () =
  let path = Filename.temp_file "pr_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.write_file ~path (Graph.unweighted ~n:2 [ (0, 1) ]);
      let text = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "written" true (contains text "0 -- 1"))

let suite =
  [
    Alcotest.test_case "basic shape" `Quick test_basic_shape;
    Alcotest.test_case "node labels" `Quick test_node_labels;
    Alcotest.test_case "highlighted failures" `Quick test_highlighted_failures;
    Alcotest.test_case "write file" `Quick test_write_file;
  ]
