module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra

let diamond () =
  (* 0-1-3 and 0-2-3, with 0-1 cheaper. *)
  Graph.create ~n:4 [ (0, 1, 1.0); (0, 2, 2.0); (1, 3, 1.0); (2, 3, 1.0) ]

let test_distances () =
  let t = Dijkstra.tree (diamond ()) ~root:3 in
  Alcotest.(check (float 0.0)) "root" 0.0 (Dijkstra.distance t 3);
  Alcotest.(check (float 0.0)) "via 1" 2.0 (Dijkstra.distance t 0);
  Alcotest.(check (float 0.0)) "node 1" 1.0 (Dijkstra.distance t 1);
  Alcotest.(check int) "hops from 0" 2 (Dijkstra.hop_count t 0)

let test_next_hop () =
  let t = Dijkstra.tree (diamond ()) ~root:3 in
  Alcotest.(check (option int)) "0 goes via 1" (Some 1) (Dijkstra.next_hop t 0);
  Alcotest.(check (option int)) "1 goes direct" (Some 3) (Dijkstra.next_hop t 1);
  Alcotest.(check (option int)) "root has none" None (Dijkstra.next_hop t 3)

let test_path () =
  let t = Dijkstra.tree (diamond ()) ~root:3 in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 3 ]) (Dijkstra.path_to_root t 0)

let test_unreachable () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (2, 3) ] in
  let t = Dijkstra.tree g ~root:0 in
  Alcotest.(check bool) "2 unreachable" false (Dijkstra.reachable t 2);
  Alcotest.(check (option int)) "no next hop" None (Dijkstra.next_hop t 2);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_to_root t 2);
  Alcotest.(check bool) "infinite distance" true (Dijkstra.distance t 2 = infinity)

let test_tie_break_smallest_parent () =
  (* Two equal-cost routes 0-1-3 and 0-2-3: parent of 3 must be 1. *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = Dijkstra.tree g ~root:0 in
  Alcotest.(check (option int)) "deterministic tie" (Some 1) (Dijkstra.next_hop t 3)

let test_blocked () =
  let g = diamond () in
  let blocked i =
    let e = Graph.edge g i in
    e.Graph.u = 0 && e.Graph.v = 1
  in
  let t = Dijkstra.tree ~blocked g ~root:3 in
  Alcotest.(check (float 0.0)) "detour" 3.0 (Dijkstra.distance t 0);
  Alcotest.(check (option int)) "via 2 now" (Some 2) (Dijkstra.next_hop t 0)

let test_diameter () =
  let path = Graph.unweighted ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  Alcotest.(check int) "path graph hops" 4 (Dijkstra.diameter_hops path);
  Alcotest.(check (float 0.0)) "path graph weight" 4.0 (Dijkstra.diameter_weight path);
  let single = Graph.create ~n:1 [] in
  Alcotest.(check int) "singleton diameter" 0 (Dijkstra.diameter_hops single)

let test_root_out_of_range () =
  Alcotest.check_raises "bad root"
    (Invalid_argument "Dijkstra.tree: root out of range") (fun () ->
      ignore (Dijkstra.tree (diamond ()) ~root:7))

let qcheck_matches_floyd_warshall =
  QCheck.Test.make ~name:"dijkstra matches Floyd-Warshall" ~count:80
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let reference = Helpers.floyd_warshall g in
      let trees = Dijkstra.all_roots g in
      List.for_all
        (fun (src, dst) ->
          Helpers.close ~eps:1e-6 (Dijkstra.distance trees.(dst) src) reference.(src).(dst))
        (Helpers.all_pairs g))

let qcheck_next_hop_walk_reaches_root =
  QCheck.Test.make ~name:"next-hop walk reaches the root with the tree cost"
    ~count:80
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let trees = Dijkstra.all_roots g in
      List.for_all
        (fun (src, dst) ->
          let t = trees.(dst) in
          let rec walk x cost steps =
            if steps > Graph.n g then false
            else if x = dst then Helpers.close ~eps:1e-6 cost (Dijkstra.distance t src)
            else
              match Dijkstra.next_hop t x with
              | None -> false
              | Some w -> walk w (cost +. Graph.weight g x w) (steps + 1)
          in
          walk src 0.0 0)
        (Helpers.all_pairs g))

let qcheck_hops_consistent =
  QCheck.Test.make ~name:"hop counts equal next-hop chain length" ~count:60
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let trees = Dijkstra.all_roots g in
      List.for_all
        (fun (src, dst) ->
          let t = trees.(dst) in
          match Dijkstra.path_to_root t src with
          | None -> false
          | Some path -> List.length path - 1 = Dijkstra.hop_count t src)
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "distances" `Quick test_distances;
    Alcotest.test_case "next hops" `Quick test_next_hop;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "deterministic tie-break" `Quick test_tie_break_smallest_parent;
    Alcotest.test_case "blocked edges" `Quick test_blocked;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "root validation" `Quick test_root_out_of_range;
    QCheck_alcotest.to_alcotest qcheck_matches_floyd_warshall;
    QCheck_alcotest.to_alcotest qcheck_next_hop_walk_reaches_root;
    QCheck_alcotest.to_alcotest qcheck_hops_consistent;
  ]
