module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces
module Surface = Pr_embed.Surface

let test_cycle_genus_zero () =
  let g = Graph.unweighted ~n:5 (List.init 5 (fun i -> (i, (i + 1) mod 5))) in
  let faces = Faces.compute (Rotation.adjacency g) in
  Alcotest.(check int) "chi = 2" 2 (Surface.euler_characteristic faces);
  Alcotest.(check int) "genus 0" 0 (Surface.genus faces);
  Alcotest.(check bool) "planar" true (Surface.is_planar_embedding faces)

let test_grid_geometric_genus_zero () =
  let _, rot = Helpers.grid_with_rotation ~rows:4 ~cols:4 in
  Alcotest.(check int) "grid planar" 0 (Surface.genus (Faces.compute rot))

let test_k4_adjacency () =
  (* K4's adjacency rotation: genus depends on the rotation but must be
     0 or 1 (max genus bound is (6-4+1)/2 = 1). *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let genus = Surface.genus (Faces.compute (Rotation.adjacency g)) in
  Alcotest.(check bool) "within bound" true (genus >= 0 && genus <= Surface.max_genus_bound g);
  Alcotest.(check int) "bound value" 1 (Surface.max_genus_bound g)

let test_k4_planar_rotation () =
  (* An explicitly planar rotation of K4 (outer triangle 1,2,3 around 0). *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let rot =
    Rotation.of_orders g
      [| [ 1; 2; 3 ]; [ 0; 3; 2 ]; [ 0; 1; 3 ]; [ 0; 2; 1 ] |]
  in
  Alcotest.(check int) "K4 on the sphere" 0 (Surface.genus (Faces.compute rot))

let test_disconnected_rejected () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (2, 3) ] in
  let faces = Faces.compute (Rotation.adjacency g) in
  match Surface.genus faces with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disconnected genus should be rejected"

let test_describe () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let s = Surface.describe (Faces.compute (Rotation.adjacency g)) in
  Alcotest.(check bool) "non-empty" true (String.length s > 0)

let qcheck_genus_in_range =
  QCheck.Test.make ~name:"genus of any rotation lies in [0, cycle-rank/2]"
    ~count:120
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      let genus = Surface.genus (Faces.compute rot) in
      genus >= 0 && genus <= Surface.max_genus_bound g)

let qcheck_euler_parity =
  QCheck.Test.make ~name:"Euler characteristic is even" ~count:120
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      (Surface.euler_characteristic (Faces.compute rot)) mod 2 = 0)

let suite =
  [
    Alcotest.test_case "cycle genus 0" `Quick test_cycle_genus_zero;
    Alcotest.test_case "grid geometric genus 0" `Quick test_grid_geometric_genus_zero;
    Alcotest.test_case "K4 adjacency in bound" `Quick test_k4_adjacency;
    Alcotest.test_case "K4 planar rotation" `Quick test_k4_planar_rotation;
    Alcotest.test_case "disconnected rejected" `Quick test_disconnected_rejected;
    Alcotest.test_case "describe" `Quick test_describe;
    QCheck_alcotest.to_alcotest qcheck_genus_in_range;
    QCheck_alcotest.to_alcotest qcheck_euler_parity;
  ]
