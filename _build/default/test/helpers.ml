(* Shared test utilities: seeded random graph generators wrapped as qcheck
   arbitraries, and brute-force reference algorithms to check the real
   implementations against. *)

module Graph = Pr_graph.Graph

let graph_print g =
  Format.asprintf "%a" Graph.pp g

(* A random 2-connected unweighted graph, fully determined by (seed, n,
   extra) so failures shrink and reproduce. *)
let gen_two_connected ~max_n =
  QCheck.Gen.(
    map
      (fun (seed, n, extra) ->
        (Pr_topo.Generate.two_connected (Pr_util.Rng.create ~seed) ~n ~extra)
          .Pr_topo.Topology.graph)
      (triple (int_bound 1_000_000) (int_range 4 max_n) (int_bound 12)))

let arb_two_connected ?(max_n = 14) () =
  QCheck.make ~print:graph_print (gen_two_connected ~max_n)

(* Random connected weighted graph: 2-connected skeleton with random
   weights in [1, 10]. *)
let gen_weighted_connected ~max_n =
  QCheck.Gen.(
    map
      (fun (seed, n, extra) ->
        let rng = Pr_util.Rng.create ~seed in
        let skeleton =
          (Pr_topo.Generate.two_connected rng ~n ~extra).Pr_topo.Topology.graph
        in
        let edges =
          Graph.fold_edges
            (fun _ (e : Graph.edge) acc ->
              (e.u, e.v, 1.0 +. Pr_util.Rng.float rng 9.0) :: acc)
            skeleton []
        in
        Graph.create ~n:(Graph.n skeleton) edges)
      (triple (int_bound 1_000_000) (int_range 4 max_n) (int_bound 12)))

let arb_weighted_connected ?(max_n = 12) () =
  QCheck.make ~print:graph_print (gen_weighted_connected ~max_n)

(* Brute-force all-pairs shortest distances (Floyd–Warshall). *)
let floyd_warshall g =
  let n = Graph.n g in
  let dist = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    dist.(v).(v) <- 0.0
  done;
  Graph.iter_edges
    (fun _ (e : Graph.edge) ->
      if e.w < dist.(e.u).(e.v) then begin
        dist.(e.u).(e.v) <- e.w;
        dist.(e.v).(e.u) <- e.w
      end)
    g;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = dist.(i).(k) +. dist.(k).(j) in
        if via < dist.(i).(j) then dist.(i).(j) <- via
      done
    done
  done;
  dist

(* All (src, dst) pairs of a graph, src <> dst. *)
let all_pairs g =
  let n = Graph.n g in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if src <> dst then Some (src, dst) else None)
        (List.init n Fun.id))
    (List.init n Fun.id)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* A deterministic planar rotation for grids: geometric from coordinates. *)
let grid_with_rotation ~rows ~cols =
  let topo = Pr_topo.Generate.grid ~rows ~cols in
  (topo, Pr_embed.Geometric.of_topology topo)
