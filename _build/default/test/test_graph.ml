module Graph = Pr_graph.Graph

let triangle () = Graph.create ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ]

let test_create_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check (float 0.0)) "total weight" 7.0 (Graph.total_weight g)

let invalid msg thunk =
  match thunk () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let test_create_validation () =
  invalid "self loop" (fun () -> Graph.create ~n:2 [ (0, 0, 1.0) ]);
  invalid "duplicate" (fun () -> Graph.create ~n:2 [ (0, 1, 1.0); (1, 0, 2.0) ]);
  invalid "out of range" (fun () -> Graph.create ~n:2 [ (0, 2, 1.0) ]);
  invalid "negative endpoint" (fun () -> Graph.create ~n:2 [ (-1, 1, 1.0) ]);
  invalid "zero weight" (fun () -> Graph.create ~n:2 [ (0, 1, 0.0) ]);
  invalid "negative weight" (fun () -> Graph.create ~n:2 [ (0, 1, -1.0) ]);
  invalid "nan weight" (fun () -> Graph.create ~n:2 [ (0, 1, Float.nan) ]);
  invalid "infinite weight" (fun () -> Graph.create ~n:2 [ (0, 1, infinity) ])

let test_neighbours_sorted () =
  let g = Graph.unweighted ~n:5 [ (3, 0); (3, 4); (3, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 4 |] (Graph.neighbours g 3);
  Alcotest.(check int) "degree" 3 (Graph.degree g 3);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree g);
  Alcotest.(check (array int)) "leaf" [| 3 |] (Graph.neighbours g 0)

let test_edge_lookup () =
  let g = triangle () in
  Alcotest.(check bool) "has 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 1-1" false (Graph.has_edge g 1 1);
  Alcotest.(check (float 0.0)) "weight symmetric" (Graph.weight g 1 2) (Graph.weight g 2 1);
  Alcotest.(check int) "edge_index symmetric" (Graph.edge_index g 0 2) (Graph.edge_index g 2 0);
  Alcotest.check_raises "weight of non-edge" Not_found (fun () ->
      let g2 = Graph.unweighted ~n:3 [ (0, 1) ] in
      ignore (Graph.weight g2 0 2))

let test_edges_canonical () =
  let g = Graph.create ~n:3 [ (2, 0, 1.5) ] in
  let e = Graph.edge g 0 in
  Alcotest.(check int) "u < v" 0 e.Graph.u;
  Alcotest.(check int) "v" 2 e.Graph.v;
  Alcotest.(check (float 0.0)) "w" 1.5 e.Graph.w

let test_without_edges () =
  let g = triangle () in
  let g' = Graph.without_edges g [ (1, 0) ] in
  Alcotest.(check int) "one fewer edge" 2 (Graph.m g');
  Alcotest.(check bool) "edge gone" false (Graph.has_edge g' 0 1);
  Alcotest.(check bool) "others kept" true (Graph.has_edge g' 1 2);
  invalid "removing non-edge" (fun () -> Graph.without_edges g' [ (0, 1) ])

let test_induced () =
  let g = Graph.unweighted ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let sub, mapping = Graph.induced g [ 0; 1; 2 ] in
  Alcotest.(check int) "3 nodes" 3 (Graph.n sub);
  Alcotest.(check int) "2 edges survive" 2 (Graph.m sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping

let test_equal_structure () =
  let a = triangle () and b = triangle () in
  Alcotest.(check bool) "equal" true (Graph.equal_structure a b);
  let c = Graph.create ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 5.0) ] in
  Alcotest.(check bool) "weight differs" false (Graph.equal_structure a c)

let test_fold_iter_edges () =
  let g = triangle () in
  let indices = Graph.fold_edges (fun i _ acc -> i :: acc) g [] in
  Alcotest.(check (list int)) "indices in order" [ 2; 1; 0 ] indices;
  let count = ref 0 in
  Graph.iter_edges (fun _ _ -> incr count) g;
  Alcotest.(check int) "iterated" 3 !count

let test_empty_graph () =
  let g = Graph.create ~n:0 [] in
  Alcotest.(check int) "no nodes" 0 (Graph.n g);
  Alcotest.(check int) "no edges" 0 (Graph.m g)

let qcheck_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2m" ~count:100
    (Helpers.arb_two_connected ())
    (fun g ->
      let sum = ref 0 in
      for v = 0 to Graph.n g - 1 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * Graph.m g)

let qcheck_edge_index_roundtrip =
  QCheck.Test.make ~name:"edge / edge_index round-trip" ~count:100
    (Helpers.arb_two_connected ())
    (fun g ->
      Graph.fold_edges
        (fun i (e : Graph.edge) acc ->
          acc && Graph.edge_index g e.u e.v = i && Graph.edge_index g e.v e.u = i)
        g true)

let suite =
  [
    Alcotest.test_case "create counts" `Quick test_create_counts;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "neighbours sorted" `Quick test_neighbours_sorted;
    Alcotest.test_case "edge lookup" `Quick test_edge_lookup;
    Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
    Alcotest.test_case "without_edges" `Quick test_without_edges;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "equal_structure" `Quick test_equal_structure;
    Alcotest.test_case "fold and iter" `Quick test_fold_iter_edges;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    QCheck_alcotest.to_alcotest qcheck_degree_sum;
    QCheck_alcotest.to_alcotest qcheck_edge_index_roundtrip;
  ]
