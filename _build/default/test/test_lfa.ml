module Graph = Pr_graph.Graph
module Lfa = Pr_baselines.Lfa
module Failure = Pr_core.Failure
module Routing = Pr_core.Routing

let test_ring_coverage_antipodal_only () =
  (* On an even unit-weight ring the reverse neighbour is loop-free only
     for the antipodal destination (strict inequality fails elsewhere):
     exactly 1 of each node's 5 destinations is covered. *)
  let g = Graph.unweighted ~n:6 (List.init 6 (fun i -> (i, (i + 1) mod 6))) in
  let routing = Routing.build g in
  Alcotest.(check (float 1e-9)) "coverage 1/5" 0.2 (Lfa.coverage routing)

let test_dense_graph_covered () =
  let g = (Pr_topo.Generate.complete 5).Pr_topo.Topology.graph in
  let routing = Routing.build g in
  Alcotest.(check (float 1e-9)) "K5 fully covered" 1.0 (Lfa.coverage routing)

let test_alternates_shape () =
  let g = (Pr_topo.Generate.complete 4).Pr_topo.Topology.graph in
  let routing = Routing.build g in
  (match Lfa.alternates_for routing ~node:0 ~dst:1 with
  | Some { Lfa.primary; alternate } ->
      Alcotest.(check int) "primary is direct" 1 primary;
      Alcotest.(check bool) "has an alternate" true (alternate <> None)
  | None -> Alcotest.fail "expected alternates");
  Alcotest.(check bool) "none at destination" true
    (Lfa.alternates_for routing ~node:1 ~dst:1 = None)

let test_repair_delivers () =
  let g = (Pr_topo.Generate.complete 4).Pr_topo.Topology.graph in
  let routing = Routing.build g in
  let failures = Failure.of_list g [ (0, 1) ] in
  let trace = Lfa.run routing ~failures ~src:0 ~dst:1 () in
  Alcotest.(check bool) "delivered via LFA" true (trace.Lfa.outcome = Lfa.Delivered);
  Alcotest.(check int) "two hops" 2 (Pr_graph.Paths.hops trace.Lfa.path)

let test_uncovered_drops () =
  let g = Graph.unweighted ~n:6 (List.init 6 (fun i -> (i, (i + 1) mod 6))) in
  let routing = Routing.build g in
  let failures = Failure.of_list g [ (0, 1) ] in
  let trace = Lfa.run routing ~failures ~src:0 ~dst:1 () in
  Alcotest.(check bool) "dropped without LFA" true (trace.Lfa.outcome = Lfa.Dropped)

let test_coverage_between_zero_and_one () =
  List.iter
    (fun topo ->
      let routing = Routing.build topo.Pr_topo.Topology.graph in
      let c = Lfa.coverage routing in
      Alcotest.(check bool)
        (topo.Pr_topo.Topology.name ^ " coverage in [0,1]")
        true
        (c >= 0.0 && c <= 1.0);
      (* The motivating gap: none of the paper's maps reach full
         single-failure coverage with LFA. *)
      Alcotest.(check bool)
        (topo.Pr_topo.Topology.name ^ " not fully covered")
        true (c < 1.0))
    (Pr_topo.Zoo.paper_evaluation ())

let qcheck_single_failure_never_loops =
  (* RFC 5286: with symmetric weights, repairing a single link failure via
     a loop-free alternate cannot loop. *)
  QCheck.Test.make ~name:"LFA repair of a single failure never loops" ~count:80
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let failures = Failure.of_list g [ (e.Graph.u, e.Graph.v) ] in
      let routing = Routing.build g in
      List.for_all
        (fun (src, dst) ->
          let trace = Lfa.run routing ~failures ~src ~dst () in
          trace.Lfa.outcome <> Lfa.Ttl_exceeded)
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "ring coverage is antipodal only" `Quick
      test_ring_coverage_antipodal_only;
    Alcotest.test_case "dense graph covered" `Quick test_dense_graph_covered;
    Alcotest.test_case "alternates shape" `Quick test_alternates_shape;
    Alcotest.test_case "repair delivers" `Quick test_repair_delivers;
    Alcotest.test_case "uncovered drops" `Quick test_uncovered_drops;
    Alcotest.test_case "coverage on paper maps" `Quick test_coverage_between_zero_and_one;
    QCheck_alcotest.to_alcotest qcheck_single_failure_never_loops;
  ]
