module Ccdf = Pr_stats.Ccdf
module Summary = Pr_stats.Summary

let test_ccdf_eval () =
  let c = Ccdf.of_samples [ 1.0; 2.0; 2.0; 4.0 ] in
  Alcotest.(check int) "size" 4 (Ccdf.size c);
  Alcotest.(check (float 1e-9)) "P(>0.5)" 1.0 (Ccdf.eval c 0.5);
  Alcotest.(check (float 1e-9)) "P(>1)" 0.75 (Ccdf.eval c 1.0);
  Alcotest.(check (float 1e-9)) "P(>2)" 0.25 (Ccdf.eval c 2.0);
  Alcotest.(check (float 1e-9)) "P(>4)" 0.0 (Ccdf.eval c 4.0);
  Alcotest.(check (float 1e-9)) "P(>3)" 0.25 (Ccdf.eval c 3.0)

let test_ccdf_infinite () =
  let c = Ccdf.of_samples [ 1.0; infinity ] in
  Alcotest.(check (float 1e-9)) "infinite mass" 0.5 (Ccdf.infinite_fraction c);
  Alcotest.(check (float 1e-9)) "P(>1000)" 0.5 (Ccdf.eval c 1000.0);
  Alcotest.(check (option (float 1e-9))) "max finite" (Some 1.0) (Ccdf.max_finite c);
  Alcotest.(check (option (float 1e-9))) "mean finite" (Some 1.0) (Ccdf.mean_finite c)

let test_ccdf_quantile () =
  let c = Ccdf.of_samples [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "median" 2.0 (Ccdf.quantile c 0.5);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Ccdf.quantile c 1.0);
  Alcotest.(check (float 1e-9)) "min-ish" 1.0 (Ccdf.quantile c 0.0)

let test_ccdf_series () =
  let c = Ccdf.of_samples [ 1.0; 3.0 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "series"
    [ (0.0, 1.0); (2.0, 0.5); (4.0, 0.0) ]
    (Ccdf.series c ~xs:[ 0.0; 2.0; 4.0 ])

let test_ccdf_rejects () =
  (match Ccdf.of_samples [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  match Ccdf.of_samples [ Float.nan ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan accepted"

let test_summary () =
  let s = Summary.of_samples [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Summary.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Summary.max;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) s.Summary.stddev

let test_summary_rejects () =
  (match Summary.of_samples [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  match Summary.of_samples [ infinity ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinity accepted"

let qcheck_ccdf_matches_counting =
  QCheck.Test.make ~name:"ccdf eval equals direct counting" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 40) (float_range 0.0 10.0)) (float_range 0.0 10.0))
    (fun (samples, x) ->
      samples = []
      ||
      let c = Ccdf.of_samples samples in
      let direct =
        float_of_int (List.length (List.filter (fun s -> s > x) samples))
        /. float_of_int (List.length samples)
      in
      Float.abs (Ccdf.eval c x -. direct) < 1e-9)

let qcheck_ccdf_monotone =
  QCheck.Test.make ~name:"ccdf is non-increasing" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range 0.0 10.0))
    (fun samples ->
      let c = Ccdf.of_samples samples in
      let xs = List.init 20 (fun i -> float_of_int i *. 0.5) in
      let values = List.map (Ccdf.eval c) xs in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      non_increasing values)

let suite =
  [
    Alcotest.test_case "ccdf eval" `Quick test_ccdf_eval;
    Alcotest.test_case "ccdf infinite mass" `Quick test_ccdf_infinite;
    Alcotest.test_case "ccdf quantile" `Quick test_ccdf_quantile;
    Alcotest.test_case "ccdf series" `Quick test_ccdf_series;
    Alcotest.test_case "ccdf rejects bad input" `Quick test_ccdf_rejects;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary rejects bad input" `Quick test_summary_rejects;
    QCheck_alcotest.to_alcotest qcheck_ccdf_matches_counting;
    QCheck_alcotest.to_alcotest qcheck_ccdf_monotone;
  ]
