module Graph = Pr_graph.Graph
module Fcp = Pr_baselines.Fcp
module Failure = Pr_core.Failure
module Routing = Pr_core.Routing

let square () = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_no_failures () =
  let g = square () in
  let trace = Fcp.run g ~failures:(Failure.none g) ~src:0 ~dst:2 () in
  Alcotest.(check bool) "delivered" true (trace.Fcp.outcome = Fcp.Delivered);
  Alcotest.(check int) "one initial SPF" 1 trace.Fcp.recomputations;
  Alcotest.(check (list (pair int int))) "nothing carried" [] trace.Fcp.carried

let test_learns_failures () =
  let g = square () in
  let failures = Failure.of_list g [ (0, 1) ] in
  let trace = Fcp.run g ~failures ~src:0 ~dst:1 () in
  Alcotest.(check bool) "delivered" true (trace.Fcp.outcome = Fcp.Delivered);
  Alcotest.(check (list (pair int int))) "carries the failure" [ (0, 1) ] trace.Fcp.carried;
  Alcotest.(check int) "recomputed once more" 2 trace.Fcp.recomputations;
  Alcotest.(check (list int)) "detour" [ 0; 3; 2; 1 ] trace.Fcp.path

let test_disconnected () =
  let g = square () in
  let failures = Failure.of_list g [ (0, 1); (3, 0) ] in
  let trace = Fcp.run g ~failures ~src:0 ~dst:2 () in
  Alcotest.(check bool) "reports disconnection" true (trace.Fcp.outcome = Fcp.Disconnected)

let test_header_bits () =
  let g = (Pr_topo.Geant.topology ()).Pr_topo.Topology.graph in
  Alcotest.(check int) "6 bits to name one of 53 links" 6 (Fcp.bits_per_failure g);
  let failures = Failure.none g in
  let trace = Fcp.run g ~failures ~src:0 ~dst:1 () in
  Alcotest.(check int) "no failures, no bits" 0 (Fcp.header_bits g trace)

let qcheck_delivers_when_connected =
  QCheck.Test.make ~name:"FCP delivers whenever src and dst stay connected"
    ~count:80
    QCheck.(triple (int_bound 1_000_000) (Helpers.arb_two_connected ()) (int_range 1 5))
    (fun (seed, g, k) ->
      let rng = Pr_util.Rng.create ~seed in
      let k = min k (Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Graph.edge g i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let trace = Fcp.run g ~failures ~src ~dst () in
          if Failure.pair_connected failures src dst then
            trace.Fcp.outcome = Fcp.Delivered
          else trace.Fcp.outcome = Fcp.Disconnected)
        (Helpers.all_pairs g))

let qcheck_carried_subset_of_failures =
  QCheck.Test.make ~name:"FCP carries only real failures" ~count:80
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let scenario = [ (e.Graph.u, e.Graph.v) ] in
      let failures = Failure.of_list g scenario in
      List.for_all
        (fun (src, dst) ->
          let trace = Fcp.run g ~failures ~src ~dst () in
          List.for_all (fun f -> List.mem f scenario) trace.Fcp.carried)
        (Helpers.all_pairs g))

let qcheck_stretch_at_least_reconvergence =
  QCheck.Test.make ~name:"FCP stretch >= post-convergence stretch" ~count:60
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let failures = Failure.of_list g [ (e.Graph.u, e.Graph.v) ] in
      let routing = Routing.build g in
      List.for_all
        (fun (src, dst) ->
          let trace = Fcp.run g ~failures ~src ~dst () in
          trace.Fcp.outcome <> Fcp.Delivered
          || Fcp.stretch ~routing ~trace ~src ~dst +. 1e-9
             >= Pr_baselines.Reconvergence.stretch ~routing ~failures ~src ~dst)
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "no failures" `Quick test_no_failures;
    Alcotest.test_case "learns failures" `Quick test_learns_failures;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "header bits" `Quick test_header_bits;
    QCheck_alcotest.to_alcotest qcheck_delivers_when_connected;
    QCheck_alcotest.to_alcotest qcheck_carried_subset_of_failures;
    QCheck_alcotest.to_alcotest qcheck_stretch_at_least_reconvergence;
  ]
