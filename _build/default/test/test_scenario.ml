module Graph = Pr_graph.Graph
module Scenario = Pr_core.Scenario
module Routing = Pr_core.Routing
module Failure = Pr_core.Failure

let test_single_links_skips_bridges () =
  (* Triangle with a pendant edge 2-3: the pendant is a bridge. *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let scenarios = Scenario.single_links g in
  Alcotest.(check int) "three non-bridges" 3 (List.length scenarios);
  Alcotest.(check bool) "bridge excluded" true
    (not (List.mem [ (2, 3) ] scenarios));
  let all = Scenario.single_links ~keep_connected:false g in
  Alcotest.(check int) "all four otherwise" 4 (List.length all)

let test_random_multi_properties () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let rng = Pr_util.Rng.create ~seed:77 in
  let scenarios = Scenario.random_multi rng g ~k:3 ~samples:40 in
  Alcotest.(check int) "sample count" 40 (List.length scenarios);
  List.iter
    (fun scenario ->
      Alcotest.(check int) "k links" 3 (List.length scenario);
      Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare scenario));
      Alcotest.(check bool) "survivor connected" true
        (Pr_graph.Connectivity.connected_without g scenario))
    scenarios

let test_random_multi_validation () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let rng = Pr_util.Rng.create ~seed:1 in
  (match Scenario.random_multi rng g ~k:0 ~samples:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k = 0 accepted");
  match Scenario.random_multi rng g ~k:100 ~samples:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k > m accepted"

let test_random_multi_deterministic () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let a = Scenario.random_multi (Pr_util.Rng.create ~seed:3) g ~k:2 ~samples:10 in
  let b = Scenario.random_multi (Pr_util.Rng.create ~seed:3) g ~k:2 ~samples:10 in
  Alcotest.(check bool) "same seed, same scenarios" true (a = b)

let test_double_links () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  (* A 4-cycle: removing any two links disconnects it. *)
  Alcotest.(check int) "no connected pair on a cycle" 0
    (List.length (Scenario.double_links g));
  Alcotest.(check int) "all pairs without the filter" 6
    (List.length (Scenario.double_links ~keep_connected:false g));
  let abilene = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let pairs = Scenario.double_links abilene in
  Alcotest.(check bool) "some survive on abilene" true (List.length pairs > 0);
  List.iter
    (fun scenario ->
      Alcotest.(check int) "two links" 2 (List.length scenario);
      Alcotest.(check bool) "survivor connected" true
        (Pr_graph.Connectivity.connected_without abilene scenario))
    pairs

let test_random_nodes () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  let rng = Pr_util.Rng.create ~seed:21 in
  let scenarios = Scenario.random_nodes rng g ~k:2 ~samples:25 in
  Alcotest.(check int) "sample count" 25 (List.length scenarios);
  List.iter
    (fun nodes ->
      Alcotest.(check int) "k nodes" 2 (List.length nodes);
      Alcotest.(check int) "distinct" 2 (List.length (List.sort_uniq compare nodes));
      (* Survivors connected: every surviving pair stays reachable. *)
      let failures = Pr_core.Failure.of_nodes g nodes in
      for a = 0 to Graph.n g - 1 do
        for b = 0 to Graph.n g - 1 do
          if a <> b && (not (List.mem a nodes)) && not (List.mem b nodes) then
            Alcotest.(check bool) "survivors connected" true
              (Failure.pair_connected failures a b)
        done
      done)
    scenarios

let test_affected_pairs_fig1 () =
  let g = (Pr_topo.Example.topology ()).Pr_topo.Topology.graph in
  let routing = Routing.build g in
  let failures = Failure.of_list g [ (Pr_topo.Example.d, Pr_topo.Example.e) ] in
  let affected = Scenario.affected_pairs routing failures in
  (* A->F uses D-E (A B D E F), so (A, F) must be affected. *)
  Alcotest.(check bool) "A-F affected" true
    (List.mem (Pr_topo.Example.a, Pr_topo.Example.f) affected);
  (* A->B is a direct link that survives: unaffected. *)
  Alcotest.(check bool) "A-B unaffected" true
    (not (List.mem (Pr_topo.Example.a, Pr_topo.Example.b) affected));
  (* Every affected pair's shortest path really crosses the failure. *)
  List.iter
    (fun (src, dst) ->
      match Routing.shortest_path routing ~src ~dst with
      | None -> Alcotest.fail "affected pair has no path"
      | Some path ->
          Alcotest.(check bool) "crosses failed link" true
            (Pr_graph.Paths.uses_edge g path Pr_topo.Example.d Pr_topo.Example.e))
    affected

let test_connected_affected_subset () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let routing = Routing.build g in
  let failures = Failure.of_list g [ (0, 1); (2, 3) ] in
  let affected = Scenario.affected_pairs routing failures in
  let connected = Scenario.connected_affected_pairs routing failures in
  Alcotest.(check bool) "subset" true
    (List.for_all (fun p -> List.mem p affected) connected);
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool) "still connected" true (Failure.pair_connected failures src dst))
    connected;
  Alcotest.(check bool) "strictly smaller here" true
    (List.length connected < List.length affected)

let suite =
  [
    Alcotest.test_case "single links skip bridges" `Quick test_single_links_skips_bridges;
    Alcotest.test_case "random multi properties" `Quick test_random_multi_properties;
    Alcotest.test_case "random multi validation" `Quick test_random_multi_validation;
    Alcotest.test_case "random multi deterministic" `Quick test_random_multi_deterministic;
    Alcotest.test_case "exhaustive double links" `Quick test_double_links;
    Alcotest.test_case "random node scenarios" `Quick test_random_nodes;
    Alcotest.test_case "affected pairs (fig 1)" `Quick test_affected_pairs_fig1;
    Alcotest.test_case "connected-affected subset" `Quick test_connected_affected_subset;
  ]
