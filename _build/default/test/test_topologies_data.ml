(* Sanity of the three ISP maps the paper evaluates on (DESIGN.md §3). *)

module Topology = Pr_topo.Topology
module Graph = Pr_graph.Graph
module Conn = Pr_graph.Connectivity

let check_map ~name ~nodes ~links ~diameter topo () =
  Alcotest.(check int) (name ^ " nodes") nodes (Topology.n topo);
  Alcotest.(check int) (name ^ " links") links (Topology.m topo);
  Alcotest.(check bool) (name ^ " connected") true (Conn.is_connected topo.Topology.graph);
  Alcotest.(check bool)
    (name ^ " 2-edge-connected (single-failure coverage)")
    true
    (Conn.is_two_edge_connected topo.Topology.graph);
  Alcotest.(check int) (name ^ " diameter") diameter
    (Pr_graph.Dijkstra.diameter_hops topo.Topology.graph);
  (* Minimum degree 2: no single-homed PoP. *)
  for v = 0 to Topology.n topo - 1 do
    if Graph.degree topo.Topology.graph v < 2 then
      Alcotest.failf "%s: PoP %s is single-homed" name (Topology.label topo v)
  done;
  (* Distinct coordinates, needed by the geometric embedding. *)
  let coords = List.init (Topology.n topo) (Topology.coord topo) in
  Alcotest.(check int)
    (name ^ " coords distinct")
    (Topology.n topo)
    (List.length (List.sort_uniq compare coords))

let test_weighted_variants () =
  List.iter
    (fun topo ->
      Graph.iter_edges
        (fun _ (e : Graph.edge) ->
          if e.w < 5.0 then (* NYC-Newark is a real ~14 km link *)
            Alcotest.failf "%s: implausibly short link (%g km)" topo.Topology.name e.w;
          if e.w > 15000.0 then
            Alcotest.failf "%s: implausibly long link (%g km)" topo.Topology.name e.w)
        topo.Topology.graph)
    [ Pr_topo.Abilene.weighted (); Pr_topo.Teleglobe.weighted (); Pr_topo.Geant.weighted () ]

let test_zoo_registry () =
  let names = Pr_topo.Zoo.names () in
  Alcotest.(check bool) "has abilene" true (List.mem "abilene" names);
  Alcotest.(check bool) "has fig1" true (List.mem "fig1" names);
  List.iter (fun n -> ignore (Pr_topo.Zoo.find n)) names;
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Pr_topo.Zoo.find "atlantis"))

let test_paper_evaluation_order () =
  match Pr_topo.Zoo.paper_evaluation () with
  | [ a; t; g ] ->
      Alcotest.(check string) "abilene first" "abilene" a.Topology.name;
      Alcotest.(check string) "teleglobe second" "teleglobe" t.Topology.name;
      Alcotest.(check string) "geant third" "geant" g.Topology.name
  | _ -> Alcotest.fail "expected exactly three topologies"

let suite =
  [
    Alcotest.test_case "abilene invariants" `Quick
      (check_map ~name:"abilene" ~nodes:11 ~links:14 ~diameter:5
         (Pr_topo.Abilene.topology ()));
    Alcotest.test_case "teleglobe invariants" `Quick
      (check_map ~name:"teleglobe" ~nodes:23 ~links:38 ~diameter:6
         (Pr_topo.Teleglobe.topology ()));
    Alcotest.test_case "geant invariants" `Quick
      (check_map ~name:"geant" ~nodes:34 ~links:53 ~diameter:7
         (Pr_topo.Geant.topology ()));
    Alcotest.test_case "geographic weights plausible" `Quick test_weighted_variants;
    Alcotest.test_case "zoo registry" `Quick test_zoo_registry;
    Alcotest.test_case "paper evaluation order" `Quick test_paper_evaluation_order;
  ]
