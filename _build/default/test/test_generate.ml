module Graph = Pr_graph.Graph
module Generate = Pr_topo.Generate
module Conn = Pr_graph.Connectivity

let rng () = Pr_util.Rng.create ~seed:99

let test_ring () =
  let t = Generate.ring 6 in
  Alcotest.(check int) "nodes" 6 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 6 (Pr_topo.Topology.m t);
  for v = 0 to 5 do
    Alcotest.(check int) "degree 2" 2 (Graph.degree t.Pr_topo.Topology.graph v)
  done;
  match Generate.ring 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ring 2 should be rejected"

let test_complete () =
  let t = Generate.complete 5 in
  Alcotest.(check int) "K5 edges" 10 (Pr_topo.Topology.m t)

let test_grid () =
  let t = Generate.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 17 (Pr_topo.Topology.m t);
  Alcotest.(check bool) "connected" true (Conn.is_connected t.Pr_topo.Topology.graph)

let test_torus () =
  let t = Generate.torus ~rows:4 ~cols:4 in
  Alcotest.(check int) "nodes" 16 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 32 (Pr_topo.Topology.m t);
  for v = 0 to 15 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree t.Pr_topo.Topology.graph v)
  done;
  Alcotest.(check bool) "2-edge-connected" true
    (Conn.is_two_edge_connected t.Pr_topo.Topology.graph)

let test_wheel () =
  let t = Generate.wheel 8 in
  Alcotest.(check int) "nodes" 8 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 14 (Pr_topo.Topology.m t);
  Alcotest.(check int) "hub degree" 7 (Graph.degree t.Pr_topo.Topology.graph 0);
  Alcotest.(check bool) "2-connected" true
    (Conn.is_biconnected t.Pr_topo.Topology.graph)

let test_hypercube () =
  let t = Generate.hypercube 4 in
  Alcotest.(check int) "nodes" 16 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 32 (Pr_topo.Topology.m t);
  for v = 0 to 15 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree t.Pr_topo.Topology.graph v)
  done;
  Alcotest.(check int) "diameter = dimension" 4
    (Pr_graph.Dijkstra.diameter_hops t.Pr_topo.Topology.graph)

let test_hierarchical () =
  let t = Generate.hierarchical (rng ()) ~regions:4 ~per_region:5 ~extra:3 in
  Alcotest.(check int) "nodes" 20 (Pr_topo.Topology.n t);
  (* 4 metro rings of 5 + core ring of 4 + 3 shortcuts. *)
  Alcotest.(check int) "edges" (20 + 4 + 3) (Pr_topo.Topology.m t);
  Alcotest.(check bool) "2-edge-connected" true
    (Conn.is_two_edge_connected t.Pr_topo.Topology.graph)

let test_apollonian () =
  let t = Generate.apollonian (rng ()) ~n:12 in
  Alcotest.(check int) "nodes" 12 (Pr_topo.Topology.n t);
  (* Maximal planar: 3n - 6 edges. *)
  Alcotest.(check int) "edges" 30 (Pr_topo.Topology.m t);
  Alcotest.(check bool) "planar" true
    (Pr_embed.Planar.is_planar t.Pr_topo.Topology.graph)

let test_petersen () =
  let t = Generate.petersen () in
  Alcotest.(check int) "nodes" 10 (Pr_topo.Topology.n t);
  Alcotest.(check int) "edges" 15 (Pr_topo.Topology.m t);
  for v = 0 to 9 do
    Alcotest.(check int) "3-regular" 3 (Graph.degree t.Pr_topo.Topology.graph v)
  done;
  Alcotest.(check int) "diameter 2" 2
    (Pr_graph.Dijkstra.diameter_hops t.Pr_topo.Topology.graph)

let test_erdos_renyi_extremes () =
  let empty = Generate.erdos_renyi (rng ()) ~n:8 ~p:0.0 in
  Alcotest.(check int) "p=0 no edges" 0 (Pr_topo.Topology.m empty);
  let full = Generate.erdos_renyi (rng ()) ~n:8 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 28 (Pr_topo.Topology.m full)

let test_gnm () =
  let t = Generate.gnm (rng ()) ~n:10 ~m:20 in
  Alcotest.(check int) "exact edge count" 20 (Pr_topo.Topology.m t);
  match Generate.gnm (rng ()) ~n:4 ~m:7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many edges should be rejected"

let test_barabasi_albert () =
  let t = Generate.barabasi_albert (rng ()) ~n:30 ~k:2 in
  Alcotest.(check int) "nodes" 30 (Pr_topo.Topology.n t);
  Alcotest.(check bool) "connected" true (Conn.is_connected t.Pr_topo.Topology.graph);
  (* k star edges, then k edges per each of the n - k - 1 later nodes. *)
  Alcotest.(check int) "edges = star + k per newcomer" (2 + (27 * 2))
    (Pr_topo.Topology.m t)

let test_waxman () =
  let t = Generate.waxman (rng ()) ~n:25 ~alpha:0.9 ~beta:0.6 in
  Alcotest.(check int) "nodes" 25 (Pr_topo.Topology.n t);
  Alcotest.(check bool) "has some edges" true (Pr_topo.Topology.m t > 0)

let test_determinism () =
  let a = Generate.gnm (Pr_util.Rng.create ~seed:5) ~n:12 ~m:20 in
  let b = Generate.gnm (Pr_util.Rng.create ~seed:5) ~n:12 ~m:20 in
  Alcotest.(check bool) "same seed, same graph" true
    (Graph.equal_structure a.Pr_topo.Topology.graph b.Pr_topo.Topology.graph)

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "wheel" `Quick test_wheel;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "hierarchical" `Quick test_hierarchical;
    Alcotest.test_case "apollonian" `Quick test_apollonian;
    Alcotest.test_case "petersen" `Quick test_petersen;
    Alcotest.test_case "erdos-renyi extremes" `Quick test_erdos_renyi_extremes;
    Alcotest.test_case "gnm" `Quick test_gnm;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "waxman" `Quick test_waxman;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
