module Graph = Pr_graph.Graph
module Mrc = Pr_baselines.Mrc
module Failure = Pr_core.Failure

let abilene () = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph

let build_exn g =
  match Mrc.build g with
  | Some t -> t
  | None -> Alcotest.fail "MRC build failed on a 2-edge-connected graph"

let test_build_covers_every_link () =
  let g = abilene () in
  let t = build_exn g in
  Alcotest.(check bool) "at least one configuration" true (Mrc.configurations t >= 1);
  Graph.iter_edges
    (fun _ (e : Graph.edge) ->
      let c = Mrc.isolating_configuration t e.u e.v in
      Alcotest.(check bool) "every link isolated somewhere" true
        (c >= 1 && c <= Mrc.configurations t))
    g

let test_build_rejects_bridges () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "bridge graph rejected" true (Mrc.build g = None)

let test_header_bits () =
  let t = build_exn (abilene ()) in
  Alcotest.(check bool) "a few bits" true
    (Mrc.header_bits t >= 1 && Mrc.header_bits t <= 4)

let test_single_failure_coverage () =
  (* MRC's design goal: every single link failure is covered. *)
  let g = abilene () in
  let t = build_exn g in
  let routing = Pr_core.Routing.build g in
  List.iter
    (fun scenario ->
      let failures = Failure.of_list g scenario in
      List.iter
        (fun (src, dst) ->
          let trace = Mrc.run t ~failures ~src ~dst () in
          if trace.Mrc.outcome <> Mrc.Delivered then
            Alcotest.failf "MRC lost %d->%d" src dst;
          Alcotest.(check bool) "stretch >= 1" true
            (Mrc.stretch ~routing ~trace ~src ~dst >= 1.0 -. 1e-9))
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    (Pr_core.Scenario.single_links g)

let test_no_failure_uses_normal_routing () =
  let g = abilene () in
  let t = build_exn g in
  let routing = Pr_core.Routing.build g in
  let trace = Mrc.run t ~failures:(Failure.none g) ~src:0 ~dst:10 () in
  Alcotest.(check bool) "delivered" true (trace.Mrc.outcome = Mrc.Delivered);
  Alcotest.(check (option int)) "no switch" None trace.Mrc.switched_to;
  Alcotest.(check (option (list int))) "shortest path"
    (Pr_core.Routing.shortest_path routing ~src:0 ~dst:10)
    (Some trace.Mrc.path)

let test_second_failure_uncovered () =
  (* A failure in the backup configuration drops the packet: construct one
     by failing a primary link and a link of its isolating config's
     detour. *)
  let g = abilene () in
  let t = build_exn g in
  let routing = Pr_core.Routing.build g in
  let dropped = ref false in
  List.iter
    (fun scenario ->
      let failures = Failure.of_list g scenario in
      List.iter
        (fun (src, dst) ->
          let trace = Mrc.run t ~failures ~src ~dst () in
          if trace.Mrc.outcome = Mrc.Dropped then dropped := true)
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    (Pr_core.Scenario.random_multi (Pr_util.Rng.create ~seed:8) g ~k:3 ~samples:30);
  Alcotest.(check bool) "some triple-failure case drops" true !dropped

let qcheck_single_failure_on_random_graphs =
  QCheck.Test.make ~name:"MRC covers single failures on 2-connected graphs"
    ~count:40
    (Helpers.arb_two_connected ~max_n:10 ())
    (fun g ->
      match Mrc.build g with
      | None -> QCheck.assume_fail ()
      | Some t ->
          let routing = Pr_core.Routing.build g in
          List.for_all
            (fun scenario ->
              let failures = Failure.of_list g scenario in
              List.for_all
                (fun (src, dst) ->
                  (Mrc.run t ~failures ~src ~dst ()).Mrc.outcome = Mrc.Delivered)
                (Pr_core.Scenario.connected_affected_pairs routing failures))
            (Pr_core.Scenario.single_links g))

let suite =
  [
    Alcotest.test_case "build covers every link" `Quick test_build_covers_every_link;
    Alcotest.test_case "bridges rejected" `Quick test_build_rejects_bridges;
    Alcotest.test_case "header bits" `Quick test_header_bits;
    Alcotest.test_case "single-failure coverage" `Quick test_single_failure_coverage;
    Alcotest.test_case "no failure = normal routing" `Quick test_no_failure_uses_normal_routing;
    Alcotest.test_case "second failure uncovered" `Quick test_second_failure_uncovered;
    QCheck_alcotest.to_alcotest qcheck_single_failure_on_random_graphs;
  ]
