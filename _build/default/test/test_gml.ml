module Gml = Pr_topo.Gml
module Topology = Pr_topo.Topology

let sample =
  {|# a Topology-Zoo-flavoured file
graph [
  label "sample"
  node [ id 10 label "Seattle" Longitude -122.33 Latitude 47.61 ]
  node [ id 20 label "Denver" Longitude -104.99 Latitude 39.74 ]
  node [ id 30 label "Chicago" Longitude -87.63 Latitude 41.88 ]
  edge [ source 10 target 20 value 2.5 ]
  edge [ source 20 target 30 ]
  edge [ source 30 target 10 weight 4 ]
]
|}

let test_parse_basic () =
  let { Gml.topology = t; dropped_parallel; dropped_self } = Gml.of_string sample in
  Alcotest.(check string) "name from label" "sample" t.Topology.name;
  Alcotest.(check int) "nodes" 3 (Topology.n t);
  Alcotest.(check int) "edges" 3 (Topology.m t);
  Alcotest.(check int) "nothing dropped" 0 (dropped_parallel + dropped_self);
  let sea = Topology.node_id t "Seattle" and den = Topology.node_id t "Denver" in
  Alcotest.(check (float 1e-9)) "value weight" 2.5
    (Pr_graph.Graph.weight t.Topology.graph sea den);
  let chi = Topology.node_id t "Chicago" in
  Alcotest.(check (float 1e-9)) "weight keyword" 4.0
    (Pr_graph.Graph.weight t.Topology.graph chi sea);
  Alcotest.(check (float 1e-9)) "default weight" 1.0
    (Pr_graph.Graph.weight t.Topology.graph den chi);
  let lon, lat = Topology.coord t sea in
  Alcotest.(check (float 1e-6)) "longitude" (-122.33) lon;
  Alcotest.(check (float 1e-6)) "latitude" 47.61 lat

let test_duplicates_dropped () =
  let text =
    {|graph [
  node [ id 0 label "a" ]
  node [ id 1 label "b" ]
  edge [ source 0 target 1 ]
  edge [ source 1 target 0 ]
  edge [ source 0 target 0 ]
]|}
  in
  let { Gml.topology = t; dropped_parallel; dropped_self } = Gml.of_string text in
  Alcotest.(check int) "one edge kept" 1 (Topology.m t);
  Alcotest.(check int) "parallel dropped" 1 dropped_parallel;
  Alcotest.(check int) "self loop dropped" 1 dropped_self

let test_duplicate_labels_disambiguated () =
  let text =
    {|graph [
  node [ id 0 label "NYC" ]
  node [ id 1 label "NYC" ]
  edge [ source 0 target 1 ]
]|}
  in
  let { Gml.topology = t; _ } = Gml.of_string text in
  Alcotest.(check string) "first keeps name" "NYC" (Topology.label t 0);
  Alcotest.(check string) "second suffixed" "NYC#2" (Topology.label t 1)

let expect_error text =
  match Gml.of_string text with
  | exception Gml.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_error "not gml at all [";
  expect_error "graph [ node [ label \"x\" ] ]" (* node without id *);
  expect_error "graph [ node [ id 0 ] edge [ source 0 target 9 ] ]";
  expect_error "graph [ node [ id 0 ] node [ id 0 ] ]";
  expect_error "graph [ node [ id 0 label \"unterminated ] ]"

let test_roundtrip () =
  List.iter
    (fun topo ->
      let { Gml.topology = again; _ } = Gml.of_string (Gml.to_string topo) in
      Alcotest.(check bool)
        (topo.Topology.name ^ " graph round-trips")
        true
        (Pr_graph.Graph.equal_structure topo.Topology.graph again.Topology.graph);
      Alcotest.(check bool) "labels round-trip" true
        (topo.Topology.labels = again.Topology.labels))
    (Pr_topo.Zoo.paper_evaluation ())

let test_file_roundtrip () =
  let path = Filename.temp_file "pr_gml" ".gml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gml.save path (Pr_topo.Abilene.topology ());
      let { Gml.topology = again; _ } = Gml.load path in
      Alcotest.(check int) "nodes survive" 11 (Topology.n again);
      Alcotest.(check bool) "graph survives" true
        (Pr_graph.Graph.equal_structure
           (Pr_topo.Abilene.topology ()).Topology.graph
           again.Topology.graph))

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "duplicates dropped" `Quick test_duplicates_dropped;
    Alcotest.test_case "duplicate labels disambiguated" `Quick
      test_duplicate_labels_disambiguated;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "round-trip" `Quick test_roundtrip;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
  ]
