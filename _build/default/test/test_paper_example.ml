(* Reproduction of every concrete artefact in the paper's running example:
   the Figure 1(a) embedding, Table 1, and the forwarding walkthroughs of
   Sections 4.2 and 4.3. *)

open Pr_topo
module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces

let a = Example.a
let b = Example.b
let c = Example.c
let d = Example.d
let e = Example.e
let f = Example.f

let topo = Example.topology ()

let rotation () =
  Rotation.of_orders topo.graph Example.rotation_orders

let routing () = Pr_core.Routing.build topo.graph

let cycles () = Pr_core.Cycle_table.build (rotation ())

let run ?termination failures_list ~src ~dst =
  let failures = Pr_core.Failure.of_list topo.graph failures_list in
  Pr_core.Forward.run ?termination ~routing:(routing ()) ~cycles:(cycles ())
    ~failures ~src ~dst ()

(* Canonical form of a cyclic node sequence: rotate so the smallest element
   comes first (sufficient here: no face repeats a node). *)
let canon cycle =
  match cycle with
  | [] -> []
  | _ ->
      let arr = Array.of_list cycle in
      let len = Array.length arr in
      let start = ref 0 in
      Array.iteri (fun i x -> if x < arr.(!start) then start := i) arr;
      List.init len (fun i -> arr.((!start + i) mod len))

let test_shortest_path_tree () =
  let r = routing () in
  Alcotest.(check (option int)) "A routes via B" (Some b)
    (Pr_core.Routing.next_hop r ~node:a ~dst:f);
  Alcotest.(check (option int)) "B routes via D" (Some d)
    (Pr_core.Routing.next_hop r ~node:b ~dst:f);
  Alcotest.(check (option int)) "D routes via E" (Some e)
    (Pr_core.Routing.next_hop r ~node:d ~dst:f);
  Alcotest.(check (option int)) "C routes via E" (Some e)
    (Pr_core.Routing.next_hop r ~node:c ~dst:f)

let test_distance_discriminators () =
  let r = routing () in
  let disc node = Pr_core.Routing.disc r ~node ~dst:f in
  Alcotest.(check (float 0.0)) "DD at D is 2" 2.0 (disc d);
  Alcotest.(check (float 0.0)) "DD at B is 3" 3.0 (disc b);
  Alcotest.(check (float 0.0)) "DD at C is 2" 2.0 (disc c);
  Alcotest.(check (float 0.0)) "DD at E is 1" 1.0 (disc e)

let test_faces_match_paper () =
  let faces = Faces.compute (rotation ()) in
  Alcotest.(check int) "four cells" 4 (Faces.count faces);
  let got =
    List.init (Faces.count faces) (fun i -> canon (Faces.face_nodes faces i))
    |> List.sort compare
  in
  let want = List.map canon Example.expected_faces |> List.sort compare in
  Alcotest.(check (list (list int))) "cells c1..c4" want got

let test_genus_zero () =
  let faces = Faces.compute (rotation ()) in
  Alcotest.(check int) "sphere embedding" 0 (Pr_embed.Surface.genus faces)

let test_table_1 () =
  (* Table 1: cycle following table at node D. *)
  let table = Pr_core.Cycle_table.entries (cycles ()) d in
  let row incoming =
    List.find (fun (en : Pr_core.Cycle_table.entry) -> en.incoming = incoming) table
  in
  let check_row incoming cf comp =
    let r = row incoming in
    Alcotest.(check int) "cycle following" cf r.cycle_following;
    Alcotest.(check int) "complementary" comp r.complementary
  in
  (* I_BD -> I_DF (c4) | I_DE (c1) *)
  check_row b f e;
  (* I_ED -> I_DB (c2) | I_DF (c4) *)
  check_row e b f;
  (* I_FD -> I_DE (c1) | I_DB (c2) *)
  check_row f e b;
  Alcotest.(check int) "three interfaces, three entries" 3 (List.length table)

let check_walk msg expected (trace : Pr_core.Forward.trace) =
  Alcotest.(check bool) (msg ^ ": delivered") true
    (trace.outcome = Pr_core.Forward.Delivered);
  Alcotest.(check (list int)) (msg ^ ": path") expected trace.path

let test_figure_1b () =
  (* Single failure D-E: packet follows c2 from D and resumes at E. *)
  let trace = run [ (d, e) ] ~src:a ~dst:f in
  check_walk "fig 1(b)" [ a; b; d; b; c; e; f ] trace;
  Alcotest.(check int) "one PR episode" 1 trace.pr_episodes

let test_figure_1b_simple_termination () =
  let trace = run ~termination:Pr_core.Forward.Simple [ (d, e) ] ~src:a ~dst:f in
  check_walk "fig 1(b) simple" [ a; b; d; b; c; e; f ] trace

let test_section_4_2_multiple_failures () =
  (* §4.2's remark: the simple scheme already survives A-B plus D-E. *)
  let trace =
    run ~termination:Pr_core.Forward.Simple [ (a, b); (d, e) ] ~src:a ~dst:f
  in
  check_walk "A-B and D-E, simple" [ a; c; b; d; b; c; e; f ] trace;
  Alcotest.(check int) "two PR episodes" 2 trace.pr_episodes

let test_figure_1c () =
  (* §4.3 walkthrough: failures D-E and B-C, DD termination. *)
  let trace = run [ (d, e); (b, c) ] ~src:a ~dst:f in
  check_walk "fig 1(c)" [ a; b; d; b; a; c; e; f ] trace;
  Alcotest.(check int) "single PR episode spanning both failures" 1
    trace.pr_episodes;
  Alcotest.(check int) "DD carried is 2" 2 trace.max_header.Pr_core.Header.dd

let test_figure_1c_simple_would_loop () =
  (* Without the DD condition the paper predicts a forwarding loop for the
     Figure 1(c) scenario. *)
  let trace =
    run ~termination:Pr_core.Forward.Simple [ (d, e); (b, c) ] ~src:a ~dst:f
  in
  Alcotest.(check bool) "simple termination loops" true
    (trace.outcome = Pr_core.Forward.Ttl_exceeded)

let suite =
  [
    Alcotest.test_case "shortest path tree to F" `Quick test_shortest_path_tree;
    Alcotest.test_case "distance discriminators" `Quick test_distance_discriminators;
    Alcotest.test_case "cells c1..c4" `Quick test_faces_match_paper;
    Alcotest.test_case "genus zero" `Quick test_genus_zero;
    Alcotest.test_case "Table 1 at node D" `Quick test_table_1;
    Alcotest.test_case "figure 1(b) walkthrough" `Quick test_figure_1b;
    Alcotest.test_case "figure 1(b), simple termination" `Quick
      test_figure_1b_simple_termination;
    Alcotest.test_case "section 4.2 multi-failure demo" `Quick
      test_section_4_2_multiple_failures;
    Alcotest.test_case "figure 1(c) walkthrough" `Quick test_figure_1c;
    Alcotest.test_case "figure 1(c) loops without DD" `Quick
      test_figure_1c_simple_would_loop;
  ]
