module Bitset = Pr_util.Bitset

let test_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity s);
  Alcotest.(check int) "empty" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem s 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 63; 64; 99 ] (Bitset.to_list s)

let test_remove_clear () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 7;
  Bitset.remove s 3;
  Alcotest.(check bool) "removed" false (Bitset.mem s 3);
  Alcotest.(check int) "one left" 1 (Bitset.cardinal s);
  Bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal s)

let test_idempotent_add () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  Alcotest.(check int) "added once" 1 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s 10))

let test_fold_iter () =
  let s = Bitset.create 20 in
  List.iter (Bitset.add s) [ 2; 4; 8; 16 ];
  let sum = Bitset.fold ( + ) s 0 in
  Alcotest.(check int) "fold sum" 30 sum;
  let count = ref 0 in
  Bitset.iter (fun _ -> incr count) s;
  Alcotest.(check int) "iter count" 4 !count

let qcheck_vs_model =
  QCheck.Test.make ~name:"bitset matches Set model" ~count:200
    QCheck.(list (pair bool (int_bound 199)))
    (fun ops ->
      let s = Bitset.create 200 in
      let model = ref [] in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            model := i :: !model
          end
          else begin
            Bitset.remove s i;
            model := List.filter (fun x -> x <> i) !model
          end)
        ops;
      Bitset.to_list s = List.sort_uniq compare !model)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "remove and clear" `Quick test_remove_clear;
    Alcotest.test_case "idempotent add" `Quick test_idempotent_add;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
    Alcotest.test_case "fold and iter" `Quick test_fold_iter;
    QCheck_alcotest.to_alcotest qcheck_vs_model;
  ]
