module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces

let ring_graph n = Graph.unweighted ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_cycle_two_faces () =
  (* Any rotation of a simple cycle embeds it on the sphere: 2 faces. *)
  let faces = Faces.compute (Rotation.adjacency (ring_graph 5)) in
  Alcotest.(check int) "two faces" 2 (Faces.count faces);
  Alcotest.(check int) "each of length 5" 5 (Faces.face_length faces 0);
  Alcotest.(check int) "arc count" 10 (Faces.arc_count faces)

let test_path_one_face () =
  (* A tree has a single face traversing every arc. *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let faces = Faces.compute (Rotation.adjacency g) in
  Alcotest.(check int) "one face" 1 (Faces.count faces);
  Alcotest.(check int) "face covers all arcs" 6 (Faces.face_length faces 0)

let test_grid_planar_faces () =
  (* 3x3 grid, geometric rotation: planar, F = 2 - V + E = 2 - 9 + 12 = 5. *)
  let _, rot = Helpers.grid_with_rotation ~rows:3 ~cols:3 in
  let faces = Faces.compute rot in
  Alcotest.(check int) "five faces" 5 (Faces.count faces)

let test_arc_ids () =
  let g = ring_graph 4 in
  let faces = Faces.compute (Rotation.adjacency g) in
  let a01 = Faces.arc_id faces ~tail:0 ~head:1 in
  let a10 = Faces.arc_id faces ~tail:1 ~head:0 in
  Alcotest.(check bool) "orientations differ" true (a01 <> a10);
  Alcotest.(check (pair int int)) "endpoints round-trip" (0, 1) (Faces.arc_endpoints faces a01);
  Alcotest.(check (pair int int)) "reverse endpoints" (1, 0) (Faces.arc_endpoints faces a10)

let test_successor_closes_faces () =
  let g = ring_graph 6 in
  let faces = Faces.compute (Rotation.adjacency g) in
  (* Following the successor around any arc's face returns to the arc. *)
  let arc = Faces.arc_id faces ~tail:0 ~head:1 in
  let rec follow a steps =
    if steps > 2 * Graph.m g then Alcotest.fail "successor never closed"
    else begin
      let next = Faces.successor faces a in
      if next = arc then steps else follow next (steps + 1)
    end
  in
  let cycle_length = follow arc 1 in
  Alcotest.(check int) "face length via successor" (Faces.face_length faces (Faces.face_of_arc faces arc)) cycle_length

let test_complementary_face () =
  let g = ring_graph 4 in
  let faces = Faces.compute (Rotation.adjacency g) in
  let forward_face = Faces.face_of_arc faces (Faces.arc_id faces ~tail:0 ~head:1) in
  let complementary = Faces.complementary_face faces ~tail:0 ~head:1 in
  Alcotest.(check bool) "cycle: two distinct sides" true (forward_face <> complementary)

let test_face_nodes () =
  let g = ring_graph 3 in
  let faces = Faces.compute (Rotation.adjacency g) in
  let nodes = Faces.face_nodes faces 0 |> List.sort compare in
  Alcotest.(check (list int)) "triangle face touches all" [ 0; 1; 2 ] nodes

let rotation_arb =
  QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))

let qcheck_faces_partition_arcs =
  QCheck.Test.make ~name:"faces partition the arc set (any rotation)" ~count:120
    rotation_arb
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      Pr_embed.Validate.check (Faces.compute rot) = [])

let qcheck_boundary_lengths_sum =
  QCheck.Test.make ~name:"sum of face lengths = 2m" ~count:100 rotation_arb
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      let faces = Faces.compute rot in
      let sum = ref 0 in
      for f = 0 to Faces.count faces - 1 do
        sum := !sum + Faces.face_length faces f
      done;
      !sum = 2 * Graph.m g)

let qcheck_edge_on_two_directed_cycles =
  QCheck.Test.make ~name:"every link lies on exactly two directed face walks"
    ~count:100 rotation_arb
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      Pr_embed.Validate.edge_cycle_property (Faces.compute rot))

let suite =
  [
    Alcotest.test_case "cycle has two faces" `Quick test_cycle_two_faces;
    Alcotest.test_case "tree has one face" `Quick test_path_one_face;
    Alcotest.test_case "grid planar faces" `Quick test_grid_planar_faces;
    Alcotest.test_case "arc ids" `Quick test_arc_ids;
    Alcotest.test_case "successor closes faces" `Quick test_successor_closes_faces;
    Alcotest.test_case "complementary face" `Quick test_complementary_face;
    Alcotest.test_case "face nodes" `Quick test_face_nodes;
    QCheck_alcotest.to_alcotest qcheck_faces_partition_arcs;
    QCheck_alcotest.to_alcotest qcheck_boundary_lengths_sum;
    QCheck_alcotest.to_alcotest qcheck_edge_on_two_directed_cycles;
  ]
