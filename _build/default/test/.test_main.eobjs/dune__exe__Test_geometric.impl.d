test/test_geometric.ml: Alcotest Helpers Pr_embed Pr_graph Pr_topo QCheck QCheck_alcotest
