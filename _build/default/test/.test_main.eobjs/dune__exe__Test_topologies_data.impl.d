test/test_topologies_data.ml: Alcotest List Pr_graph Pr_topo
