test/test_lfa.ml: Alcotest Helpers List Pr_baselines Pr_core Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest
