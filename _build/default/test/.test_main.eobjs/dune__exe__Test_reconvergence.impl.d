test/test_reconvergence.ml: Alcotest Array Helpers List Pr_baselines Pr_core Pr_graph Pr_util QCheck QCheck_alcotest
