test/test_cycle_table.ml: Alcotest Array Helpers List Pr_core Pr_embed Pr_graph Pr_util QCheck QCheck_alcotest
