test/test_validate.ml: Alcotest Format Helpers List Pr_embed Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest String
