test/test_report.ml: Alcotest Array Filename Fun In_channel List Pr_exp Pr_topo String Sys
