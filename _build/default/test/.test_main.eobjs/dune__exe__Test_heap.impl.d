test/test_heap.ml: Alcotest Float List Pr_util QCheck QCheck_alcotest
