test/test_failure.ml: Alcotest Pr_core Pr_graph
