test/test_rotation.ml: Alcotest Array Hashtbl Helpers Pr_embed Pr_graph Pr_util QCheck QCheck_alcotest
