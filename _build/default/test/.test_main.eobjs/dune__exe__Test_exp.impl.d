test/test_exp.ml: Alcotest List Pr_exp Pr_stats Pr_topo
