test/test_surface.ml: Alcotest Helpers List Pr_embed Pr_graph Pr_util QCheck QCheck_alcotest String
