test/test_union_find.ml: Alcotest Array Fun List Pr_util QCheck QCheck_alcotest
