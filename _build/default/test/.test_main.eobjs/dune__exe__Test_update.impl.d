test/test_update.ml: Alcotest Fun List Pr_embed Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest
