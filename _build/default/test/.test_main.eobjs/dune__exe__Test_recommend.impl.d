test/test_recommend.ml: Alcotest List Pr_embed Pr_graph Pr_topo
