test/test_interdomain.ml: Alcotest List Pr_core Pr_interdomain Pr_topo
