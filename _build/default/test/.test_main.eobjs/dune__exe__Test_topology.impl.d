test/test_topology.ml: Alcotest List Pr_graph Pr_topo String
