test/test_stats.ml: Alcotest Float List Pr_stats QCheck QCheck_alcotest
