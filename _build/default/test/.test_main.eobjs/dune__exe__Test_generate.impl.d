test/test_generate.ml: Alcotest Pr_embed Pr_graph Pr_topo Pr_util
