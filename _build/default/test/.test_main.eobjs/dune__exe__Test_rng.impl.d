test/test_rng.ml: Alcotest Array Fun List Pr_util QCheck QCheck_alcotest
