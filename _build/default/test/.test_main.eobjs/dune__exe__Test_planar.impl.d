test/test_planar.ml: Alcotest List Pr_embed Pr_graph Pr_topo Pr_util Printf QCheck QCheck_alcotest
