test/test_optimize.ml: Alcotest List Pr_embed Pr_graph Pr_topo Pr_util
