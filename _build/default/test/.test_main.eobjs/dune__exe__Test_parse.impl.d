test/test_parse.ml: Alcotest Filename Fun List Pr_graph Pr_topo String Sys
