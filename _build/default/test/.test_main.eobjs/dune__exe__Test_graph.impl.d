test/test_graph.ml: Alcotest Float Helpers Pr_graph QCheck QCheck_alcotest
