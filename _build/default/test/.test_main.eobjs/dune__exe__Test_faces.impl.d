test/test_faces.ml: Alcotest Helpers List Pr_embed Pr_graph Pr_util QCheck QCheck_alcotest
