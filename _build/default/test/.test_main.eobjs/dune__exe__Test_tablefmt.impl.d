test/test_tablefmt.ml: Alcotest List Pr_util String
