test/test_forward.ml: Alcotest Helpers List Pr_baselines Pr_core Pr_embed Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest
