test/test_discriminator.ml: Alcotest Array Helpers List Pr_core Pr_graph Pr_topo QCheck QCheck_alcotest
