test/test_gml.ml: Alcotest Filename Fun List Pr_graph Pr_topo Sys
