test/test_printers.ml: Alcotest Format Pr_core Pr_embed Pr_graph Pr_sim Pr_stats Pr_topo String
