test/test_connectivity.ml: Alcotest Array Helpers List Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest
