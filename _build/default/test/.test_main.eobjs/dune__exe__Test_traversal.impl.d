test/test_traversal.ml: Alcotest Array Helpers Pr_graph Pr_util QCheck QCheck_alcotest
