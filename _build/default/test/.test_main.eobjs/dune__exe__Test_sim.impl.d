test/test_sim.ml: Alcotest Array Float List Pr_core Pr_embed Pr_graph Pr_sim Pr_topo Pr_util
