test/test_routing.ml: Alcotest Helpers List Pr_core Pr_graph Pr_topo QCheck QCheck_alcotest
