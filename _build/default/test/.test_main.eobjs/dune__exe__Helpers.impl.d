test/helpers.ml: Array Float Format Fun List Pr_embed Pr_graph Pr_topo Pr_util QCheck
