test/test_dot.ml: Alcotest Filename Fun In_channel Pr_graph Pr_topo String Sys
