test/test_header.ml: Alcotest Pr_core QCheck QCheck_alcotest
