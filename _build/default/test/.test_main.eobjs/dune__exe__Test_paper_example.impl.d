test/test_paper_example.ml: Alcotest Array Example List Pr_core Pr_embed Pr_graph Pr_topo
