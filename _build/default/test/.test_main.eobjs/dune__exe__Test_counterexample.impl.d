test/test_counterexample.ml: Alcotest List Pr_exp String
