test/test_modelcheck.ml: Alcotest Helpers List Pr_core Pr_embed Pr_exp Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest
