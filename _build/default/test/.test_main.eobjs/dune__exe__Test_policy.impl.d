test/test_policy.ml: Alcotest Pr_core Pr_embed Pr_graph Pr_topo
