test/test_dijkstra.ml: Alcotest Array Helpers List Pr_graph QCheck QCheck_alcotest
