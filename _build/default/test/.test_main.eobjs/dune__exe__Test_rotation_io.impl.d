test/test_rotation_io.ml: Alcotest Filename Fun Helpers Pr_embed Pr_graph Pr_topo Pr_util QCheck QCheck_alcotest Sys
