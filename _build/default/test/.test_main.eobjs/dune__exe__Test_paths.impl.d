test/test_paths.ml: Alcotest Pr_graph
