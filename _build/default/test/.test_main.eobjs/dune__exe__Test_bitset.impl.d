test/test_bitset.ml: Alcotest List Pr_util QCheck QCheck_alcotest
