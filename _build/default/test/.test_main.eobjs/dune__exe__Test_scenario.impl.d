test/test_scenario.ml: Alcotest List Pr_core Pr_graph Pr_topo Pr_util
