module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation

let k4 () = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

let test_adjacency_order () =
  let rot = Rotation.adjacency (k4 ()) in
  Alcotest.(check (array int)) "sorted order" [| 1; 2; 3 |] (Rotation.order rot 0);
  Alcotest.(check int) "next wraps" 1 (Rotation.next rot 0 3);
  Alcotest.(check int) "next" 3 (Rotation.next rot 0 2);
  Alcotest.(check int) "prev" 2 (Rotation.prev rot 0 3)

let test_of_orders_validation () =
  let g = k4 () in
  (match Rotation.of_orders g [| [ 1; 2 ]; [ 0; 2; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing neighbour accepted");
  (match Rotation.of_orders g [| [ 1; 2; 2 ]; [ 0; 2; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted");
  match Rotation.of_orders g [| [ 1; 2; 3 ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong length accepted"

let test_non_neighbour_rejected () =
  let rot = Rotation.adjacency (k4 ()) in
  match Rotation.next rot 0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self as neighbour accepted"

let test_equal_up_to_rotation () =
  let g = k4 () in
  let a = Rotation.of_orders g [| [ 1; 2; 3 ]; [ 0; 2; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] in
  let b = Rotation.of_orders g [| [ 2; 3; 1 ]; [ 0; 2; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] in
  let c = Rotation.of_orders g [| [ 1; 3; 2 ]; [ 0; 2; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] in
  Alcotest.(check bool) "cyclic shift equal" true (Rotation.equal a b);
  Alcotest.(check bool) "different order unequal" false (Rotation.equal a c)

let test_orders_copy () =
  let rot = Rotation.adjacency (k4 ()) in
  let orders = Rotation.orders rot in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] orders.(0)

let qcheck_next_prev_inverse =
  QCheck.Test.make ~name:"prev is the inverse of next" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Array.iter
          (fun u ->
            if Rotation.prev rot v (Rotation.next rot v u) <> u then ok := false;
            if Rotation.next rot v (Rotation.prev rot v u) <> u then ok := false)
          (Graph.neighbours g v)
      done;
      !ok)

let qcheck_next_is_permutation =
  QCheck.Test.make ~name:"next at a node is a cyclic permutation" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let deg = Graph.degree g v in
        if deg > 0 then begin
          (* Iterating next from any neighbour must visit all neighbours. *)
          let start = (Graph.neighbours g v).(0) in
          let seen = Hashtbl.create deg in
          let rec follow u steps =
            if steps > deg then ()
            else begin
              Hashtbl.replace seen u ();
              follow (Rotation.next rot v u) (steps + 1)
            end
          in
          follow start 1;
          if Hashtbl.length seen <> deg then ok := false
        end
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "adjacency order" `Quick test_adjacency_order;
    Alcotest.test_case "of_orders validation" `Quick test_of_orders_validation;
    Alcotest.test_case "non-neighbour rejected" `Quick test_non_neighbour_rejected;
    Alcotest.test_case "equality up to rotation" `Quick test_equal_up_to_rotation;
    Alcotest.test_case "orders copy" `Quick test_orders_copy;
    QCheck_alcotest.to_alcotest qcheck_next_prev_inverse;
    QCheck_alcotest.to_alcotest qcheck_next_is_permutation;
  ]
