module Modelcheck = Pr_exp.Modelcheck
module Failure = Pr_core.Failure

let fig1_setup () =
  let topo = Pr_topo.Example.topology () in
  let rotation =
    Pr_embed.Rotation.of_orders topo.graph Pr_topo.Example.rotation_orders
  in
  ( topo.Pr_topo.Topology.graph,
    Pr_core.Routing.build topo.Pr_topo.Topology.graph,
    Pr_core.Cycle_table.build rotation )

let test_fig1_verdicts () =
  let g, routing, cycles = fig1_setup () in
  let a = Pr_topo.Example.a and f = Pr_topo.Example.f in
  let v failures_list termination =
    Modelcheck.verdict ~termination ~routing ~cycles
      ~failures:(Failure.of_list g failures_list) ~src:a ~dst:f ()
  in
  Alcotest.(check bool) "fig 1(b) delivers in 6 hops" true
    (v [ (Pr_topo.Example.d, Pr_topo.Example.e) ]
       Pr_core.Forward.Distance_discriminator
    = Modelcheck.Delivers 6);
  Alcotest.(check bool) "fig 1(c) delivers in 7 hops" true
    (v [ (Pr_topo.Example.d, Pr_topo.Example.e); (Pr_topo.Example.b, Pr_topo.Example.c) ]
       Pr_core.Forward.Distance_discriminator
    = Modelcheck.Delivers 7);
  (* The simple termination loops on fig 1(c): exact detection, no TTL. *)
  match
    v [ (Pr_topo.Example.d, Pr_topo.Example.e); (Pr_topo.Example.b, Pr_topo.Example.c) ]
      Pr_core.Forward.Simple
  with
  | Modelcheck.Loops _ -> ()
  | Modelcheck.Delivers _ | Modelcheck.Drops -> Alcotest.fail "expected a loop"

let qcheck_differential_random_rotations =
  (* The state-space walker and the TTL-bounded engine must agree on every
     outcome, including the pathological random-rotation cases. *)
  QCheck.Test.make ~name:"exact verdicts agree with the forwarding engine"
    ~count:80
    QCheck.(
      quad (int_bound 1_000_000) (Helpers.arb_two_connected ~max_n:9 ())
        (int_range 1 4) bool)
    (fun (seed, g, k, simple) ->
      let rng = Pr_util.Rng.create ~seed in
      let rotation = Pr_embed.Rotation.random rng g in
      let routing = Pr_core.Routing.build g in
      let cycles = Pr_core.Cycle_table.build rotation in
      let k = min k (Pr_graph.Graph.m g - 1) in
      let scenario =
        List.map
          (fun i ->
            let e = Pr_graph.Graph.edge g i in
            (e.Pr_graph.Graph.u, e.Pr_graph.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Pr_graph.Graph.m g))
      in
      let failures = Failure.of_list g scenario in
      let termination =
        if simple then Pr_core.Forward.Simple
        else Pr_core.Forward.Distance_discriminator
      in
      List.for_all
        (fun (src, dst) ->
          Modelcheck.agrees_with_engine ~termination ~routing ~cycles ~failures
            ~src ~dst ())
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "fig 1 verdicts" `Quick test_fig1_verdicts;
    QCheck_alcotest.to_alcotest qcheck_differential_random_rotations;
  ]
