module Graph = Pr_graph.Graph
module Planar = Pr_embed.Planar
module Faces = Pr_embed.Faces
module Surface = Pr_embed.Surface

let genus_zero msg g =
  match Planar.embed g with
  | None -> Alcotest.failf "%s: reported non-planar" msg
  | Some rotation ->
      let faces = Faces.compute rotation in
      Alcotest.(check bool) (msg ^ ": valid embedding") true
        (Pr_embed.Validate.is_valid faces);
      if Pr_graph.Connectivity.is_connected g then
        Alcotest.(check int) (msg ^ ": genus 0") 0 (Surface.genus faces)

let non_planar msg g =
  Alcotest.(check bool) (msg ^ ": rejected") false (Planar.is_planar g)

let k4 () = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

let k5 () =
  let edges = ref [] in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.unweighted ~n:5 !edges

let k33 () =
  let edges = List.concat_map (fun u -> List.map (fun v -> (u, v)) [ 3; 4; 5 ]) [ 0; 1; 2 ] in
  Graph.unweighted ~n:6 edges

let test_planar_classics () =
  genus_zero "K4" (k4 ());
  genus_zero "fig1" (Pr_topo.Example.topology ()).Pr_topo.Topology.graph;
  genus_zero "abilene" (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph;
  genus_zero "wheel" (Pr_topo.Generate.wheel 9).Pr_topo.Topology.graph;
  genus_zero "grid" (Pr_topo.Generate.grid ~rows:4 ~cols:5).Pr_topo.Topology.graph;
  genus_zero "ring" (Pr_topo.Generate.ring 12).Pr_topo.Topology.graph

let test_non_planar_classics () =
  non_planar "K5" (k5 ());
  non_planar "K3,3" (k33 ());
  non_planar "petersen" (Pr_topo.Generate.petersen ()).Pr_topo.Topology.graph;
  non_planar "K6"
    (let edges = ref [] in
     for u = 0 to 5 do
       for v = u + 1 to 5 do
         edges := (u, v) :: !edges
       done
     done;
     Graph.unweighted ~n:6 !edges)

let test_trees_and_bridges () =
  genus_zero "path" (Graph.unweighted ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]);
  genus_zero "star" (Graph.unweighted ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]);
  (* Two triangles joined by a bridge: three blocks. *)
  genus_zero "bridged triangles"
    (Graph.unweighted ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ])

let test_small_graphs () =
  genus_zero "single node" (Graph.unweighted ~n:1 []);
  genus_zero "single edge" (Graph.unweighted ~n:2 [ (0, 1) ]);
  genus_zero "triangle" (Graph.unweighted ~n:3 [ (0, 1); (1, 2); (0, 2) ])

let test_disconnected () =
  genus_zero "two triangles apart"
    (Graph.unweighted ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ])

let test_embed_exn () =
  (match Planar.embed_exn (k4 ()) with
  | _ -> ());
  match Planar.embed_exn (k5 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "K5 embedded?!"

let test_planar_embedding_is_pr_safe () =
  (* 2-edge-connected planar: the certified embedding has no curved edges,
     restoring the paper's single-failure guarantee exactly. *)
  List.iter
    (fun (msg, g) ->
      match Planar.embed g with
      | None -> Alcotest.failf "%s: reported non-planar" msg
      | Some rotation ->
          Alcotest.(check bool) (msg ^ ": PR-safe") true
            (Pr_embed.Validate.is_pr_safe (Faces.compute rotation)))
    [
      ("abilene", (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph);
      ("grid", (Pr_topo.Generate.grid ~rows:4 ~cols:4).Pr_topo.Topology.graph);
      ("wheel", (Pr_topo.Generate.wheel 10).Pr_topo.Topology.graph);
    ]

let arb_apollonian =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "apollonian seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 4 40))

let qcheck_apollonian_planar =
  QCheck.Test.make ~name:"random Apollonian networks embed with genus 0" ~count:80
    arb_apollonian
    (fun (seed, n) ->
      let g =
        (Pr_topo.Generate.apollonian (Pr_util.Rng.create ~seed) ~n)
          .Pr_topo.Topology.graph
      in
      match Planar.embed g with
      | None -> false
      | Some rotation ->
          let faces = Faces.compute rotation in
          Pr_embed.Validate.is_valid faces && Surface.genus faces = 0)

let qcheck_maximal_planar_plus_edge_rejected =
  QCheck.Test.make
    ~name:"adding any edge to a maximal planar graph breaks planarity" ~count:60
    arb_apollonian
    (fun (seed, n) ->
      let rng = Pr_util.Rng.create ~seed in
      let g = (Pr_topo.Generate.apollonian rng ~n).Pr_topo.Topology.graph in
      (* Find a non-adjacent pair (exists whenever m < n(n-1)/2). *)
      let missing = ref None in
      for u = 0 to Graph.n g - 1 do
        for v = u + 1 to Graph.n g - 1 do
          if !missing = None && not (Graph.has_edge g u v) then missing := Some (u, v)
        done
      done;
      match !missing with
      | None -> true (* complete graph: K4 at n=4 has no missing edge *)
      | Some (u, v) ->
          let edges =
            Graph.fold_edges (fun _ (e : Graph.edge) acc -> (e.u, e.v, e.w) :: acc) g []
          in
          let augmented = Graph.create ~n:(Graph.n g) ((u, v, 1.0) :: edges) in
          not (Planar.is_planar augmented))

let qcheck_blocks_partition_edges =
  QCheck.Test.make ~name:"blocks partition the edge set" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Pr_util.Rng.create ~seed in
      let m = min (n + 3) (n * (n - 1) / 2) in
      let g = (Pr_topo.Generate.gnm rng ~n ~m).Pr_topo.Topology.graph in
      let blocks = Pr_graph.Connectivity.blocks g in
      let all = List.concat blocks |> List.sort compare in
      let expected =
        Graph.fold_edges (fun _ (e : Graph.edge) acc -> (e.u, e.v) :: acc) g []
        |> List.sort compare
      in
      all = expected)

let qcheck_bridges_are_singleton_blocks =
  QCheck.Test.make ~name:"bridges appear as singleton blocks" ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Pr_util.Rng.create ~seed in
      let g = (Pr_topo.Generate.gnm rng ~n ~m:(n + 2)).Pr_topo.Topology.graph in
      let singletons =
        Pr_graph.Connectivity.blocks g
        |> List.filter_map (function [ e ] -> Some e | _ -> None)
        |> List.sort compare
      in
      singletons = Pr_graph.Connectivity.bridges g)

let suite =
  [
    Alcotest.test_case "planar classics" `Quick test_planar_classics;
    Alcotest.test_case "non-planar classics" `Quick test_non_planar_classics;
    Alcotest.test_case "trees and bridges" `Quick test_trees_and_bridges;
    Alcotest.test_case "small graphs" `Quick test_small_graphs;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "embed_exn" `Quick test_embed_exn;
    Alcotest.test_case "certified embedding is PR-safe" `Quick
      test_planar_embedding_is_pr_safe;
    QCheck_alcotest.to_alcotest qcheck_apollonian_planar;
    QCheck_alcotest.to_alcotest qcheck_maximal_planar_plus_edge_rejected;
    QCheck_alcotest.to_alcotest qcheck_blocks_partition_edges;
    QCheck_alcotest.to_alcotest qcheck_bridges_are_singleton_blocks;
  ]
