module Graph = Pr_graph.Graph
module Paths = Pr_graph.Paths

let square () = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0) ]

let test_is_walk () =
  let g = square () in
  Alcotest.(check bool) "valid walk" true (Paths.is_walk g [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "walk may revisit" true (Paths.is_walk g [ 0; 1; 0; 3 ]);
  Alcotest.(check bool) "broken walk" false (Paths.is_walk g [ 0; 2 ]);
  Alcotest.(check bool) "empty is a walk" true (Paths.is_walk g []);
  Alcotest.(check bool) "singleton is a walk" true (Paths.is_walk g [ 2 ])

let test_cost_hops () =
  let g = square () in
  Alcotest.(check (float 0.0)) "cost" 6.0 (Paths.cost g [ 0; 1; 2; 3 ]);
  Alcotest.(check (float 0.0)) "empty cost" 0.0 (Paths.cost g []);
  Alcotest.(check int) "hops" 3 (Paths.hops [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "no hops" 0 (Paths.hops [ 0 ]);
  Alcotest.check_raises "cost of non-walk" Not_found (fun () ->
      ignore (Paths.cost g [ 0; 2 ]))

let test_edges_of_walk () =
  let g = square () in
  Alcotest.(check (list int)) "edge indices"
    [ Graph.edge_index g 0 1; Graph.edge_index g 1 2 ]
    (Paths.edges_of_walk g [ 0; 1; 2 ])

let test_uses_edge () =
  let g = square () in
  Alcotest.(check bool) "uses 1-2" true (Paths.uses_edge g [ 0; 1; 2 ] 2 1);
  Alcotest.(check bool) "not 2-3" false (Paths.uses_edge g [ 0; 1; 2 ] 2 3)

let test_revisiting_cost () =
  (* Cycle-following paths revisit edges; cost must count each traversal. *)
  let g = square () in
  Alcotest.(check (float 0.0)) "back and forth" 2.0 (Paths.cost g [ 0; 1; 0 ])

let suite =
  [
    Alcotest.test_case "is_walk" `Quick test_is_walk;
    Alcotest.test_case "cost and hops" `Quick test_cost_hops;
    Alcotest.test_case "edges of walk" `Quick test_edges_of_walk;
    Alcotest.test_case "uses_edge" `Quick test_uses_edge;
    Alcotest.test_case "revisiting cost" `Quick test_revisiting_cost;
  ]
