module Fig2 = Pr_exp.Fig2
module Ccdf = Pr_stats.Ccdf

let abilene_result () = Fig2.run (Fig2.default (Pr_topo.Abilene.topology ()) ~k:1)

let test_fig2_abilene_single () =
  let r = abilene_result () in
  Alcotest.(check int) "14 single-link scenarios" 14 r.Fig2.scenarios;
  Alcotest.(check int) "planar embedding" 0 r.Fig2.genus;
  Alcotest.(check int) "no curved edges" 0 r.Fig2.curved_edges;
  Alcotest.(check int) "three curves" 3 (List.length r.Fig2.curves);
  Alcotest.(check int) "full PR delivery" 0 (List.length r.Fig2.pr_failures);
  Alcotest.(check bool) "pairs measured" true (r.Fig2.pairs_measured > 0)

let curve r scheme = List.assoc scheme r.Fig2.curves

let test_fig2_dominance () =
  (* Per-pair, reconvergence is optimal, so its CCDF is pointwise below
     both FCP's and PR's. *)
  let r = abilene_result () in
  let reconv = curve r Fig2.Reconvergence in
  let fcp = curve r Fig2.Fcp in
  let pr = curve r Fig2.Pr in
  List.iter
    (fun x ->
      let base = Ccdf.eval reconv x in
      Alcotest.(check bool) "reconv <= fcp" true (base <= Ccdf.eval fcp x +. 1e-9);
      Alcotest.(check bool) "reconv <= pr" true (base <= Ccdf.eval pr x +. 1e-9))
    Fig2.xs_grid

let test_fig2_ccdf_starts_high () =
  (* Affected pairs have stretch >= 1 under every scheme, so the CCDF just
     below 1 is exactly 1. *)
  let r = abilene_result () in
  List.iter
    (fun (_, c) ->
      Alcotest.(check (float 1e-9)) "all mass above 0.99" 1.0 (Ccdf.eval c 0.99))
    r.Fig2.curves

let test_fig2_deterministic () =
  let a = Fig2.run { (Fig2.default (Pr_topo.Abilene.topology ()) ~k:2) with samples = 20 } in
  let b = Fig2.run { (Fig2.default (Pr_topo.Abilene.topology ()) ~k:2) with samples = 20 } in
  Alcotest.(check int) "same pairs" a.Fig2.pairs_measured b.Fig2.pairs_measured;
  List.iter2
    (fun (sa, ca) (sb, cb) ->
      Alcotest.(check string) "same scheme" (Fig2.scheme_name sa) (Fig2.scheme_name sb);
      List.iter
        (fun x ->
          Alcotest.(check (float 1e-12)) "same curve" (Ccdf.eval ca x) (Ccdf.eval cb x))
        Fig2.xs_grid)
    a.Fig2.curves b.Fig2.curves

let test_overhead_rows () =
  let row = Pr_exp.Overhead.measure (Pr_topo.Abilene.topology ()) in
  Alcotest.(check int) "nodes" 11 row.Pr_exp.Overhead.nodes;
  Alcotest.(check int) "diameter" 5 row.Pr_exp.Overhead.diameter_hops;
  Alcotest.(check int) "PR header bits = 1 + ceil(log2(d+1))" 4
    row.Pr_exp.Overhead.pr_header_bits;
  Alcotest.(check bool) "fits DSCP" true row.Pr_exp.Overhead.pr_fits_dscp;
  Alcotest.(check int) "cycle entries 2m" 28 row.Pr_exp.Overhead.pr_cycle_entries;
  Alcotest.(check int) "routing entries n(n-1)" 110 row.Pr_exp.Overhead.pr_routing_entries;
  Alcotest.(check int) "PR needs no SPF at failure time" 0
    row.Pr_exp.Overhead.pr_spf_per_failure;
  Alcotest.(check bool) "FCP worst header grows" true
    (row.Pr_exp.Overhead.fcp_header_bits_worst >= row.Pr_exp.Overhead.fcp_bits_per_failure)

let test_coverage_abilene () =
  let row = Pr_exp.Coverage.measure (Pr_topo.Abilene.topology ()) ~k:1 in
  Alcotest.(check int) "PR covers all" row.Pr_exp.Coverage.pairs
    row.Pr_exp.Coverage.pr_delivered;
  Alcotest.(check int) "simple PR covers single failures too"
    row.Pr_exp.Coverage.pairs row.Pr_exp.Coverage.pr_simple_delivered;
  Alcotest.(check bool) "LFA misses some" true
    (row.Pr_exp.Coverage.lfa_delivered < row.Pr_exp.Coverage.pairs)

let test_coverage_nodes_abilene () =
  let row = Pr_exp.Coverage.measure_nodes (Pr_topo.Abilene.topology ()) ~k:1 in
  Alcotest.(check string) "named" "abilene+nodes" row.Pr_exp.Coverage.topology;
  Alcotest.(check int) "all non-cut routers enumerated" 11 row.Pr_exp.Coverage.scenarios;
  Alcotest.(check int) "PR covers all" row.Pr_exp.Coverage.pairs
    row.Pr_exp.Coverage.pr_delivered

let test_ablation_abilene () =
  let rows = Pr_exp.Ablation.embedding_sweep (Pr_topo.Abilene.topology ()) in
  Alcotest.(check int) "five embeddings" 5 (List.length rows);
  let geometric =
    List.find (fun r -> r.Pr_exp.Ablation.embedding = Fig2.Geometric) rows
  in
  Alcotest.(check int) "geometric is planar" 0 geometric.Pr_exp.Ablation.genus;
  Alcotest.(check int) "geometric delivers everything" 0
    geometric.Pr_exp.Ablation.undelivered;
  List.iter
    (fun (r : Pr_exp.Ablation.embedding_row) ->
      Alcotest.(check bool) "mean stretch sane" true
        (r.Pr_exp.Ablation.mean_stretch >= 1.0))
    rows

let test_discriminator_ablation () =
  let rows = Pr_exp.Ablation.discriminator_sweep (Pr_topo.Abilene.weighted ()) in
  Alcotest.(check int) "hops + weighted + quantised" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "full delivery either way" 0 r.Pr_exp.Ablation.undelivered)
    rows

let test_synthetic_row () =
  let row = Pr_exp.Synthetic.measure (Pr_topo.Generate.grid ~rows:4 ~cols:4) in
  Alcotest.(check bool) "grid recognised planar" true row.Pr_exp.Synthetic.certified_planar;
  Alcotest.(check int) "genus 0" 0 row.Pr_exp.Synthetic.genus;
  Alcotest.(check int) "full delivery" 0 row.Pr_exp.Synthetic.pr_undelivered;
  Alcotest.(check bool) "ordering reconv <= fcp <= pr" true
    (row.Pr_exp.Synthetic.reconv_mean <= row.Pr_exp.Synthetic.fcp_mean +. 1e-9
    && row.Pr_exp.Synthetic.fcp_mean <= row.Pr_exp.Synthetic.pr_mean +. 1e-9)

let test_ttl_study () =
  let rows =
    Pr_exp.Ttl_study.measure (Pr_topo.Abilene.topology ()) ~k:1 ~ttls:[ 4; 255 ]
  in
  (match rows with
  | [ tight; loose ] ->
      Alcotest.(check bool) "monotone in TTL" true
        (tight.Pr_exp.Ttl_study.delivered <= loose.Pr_exp.Ttl_study.delivered);
      Alcotest.(check int) "unlimited delivers all (planar)"
        loose.Pr_exp.Ttl_study.pairs loose.Pr_exp.Ttl_study.delivered;
      Alcotest.(check int) "accounting" tight.Pr_exp.Ttl_study.pairs
        (tight.Pr_exp.Ttl_study.delivered + tight.Pr_exp.Ttl_study.died_of_ttl
        + tight.Pr_exp.Ttl_study.undeliverable)
  | _ -> Alcotest.fail "expected two rows");
  ()

let suite =
  [
    Alcotest.test_case "fig2 abilene single failures" `Quick test_fig2_abilene_single;
    Alcotest.test_case "fig2 reconvergence dominance" `Quick test_fig2_dominance;
    Alcotest.test_case "fig2 ccdf starts at 1" `Quick test_fig2_ccdf_starts_high;
    Alcotest.test_case "fig2 deterministic" `Quick test_fig2_deterministic;
    Alcotest.test_case "overhead rows" `Quick test_overhead_rows;
    Alcotest.test_case "coverage abilene" `Quick test_coverage_abilene;
    Alcotest.test_case "coverage node failures" `Quick test_coverage_nodes_abilene;
    Alcotest.test_case "embedding ablation" `Slow test_ablation_abilene;
    Alcotest.test_case "discriminator ablation" `Quick test_discriminator_ablation;
    Alcotest.test_case "synthetic row" `Quick test_synthetic_row;
    Alcotest.test_case "ttl study" `Quick test_ttl_study;
  ]
