module Graph = Pr_graph.Graph
module Reconv = Pr_baselines.Reconvergence
module Failure = Pr_core.Failure
module Routing = Pr_core.Routing

let square () = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_reroutes () =
  let g = square () in
  let failures = Failure.of_list g [ (0, 1) ] in
  Alcotest.(check (option (list int))) "detour" (Some [ 0; 3; 2; 1 ])
    (Reconv.path g ~failures ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "cost" 3.0 (Reconv.cost g ~failures ~src:0 ~dst:1)

let test_disconnected () =
  let g = square () in
  let failures = Failure.of_list g [ (0, 1); (3, 0) ] in
  Alcotest.(check (option (list int))) "no path" None
    (Reconv.path g ~failures ~src:0 ~dst:2);
  Alcotest.(check bool) "infinite cost" true
    (Reconv.cost g ~failures ~src:0 ~dst:2 = infinity)

let test_stretch () =
  let g = square () in
  let routing = Routing.build g in
  let failures = Failure.of_list g [ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "3x" 3.0 (Reconv.stretch ~routing ~failures ~src:0 ~dst:1);
  let none = Failure.none g in
  Alcotest.(check (float 1e-9)) "1x with no failure" 1.0
    (Reconv.stretch ~routing ~failures:none ~src:0 ~dst:1)

let qcheck_stretch_at_least_one =
  QCheck.Test.make ~name:"reconvergence stretch >= 1" ~count:60
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let failures = Failure.of_list g [ (e.Graph.u, e.Graph.v) ] in
      let routing = Routing.build g in
      List.for_all
        (fun (src, dst) ->
          let s = Reconv.stretch ~routing ~failures ~src ~dst in
          s >= 1.0 -. 1e-9)
        (Helpers.all_pairs g))

let qcheck_optimal_on_survivor =
  QCheck.Test.make ~name:"reconvergence equals SPF on the surviving graph"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rng = Pr_util.Rng.create ~seed in
      let e = Graph.edge g (Pr_util.Rng.int rng (Graph.m g)) in
      let failures = Failure.of_list g [ (e.Graph.u, e.Graph.v) ] in
      let survivor = Graph.without_edges g [ (e.Graph.u, e.Graph.v) ] in
      let reference = Helpers.floyd_warshall survivor in
      List.for_all
        (fun (src, dst) ->
          let got = Reconv.cost g ~failures ~src ~dst in
          let want = reference.(src).(dst) in
          (got = infinity && want = infinity) || Helpers.close ~eps:1e-6 got want)
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "reroutes" `Quick test_reroutes;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "stretch" `Quick test_stretch;
    QCheck_alcotest.to_alcotest qcheck_stretch_at_least_one;
    QCheck_alcotest.to_alcotest qcheck_optimal_on_survivor;
  ]
