module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Cycle_table = Pr_core.Cycle_table

let k4_table () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  (g, Cycle_table.build (Rotation.adjacency g))

let test_entry_count () =
  let g, t = k4_table () in
  for v = 0 to 3 do
    Alcotest.(check int) "one entry per interface" (Graph.degree g v)
      (List.length (Cycle_table.entries t v))
  done

let test_complement_is_cf_squared () =
  (* The complementary column equals cycle following applied twice — the
     construction derived from the paper's Table 1. *)
  let _, t = k4_table () in
  List.iter
    (fun (e : Cycle_table.entry) ->
      Alcotest.(check int) "comp = cf o cf" e.complementary
        (Cycle_table.cycle_next t ~node:0 ~from_:e.cycle_following))
    (Cycle_table.entries t 0)

let test_complement_for_failed () =
  let _, t = k4_table () in
  (* Failing outgoing interface z: the complementary cycle starts at
     next(z). *)
  Alcotest.(check int) "rotation successor" 2
    (Cycle_table.complement_for_failed t ~node:0 ~failed:1)

let test_memory_entries () =
  let g, t = k4_table () in
  Alcotest.(check int) "2m entries network-wide" (2 * Graph.m g)
    (Cycle_table.memory_entries t)

let qcheck_cf_column_is_permutation =
  (* The paper notes the forwarding table is a permutation over the output
     interfaces. *)
  QCheck.Test.make ~name:"cycle-following column is a permutation" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let t = Cycle_table.build (Rotation.random (Pr_util.Rng.create ~seed) g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let entries = Cycle_table.entries t v in
        let incoming = List.map (fun (e : Cycle_table.entry) -> e.incoming) entries in
        let outgoing =
          List.map (fun (e : Cycle_table.entry) -> e.cycle_following) entries
        in
        if List.sort compare incoming <> List.sort compare outgoing then ok := false
      done;
      !ok)

let qcheck_consistent_with_rotation =
  QCheck.Test.make ~name:"table agrees with the rotation system" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      let t = Cycle_table.build rot in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Array.iter
          (fun u ->
            if Cycle_table.cycle_next t ~node:v ~from_:u <> Rotation.next rot v u then
              ok := false)
          (Graph.neighbours g v)
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "entry count" `Quick test_entry_count;
    Alcotest.test_case "complement = cf^2" `Quick test_complement_is_cf_squared;
    Alcotest.test_case "complement for failed" `Quick test_complement_for_failed;
    Alcotest.test_case "memory entries" `Quick test_memory_entries;
    QCheck_alcotest.to_alcotest qcheck_cf_column_is_permutation;
    QCheck_alcotest.to_alcotest qcheck_consistent_with_rotation;
  ]
