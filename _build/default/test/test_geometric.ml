module Graph = Pr_graph.Graph
module Geometric = Pr_embed.Geometric
module Faces = Pr_embed.Faces
module Surface = Pr_embed.Surface

let test_square_planar () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let coords = [| (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0) |] in
  let faces = Faces.compute (Geometric.of_coords g coords) in
  Alcotest.(check int) "planar" 0 (Surface.genus faces);
  Alcotest.(check int) "three faces" 3 (Faces.count faces)

let test_counter_clockwise_order () =
  (* Node 0 at origin, neighbours east (1), north (2), west (3): the
     counter-clockwise order by bearing is east, north, west. *)
  let g = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let coords = [| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0); (-1.0, 0.0) |] in
  let rot = Geometric.of_coords g coords in
  Alcotest.(check (array int)) "ccw order" [| 1; 2; 3 |] (Pr_embed.Rotation.order rot 0)

let test_abilene_planar () =
  let topo = Pr_topo.Abilene.topology () in
  let faces = Faces.compute (Geometric.of_topology topo) in
  Alcotest.(check int) "abilene drawn planar" 0 (Surface.genus faces);
  Alcotest.(check bool) "and PR-safe" true (Pr_embed.Validate.is_pr_safe faces)

let test_coincident_coords_rejected () =
  let g = Graph.unweighted ~n:2 [ (0, 1) ] in
  match Geometric.of_coords g [| (1.0, 1.0); (1.0, 1.0) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "coincident adjacent coords accepted"

let test_length_mismatch_rejected () =
  let g = Graph.unweighted ~n:2 [ (0, 1) ] in
  match Geometric.of_coords g [| (0.0, 0.0) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let qcheck_grid_geometric_planar =
  QCheck.Test.make ~name:"grids embed planar geometrically" ~count:20
    QCheck.(pair (int_range 2 6) (int_range 2 6))
    (fun (rows, cols) ->
      let _, rot = Helpers.grid_with_rotation ~rows ~cols in
      Surface.genus (Faces.compute rot) = 0)

let suite =
  [
    Alcotest.test_case "square planar" `Quick test_square_planar;
    Alcotest.test_case "counter-clockwise order" `Quick test_counter_clockwise_order;
    Alcotest.test_case "abilene planar and PR-safe" `Quick test_abilene_planar;
    Alcotest.test_case "coincident coords rejected" `Quick test_coincident_coords_rejected;
    Alcotest.test_case "length mismatch rejected" `Quick test_length_mismatch_rejected;
    QCheck_alcotest.to_alcotest qcheck_grid_geometric_planar;
  ]
