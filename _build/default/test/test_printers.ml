(* Smoke tests for the pretty-printers: they must render without raising
   and mention the load-bearing facts. *)

let render pp v = Format.asprintf "%a" pp v

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_graph_pp () =
  let g = Pr_graph.Graph.create ~n:3 [ (0, 1, 2.0) ] in
  let s = render Pr_graph.Graph.pp g in
  Alcotest.(check bool) "counts" true (contains s "n=3" && contains s "m=1");
  Alcotest.(check bool) "edge" true (contains s "0 -- 1")

let test_paths_pp () =
  let s = render Pr_graph.Paths.pp [ 0; 1; 2 ] in
  Alcotest.(check string) "arrows" "0 -> 1 -> 2" s

let test_rotation_pp () =
  let g = Pr_graph.Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let s = render Pr_embed.Rotation.pp (Pr_embed.Rotation.adjacency g) in
  Alcotest.(check bool) "mentions nodes" true (contains s "0:" && contains s "1:")

let test_faces_pp () =
  let g = Pr_graph.Graph.unweighted ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let s = render Pr_embed.Faces.pp (Pr_embed.Faces.compute (Pr_embed.Rotation.adjacency g)) in
  Alcotest.(check bool) "face count" true (contains s "2 faces")

let test_failure_pp () =
  let g = Pr_graph.Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let s = render Pr_core.Failure.pp (Pr_core.Failure.of_list g [ (1, 2) ]) in
  Alcotest.(check bool) "lists the link" true (contains s "1-2")

let test_header_pp () =
  let s = render Pr_core.Header.pp { Pr_core.Header.pr = true; dd = 3 } in
  Alcotest.(check bool) "fields" true (contains s "pr=true" && contains s "dd=3")

let test_topology_pp () =
  let s = render Pr_topo.Topology.pp (Pr_topo.Abilene.topology ()) in
  Alcotest.(check bool) "links named" true (contains s "STTL -- SNVA")

let test_summary_pp () =
  let s = render Pr_stats.Summary.pp (Pr_stats.Summary.of_samples [ 1.0; 3.0 ]) in
  Alcotest.(check bool) "mean" true (contains s "mean=2.000")

let test_metrics_pp () =
  let m = Pr_sim.Metrics.create () in
  Pr_sim.Metrics.record_delivery m ~stretch:1.0;
  let s = render Pr_sim.Metrics.pp m in
  Alcotest.(check bool) "delivered" true (contains s "delivered=1")

let suite =
  [
    Alcotest.test_case "graph pp" `Quick test_graph_pp;
    Alcotest.test_case "paths pp" `Quick test_paths_pp;
    Alcotest.test_case "rotation pp" `Quick test_rotation_pp;
    Alcotest.test_case "faces pp" `Quick test_faces_pp;
    Alcotest.test_case "failure pp" `Quick test_failure_pp;
    Alcotest.test_case "header pp" `Quick test_header_pp;
    Alcotest.test_case "topology pp" `Quick test_topology_pp;
    Alcotest.test_case "summary pp" `Quick test_summary_pp;
    Alcotest.test_case "metrics pp" `Quick test_metrics_pp;
  ]
