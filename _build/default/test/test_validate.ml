module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces
module Validate = Pr_embed.Validate

let test_valid_embedding () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let faces = Faces.compute (Rotation.adjacency g) in
  Alcotest.(check bool) "valid" true (Validate.is_valid faces);
  Alcotest.(check (list (pair int int))) "no curved edges" [] (Validate.curved_edges faces);
  Alcotest.(check bool) "pr safe" true (Validate.is_pr_safe faces)

let test_bridge_is_curved () =
  (* A bridge always has both arcs on the same face. *)
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let faces = Faces.compute (Rotation.adjacency g) in
  Alcotest.(check (list (pair int int))) "bridges are curved"
    [ (0, 1); (1, 2) ]
    (Validate.curved_edges faces);
  Alcotest.(check bool) "not pr safe" false (Validate.is_pr_safe faces);
  Alcotest.(check bool) "but still a valid embedding" true (Validate.is_valid faces)

let test_teleglobe_geometric_has_curved_edges () =
  (* Regression for the NWK-PAR forwarding loop: the geographic drawing of
     Teleglobe has links whose two sides fall on one face. *)
  let topo = Pr_topo.Teleglobe.topology () in
  let faces = Faces.compute (Pr_embed.Geometric.of_topology topo) in
  Alcotest.(check bool) "curved edges present" true
    (Validate.curved_edges faces <> []);
  let nwk = Pr_topo.Topology.node_id topo "NWK"
  and par = Pr_topo.Topology.node_id topo "PAR" in
  let canon = if nwk < par then (nwk, par) else (par, nwk) in
  Alcotest.(check bool) "NWK-PAR is one of them" true
    (List.mem canon (Validate.curved_edges faces))

let test_pp_problem () =
  let render p = Format.asprintf "%a" Validate.pp_problem p in
  Alcotest.(check bool) "arc not covered" true
    (String.length (render (Validate.Arc_not_covered 3)) > 0);
  Alcotest.(check bool) "mismatch" true
    (String.length (render (Validate.Boundary_sum_mismatch (3, 4))) > 0)

let qcheck_random_rotations_always_valid =
  QCheck.Test.make ~name:"every rotation system is a valid embedding" ~count:150
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      Validate.is_valid (Faces.compute rot))

let suite =
  [
    Alcotest.test_case "valid embedding" `Quick test_valid_embedding;
    Alcotest.test_case "bridges are curved" `Quick test_bridge_is_curved;
    Alcotest.test_case "teleglobe geometric curved edges" `Quick
      test_teleglobe_geometric_has_curved_edges;
    Alcotest.test_case "problem printing" `Quick test_pp_problem;
    QCheck_alcotest.to_alcotest qcheck_random_rotations_always_valid;
  ]
