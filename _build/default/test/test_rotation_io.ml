module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Rotation_io = Pr_embed.Rotation_io

let k4 () = Graph.unweighted ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

let test_roundtrip () =
  let g = k4 () in
  let rot = Rotation.random (Pr_util.Rng.create ~seed:3) g in
  let again = Rotation_io.of_string g (Rotation_io.to_string rot) in
  Alcotest.(check bool) "round-trips" true (Rotation.equal rot again)

let test_parse_flexible () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  let rot =
    Rotation_io.of_string g "# comment\n0: 1\n  1:  2 0  # trailing\n2: 1\n"
  in
  Alcotest.(check (array int)) "order kept" [| 2; 0 |] (Rotation.order rot 1)

let test_isolated_nodes_optional () =
  let g = Graph.unweighted ~n:3 [ (0, 1) ] in
  let rot = Rotation_io.of_string g "0: 1\n1: 0\n" in
  Alcotest.(check (array int)) "isolated node empty" [||] (Rotation.order rot 2)

let expect_error g text =
  match Rotation_io.of_string g text with
  | exception Rotation_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  let g = Graph.unweighted ~n:3 [ (0, 1); (1, 2) ] in
  expect_error g "0: 1\n0: 1\n1: 0 2\n2: 1\n" (* duplicate *);
  expect_error g "0: 1\n1: 0\n2: 1\n" (* 1 misses neighbour 2 *);
  expect_error g "0: 1\n1: 0 2\n" (* node 2 missing *);
  expect_error g "9: 1\n" (* out of range *);
  expect_error g "0: x\n" (* not an integer *);
  expect_error g "just nonsense\n"

let test_file_roundtrip () =
  let path = Filename.temp_file "pr_rot" ".rot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let topo = Pr_topo.Abilene.topology () in
      let rot = Pr_embed.Geometric.of_topology topo in
      Rotation_io.save path rot;
      let again = Rotation_io.load topo.Pr_topo.Topology.graph path in
      Alcotest.(check bool) "file round-trip" true (Rotation.equal rot again);
      (* The reloaded rotation yields the same embedding. *)
      Alcotest.(check int) "same genus" 0
        (Pr_embed.Surface.genus (Pr_embed.Faces.compute again)))

let qcheck_roundtrip_random =
  QCheck.Test.make ~name:"rotation serialisation round-trips" ~count:80
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      Rotation.equal rot (Rotation_io.of_string g (Rotation_io.to_string rot)))

let suite =
  [
    Alcotest.test_case "round-trip" `Quick test_roundtrip;
    Alcotest.test_case "flexible parsing" `Quick test_parse_flexible;
    Alcotest.test_case "isolated nodes optional" `Quick test_isolated_nodes_optional;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random;
  ]
