module Counterexample = Pr_exp.Counterexample

let test_finds_and_verifies () =
  match Counterexample.search ~attempts:2000 ~seed:1 () with
  | None -> Alcotest.fail "expected to find a witness with this seed"
  | Some found ->
      Alcotest.(check bool) "witness verifies" true (Counterexample.verify found);
      Alcotest.(check bool) "description non-empty" true
        (String.length (Counterexample.describe found) > 0)

let test_witnesses_never_planar_and_safe () =
  (* The central finding: every delivery failure lives on an embedding with
     positive genus or curved edges.  A witness with genus 0 and no curved
     edges would falsify EXPERIMENTS.md — fail loudly if one appears. *)
  List.iter
    (fun seed ->
      match Counterexample.search ~attempts:500 ~seed () with
      | None -> ()
      | Some found ->
          if found.Counterexample.genus = 0 && found.Counterexample.curved_edges = 0
          then
            Alcotest.failf "planar PR-safe counterexample found?! seed %d:\n%s" seed
              (Counterexample.describe found))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_minimised_failures () =
  (* Greedy shrinking means removing any one failure restores delivery. *)
  match Counterexample.search ~attempts:2000 ~seed:7 () with
  | None -> Alcotest.fail "expected a witness"
  | Some found ->
      List.iter
        (fun f ->
          let smaller =
            List.filter (fun f' -> f' <> f) found.Counterexample.failures
          in
          if smaller <> [] then begin
            let weaker = { found with Counterexample.failures = smaller } in
            Alcotest.(check bool) "sub-witness no longer fails" false
              (Counterexample.verify weaker)
          end)
        found.Counterexample.failures

let suite =
  [
    Alcotest.test_case "finds and verifies" `Quick test_finds_and_verifies;
    Alcotest.test_case "witnesses are never planar-and-safe" `Slow
      test_witnesses_never_planar_and_safe;
    Alcotest.test_case "failures are minimal" `Quick test_minimised_failures;
  ]
