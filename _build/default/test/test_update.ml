module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces
module Surface = Pr_embed.Surface
module Update = Pr_embed.Update

let genus rot = Surface.genus (Faces.compute rot)

let square_embedding () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Rotation.adjacency g

let test_add_chord_keeps_genus () =
  let rot = square_embedding () in
  Alcotest.(check int) "square planar" 0 (genus rot);
  let rot', grown = Update.add_link rot 0 2 ~weight:1.0 in
  Alcotest.(check bool) "chord" true (grown = Update.Chord);
  Alcotest.(check int) "still planar" 0 (genus rot');
  Alcotest.(check bool) "link present" true (Graph.has_edge (Rotation.graph rot') 0 2);
  Alcotest.(check bool) "valid embedding" true
    (Pr_embed.Validate.is_valid (Faces.compute rot'));
  Alcotest.(check int) "one more face" 3 (Faces.count (Faces.compute rot'))

let test_remove_restores () =
  let rot = square_embedding () in
  let rot', _ = Update.add_link rot 0 2 ~weight:1.0 in
  let rot'' = Update.remove_link rot' 0 2 in
  Alcotest.(check bool) "round-trips" true (Rotation.equal rot rot'')

let test_remove_merges_faces () =
  let topo = Pr_topo.Generate.grid ~rows:3 ~cols:3 in
  let rot = Pr_embed.Geometric.of_topology topo in
  let before = Faces.count (Faces.compute rot) in
  (* Remove an interior (non-bridge) link: its two faces merge. *)
  let rot' = Update.remove_link rot 0 1 in
  Alcotest.(check int) "one fewer face" (before - 1) (Faces.count (Faces.compute rot'));
  Alcotest.(check int) "still planar" 0 (genus rot')

let test_pendant_attach () =
  let g = Graph.unweighted ~n:4 [ (0, 1); (1, 2); (2, 0) ] in
  let rot = Rotation.adjacency g in
  let rot', grown = Update.add_link rot 2 3 ~weight:1.0 in
  Alcotest.(check bool) "pendant is not a handle" true (grown = Update.Chord);
  Alcotest.(check int) "still planar" 0 (genus rot');
  Alcotest.(check bool) "valid" true (Pr_embed.Validate.is_valid (Faces.compute rot'))

let test_handle_when_no_common_face () =
  (* On a genus-1 embedding of K4 minus..., easier: build an embedding of a
     hexagon with a chord arrangement where two nodes share no face.  The
     cube's geometric... simplest concrete case: take K4 with a planar
     rotation and connect two new degree-2 paths; instead, force it: use a
     torus grid whose opposite nodes share no face. *)
  let topo = Pr_topo.Generate.torus ~rows:3 ~cols:3 in
  let rot =
    Pr_embed.Optimize.best_of ~steps:3000 (Pr_util.Rng.create ~seed:5)
      topo.Pr_topo.Topology.graph
  in
  let g = Rotation.graph rot in
  let before = genus rot in
  (* Find any non-adjacent pair with no common face. *)
  let faces = Faces.compute rot in
  let share_face u v =
    let on_face f x = List.mem x (Faces.face_nodes faces f) in
    List.exists
      (fun f -> on_face f u && on_face f v)
      (List.init (Faces.count faces) Fun.id)
  in
  let candidate = ref None in
  for u = 0 to Graph.n g - 1 do
    for v = u + 1 to Graph.n g - 1 do
      if !candidate = None && (not (Graph.has_edge g u v)) && not (share_face u v)
      then candidate := Some (u, v)
    done
  done;
  match !candidate with
  | None -> () (* every pair shares a face on this embedding: nothing to test *)
  | Some (u, v) ->
      let rot', grown = Update.add_link rot u v ~weight:1.0 in
      Alcotest.(check bool) "reported handle" true (grown = Update.Handle);
      Alcotest.(check int) "genus + 1" (before + 1) (genus rot');
      Alcotest.(check bool) "still valid" true
        (Pr_embed.Validate.is_valid (Faces.compute rot'))

let test_validation () =
  let rot = square_embedding () in
  (match Update.add_link rot 0 1 ~weight:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "existing link accepted");
  (match Update.add_link rot 0 0 ~weight:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self loop accepted");
  (match Update.add_link rot 0 2 ~weight:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero weight accepted");
  match Update.remove_link rot 0 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removing a non-link accepted"

let qcheck_chord_insertions_stay_planar =
  (* Grow a maximal planar graph chord by chord from its spanning square:
     every insertion into a common face must keep genus 0 and validity. *)
  QCheck.Test.make ~name:"chord insertions preserve planarity" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 4 16))
    (fun (seed, n) ->
      let rng = Pr_util.Rng.create ~seed in
      let target = (Pr_topo.Generate.apollonian rng ~n).Pr_topo.Topology.graph in
      (* Start from a spanning triangle of the apollonian construction. *)
      let start = Graph.unweighted ~n [ (0, 1); (1, 2); (0, 2) ] in
      let missing =
        Graph.fold_edges
          (fun _ (e : Graph.edge) acc ->
            if Graph.has_edge start e.u e.v then acc else (e.u, e.v) :: acc)
          target []
        |> List.rev
      in
      let rec grow rot = function
        | [] -> Some rot
        | (u, v) :: rest ->
            let rot', _ = Update.add_link rot u v ~weight:1.0 in
            if not (Pr_embed.Validate.is_valid (Faces.compute rot')) then None
            else grow rot' rest
      in
      match grow (Rotation.adjacency start) missing with
      | None -> false
      | Some rot ->
          (* The final graph is the apollonian network: planar; insertions
             may have cost handles if a common face was missed, but
             validity must always hold and genus must stay within the
             bound. *)
          let faces = Faces.compute rot in
          Pr_embed.Validate.is_valid faces
          && Surface.genus faces <= Surface.max_genus_bound target)

let suite =
  [
    Alcotest.test_case "chord keeps genus" `Quick test_add_chord_keeps_genus;
    Alcotest.test_case "remove restores" `Quick test_remove_restores;
    Alcotest.test_case "remove merges faces" `Quick test_remove_merges_faces;
    Alcotest.test_case "pendant attach" `Quick test_pendant_attach;
    Alcotest.test_case "handle when no common face" `Quick test_handle_when_no_common_face;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest qcheck_chord_insertions_stay_planar;
  ]
