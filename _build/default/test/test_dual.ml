module Graph = Pr_graph.Graph
module Rotation = Pr_embed.Rotation
module Faces = Pr_embed.Faces
module Dual = Pr_embed.Dual

let ring_faces n =
  Faces.compute
    (Rotation.adjacency (Graph.unweighted ~n (List.init n (fun i -> (i, (i + 1) mod n)))))

let test_ring_dual () =
  let faces = ring_faces 5 in
  let adj = Dual.adjacencies faces in
  Alcotest.(check int) "one adjacency per link" 5 (List.length adj);
  List.iter
    (fun (a, b, _) ->
      Alcotest.(check bool) "two distinct sides" true (a <> b))
    adj;
  Alcotest.(check (list int)) "two pentagon faces" [ 5; 5 ] (Dual.face_sizes faces);
  Alcotest.(check int) "largest face" 5 (Dual.largest_face faces);
  Alcotest.(check bool) "dual connected" true (Dual.is_connected faces)

let test_bridge_self_loop () =
  let g = Graph.unweighted ~n:2 [ (0, 1) ] in
  let faces = Faces.compute (Rotation.adjacency g) in
  match Dual.adjacencies faces with
  | [ (a, b, _) ] -> Alcotest.(check int) "bridge is a dual self loop" a b
  | _ -> Alcotest.fail "expected one adjacency"

let test_largest_face_bounds_episode () =
  (* A single-failure cycle-following episode walks the complementary
     cycle: at most (largest face - 1) links. *)
  let topo = Pr_topo.Abilene.topology () in
  let rotation = Pr_embed.Geometric.of_topology topo in
  let faces = Faces.compute rotation in
  let bound = Dual.largest_face faces - 1 in
  let g = topo.Pr_topo.Topology.graph in
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build rotation in
  List.iter
    (fun scenario ->
      let failures = Pr_core.Failure.of_list g scenario in
      List.iter
        (fun (src, dst) ->
          let trace = Pr_core.Forward.run ~routing ~cycles ~failures ~src ~dst () in
          let sp_hops = Pr_core.Routing.hops routing ~node:src ~dst in
          let walked = Pr_graph.Paths.hops trace.Pr_core.Forward.path in
          (* Detour <= shortest path + one full complementary cycle bounded
             by the largest face, re-entering SP at most sp_hops later. *)
          Alcotest.(check bool) "episode bounded by largest face" true
            (walked <= sp_hops + bound + Pr_graph.Graph.n g))
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    (Pr_core.Scenario.single_links g)

let qcheck_dual_connected =
  QCheck.Test.make ~name:"dual of a connected embedding is connected" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      Dual.is_connected (Faces.compute rot))

let qcheck_face_sizes_sum =
  QCheck.Test.make ~name:"face sizes sum to 2m" ~count:100
    QCheck.(pair (int_bound 1_000_000) (Helpers.arb_two_connected ()))
    (fun (seed, g) ->
      let rot = Rotation.random (Pr_util.Rng.create ~seed) g in
      List.fold_left ( + ) 0 (Dual.face_sizes (Faces.compute rot)) = 2 * Graph.m g)

let suite =
  [
    Alcotest.test_case "ring dual" `Quick test_ring_dual;
    Alcotest.test_case "bridge self loop" `Quick test_bridge_self_loop;
    Alcotest.test_case "largest face bounds episodes" `Quick
      test_largest_face_bounds_episode;
    QCheck_alcotest.to_alcotest qcheck_dual_connected;
    QCheck_alcotest.to_alcotest qcheck_face_sizes_sum;
  ]
