module Graph = Pr_graph.Graph
module Routing = Pr_core.Routing

let test_basic () =
  let g = (Pr_topo.Example.topology ()).Pr_topo.Topology.graph in
  let r = Routing.build g in
  Alcotest.(check (option int)) "next hop" (Some 1)
    (Routing.next_hop r ~node:0 ~dst:5);
  Alcotest.(check (option int)) "at destination" None
    (Routing.next_hop r ~node:5 ~dst:5);
  Alcotest.(check (float 0.0)) "distance A-F" 4.0 (Routing.distance r ~node:0 ~dst:5);
  Alcotest.(check int) "hops A-F" 4 (Routing.hops r ~node:0 ~dst:5);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 3; 4; 5 ])
    (Routing.shortest_path r ~src:0 ~dst:5)

let test_kinds () =
  let g = Graph.create ~n:3 [ (0, 1, 5.0); (1, 2, 5.0) ] in
  let hop_r = Routing.build ~kind:Pr_core.Discriminator.Hops g in
  let w_r = Routing.build ~kind:Pr_core.Discriminator.Weighted g in
  Alcotest.(check (float 0.0)) "hop discriminator" 2.0 (Routing.disc hop_r ~node:0 ~dst:2);
  Alcotest.(check (float 0.0)) "weighted discriminator" 10.0 (Routing.disc w_r ~node:0 ~dst:2)

let test_quantise () =
  let g = Graph.create ~n:2 [ (0, 1, 2.3) ] in
  let hop_r = Routing.build g in
  Alcotest.(check int) "hops identity" 3 (Routing.quantise_dd hop_r 3.0);
  let w_r = Routing.build ~kind:Pr_core.Discriminator.Weighted g in
  Alcotest.(check int) "weighted ceiling" 3 (Routing.quantise_dd w_r 2.3)

let test_memory_entries () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  Alcotest.(check int) "n(n-1)" 110 (Routing.memory_entries (Routing.build g))

let test_dd_bits () =
  let g = (Pr_topo.Abilene.topology ()).Pr_topo.Topology.graph in
  Alcotest.(check int) "abilene dd bits" 3 (Routing.dd_bits (Routing.build g))

let qcheck_next_hop_chain_terminates =
  QCheck.Test.make ~name:"routing chains reach every destination" ~count:60
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let r = Routing.build g in
      List.for_all
        (fun (src, dst) ->
          let rec walk x steps =
            if x = dst then true
            else if steps > Graph.n g then false
            else
              match Routing.next_hop r ~node:x ~dst with
              | None -> false
              | Some w -> walk w (steps + 1)
          in
          walk src 0)
        (Helpers.all_pairs g))

let qcheck_shortest_path_cost_matches =
  QCheck.Test.make ~name:"shortest_path cost equals distance" ~count:60
    (Helpers.arb_weighted_connected ())
    (fun g ->
      let r = Routing.build g in
      List.for_all
        (fun (src, dst) ->
          match Routing.shortest_path r ~src ~dst with
          | None -> false
          | Some path ->
              Helpers.close ~eps:1e-6
                (Pr_graph.Paths.cost g path)
                (Routing.distance r ~node:src ~dst))
        (Helpers.all_pairs g))

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "discriminator kinds" `Quick test_kinds;
    Alcotest.test_case "quantise" `Quick test_quantise;
    Alcotest.test_case "memory entries" `Quick test_memory_entries;
    Alcotest.test_case "dd bits" `Quick test_dd_bits;
    QCheck_alcotest.to_alcotest qcheck_next_hop_chain_terminates;
    QCheck_alcotest.to_alcotest qcheck_shortest_path_cost_matches;
  ]
