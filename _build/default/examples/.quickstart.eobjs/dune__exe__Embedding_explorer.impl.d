examples/embedding_explorer.ml: List Pr_embed Pr_topo Pr_util Printf
