examples/custom_topology.ml: Filename List Out_channel Pr_core Pr_embed Pr_graph Pr_topo Printf String Sys
