examples/traffic_classes.mli:
