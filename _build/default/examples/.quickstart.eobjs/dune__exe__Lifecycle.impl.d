examples/lifecycle.ml: List Pr_core Pr_embed Pr_graph Pr_topo Printf String
