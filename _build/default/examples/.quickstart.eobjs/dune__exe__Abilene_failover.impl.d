examples/abilene_failover.ml: List Pr_core Pr_embed Pr_exp Pr_graph Pr_stats Pr_topo Pr_util Printf
