examples/traffic_classes.ml: List Pr_core Pr_embed Pr_topo Pr_util Printf String
