examples/quickstart.ml: List Pr_core Pr_embed Pr_topo Printf String
