examples/interdomain.mli:
