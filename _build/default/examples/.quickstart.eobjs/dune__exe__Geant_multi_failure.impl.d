examples/geant_multi_failure.ml: List Option Pr_exp Pr_stats Pr_topo Printf
