examples/abilene_failover.mli:
