examples/geant_multi_failure.mli:
