examples/flapping.ml: Format List Pr_core Pr_embed Pr_sim Pr_topo Pr_util Printf
