examples/flapping.mli:
