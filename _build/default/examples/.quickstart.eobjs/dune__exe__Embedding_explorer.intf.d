examples/embedding_explorer.mli:
