examples/interdomain.ml: List Pr_core Pr_interdomain Pr_topo Printf String
