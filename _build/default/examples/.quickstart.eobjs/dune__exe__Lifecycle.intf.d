examples/lifecycle.mli:
