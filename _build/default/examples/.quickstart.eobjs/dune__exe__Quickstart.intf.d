examples/quickstart.mli:
