(* Embedding explorer: how rotation systems shape PR's behaviour.

   Compares, on several graphs, the faces/genus/curved-edge profile of the
   adjacency, geometric, random and annealed rotation systems — the
   offline step the paper delegates to an "embedding server" and leaves as
   future work.

   Run with:  dune exec examples/embedding_explorer.exe *)

module Topology = Pr_topo.Topology
module Generate = Pr_topo.Generate

let profile name rotation =
  let faces = Pr_embed.Faces.compute rotation in
  [
    name;
    string_of_int (Pr_embed.Faces.count faces);
    string_of_int (Pr_embed.Surface.genus faces);
    string_of_int (List.length (Pr_embed.Validate.curved_edges faces));
    (if Pr_embed.Validate.is_pr_safe faces then "yes" else "no");
  ]

let explore (topo : Topology.t) =
  let g = topo.Topology.graph in
  Printf.printf "== %s ==\n" (Topology.summary topo);
  Printf.printf "max genus bound (cycle rank / 2): %d\n"
    (Pr_embed.Surface.max_genus_bound g);
  let rng = Pr_util.Rng.create ~seed:11 in
  let rows =
    [
      profile "adjacency" (Pr_embed.Rotation.adjacency g);
      profile "geometric" (Pr_embed.Geometric.of_topology topo);
      profile "random" (Pr_embed.Rotation.random (Pr_util.Rng.copy rng) g);
      profile "annealed (min genus)"
        (Pr_embed.Optimize.best_of (Pr_util.Rng.copy rng) g);
      profile "annealed (PR safe)"
        (Pr_embed.Optimize.best_of ~objective:Pr_embed.Optimize.Pr_safe
           ~seeds:[ Pr_embed.Geometric.of_topology topo ]
           (Pr_util.Rng.copy rng) g);
    ]
    @ (match Pr_embed.Planar.embed g with
      | Some rotation -> [ profile "certified planar (DMP)" rotation ]
      | None -> [])
  in
  Pr_util.Tablefmt.print
    ~header:[ "rotation"; "faces"; "genus"; "curved"; "PR-safe" ]
    rows;
  print_newline ()

let () =
  explore (Pr_topo.Abilene.topology ());
  explore (Generate.petersen ());
  explore (Generate.torus ~rows:4 ~cols:4);
  explore (Pr_topo.Teleglobe.topology ())
