(* Operational lifecycle: long-term topology changes (paper §4.3).

   "The network embedding (with its corresponding cycle following tables)
   needs to be recomputed only when the network topology experiences a
   long-term change, such as when new links are introduced."

   This example walks that workflow: provision a new Abilene link with an
   incremental embedding update (no full recomputation), refresh the
   tables, verify protection still covers everything, then decommission a
   link and check again.

   Run with:  dune exec examples/lifecycle.exe *)

module Topology = Pr_topo.Topology
module Graph = Pr_graph.Graph

let coverage_report label (g : Graph.t) rotation =
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build rotation in
  let faces = Pr_embed.Faces.compute rotation in
  let total = ref 0 and delivered = ref 0 in
  List.iter
    (fun scenario ->
      let failures = Pr_core.Failure.of_list g scenario in
      List.iter
        (fun (src, dst) ->
          incr total;
          let trace = Pr_core.Forward.run ~routing ~cycles ~failures ~src ~dst () in
          if trace.Pr_core.Forward.outcome = Pr_core.Forward.Delivered then
            incr delivered)
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    (Pr_core.Scenario.single_links g);
  Printf.printf "%-28s %d links, %s, PR-safe %b -> %d/%d single-failure pairs delivered\n"
    label (Graph.m g)
    (Pr_embed.Surface.describe faces)
    (Pr_embed.Validate.is_pr_safe faces)
    !delivered !total

let () =
  let topo = Pr_topo.Abilene.topology () in
  let label = Topology.label topo in
  let rotation = Pr_embed.Planar.embed_exn topo.Topology.graph in
  coverage_report "day 0: certified planar" topo.Topology.graph rotation;

  (* Provision a new Denver - Atlanta wave. *)
  let dnvr = Topology.node_id topo "DNVR" and atla = Topology.node_id topo "ATLA" in
  let rotation, grown = Pr_embed.Update.add_link rotation dnvr atla ~weight:1.0 in
  let g = Pr_embed.Rotation.graph rotation in
  Printf.printf "\nprovisioned %s-%s (%s insertion)\n" (label dnvr) (label atla)
    (match grown with Pr_embed.Update.Chord -> "chord" | Pr_embed.Update.Handle -> "handle");
  coverage_report "after provisioning" g rotation;

  (* Decommission the Sunnyvale - Denver link. *)
  let snva = Topology.node_id topo "SNVA" in
  let rotation = Pr_embed.Update.remove_link rotation snva dnvr in
  let g = Pr_embed.Rotation.graph rotation in
  Printf.printf "\ndecommissioned %s-%s\n" (label snva) (label dnvr);
  coverage_report "after decommissioning" g rotation;

  (* The incremental path never touched the optimizer; show the tables can
     be serialised for upload to the routers, as the paper's offline
     server would. *)
  let text = Pr_embed.Rotation_io.to_string rotation in
  let again = Pr_embed.Rotation_io.of_string g text in
  Printf.printf "\nserialised rotation: %d bytes, round-trips %b\n"
    (String.length text)
    (Pr_embed.Rotation.equal rotation again)
