(* Abilene failover study: what happens to every source/destination pair
   when each backbone link fails, under PR versus the alternatives.

   This is the paper's Figure 2(a) workload viewed as an operator report:
   per-link worst-case stretch and the links whose failure hurts most.

   Run with:  dune exec examples/abilene_failover.exe *)

module Topology = Pr_topo.Topology
module Graph = Pr_graph.Graph

let () =
  let topo = Pr_topo.Abilene.topology () in
  let g = topo.Topology.graph in
  let label = Topology.label topo in
  Printf.printf "%s\n\n" (Topology.summary topo);

  let routing = Pr_core.Routing.build g in
  let rotation = Pr_embed.Geometric.of_topology topo in
  let cycles = Pr_core.Cycle_table.build rotation in
  Printf.printf "Geometric embedding: %s (planar, as drawn on the US map)\n\n"
    (Pr_embed.Surface.describe (Pr_embed.Faces.compute rotation));

  (* For each single link failure: worst and mean PR stretch over affected
     pairs, against the post-reconvergence optimum. *)
  let rows = ref [] in
  let study scenario =
    match scenario with
    | [ (u, v) ] ->
        let failures = Pr_core.Failure.of_list g scenario in
        let pairs = Pr_core.Scenario.connected_affected_pairs routing failures in
        let stretches =
          List.map
            (fun (src, dst) ->
              let trace = Pr_core.Forward.run ~routing ~cycles ~failures ~src ~dst () in
              Pr_core.Forward.stretch ~routing ~trace ~src ~dst)
            pairs
        in
        let summary = Pr_stats.Summary.of_samples stretches in
        rows :=
          [
            Printf.sprintf "%s-%s" (label u) (label v);
            string_of_int (List.length pairs);
            Pr_util.Tablefmt.float_cell summary.Pr_stats.Summary.mean;
            Pr_util.Tablefmt.float_cell summary.Pr_stats.Summary.max;
          ]
          :: !rows
    | _ -> assert false
  in
  List.iter study (Pr_core.Scenario.single_links g);
  Pr_util.Tablefmt.print
    ~header:[ "failed link"; "affected pairs"; "mean stretch"; "worst stretch" ]
    (List.rev !rows);

  (* Every pair stays reachable: the paper's coverage claim on a
     2-connected planar embedding. *)
  let row = Pr_exp.Coverage.measure topo ~k:1 in
  Printf.printf "\nPR delivered %d/%d affected pairs across all %d single-link failures.\n"
    row.Pr_exp.Coverage.pr_delivered row.Pr_exp.Coverage.pairs
    row.Pr_exp.Coverage.scenarios
