(* Quickstart: the paper's running example, end to end.

   Builds the six-node network of Figure 1(a), embeds it with the paper's
   cycles c1..c4, prints the cycle following table of Table 1, and traces
   the packet walkthroughs of Sections 4.2 and 4.3.

   Run with:  dune exec examples/quickstart.exe *)

module Topology = Pr_topo.Topology
module Example = Pr_topo.Example

let () =
  let topo = Example.topology () in
  let label = Topology.label topo in
  Printf.printf "Topology: %s\n\n" (Topology.summary topo);

  (* The embedding is a rotation system: a cyclic order of neighbours at
     every node.  Here we install the paper's own embedding; for real maps
     use Pr_embed.Geometric or Pr_embed.Optimize. *)
  let rotation = Pr_embed.Rotation.of_orders topo.graph Example.rotation_orders in
  let faces = Pr_embed.Faces.compute rotation in
  Printf.printf "Cellular embedding: %s\n" (Pr_embed.Surface.describe faces);
  for f = 0 to Pr_embed.Faces.count faces - 1 do
    Printf.printf "  c%d: %s\n" (f + 1)
      (String.concat " -> " (List.map label (Pr_embed.Faces.face_nodes faces f)))
  done;

  (* Table 1: the cycle following table at node D. *)
  let cycles = Pr_core.Cycle_table.build rotation in
  Printf.printf "\nCycle following table at %s (Table 1):\n" (label Example.d);
  Printf.printf "  %-10s %-16s %s\n" "incoming" "cycle following" "complementary";
  List.iter
    (fun (e : Pr_core.Cycle_table.entry) ->
      Printf.printf "  I_%s%s       I_%s%s             I_%s%s\n"
        (label e.incoming) (label Example.d)
        (label Example.d) (label e.cycle_following)
        (label Example.d) (label e.complementary))
    (Pr_core.Cycle_table.entries cycles Example.d);

  (* Forwarding demos. *)
  let routing = Pr_core.Routing.build topo.graph in
  let demo title failed =
    let failures = Pr_core.Failure.of_list topo.graph failed in
    let trace =
      Pr_core.Forward.run ~routing ~cycles ~failures ~src:Example.a
        ~dst:Example.f ()
    in
    Printf.printf "\n%s\n  path: %s\n  PR episodes: %d, stretch: %.2f\n" title
      (String.concat " -> " (List.map label trace.path))
      trace.pr_episodes
      (Pr_core.Forward.stretch ~routing ~trace ~src:Example.a ~dst:Example.f)
  in
  demo "No failures (plain shortest path):" [];
  demo "Figure 1(b): link D-E fails —" [ (Example.d, Example.e) ];
  demo "Figure 1(c): links D-E and B-C fail —"
    [ (Example.d, Example.e); (Example.b, Example.c) ];

  (* Header encoding: PR needs 1 + ceil(log2(diameter+1)) bits here. *)
  let dd_bits = Pr_core.Routing.dd_bits routing in
  Printf.printf "\nHeader: %d DD bit(s) + 1 PR bit = %d bits; fits DSCP pool 2: %b\n"
    dd_bits
    (Pr_core.Header.bits_used ~dd_bits)
    (Pr_core.Header.fits_in_dscp ~dd_bits)
