(* Traffic-class policy (paper §7): limit PR to mission-critical classes.

   The PR/DD bits live in DSCP pool 2, and the remaining DSCP bits still
   identify traffic classes, so an ISP can protect only the classes that
   pay for "five nines" while best-effort traffic keeps the classic
   drop-until-reconvergence behaviour.  This example splits an Abilene
   workload across classes and compares their loss under a failure.

   Run with:  dune exec examples/traffic_classes.exe *)

module Topology = Pr_topo.Topology
module Policy = Pr_core.Policy

let () =
  let topo = Pr_topo.Abilene.topology () in
  let g = topo.Topology.graph in
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build (Pr_embed.Geometric.of_topology topo) in

  (* Classes 5 (voice) and 6 (control) are protected; 0 (best effort) and
     1 (bulk) are not. *)
  let policy = Policy.make ~protected_classes:[ 5; 6 ] in
  Printf.printf "protected classes: %s\n\n"
    (String.concat ", " (List.map string_of_int (Policy.protected_classes policy)));

  (* Fail the Denver-Kansas City backbone link. *)
  let dnvr = Topology.node_id topo "DNVR" and kscy = Topology.node_id topo "KSCY" in
  let failures = Pr_core.Failure.of_list g [ (dnvr, kscy) ] in
  Printf.printf "failed link: DNVR-KSCY\n\n";

  let classes = [ (0, "best-effort"); (1, "bulk"); (5, "voice"); (6, "control") ] in
  let pairs = Pr_core.Scenario.connected_affected_pairs routing failures in
  Printf.printf "%d source/destination pairs cross the failed link\n\n"
    (List.length pairs);

  let rows =
    List.map
      (fun (class_id, name) ->
        let delivered = ref 0 in
        List.iter
          (fun (src, dst) ->
            let outcome =
              Policy.forward policy ~class_id ~routing ~cycles ~failures ~src ~dst
            in
            if Policy.delivered outcome then incr delivered)
          pairs;
        [
          Printf.sprintf "%d (%s)" class_id name;
          (if Policy.protects policy class_id then "PR" else "none");
          Printf.sprintf "%d/%d" !delivered (List.length pairs);
        ])
      classes
  in
  Pr_util.Tablefmt.print ~header:[ "class"; "protection"; "delivered" ] rows;

  (* One concrete packet, both ways. *)
  let sttl = Topology.node_id topo "STTL" and ipls = Topology.node_id topo "IPLS" in
  print_newline ();
  List.iter
    (fun class_id ->
      let outcome =
        Policy.forward policy ~class_id ~routing ~cycles ~failures ~src:sttl ~dst:ipls
      in
      Printf.printf "class %d STTL->IPLS: %s %s\n" class_id
        (if Policy.delivered outcome then "delivered" else "DROPPED")
        (String.concat " -> " (List.map (Topology.label topo) (Policy.path_of outcome))))
    [ 0; 5 ]
