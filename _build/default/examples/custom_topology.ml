(* Bring your own topology: the text interchange format end to end.

   Writes a small metro network to disk in the `Pr_topo.Parse` format,
   loads it back, embeds it, and runs a failure drill — the workflow a
   network operator would follow with their own map.

   Run with:  dune exec examples/custom_topology.exe *)

module Topology = Pr_topo.Topology

let metro_text =
  {|# A small metro ring with two cross links.
topology metro
node core1 0 0
node core2 4 0
node agg1  0 2
node agg2  4 2
node edge1 0 4
node edge2 4 4
edge core1 core2 1
edge core1 agg1 1
edge core2 agg2 1
edge agg1 agg2 1
edge agg1 edge1 1
edge agg2 edge2 1
edge edge1 edge2 1
edge core1 agg2 2
|}

let () =
  let path = Filename.temp_file "metro" ".topo" in
  Out_channel.with_open_text path (fun oc -> output_string oc metro_text);
  let topo = Pr_topo.Parse.load path in
  Sys.remove path;
  Printf.printf "Loaded %s\n" (Topology.summary topo);
  Printf.printf "2-edge-connected: %b\n\n"
    (Pr_graph.Connectivity.is_two_edge_connected topo.Topology.graph);

  let rotation = Pr_embed.Geometric.of_topology topo in
  Printf.printf "Embedding: %s\n\n"
    (Pr_embed.Surface.describe (Pr_embed.Faces.compute rotation));

  let routing = Pr_core.Routing.build topo.Topology.graph in
  let cycles = Pr_core.Cycle_table.build rotation in
  let src = Topology.node_id topo "edge1" and dst = Topology.node_id topo "core2" in

  (* Drill: fail every link on edge1's shortest path to core2 one by one. *)
  let drill failed =
    let failures = Pr_core.Failure.of_list topo.Topology.graph [ failed ] in
    let trace = Pr_core.Forward.run ~routing ~cycles ~failures ~src ~dst () in
    let u, v = failed in
    Printf.printf "fail %s-%s: %s (stretch %.2f)\n"
      (Topology.label topo u) (Topology.label topo v)
      (String.concat " -> " (List.map (Topology.label topo) trace.path))
      (Pr_core.Forward.stretch ~routing ~trace ~src ~dst)
  in
  match Pr_core.Routing.shortest_path routing ~src ~dst with
  | None -> assert false
  | Some path ->
      Printf.printf "shortest path: %s\n"
        (String.concat " -> " (List.map (Topology.label topo) path));
      let rec drill_path = function
        | u :: (v :: _ as rest) ->
            drill (u, v);
            drill_path rest
        | [ _ ] | [] -> ()
      in
      drill_path path
