(* Multi-failure resilience on the GÉANT backbone.

   The paper's Figure 2(f) subjects Géant to 16 simultaneous link failures.
   This example runs that workload with the recommended embedding and
   reports delivery and stretch for PR, FCP and post-reconvergence
   routing.  Our Géant reconstruction turns out to be planar, so the
   certified genus-0 embedding delivers every connected pair — the
   regime where this reproduction found the paper's coverage claim to
   actually hold (on genus > 0 embeddings a residue of multi-failure
   cases loops; see EXPERIMENTS.md and examples on Teleglobe).

   Run with:  dune exec examples/geant_multi_failure.exe *)

module Topology = Pr_topo.Topology

let () =
  let topo = Pr_topo.Geant.topology () in
  Printf.printf "%s\n\n" (Topology.summary topo);

  let config =
    {
      (Pr_exp.Fig2.default topo ~k:16) with
      samples = 100;
      embedding = Pr_exp.Fig2.Safe_optimised;
    }
  in
  let result = Pr_exp.Fig2.run config in
  Printf.printf
    "k=16 failures, %d scenarios, %d affected connected pairs, embedding genus %d (curved edges: %d)\n\n"
    result.scenarios result.pairs_measured result.genus result.curved_edges;

  let describe (scheme, ccdf) =
    Printf.printf "%-14s mean stretch %.3f, P(>2) = %.3f, undeliverable fraction %.4f\n"
      (Pr_exp.Fig2.scheme_name scheme)
      (Option.value ~default:infinity (Pr_stats.Ccdf.mean_finite ccdf))
      (Pr_stats.Ccdf.eval ccdf 2.0)
      (Pr_stats.Ccdf.infinite_fraction ccdf)
  in
  List.iter describe result.curves;

  Printf.printf "\nPR undelivered pairs: %d of %d (%.2f%%)\n"
    (List.length result.pr_failures)
    result.pairs_measured
    (100.0
    *. float_of_int (List.length result.pr_failures)
    /. float_of_int (max 1 result.pairs_measured));
  print_endline
    (if result.genus = 0 then
       "(Genus-0 embedding: the full-coverage claim holds — every connected\n\
        pair above was delivered, a finding of this reproduction detailed\n\
        in EXPERIMENTS.md.)"
     else
       "(Genus > 0 embedding: a residue of multi-failure cases loops even\n\
        though the pairs stay connected — a finding of this reproduction\n\
        detailed in EXPERIMENTS.md.)")
