(* Link flapping and packets lost during reconvergence.

   The paper's motivation: while the IGP reconverges, packets die at the
   failure point — "a quarter of a million packets" per second of OC-192
   downtime.  PR forwards through the failure with zero routing downtime.
   Section 7 adds that flapping links should be damped with a hold-down so
   a recovering link does not confuse in-flight cycle following.

   This example drives the event simulator with a flapping Abilene link and
   compares reconvergence (with a convergence delay), LFA and PR on the
   same packet workload, then shows the hold-down damping the flap storm.

   Run with:  dune exec examples/flapping.exe *)

module Topology = Pr_topo.Topology

let () =
  let topo = Pr_topo.Abilene.topology () in
  let g = topo.Topology.graph in
  let rotation = Pr_embed.Geometric.of_topology topo in
  let rng = Pr_util.Rng.create ~seed:7 in

  (* KSCY-IPLS flaps every 10 time units, down 30% of the cycle. *)
  let kscy = Topology.node_id topo "KSCY" and ipls = Topology.node_id topo "IPLS" in
  let flaps =
    Pr_sim.Workload.flapping_link
      (Pr_util.Rng.copy rng)
      ~u:kscy ~v:ipls ~period:10.0 ~duty_down:0.3 ~flaps:10
  in
  let injections =
    Pr_sim.Workload.poisson_flows (Pr_util.Rng.copy rng) g ~rate:50.0 ~horizon:100.0
  in
  Printf.printf "Workload: %d packets over 100 time units, link KSCY-IPLS flapping (%d transitions)\n\n"
    (List.length injections) (List.length flaps);

  let run scheme =
    let outcome =
      Pr_sim.Engine.run_exn
        { Pr_sim.Engine.topology = topo; rotation; scheme }
        ~link_events:flaps ~injections
    in
    Format.printf "%-14s %a, SPF runs: %d@."
      (Pr_sim.Engine.scheme_name scheme)
      Pr_sim.Metrics.pp outcome.Pr_sim.Engine.metrics
      outcome.Pr_sim.Engine.spf_runs
  in
  run (Pr_sim.Engine.Reconvergence_scheme { convergence_delay = 2.0 });
  run Pr_sim.Engine.Lfa_scheme;
  run (Pr_sim.Engine.Pr_scheme { termination = Pr_core.Forward.Distance_discriminator });

  (* Hold-down damping (paper §7): delay up-transitions until the link has
     been stable, suppressing rapid oscillation. *)
  print_newline ();
  List.iter
    (fun hold ->
      let damped = Pr_sim.Flap.apply_hold_down flaps ~hold_down:hold in
      Printf.printf "hold-down %4.1f: %2d transitions reach the data plane\n" hold
        (List.length damped))
    [ 0.0; 1.0; 5.0; 8.0 ];

  (* The §7 pathology needs packets in flight while the link oscillates:
     the timed simulator moves packets one hop per 0.1 time units, and the
     link now flaps every 0.8 units — comparable to the length of a cycle
     following detour.  Without damping, packets can meet the link in both
     states during one episode; the hold-down restores stability. *)
  print_newline ();
  print_endline "packet-level (in-flight) view, KSCY-IPLS flapping every 0.8 units:";
  let fast_flaps =
    Pr_sim.Workload.flapping_link
      (Pr_util.Rng.copy rng)
      ~u:kscy ~v:ipls ~period:0.8 ~duty_down:0.5 ~flaps:120
  in
  let timed_config = Pr_sim.Timed.default_config topo rotation in
  List.iter
    (fun (label, hold) ->
      let events =
        match hold with
        | None -> fast_flaps
        | Some h -> Pr_sim.Flap.apply_hold_down fast_flaps ~hold_down:h
      in
      let outcome = Pr_sim.Timed.run timed_config ~link_events:events ~injections in
      Format.printf "  %-22s %a, max hops %d@." label Pr_sim.Metrics.pp
        outcome.Pr_sim.Timed.metrics outcome.Pr_sim.Timed.max_hops)
    [ ("no hold-down", None); ("hold-down 2.0", Some 2.0) ]
