(* Interdomain extension (paper §7): protecting a multihomed prefix.

   An ISP running Abilene receives announcements for an external prefix at
   three egress PoPs.  Mapping the announcements onto a connectivity graph
   (a virtual prefix node behind the egresses) lets PR's cycle following
   protect the prefix against internal link failures AND the loss of
   individual inter-AS announcements — with no BGP convergence wait.

   Run with:  dune exec examples/interdomain.exe *)

module Topology = Pr_topo.Topology
module Prefix = Pr_interdomain.Prefix

let () =
  let topo = Pr_topo.Abilene.topology () in
  let egress name = Topology.node_id topo name in
  let prefix =
    Prefix.attach topo ~name:"203.0.113.0/24"
      ~egresses:
        [ (egress "NYCM", 1.0); (egress "LOSA", 1.0); (egress "HSTN", 2.0) ]
  in
  let extended = Prefix.topology prefix in
  Printf.printf "extended map: %s\n" (Topology.summary extended);
  let protection = Prefix.protect prefix in

  let src = Topology.node_id topo "STTL" in
  let show title failures_list =
    let failures = Pr_core.Failure.of_list extended.Topology.graph failures_list in
    let trace = Prefix.reach protection ~failures ~src in
    Printf.printf "%-44s %s: %s\n" title
      (match trace.Pr_core.Forward.outcome with
      | Pr_core.Forward.Delivered -> "delivered"
      | Pr_core.Forward.Dropped_no_interface | Pr_core.Forward.Dropped_unreachable
      | Pr_core.Forward.Dropped_corrupt
        -> "DROPPED"
      | Pr_core.Forward.Ttl_exceeded -> "LOOP")
      (String.concat " -> "
         (List.map (Topology.label extended) trace.Pr_core.Forward.path))
  in
  (match Prefix.best_egress protection ~src with
  | Some e -> Printf.printf "primary egress from STTL: %s\n\n" (Topology.label topo e)
  | None -> print_endline "prefix unreachable?!");

  show "no failures" [];
  (* Lose the primary announcement: the inter-AS link at LOSA. *)
  show "LOSA announcement withdrawn" [ Prefix.egress_link prefix (egress "LOSA") ];
  (* Lose the primary announcement AND an internal backbone link. *)
  show "LOSA withdrawn + DNVR-KSCY down"
    [
      Prefix.egress_link prefix (egress "LOSA");
      (Topology.node_id topo "DNVR", Topology.node_id topo "KSCY");
    ];
  (* Lose two of the three announcements. *)
  show "LOSA and NYCM withdrawn"
    [
      Prefix.egress_link prefix (egress "LOSA");
      Prefix.egress_link prefix (egress "NYCM");
    ]
