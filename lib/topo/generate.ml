module Rng = Pr_util.Rng

let named name edges n = Topology.of_graph ~name (Pr_graph.Graph.unweighted ~n edges)

let ring n =
  if n < 3 then invalid_arg "Generate.ring: need at least 3 nodes";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  named (Printf.sprintf "ring%d" n) edges n

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  named (Printf.sprintf "k%d" n) !edges n

let grid_edges ~rows ~cols ~wrap =
  if rows < 2 || cols < 2 then invalid_arg "Generate.grid: need a 2x2 grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges
      else if wrap && cols > 2 then edges := (id r c, id r 0) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
      else if wrap && rows > 2 then edges := (id r c, id 0 c) :: !edges
    done
  done;
  !edges

let grid_coords ~rows ~cols =
  Array.init (rows * cols) (fun i ->
      (float_of_int (i mod cols), float_of_int (i / cols)))

let grid ~rows ~cols =
  let edges = grid_edges ~rows ~cols ~wrap:false in
  let t = named (Printf.sprintf "grid%dx%d" rows cols) edges (rows * cols) in
  { t with coords = grid_coords ~rows ~cols }

let torus ~rows ~cols =
  let edges = grid_edges ~rows ~cols ~wrap:true in
  let t = named (Printf.sprintf "torus%dx%d" rows cols) edges (rows * cols) in
  { t with coords = grid_coords ~rows ~cols }

let wheel n =
  if n < 4 then invalid_arg "Generate.wheel: need at least 4 nodes";
  let rim = List.init (n - 1) (fun i -> (1 + i, 1 + ((i + 1) mod (n - 1)))) in
  let spokes = List.init (n - 1) (fun i -> (0, 1 + i)) in
  named (Printf.sprintf "wheel%d" n) (rim @ spokes) n

let hypercube d =
  if d < 1 || d > 10 then invalid_arg "Generate.hypercube: dimension out of range";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  named (Printf.sprintf "q%d" d) !edges n

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  named "petersen" (outer @ spokes @ inner) 10

let erdos_renyi rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generate.erdos_renyi: p out of range";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  named (Printf.sprintf "er%d" n) !edges n

let gnm rng ~n ~m =
  let max_edges = n * (n - 1) / 2 in
  if m < 0 || m > max_edges then invalid_arg "Generate.gnm: bad edge count";
  let chosen = Pr_util.Rng.sample_without_replacement rng ~k:m ~n:max_edges in
  (* Decode linear index into the (u, v) pair with u < v. *)
  let decode idx =
    let rec row u remaining =
      let in_row = n - 1 - u in
      if remaining < in_row then (u, u + 1 + remaining)
      else row (u + 1) (remaining - in_row)
    in
    row 0 idx
  in
  named (Printf.sprintf "gnm%d_%d" n m) (List.map decode chosen) n

let waxman rng ~n ~alpha ~beta =
  if alpha <= 0.0 || beta <= 0.0 then invalid_arg "Generate.waxman: parameters";
  Pr_telemetry.Span.timed "topo.generate.waxman" @@ fun () ->
  let coords = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let dist (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2) in
  let scale = beta *. Float.sqrt 2.0 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = dist coords.(u) coords.(v) in
      if Rng.float rng 1.0 < alpha *. exp (-.d /. scale) then
        edges := (u, v, Float.max 0.001 d) :: !edges
    done
  done;
  let t =
    Topology.make
      ~name:(Printf.sprintf "waxman%d" n)
      ~labels:(Array.init n string_of_int)
      ~coords !edges
  in
  t

let barabasi_albert rng ~n ~k =
  if k < 1 || n <= k then invalid_arg "Generate.barabasi_albert";
  Pr_telemetry.Span.timed "topo.generate.ba" @@ fun () ->
  (* Start from a star of k+1 nodes, then attach preferentially.  The
     endpoint pool repeats each node once per incident edge, which realises
     degree-proportional sampling. *)
  let pool = ref [] in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    pool := u :: v :: !pool
  in
  for v = 1 to k do
    add_edge 0 v
  done;
  for v = k + 1 to n - 1 do
    let pool_array = Array.of_list !pool in
    let targets = Hashtbl.create k in
    while Hashtbl.length targets < k do
      Hashtbl.replace targets (Rng.pick rng pool_array) ()
    done;
    Hashtbl.iter (fun u () -> add_edge u v) targets
  done;
  named (Printf.sprintf "ba%d_%d" n k) !edges n

let hierarchical rng ~regions ~per_region ~extra =
  if regions < 3 || per_region < 3 then invalid_arg "Generate.hierarchical";
  let n = regions * per_region in
  let node r i = (r * per_region) + i in
  let edges = ref [] in
  (* Metro rings. *)
  for r = 0 to regions - 1 do
    for i = 0 to per_region - 1 do
      edges := (node r i, node r ((i + 1) mod per_region)) :: !edges
    done
  done;
  (* Core ring over the gateways (node 0 of each region). *)
  for r = 0 to regions - 1 do
    edges := (node r 0, node ((r + 1) mod regions) 0) :: !edges
  done;
  (* Random inter-region shortcuts. *)
  let has = Hashtbl.create (2 * n) in
  let canon u v = if u < v then (u, v) else (v, u) in
  List.iter (fun (u, v) -> Hashtbl.replace has (canon u v) ()) !edges;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let r1 = Rng.int rng regions and r2 = Rng.int rng regions in
    if r1 <> r2 then begin
      let u = node r1 (Rng.int rng per_region)
      and v = node r2 (Rng.int rng per_region) in
      if not (Hashtbl.mem has (canon u v)) then begin
        Hashtbl.replace has (canon u v) ();
        edges := canon u v :: !edges;
        incr added
      end
    end
  done;
  named (Printf.sprintf "hier%dx%d" regions per_region) !edges n

let apollonian rng ~n =
  if n < 3 then invalid_arg "Generate.apollonian: need at least 3 nodes";
  let edges = ref [ (0, 1); (0, 2); (1, 2) ] in
  let faces = ref [| (0, 1, 2) |] in
  for v = 3 to n - 1 do
    let arr = !faces in
    let i = Rng.int rng (Array.length arr) in
    let a, b, c = arr.(i) in
    edges := (a, v) :: (b, v) :: (c, v) :: !edges;
    let fresh = Array.make (Array.length arr + 2) (a, b, v) in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh.(i) <- (a, b, v);
    fresh.(Array.length arr) <- (a, v, c);
    fresh.(Array.length arr + 1) <- (v, b, c);
    faces := fresh
  done;
  named (Printf.sprintf "apollonian%d" n) !edges n

let two_connected rng ~n ~extra =
  if n < 3 then invalid_arg "Generate.two_connected: need at least 3 nodes";
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let cycle = List.init n (fun i -> (order.(i), order.((i + 1) mod n))) in
  let has = Hashtbl.create (2 * n) in
  let canon u v = if u < v then (u, v) else (v, u) in
  List.iter (fun (u, v) -> Hashtbl.replace has (canon u v) ()) cycle;
  let chords = ref [] in
  let attempts = ref 0 in
  let max_attempts = 50 * (extra + 1) in
  while List.length !chords < extra && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem has (canon u v)) then begin
      Hashtbl.replace has (canon u v) ();
      chords := canon u v :: !chords
    end
  done;
  named (Printf.sprintf "twoconn%d_%d" n extra) (cycle @ !chords) n
