(** The batch forwarding kernel: {!Pr_core.Forward.decide}-equivalent
    logic over a compiled {!Fib} image.

    One kernel = one image plus mutable scratch (port-state bytes, per-hop
    registers).  The hot loop — {!forward_into} — walks a packet from
    source to verdict with array reads and integer arithmetic only: no
    allocation, no hashing, no closures.  {!run_one} is the same walk
    with full trace capture (it allocates lists) for the differential
    tests and the simulation engine's compiled backend.

    Two port-state planes are kept:

    - the {b view}: what the deciding router believes, fed to the ladder
      exactly like [link_up] in {!Pr_core.Forward.ladder_step};
    - the {b truth}: the wire.  A packet sent into a link its sender
      wrongly believed up dies there (the engine's stale-view drop).

    With [view = truth], no DD bound and no budget guard, the kernel
    reproduces {!Pr_core.Forward.run} verdict-for-verdict; with a view,
    bound and guard it reproduces the {!Pr_core.Forward.ladder_step} walk
    of {!Pr_sim.Engine}'s detection path — both equalities are pinned by
    the differential suite (test/test_fastpath.ml).

    A kernel is single-domain state: share the {!Fib} image, give each
    domain its own kernel.

    {b The administrative plane.}  Every image carries administrative
    link state ({!Fib.link_live}); the kernel masks it into both port
    planes, so the ladder can never forward into an administratively
    down link even though the compiled cycle/complementary columns (base
    structure, a deployment constant) still name its port.  Base images
    are all-live and the mask is the identity — seed behaviour is
    unchanged. *)

type t

val create : Fib.t -> t

val fib : t -> Fib.t

val rebind : t -> Fib.t -> unit
(** Point the kernel at another image of the same base topology — the
    control-plane swap.  All image arrays and the administrative plane
    are reloaded; the port-state planes stay conservative until the next
    {!set_failures}/{!fill_view}/{!fill_truth} (links the new image
    administratively removed go down immediately, links it restored stay
    down until reloaded), so a packet walk never observes a torn state.
    Raises [Invalid_argument] if the image is over a different base
    topology. *)

(** {2 Port state} *)

val set_failures : t -> Pr_core.Failure.t -> unit
(** Load a frozen failure set into {e both} truth and view (the
    global-truth regime).  The failure set must be over the image's
    graph. *)

val fill_view : t -> (node:int -> other:int -> bool) -> unit
(** Overwrite the view plane from a per-router belief function (e.g.
    {!Pr_sim.Detector.believes_up}).  Truth is untouched. *)

val fill_truth : t -> (node:int -> other:int -> bool) -> unit

val set_believed : t -> node:int -> other:int -> up:bool -> unit
(** Flip one endpoint's belief about one adjacent link.  Raises
    [Invalid_argument] if [other] is not a neighbour of [node]. *)

val believed_up : t -> node:int -> other:int -> bool

(** {2 Guard mode} *)

val set_guard : t -> bool -> unit
(** Toggle bounds-checked forwarding (default off).  Guard mode validates
    every FIB-cell read whose value is used as an index — next-hop,
    cycle and complementary columns, LFA offsets and ports, port-node
    and node-port maps — and converts an out-of-range value into an
    accounted {!Pr_core.Forward.Dropped_corrupt} verdict with a
    {!Pr_core.Forward.Corrupt_cell} locus instead of an unsafe read.  A
    corrupt-seeded {!run_one} walk (injected header state) additionally
    converts TTL expiry into {!Pr_core.Forward.Walk_blowup}.  On clean
    traffic guard mode is verdict-identical to guard-off; its cost — one
    predictable branch per check site — is benched by [prcli bench
    --guard] and CI-gated at ≤1.10×. *)

val guarded : t -> bool

(** {2 The shortcut rung} *)

val set_shortcut : t -> int option -> unit
(** Arm (or, with [None], disarm) the deja-vu shortcut rung under a hint
    budget of [width] bits, mirroring [Forward.run ~shortcut] exactly:
    the walk inserts every PR-mode departure into a bounded seen-node
    hint ({!Pr_core.Seen}, per-node masks taken from the image's
    compiled shortcut plane when the widths agree), and a hit at a
    cycle-following hop whose continuation is live triggers a proactive
    §4.3 DD check — granted, the packet clears PR and resumes primary
    routing; declined (including any guard-suspicious next-hop cell:
    degrade-to-no-op, never a fault), the walk is bit-identical to an
    unarmed kernel.  Only armed under
    {!Pr_core.Forward.Distance_discriminator} termination.  Raises
    [Invalid_argument] via {!Pr_core.Seen.plan} if [width] is out of
    range. *)

val shortcut_width : t -> int option
(** The armed hint budget, [None] when disarmed. *)

(** {2 Telemetry} *)

val set_trace : t -> Pr_telemetry.Trace.sink -> unit
(** Attach an event sink.  Decision-level events are emitted from the
    kernel's [decide] at points mirroring {!Pr_core.Forward.decide} line
    for line, and {!run_one} adds the walk-level events (one [Hop] per
    transmission, the [Deliver]/[Expire]/[Drop] verdict, and a
    [Divergence] before a stale-view wire death) — so a traced
    {!run_one} and a traced {!Pr_core.Forward.run} produce structurally
    equal event sequences.  The default {!Pr_telemetry.Trace.null} sink
    costs nothing: no event is ever constructed.  Leave it null during
    batch runs — {!forward_into} skips [decide] entirely on fault-free
    hops, so batch traces would be partial. *)

val set_probe : t -> Pr_telemetry.Probe.t option -> unit
(** Attach a probe fed by {!forward_into}: per-packet verdict, stretch,
    hops and re-cycle depth, plus a monotonic-clock latency sample
    around one slow-path [decide] in {!Pr_telemetry.Probe.lat_sample}.
    The fault-free fast path is untouched — probe-on cost is
    proportional to slow-path decisions encountered, not traffic
    carried. *)

val set_linkload : t -> Pr_obs.Linkload.t option -> unit
(** Attach a link-load table fed by {!run_one} and {!forward_into}: one
    count per transmission against the directed link it used, classed
    shortest-path / recycled / rescue exactly as the reference walks
    class theirs (see {!Pr_obs.Linkload}).  Unlike the probe, the
    fault-free fast path must feed it too — every hop is load — so this
    is the one table whose accounting rides the hot loop; its cost is
    one option test plus one unsafe array bump per hop, kept inside the
    CI overhead budget.  Transmissions are counted before any
    stale-view wire death.  Raises [Invalid_argument] if the table's
    dimensions do not match the image's graph. *)

(** {2 One packet, traced} *)

type reason =
  | No_route
  | Interfaces_down
  | Continuation_lost
  | Budget_exhausted
  | Stale_view
      (** died on the wire: the sender's view said up, the truth said
          down — only possible when view and truth differ *)
  | Corrupt
      (** guard mode detected corrupted header or FIB state; the fault
          locus is in {!result}'s [fault] field *)

val reason_name : reason -> string

type result = {
  outcome : Pr_core.Forward.outcome;
  reason : reason option;  (** [Some] iff the packet was dropped *)
  path : int list;         (** nodes visited, starting at the source *)
  pr_episodes : int;
  failure_hits : int;
  max_dd : float;
  episodes : (int * float) list;
  degradations : Pr_core.Forward.degradation list;  (** oldest first *)
  cost : float;            (** weighted cost of the traversed walk *)
  fault : Pr_core.Forward.fault option;
      (** [Some] iff [outcome = Dropped_corrupt] *)
  shortcuts : int;         (** shortcut grants taken ({!set_shortcut}) *)
}

val run_one :
  ?termination:Pr_core.Forward.termination ->
  ?quantise:bool ->
  ?dd_bits:int ->
  ?budget_guard:int ->
  ?ttl:int ->
  ?header:Pr_core.Forward.hop_header ->
  ?arrived_from:int ->
  t ->
  src:int ->
  dst:int ->
  result
(** Walk one packet under the current port state.  Defaults mirror the
    reference engines: {!Pr_core.Forward.Distance_discriminator}, no
    quantisation, unbounded DD, guard off, TTL
    {!Pr_core.Forward.default_ttl}.  Raises [Invalid_argument] if
    [src = dst] or either is out of range.

    [header]/[arrived_from] inject possibly-corrupted in-flight state at
    the source — the corruption-campaign entry point, mirroring
    {!Pr_core.Forward.run_guarded}.  Entry guards (impossible DD, then a
    previous hop that is not a neighbour of [src]) convert bad injected
    state into an accounted {!Pr_core.Forward.Dropped_corrupt} verdict,
    and an injected walk converts TTL expiry into
    {!Pr_core.Forward.Walk_blowup}; both apply regardless of
    {!set_guard}, which additionally arms the FIB-cell checks. *)

val to_trace : t -> result -> Pr_core.Forward.trace
(** Shape a result as the seed trace record ({!Pr_core.Forward.run}'s
    output), quantising [max_dd] exactly as the reference does. *)

(** {2 Batches} *)

type counters = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable looped : int;
  mutable unreachable : int;
  mutable stretch_sum : float;
  mutable worst_stretch : float;
  drops_by_reason : int array;  (** indexed by {!reason_index} *)
  mutable complementary_retries : int;
  mutable lfa_rescues : int;
  mutable dd_saturations : int;
  mutable shortcut_exits : int;
  mutable pr_episodes : int;
  mutable failure_hits : int;
}

val reason_index : reason -> int

val all_reasons : reason list

val fresh_counters : unit -> counters

val add_counters : into:counters -> counters -> unit
(** Accumulate [c] into [into] (field-wise sums, max for worst stretch).
    Addition order matters for the float sums — merge in a deterministic
    order to keep summaries bit-identical. *)

val equal_counters : counters -> counters -> bool
(** Exact equality, floats compared by bit pattern. *)

val forward_into :
  ?termination:Pr_core.Forward.termination ->
  ?quantise:bool ->
  ?dd_bits:int ->
  ?budget_guard:int ->
  ?ttl:int ->
  t ->
  counters ->
  src:int ->
  dst:int ->
  unit
(** {!run_one} without trace capture: walk the packet and account the
    verdict straight into [counters].  Allocation-free.  Delivered
    stretch is [walk cost / SPF distance], the engine's definition. *)

val record_unreachable : counters -> unit
(** Account a packet whose endpoints the caller found disconnected (the
    kernel itself never tests connectivity). *)
