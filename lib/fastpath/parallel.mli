(** Domain-parallel batch simulation over a shared FIB image.

    Work is an array of {!item}s — one frozen failure scenario plus the
    (src, dst) pairs to push through it.  Items are dealt round-robin to
    [domains] workers ({!Stdlib.Domain.spawn}); each worker owns a private
    {!Kernel} over the shared immutable image, so no locking is needed.

    {b Determinism.}  Results are bit-identical regardless of [domains]:

    - per-item {!Pr_util.Rng} streams are split from the master seed
      {e sequentially before} any domain starts, so item [i] sees the
      same stream whether one domain runs everything or eight share it;
    - each item accumulates into its own counter slot, and slots are
      merged in item-index order after the join barrier, fixing the
      float-summation order.

    The determinism suite pins [domains = 1, 2, 4] to byte-identical
    summaries. *)

type item = {
  failures : Pr_core.Failure.t;
  pairs : (int * int) array;  (** ordered (src, dst), src <> dst *)
}

type config = {
  termination : Pr_core.Forward.termination;
  quantise : bool;
  dd_bits : int option;
  budget_guard : int;
  ttl : int option;
  shortcut : int option;
      (** deja-vu shortcut-rung hint width ({!Kernel.set_shortcut});
          armed identically on every domain's kernel, so summaries stay
          bit-identical across domain counts *)
}

val default_config : config
(** Reference-engine defaults: DD termination, no quantisation, unbounded
    DD, guard off, default TTL, shortcut disarmed. *)

val ladder_config : dd_bits:int -> budget_guard:int -> config
(** The PR2 ladder regime of {!Pr_core.Forward.ladder_step}. *)

val all_pairs_single_failures : Fib.t -> item array
(** One item per edge of the image's graph — that edge failed, all
    ordered (src, dst) pairs injected.  The paper's §5-style single-link
    sweep, and the bench workload. *)

val run :
  ?domains:int ->
  ?config:config ->
  ?prepare:(Kernel.t -> rng:Pr_util.Rng.t -> item -> unit) ->
  seed:int ->
  Fib.t ->
  item array ->
  Kernel.counters
(** Run every item and return the merged counters.  [domains] defaults
    to 1 (inline, no spawn).  [prepare] runs once per item after
    {!Kernel.set_failures}, with the item's private stream — use it to
    perturb the kernel's view plane (imperfect detection) deterministically.
    Pairs whose endpoints the scenario disconnects are accounted
    unreachable without walking.  Raises [Invalid_argument] if
    [domains < 1]. *)

val run_probed :
  ?domains:int ->
  ?config:config ->
  ?prepare:(Kernel.t -> rng:Pr_util.Rng.t -> item -> unit) ->
  ?create_probe:(unit -> Pr_telemetry.Probe.t) ->
  seed:int ->
  Fib.t ->
  item array ->
  Kernel.counters * Pr_telemetry.Probe.t
(** {!run} with a {!Pr_telemetry.Probe.t} attached to every walk.  One
    probe slot per item, merged in item-index order after the join
    barrier, so every probe count (and float sum) is bit-identical
    regardless of [domains] — latency histograms excepted, they measure
    wall time.  [create_probe] (default [Probe.create ()]) builds every
    per-item slot and the merge target: pass
    [fun () -> Probe.create ~sketch:true ()] to carry streaming
    quantile sketches through the batch — sketch merges happen in the
    same item-index order, so the merged sketch state is bit-identical
    across domain counts too. *)

val run_swapped :
  ?domains:int ->
  ?config:config ->
  ?prepare:(Kernel.t -> rng:Pr_util.Rng.t -> item -> unit) ->
  seed:int ->
  schedule:(int * Fib.t) list ->
  Fib.t ->
  item array ->
  Kernel.counters * Swap.stats
(** {!run} across a control-plane edit schedule: [schedule] lists
    [(first_item, image)] pairs — strictly increasing indices into
    [items] — and image [k] is published (via a {!Swap} store seeded
    with [fib]) just before item [first_item] is admitted.  Each item
    pins the epoch current at its own admission and its worker rebinds
    to that image before forwarding, so the image an item runs on is a
    pure function of the item index: verdicts are bit-identical
    regardless of [domains] {e and} of wall-clock swap timing, which the
    determinism suite pins at domains 1/2/4.  Superseded images drain —
    they retire only when their last in-flight item completes — and the
    returned {!Swap.stats} lets callers assert the store ended
    {!Swap.quiescent}.  Raises [Invalid_argument] on an unsorted or
    out-of-range schedule. *)

val run_loaded :
  ?domains:int ->
  ?config:config ->
  ?prepare:(Kernel.t -> rng:Pr_util.Rng.t -> item -> unit) ->
  seed:int ->
  Fib.t ->
  item array ->
  Kernel.counters * Pr_obs.Linkload.t
(** {!run} with a {!Pr_obs.Linkload.t} attached to every walk: the
    merged per-directed-link load table of the whole batch.  One table
    per {e domain} (not per item — integer sums are partition-invariant,
    unlike the float-bearing counters), merged in domain order after the
    join barrier, so the table is bit-identical regardless of [domains]
    and the single-domain case pays no merge at all. *)
