module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra
module Routing = Pr_core.Routing
module Cycle_table = Pr_core.Cycle_table

type t = {
  g : Graph.t;
  kind : Pr_core.Discriminator.kind;
  n : int;
  ports : int;
  degree : int array;        (* [n] *)
  port_node : int array;     (* [n*ports] *)
  port_weight : float array; (* [n*ports] *)
  node_port : int array;     (* [n*n] *)
  next_hop_port : int array; (* [n*n] *)
  disc : float array;        (* [n*n] *)
  disc_q : int array;        (* [n*n] *)
  distance : float array;    (* [n*n] *)
  cycle_col : int array;     (* [n*ports] *)
  comp_col : int array;      (* [n*ports] *)
  lfa_off : int array;       (* [n*n + 1] *)
  lfa_ports : int array;
  dd_bits : int;
  sc_width : int;            (* effective shortcut-hint width (plan width) *)
  sc_mask : int array;       (* [n]: per-node seen-hint contribution *)
  live : bool array;         (* [m], by base edge index: administratively up *)
  eff_weight : float array;  (* [m], by base edge index: effective weight *)
}

(* Shortcut plane: per-node hint masks compiled once per image under the
   default header budget.  Purely structural (a function of the node
   count alone), so Delta recompiles copy it through untouched. *)
let default_sc_width = 16

type mismatch =
  | Node_count of { routing : int; cycles : int }
  | Edge of { u : int; v : int }

type error =
  | Port_overflow of { node : int; degree : int; ports : int }
  | Graph_mismatch of mismatch

let describe_error = function
  | Port_overflow { node; degree; ports } ->
      Printf.sprintf
        "Fib: node %d has degree %d, exceeding the image's port width %d" node
        degree ports
  | Graph_mismatch (Node_count { routing; cycles }) ->
      Printf.sprintf
        "Fib: routing and cycle tables are built over different graphs \
         (%d vs %d nodes)"
        routing cycles
  | Graph_mismatch (Edge { u; v }) ->
      Printf.sprintf
        "Fib: routing and cycle tables are built over different graphs \
         (they disagree on link %d-%d)"
        u v

(* First concrete disagreement between two graphs known not to be
   structurally equal: an edge present in only one of them, or present in
   both with different weights. *)
let find_mismatch g1 g2 =
  if Graph.n g1 <> Graph.n g2 then
    Node_count { routing = Graph.n g1; cycles = Graph.n g2 }
  else
    let witness = ref None in
    let check a b =
      Graph.iter_edges
        (fun _ (e : Graph.edge) ->
          if
            !witness = None
            && (not (Graph.has_edge b e.u e.v)
               || Graph.weight b e.u e.v <> e.w)
          then witness := Some (Edge { u = e.u; v = e.v }))
        a
    in
    check g1 g2;
    check g2 g1;
    match !witness with Some m -> m | None -> Edge { u = -1; v = -1 }

(* LFA candidate ports for one (x, dst) row, best first — shared by the
   base compiler and {!Delta} so both paths emit identical bytes: RFC
   5286 basic inequality over the administratively live neighbours,
   primary excluded, ordered by cost + remaining distance with ties to
   the smaller neighbour id. *)
let lfa_row ~neighbours ~node_port ~n ~x ~dst ~primary ~dist ~cost_of ~live_of =
  let dist_x = dist.((x * n) + dst) in
  Array.to_list neighbours
  |> List.filter_map (fun w ->
         if not (live_of w) then None
         else
           let cost = cost_of w in
           let dist_w = dist.((w * n) + dst) in
           if w <> primary && dist_w < cost +. dist_x then
             Some (cost +. dist_w, w)
           else None)
  |> List.sort compare
  |> List.map (fun (_, w) -> node_port.((x * n) + w))

(* Sampled per-destination compile costs from the most recent
   span-recorded [of_tables] on this domain: (dst, ns) pairs for every
   k-th destination column of the routing-plane loop, k sized for at
   most [cost_samples] samples.  Only collected while a Span recorder
   is installed — the clock reads cost an uninstrumented compile
   nothing — and consumed by the [prcli report --compile] hotspot
   table. *)
let cost_samples = 512

let last_costs : (int * int64) list ref = ref []

let last_compile_costs () = List.rev !last_costs

let of_tables ?ports routing cycles =
  Pr_telemetry.Span.timed "fib.compile" @@ fun () ->
  let g = Routing.graph routing in
  if not (Graph.equal_structure g (Cycle_table.graph cycles)) then
    Error (Graph_mismatch (find_mismatch g (Cycle_table.graph cycles)))
  else begin
    let n = Graph.n g in
    let width = match ports with Some p -> p | None -> Graph.max_degree g in
    let overflow = ref None in
    for x = n - 1 downto 0 do
      let d = Graph.degree g x in
      if d > width then overflow := Some (Port_overflow { node = x; degree = d; ports = width })
    done;
    match !overflow with
    | Some e -> Error e
    | None ->
        let recording = Pr_telemetry.Span.recording () in
        if recording then last_costs := [];
        let sample_every = max 1 (n / cost_samples) in
        let degree = Array.init n (Graph.degree g) in
        let port_node = Array.make (n * width) (-1) in
        let port_weight = Array.make (n * width) 0.0 in
        let node_port = Array.make (n * n) (-1) in
        Pr_telemetry.Span.timed "fib.compile.ports" (fun () ->
            for x = 0 to n - 1 do
              Array.iteri
                (fun p w ->
                  port_node.((x * width) + p) <- w;
                  port_weight.((x * width) + p) <- Graph.weight g x w;
                  node_port.((x * n) + w) <- p)
                (Graph.neighbours g x)
            done);
        let next_hop_port = Array.make (n * n) (-1) in
        let disc = Array.make (n * n) infinity in
        let disc_q = Array.make (n * n) 0 in
        let distance = Array.make (n * n) infinity in
        Pr_telemetry.Span.timed "fib.compile.routes" (fun () ->
            for dst = 0 to n - 1 do
              let sampled = recording && dst mod sample_every = 0 in
              let t0 = if sampled then Pr_telemetry.Probe.now_ns () else 0L in
              for x = 0 to n - 1 do
                let i = (x * n) + dst in
                (match Routing.next_hop routing ~node:x ~dst with
                | Some w -> next_hop_port.(i) <- node_port.((x * n) + w)
                | None -> ());
                let v = Routing.disc routing ~node:x ~dst in
                disc.(i) <- v;
                disc_q.(i) <- Routing.quantise_dd routing v;
                distance.(i) <- Routing.distance routing ~node:x ~dst
              done;
              if sampled then begin
                last_costs :=
                  (dst, Int64.sub (Pr_telemetry.Probe.now_ns ()) t0) :: !last_costs;
                Pr_telemetry.Flight.Progress.tick
                  ~frac:(0.5 *. float_of_int dst /. float_of_int n)
                  ()
              end
            done);
        let cycle_col = Array.make (n * width) (-1) in
        let comp_col = Array.make (n * width) (-1) in
        Pr_telemetry.Span.timed "fib.compile.cycles" (fun () ->
            for x = 0 to n - 1 do
              Array.iteri
                (fun p w ->
                  let next = Cycle_table.cycle_next cycles ~node:x ~from_:w in
                  let next_port = node_port.((x * n) + next) in
                  cycle_col.((x * width) + p) <- next_port;
                  (* The complementary cycle of a failed interface starts at the
                     rotation successor of the failed port — same successor
                     function, indexed by the failed port rather than the
                     incoming one. *)
                  comp_col.((x * width) + p) <- next_port)
                (Graph.neighbours g x)
            done);
        (* LFA candidates per (node, dst): see [lfa_row]. *)
        let lfa_off = Array.make ((n * n) + 1) 0 in
        let cand = ref [] (* reversed port list *) in
        let total = ref 0 in
        Pr_telemetry.Span.timed "fib.compile.lfa" (fun () ->
            for x = 0 to n - 1 do
              for dst = 0 to n - 1 do
                let i = (x * n) + dst in
                lfa_off.(i) <- !total;
                match Routing.next_hop routing ~node:x ~dst with
                | None -> ()
                | Some primary ->
                    List.iter
                      (fun p ->
                        cand := p :: !cand;
                        incr total)
                      (lfa_row ~neighbours:(Graph.neighbours g x) ~node_port ~n
                         ~x ~dst ~primary ~dist:distance
                         ~cost_of:(fun w -> Graph.weight g x w)
                         ~live_of:(fun _ -> true))
              done;
              if recording && x mod sample_every = 0 then
                Pr_telemetry.Flight.Progress.tick
                  ~frac:(0.5 +. (0.5 *. float_of_int x /. float_of_int n))
                  ()
            done);
        lfa_off.(n * n) <- !total;
        let lfa_ports = Array.of_list (List.rev !cand) in
        let sc_plan = Pr_core.Seen.plan ~nodes:n ~width:default_sc_width in
        Ok
          {
            g;
            kind = Routing.kind routing;
            n;
            ports = width;
            degree;
            port_node;
            port_weight;
            node_port;
            next_hop_port;
            disc;
            disc_q;
            distance;
            cycle_col;
            comp_col;
            lfa_off;
            lfa_ports;
            dd_bits = Routing.dd_bits routing;
            sc_width = sc_plan.Pr_core.Seen.width;
            sc_mask = Array.init n (Pr_core.Seen.mask_of sc_plan);
            live = Array.make (Graph.m g) true;
            eff_weight =
              Array.init (Graph.m g) (fun i -> (Graph.edge g i).Graph.w);
          }
  end

let of_tables_exn ?ports routing cycles =
  match of_tables ?ports routing cycles with
  | Ok t -> t
  | Error e -> invalid_arg (describe_error e)

let graph t = t.g

let n t = t.n

let ports t = t.ports

let degree t x = t.degree.(x)

let dd_bits t = t.dd_bits

let sc_width t = t.sc_width

let quantise_dd t v =
  match t.kind with
  | Pr_core.Discriminator.Hops -> int_of_float v
  | Pr_core.Discriminator.Weighted -> int_of_float (Float.ceil v)

let memory_words t =
  Array.length t.degree + Array.length t.port_node
  + Array.length t.port_weight + Array.length t.node_port
  + Array.length t.next_hop_port + Array.length t.disc
  + Array.length t.disc_q + Array.length t.distance
  + Array.length t.cycle_col + Array.length t.comp_col
  + Array.length t.lfa_off + Array.length t.lfa_ports
  + Array.length t.sc_mask
  + Array.length t.live + Array.length t.eff_weight

(* ---- memory-footprint accounting ---- *)

type plane = { plane : string; words : int; bytes : int }

type footprint = {
  planes : plane list;
  total_bytes : int;
  bytes_per_router : float;
}

let word_bytes = Sys.word_size / 8

let footprint t =
  (* Payload words per plane: every field is a flat array of one-word
     cells (ints, unboxed floats in float arrays, immediate bools), so
     bytes = words * word size.  Array headers (one word each) are
     excluded — they vanish at scale and keeping [total_bytes] equal to
     [memory_words * word_bytes] makes the accounting testable. *)
  let p name a = { plane = name; words = a; bytes = a * word_bytes } in
  let planes =
    [
      p "degree" (Array.length t.degree);
      p "port_node" (Array.length t.port_node);
      p "port_weight" (Array.length t.port_weight);
      p "node_port" (Array.length t.node_port);
      p "next_hop_port" (Array.length t.next_hop_port);
      p "disc" (Array.length t.disc);
      p "disc_q" (Array.length t.disc_q);
      p "distance" (Array.length t.distance);
      p "cycle_col" (Array.length t.cycle_col);
      p "comp_col" (Array.length t.comp_col);
      p "lfa_off" (Array.length t.lfa_off);
      p "lfa_ports" (Array.length t.lfa_ports);
      p "sc_mask" (Array.length t.sc_mask);
      p "live" (Array.length t.live);
      p "eff_weight" (Array.length t.eff_weight);
    ]
  in
  let total_bytes = List.fold_left (fun a pl -> a + pl.bytes) 0 planes in
  {
    planes;
    total_bytes;
    bytes_per_router = float_of_int total_bytes /. float_of_int (max 1 t.n);
  }

let footprint_json f =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"total_bytes\":%d,\"bytes_per_router\":%.1f,\"planes\":["
    f.total_bytes f.bytes_per_router;
  List.iteri
    (fun i pl ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"plane\":%S,\"words\":%d,\"bytes\":%d}" pl.plane
        pl.words pl.bytes)
    f.planes;
  Buffer.add_string b "]}";
  Buffer.contents b

let check_node t x name =
  if x < 0 || x >= t.n then invalid_arg ("Fib: " ^ name ^ " out of range")

let port_of t ~node ~neighbour =
  check_node t node "node";
  check_node t neighbour "neighbour";
  t.node_port.((node * t.n) + neighbour)

let neighbour_of t ~node ~port =
  check_node t node "node";
  if port < 0 || port >= t.ports then invalid_arg "Fib: port out of range";
  t.port_node.((node * t.ports) + port)

let next_hop t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  let p = t.next_hop_port.((node * t.n) + dst) in
  if p < 0 then None else Some t.port_node.((node * t.ports) + p)

let disc t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.disc.((node * t.n) + dst)

let disc_q t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.disc_q.((node * t.n) + dst)

let distance t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.distance.((node * t.n) + dst)

let out_port_via t col ~node ~other what =
  let p = port_of t ~node ~neighbour:other in
  if p < 0 then
    invalid_arg (Printf.sprintf "Fib: %d is not a neighbour of %d (%s)" other node what);
  t.port_node.((node * t.ports) + col.((node * t.ports) + p))

let cycle_next t ~node ~from_ = out_port_via t t.cycle_col ~node ~other:from_ "cycle_next"

let complement_for_failed t ~node ~failed =
  out_port_via t t.comp_col ~node ~other:failed "complement_for_failed"

let entries t node =
  check_node t node "node";
  List.init t.degree.(node) (fun p ->
      let incoming = t.port_node.((node * t.ports) + p) in
      let cycle_following = cycle_next t ~node ~from_:incoming in
      {
        Cycle_table.incoming;
        cycle_following;
        complementary = cycle_next t ~node ~from_:cycle_following;
      })

let lfa_candidates t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  let i = (node * t.n) + dst in
  List.init (t.lfa_off.(i + 1) - t.lfa_off.(i)) (fun j ->
      t.port_node.((node * t.ports) + t.lfa_ports.(t.lfa_off.(i) + j)))

(* ---- administrative state ---- *)

let link_live t ~u ~v = t.live.(Graph.edge_index t.g u v)

let eff_weight t ~u ~v = t.eff_weight.(Graph.edge_index t.g u v)

let admin_down t =
  List.rev
    (Graph.fold_edges
       (fun i (e : Graph.edge) acc ->
         if t.live.(i) then acc else (e.u, e.v) :: acc)
       t.g [])

(* ---- bitwise image equality (the differential harness's referee) ---- *)

let float_arrays_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if
      not (Int64.equal (Int64.bits_of_float a.(i)) (Int64.bits_of_float b.(i)))
    then ok := false
  done;
  !ok

let equal a b =
  a.n = b.n && a.ports = b.ports && a.kind = b.kind && a.dd_bits = b.dd_bits
  && a.degree = b.degree && a.port_node = b.port_node
  && a.node_port = b.node_port && a.next_hop_port = b.next_hop_port
  && a.disc_q = b.disc_q && a.cycle_col = b.cycle_col
  && a.comp_col = b.comp_col && a.lfa_off = b.lfa_off
  && a.lfa_ports = b.lfa_ports
  && a.sc_width = b.sc_width && a.sc_mask = b.sc_mask
  && a.live = b.live
  && float_arrays_equal a.port_weight b.port_weight
  && float_arrays_equal a.disc b.disc
  && float_arrays_equal a.distance b.distance
  && float_arrays_equal a.eff_weight b.eff_weight

let raw_port_node t = t.port_node
let raw_port_weight t = t.port_weight
let raw_node_port t = t.node_port
let raw_next_hop_port t = t.next_hop_port
let raw_disc t = t.disc
let raw_disc_q t = t.disc_q
let raw_distance t = t.distance
let raw_cycle_col t = t.cycle_col
let raw_comp_col t = t.comp_col
let raw_lfa_off t = t.lfa_off
let raw_lfa_ports t = t.lfa_ports
let raw_sc_mask t = t.sc_mask
let raw_live t = t.live

(* ---- the checkpoint codec ---- *)

module Codec = struct
  let magic = "PRFIB2"

  (* FNV-1a, 64 bit — cheap, dependency-free, and plenty to catch torn or
     bit-flipped checkpoints (this is corruption detection, not crypto). *)
  let fnv1a s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    !h

  let add_ints buf name a =
    Buffer.add_string buf name;
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v))
      a;
    Buffer.add_char buf '\n'

  (* Floats travel as the hex of their IEEE bit pattern, so a decoded
     image is bit-identical to the encoded one — the byte-equality
     recovery invariant depends on it. *)
  let add_floats buf name a =
    Buffer.add_string buf name;
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%Lx" (Int64.bits_of_float v)))
      a;
    Buffer.add_char buf '\n'

  let add_bools buf name a =
    Buffer.add_string buf name;
    Array.iter (fun v -> Buffer.add_string buf (if v then " 1" else " 0")) a;
    Buffer.add_char buf '\n'

  let encode t =
    let buf = Buffer.create 4096 in
    Printf.bprintf buf "%s %d %d %d %s %d %d\n" magic t.n t.ports t.dd_bits
      (Pr_core.Discriminator.to_string t.kind)
      (Graph.m t.g) t.sc_width;
    add_ints buf "degree" t.degree;
    add_ints buf "port_node" t.port_node;
    add_floats buf "port_weight" t.port_weight;
    add_ints buf "node_port" t.node_port;
    add_ints buf "next_hop_port" t.next_hop_port;
    add_floats buf "disc" t.disc;
    add_ints buf "disc_q" t.disc_q;
    add_floats buf "distance" t.distance;
    add_ints buf "cycle_col" t.cycle_col;
    add_ints buf "comp_col" t.comp_col;
    add_ints buf "lfa_off" t.lfa_off;
    add_ints buf "lfa_ports" t.lfa_ports;
    add_ints buf "sc_mask" t.sc_mask;
    add_bools buf "live" t.live;
    add_floats buf "eff_weight" t.eff_weight;
    let payload = Buffer.contents buf in
    payload ^ Printf.sprintf "sum %Lx\n" (fnv1a payload)

  let fail fmt = Printf.ksprintf (fun m -> Error ("Fib.Codec: " ^ m)) fmt

  let parse_row name expect ~default conv = function
    | tag :: vals when String.equal tag name ->
        if List.length vals <> expect then
          fail "row %s has %d entries, want %d" name (List.length vals) expect
        else begin
          let a = Array.make expect default in
          let ok = ref true in
          List.iteri
            (fun i s ->
              match conv s with
              | Some v -> a.(i) <- v
              | None -> ok := false)
            vals;
          if !ok then Ok a else fail "row %s has an unparsable entry" name
        end
    | tag :: _ -> fail "expected row %s, found %s" name tag
    | [] -> fail "expected row %s, found end of image" name

  let int_of s = int_of_string_opt s

  let float_of s =
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Some (Int64.float_of_bits bits)
    | None -> None

  let bool_of = function "1" -> Some true | "0" -> Some false | _ -> None

  let decode ~base s =
    let ( let* ) = Result.bind in
    let lines = String.split_on_char '\n' s in
    let lines =
      match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
    in
    match List.rev lines with
    | sum_line :: payload_rev when String.length sum_line >= 4 ->
        let payload =
          String.concat "\n" (List.rev payload_rev) ^ "\n"
        in
        let* () =
          match String.split_on_char ' ' sum_line with
          | [ "sum"; hex ]
            when Int64.of_string_opt ("0x" ^ hex) = Some (fnv1a payload) ->
              Ok ()
          | [ "sum"; _ ] -> fail "checksum mismatch (image damaged or torn)"
          | _ -> fail "missing checksum line"
        in
        let rows = List.map (String.split_on_char ' ') (List.rev payload_rev) in
        let* header, rows =
          match rows with
          | h :: rest -> Ok (h, rest)
          | [] -> fail "empty image"
        in
        let* n, ports, dd_bits, kind_s, m, sc_width =
          match header with
          | [ mg; n; p; d; k; m; sw ] when String.equal mg magic -> (
              match
                (int_of_string_opt n, int_of_string_opt p, int_of_string_opt d,
                 int_of_string_opt m, int_of_string_opt sw)
              with
              | Some n, Some p, Some d, Some m, Some sw ->
                  Ok (n, p, d, k, m, sw)
              | _ -> fail "unparsable geometry header")
          | mg :: _ when not (String.equal mg magic) ->
              fail "bad magic %S (want %S)" mg magic
          | _ -> fail "unparsable geometry header"
        in
        let* () =
          if
            n = base.n && ports = base.ports && dd_bits = base.dd_bits
            && String.equal kind_s (Pr_core.Discriminator.to_string base.kind)
            && m = Graph.m base.g && sc_width = base.sc_width
          then Ok ()
          else
            fail
              "geometry mismatch: image is %dx%d ports, %d dd_bits, %s, %d \
               links, %d hint bits; base is %dx%d, %d, %s, %d, %d"
              n ports dd_bits kind_s m sc_width base.n base.ports base.dd_bits
              (Pr_core.Discriminator.to_string base.kind)
              (Graph.m base.g) base.sc_width
        in
        let* rows, degree, port_node, port_weight, node_port, next_hop_port =
          match rows with
          | r1 :: r2 :: r3 :: r4 :: r5 :: rest ->
              let* degree = parse_row "degree" n ~default:0 int_of r1 in
              let* port_node = parse_row "port_node" (n * ports) ~default:0 int_of r2 in
              let* port_weight =
                parse_row "port_weight" (n * ports) ~default:0.0 float_of r3
              in
              let* node_port = parse_row "node_port" (n * n) ~default:0 int_of r4 in
              let* next_hop_port =
                parse_row "next_hop_port" (n * n) ~default:0 int_of r5
              in
              Ok (rest, degree, port_node, port_weight, node_port, next_hop_port)
          | _ -> fail "truncated image"
        in
        let* rows, disc, disc_q, distance, cycle_col, comp_col, lfa_off =
          match rows with
          | r1 :: r2 :: r3 :: r4 :: r5 :: r6 :: rest ->
              let* disc = parse_row "disc" (n * n) ~default:0.0 float_of r1 in
              let* disc_q = parse_row "disc_q" (n * n) ~default:0 int_of r2 in
              let* distance = parse_row "distance" (n * n) ~default:0.0 float_of r3 in
              let* cycle_col = parse_row "cycle_col" (n * ports) ~default:0 int_of r4 in
              let* comp_col = parse_row "comp_col" (n * ports) ~default:0 int_of r5 in
              let* lfa_off = parse_row "lfa_off" ((n * n) + 1) ~default:0 int_of r6 in
              Ok (rest, disc, disc_q, distance, cycle_col, comp_col, lfa_off)
          | _ -> fail "truncated image"
        in
        let* lfa_ports, sc_mask, live, eff_weight =
          match rows with
          | r1 :: r2 :: r3 :: r4 :: ([] | [ [ "" ] ]) ->
              let* lfa_ports =
                parse_row "lfa_ports" lfa_off.((n * n)) ~default:0 int_of r1
              in
              let* sc_mask = parse_row "sc_mask" n ~default:0 int_of r2 in
              let* live = parse_row "live" m ~default:true bool_of r3 in
              let* eff_weight = parse_row "eff_weight" m ~default:0.0 float_of r4 in
              Ok (lfa_ports, sc_mask, live, eff_weight)
          | _ -> fail "truncated image"
        in
        Ok
          {
            g = base.g;
            kind = base.kind;
            n;
            ports;
            dd_bits;
            sc_width;
            sc_mask;
            degree;
            port_node;
            port_weight;
            node_port;
            next_hop_port;
            disc;
            disc_q;
            distance;
            cycle_col;
            comp_col;
            lfa_off;
            lfa_ports;
            live;
            eff_weight;
          }
    | _ -> fail "truncated image"
end

(* ---- the delta overlay: incremental recompile ---- *)

module Delta = struct
  type change = Down | Up | Weight of float

  type edit = { u : int; v : int; change : change }

  type error =
    | Not_a_node of { node : int; n : int }
    | Unknown_link of { u : int; v : int }
    | Duplicate_edit of { u : int; v : int }
    | Bad_weight of { u : int; v : int; weight : float }
    | Redundant_edit of { u : int; v : int; what : string }

  let describe_error = function
    | Not_a_node { node; n } ->
        Printf.sprintf "Delta: node %d out of range (topology has 0..%d)" node
          (n - 1)
    | Unknown_link { u; v } ->
        Printf.sprintf "Delta: %d-%d is not a link of the base topology" u v
    | Duplicate_edit { u; v } ->
        Printf.sprintf "Delta: link %d-%d is edited twice in one batch" u v
    | Bad_weight { u; v; weight } ->
        Printf.sprintf
          "Delta: bad weight %g for link %d-%d (must be finite and > 0)"
          weight u v
    | Redundant_edit { u; v; what } ->
        Printf.sprintf "Delta: redundant edit on link %d-%d (%s)" u v what

  type stats = { edits : int; dirty : int; full : bool }

  let describe_stats s =
    Printf.sprintf "%d edit(s): %d dirty destination(s), %s recompile" s.edits
      s.dirty
      (if s.full then "full" else "incremental")

  (* Validate a batch against the base graph and the image's current
     administrative state; returns the canonicalised edits with their
     base edge indices, plus the next admin state. *)
  let validate t edits =
    let g = t.g and n = t.n in
    let live = Array.copy t.live and eff = Array.copy t.eff_weight in
    let seen = Hashtbl.create 16 in
    let rec go acc = function
      | [] -> Ok (List.rev acc, live, eff)
      | { u; v; change } :: rest ->
          if u < 0 || u >= n then Error (Not_a_node { node = u; n })
          else if v < 0 || v >= n then Error (Not_a_node { node = v; n })
          else begin
            let cu = min u v and cv = max u v in
            match Graph.edge_index g u v with
            | exception Not_found -> Error (Unknown_link { u = cu; v = cv })
            | idx ->
                if Hashtbl.mem seen idx then
                  Error (Duplicate_edit { u = cu; v = cv })
                else begin
                  Hashtbl.add seen idx ();
                  match change with
                  | Down ->
                      if not live.(idx) then
                        Error
                          (Redundant_edit
                             { u = cu; v = cv; what = "already down" })
                      else begin
                        live.(idx) <- false;
                        go ((idx, cu, cv, change) :: acc) rest
                      end
                  | Up ->
                      if live.(idx) then
                        Error
                          (Redundant_edit { u = cu; v = cv; what = "already up" })
                      else begin
                        live.(idx) <- true;
                        go ((idx, cu, cv, change) :: acc) rest
                      end
                  | Weight w ->
                      if not (Float.is_finite w) || w <= 0.0 then
                        Error (Bad_weight { u = cu; v = cv; weight = w })
                      else if w = eff.(idx) then
                        Error
                          (Redundant_edit
                             {
                               u = cu;
                               v = cv;
                               what =
                                 Printf.sprintf "weight is already %g" w;
                             })
                      else begin
                        eff.(idx) <- w;
                        go ((idx, cu, cv, change) :: acc) rest
                      end
                end
          end
    in
    go [] edits

  (* Conservative dirty-destination predicate, evaluated against the
     {e current} image's distance table.  A destination is clean only
     when the edit provably leaves both its distance column and its
     tight-edge set unchanged, in which case the canonical SPF tree —
     and every compiled row derived from it — is bit-reusable:

     - removal / weight increase: the edge can only matter if it was
       tight for [dst] ([d(u) = w_old + d(v)] or symmetrically);
     - addition / weight decrease: the edge can only matter if it now
       offers a path at least as good ([w_new + d(v) <= d(u)] or
       symmetrically; ties included, because a new tight predecessor can
       change the canonical parent choice). *)
  let mark_dirty t edits dirty =
    let n = t.n and d = t.distance in
    List.iter
      (fun (idx, u, v, change) ->
        let w_old = t.eff_weight.(idx) in
        let tight dst =
          let du = d.((u * n) + dst) and dv = d.((v * n) + dst) in
          du = w_old +. dv || dv = w_old +. du
        in
        let improves w dst =
          let du = d.((u * n) + dst) and dv = d.((v * n) + dst) in
          w +. dv <= du || w +. du <= dv
        in
        for dst = 0 to n - 1 do
          if not dirty.(dst) then
            let is_dirty =
              match change with
              | Down -> tight dst
              | Up -> improves w_old dst
              | Weight w_new ->
                  t.live.(idx)
                  && (if w_new > w_old then tight dst else improves w_new dst)
            in
            if is_dirty then dirty.(dst) <- true
        done)
      edits

  (* The effective topology: administratively live links at their
     effective weights, over the base node set.  Structure (ports,
     cycle/complementary columns) always stays the base one — an
     admin-down link keeps its port and is masked at forwarding time. *)
  let effective_graph t ~live ~eff =
    Graph.create ~n:t.n
      (List.rev
         (Graph.fold_edges
            (fun i (e : Graph.edge) acc ->
              if live.(i) then (e.u, e.v, eff.(i)) :: acc else acc)
            t.g []))

  (* Recompile exactly the dirty rows against the effective topology,
     byte-copying every clean row from the current image. *)
  let rebuild t ~live ~eff ~dirty ~touched =
    let n = t.n and ports = t.ports and g = t.g in
    let geff = effective_graph t ~live ~eff in
    let port_weight = Array.copy t.port_weight in
    Graph.iter_edges
      (fun i (e : Graph.edge) ->
        let w = eff.(i) in
        port_weight.((e.u * ports) + t.node_port.((e.u * n) + e.v)) <- w;
        port_weight.((e.v * ports) + t.node_port.((e.v * n) + e.u)) <- w)
      g;
    let next_hop_port = Array.copy t.next_hop_port in
    let disc = Array.copy t.disc in
    let disc_q = Array.copy t.disc_q in
    let distance = Array.copy t.distance in
    let quantise v =
      match t.kind with
      | Pr_core.Discriminator.Hops -> int_of_float v
      | Pr_core.Discriminator.Weighted -> int_of_float (Float.ceil v)
    in
    for dst = 0 to n - 1 do
      if dirty.(dst) then begin
        let tree = Dijkstra.tree geff ~root:dst in
        for x = 0 to n - 1 do
          let i = (x * n) + dst in
          (match Dijkstra.next_hop tree x with
          | Some w -> next_hop_port.(i) <- t.node_port.((x * n) + w)
          | None -> next_hop_port.(i) <- -1);
          let v = Pr_core.Discriminator.value t.kind tree x in
          disc.(i) <- v;
          disc_q.(i) <- quantise v;
          distance.(i) <- Dijkstra.distance tree x
        done
      end
    done;
    (* The LFA CSR is re-laid-out whole (offsets shift), but clean rows
       — destinations with unchanged columns at nodes whose incident
       links were not edited — are copied byte-for-byte. *)
    let lfa_off = Array.make ((n * n) + 1) 0 in
    let cand = ref [] (* reversed port list *) in
    let total = ref 0 in
    let push p =
      cand := p :: !cand;
      incr total
    in
    for x = 0 to n - 1 do
      let row_dirty = touched.(x) in
      for dst = 0 to n - 1 do
        let i = (x * n) + dst in
        lfa_off.(i) <- !total;
        if row_dirty || dirty.(dst) then begin
          let p = next_hop_port.(i) in
          if p >= 0 then
            let primary = t.port_node.((x * ports) + p) in
            List.iter push
              (lfa_row ~neighbours:(Graph.neighbours g x)
                 ~node_port:t.node_port ~n ~x ~dst ~primary ~dist:distance
                 ~cost_of:(fun w -> eff.(Graph.edge_index g x w))
                 ~live_of:(fun w -> live.(Graph.edge_index g x w)))
        end
        else
          for j = t.lfa_off.(i) to t.lfa_off.(i + 1) - 1 do
            push t.lfa_ports.(j)
          done
      done
    done;
    lfa_off.(n * n) <- !total;
    {
      t with
      port_weight;
      next_hop_port;
      disc;
      disc_q;
      distance;
      lfa_off;
      lfa_ports = Array.of_list (List.rev !cand);
      live;
      eff_weight = eff;
    }

  let apply ?(threshold = 0.5) t edits =
    Pr_telemetry.Span.timed "fib.delta.apply" @@ fun () ->
    match validate t edits with
    | Error e -> Error e
    | Ok (edits, live, eff) ->
        let n = t.n in
        let dirty = Array.make n false in
        mark_dirty t edits dirty;
        let count = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dirty in
        let full = float_of_int count > threshold *. float_of_int n in
        if full then Array.fill dirty 0 n true;
        let touched = Array.make n false in
        if full then Array.fill touched 0 n true
        else
          List.iter
            (fun (_, u, v, _) ->
              touched.(u) <- true;
              touched.(v) <- true)
            edits;
        Ok
          ( rebuild t ~live ~eff ~dirty ~touched,
            { edits = List.length edits; dirty = count; full } )

  let apply_exn ?threshold t edits =
    match apply ?threshold t edits with
    | Ok r -> r
    | Error e -> invalid_arg (describe_error e)

  let recompile t =
    Pr_telemetry.Span.timed "fib.recompile" @@ fun () ->
    let n = t.n in
    rebuild t ~live:(Array.copy t.live) ~eff:(Array.copy t.eff_weight)
      ~dirty:(Array.make n true) ~touched:(Array.make n true)
end
