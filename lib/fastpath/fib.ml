module Graph = Pr_graph.Graph
module Routing = Pr_core.Routing
module Cycle_table = Pr_core.Cycle_table

type t = {
  g : Graph.t;
  kind : Pr_core.Discriminator.kind;
  n : int;
  ports : int;
  degree : int array;        (* [n] *)
  port_node : int array;     (* [n*ports] *)
  port_weight : float array; (* [n*ports] *)
  node_port : int array;     (* [n*n] *)
  next_hop_port : int array; (* [n*n] *)
  disc : float array;        (* [n*n] *)
  disc_q : int array;        (* [n*n] *)
  distance : float array;    (* [n*n] *)
  cycle_col : int array;     (* [n*ports] *)
  comp_col : int array;      (* [n*ports] *)
  lfa_off : int array;       (* [n*n + 1] *)
  lfa_ports : int array;
  dd_bits : int;
}

type error =
  | Port_overflow of { node : int; degree : int; ports : int }
  | Graph_mismatch

let describe_error = function
  | Port_overflow { node; degree; ports } ->
      Printf.sprintf
        "Fib: node %d has degree %d, exceeding the image's port width %d" node
        degree ports
  | Graph_mismatch ->
      "Fib: routing and cycle tables are built over different graphs"

let of_tables ?ports routing cycles =
  let g = Routing.graph routing in
  if not (Graph.equal_structure g (Cycle_table.graph cycles)) then
    Error Graph_mismatch
  else begin
    let n = Graph.n g in
    let width = match ports with Some p -> p | None -> Graph.max_degree g in
    let overflow = ref None in
    for x = n - 1 downto 0 do
      let d = Graph.degree g x in
      if d > width then overflow := Some (Port_overflow { node = x; degree = d; ports = width })
    done;
    match !overflow with
    | Some e -> Error e
    | None ->
        let degree = Array.init n (Graph.degree g) in
        let port_node = Array.make (n * width) (-1) in
        let port_weight = Array.make (n * width) 0.0 in
        let node_port = Array.make (n * n) (-1) in
        for x = 0 to n - 1 do
          Array.iteri
            (fun p w ->
              port_node.((x * width) + p) <- w;
              port_weight.((x * width) + p) <- Graph.weight g x w;
              node_port.((x * n) + w) <- p)
            (Graph.neighbours g x)
        done;
        let next_hop_port = Array.make (n * n) (-1) in
        let disc = Array.make (n * n) infinity in
        let disc_q = Array.make (n * n) 0 in
        let distance = Array.make (n * n) infinity in
        for dst = 0 to n - 1 do
          for x = 0 to n - 1 do
            let i = (x * n) + dst in
            (match Routing.next_hop routing ~node:x ~dst with
            | Some w -> next_hop_port.(i) <- node_port.((x * n) + w)
            | None -> ());
            let v = Routing.disc routing ~node:x ~dst in
            disc.(i) <- v;
            disc_q.(i) <- Routing.quantise_dd routing v;
            distance.(i) <- Routing.distance routing ~node:x ~dst
          done
        done;
        let cycle_col = Array.make (n * width) (-1) in
        let comp_col = Array.make (n * width) (-1) in
        for x = 0 to n - 1 do
          Array.iteri
            (fun p w ->
              let next = Cycle_table.cycle_next cycles ~node:x ~from_:w in
              let next_port = node_port.((x * n) + next) in
              cycle_col.((x * width) + p) <- next_port;
              (* The complementary cycle of a failed interface starts at the
                 rotation successor of the failed port — same successor
                 function, indexed by the failed port rather than the
                 incoming one. *)
              comp_col.((x * width) + p) <- next_port)
            (Graph.neighbours g x)
        done;
        (* LFA candidates per (node, dst): RFC 5286 basic inequality,
           primary excluded, ordered by cost + remaining distance with ties
           to the smaller neighbour id — so "first believed-up candidate"
           in the kernel reproduces the fold in Forward.decide exactly. *)
        let lfa_off = Array.make ((n * n) + 1) 0 in
        let cand = ref [] (* reversed (slot, port) list *) in
        let total = ref 0 in
        for x = 0 to n - 1 do
          for dst = 0 to n - 1 do
            let i = (x * n) + dst in
            lfa_off.(i) <- !total;
            match Routing.next_hop routing ~node:x ~dst with
            | None -> ()
            | Some primary ->
                let dist_x = distance.(i) in
                let here =
                  Array.to_list (Graph.neighbours g x)
                  |> List.filter_map (fun w ->
                         let cost = Graph.weight g x w in
                         let dist_w = distance.((w * n) + dst) in
                         if w <> primary && dist_w < cost +. dist_x then
                           Some (cost +. dist_w, w)
                         else None)
                  |> List.sort compare
                in
                List.iter
                  (fun (_, w) ->
                    cand := node_port.((x * n) + w) :: !cand;
                    incr total)
                  here
          done
        done;
        lfa_off.(n * n) <- !total;
        let lfa_ports = Array.of_list (List.rev !cand) in
        Ok
          {
            g;
            kind = Routing.kind routing;
            n;
            ports = width;
            degree;
            port_node;
            port_weight;
            node_port;
            next_hop_port;
            disc;
            disc_q;
            distance;
            cycle_col;
            comp_col;
            lfa_off;
            lfa_ports;
            dd_bits = Routing.dd_bits routing;
          }
  end

let of_tables_exn ?ports routing cycles =
  match of_tables ?ports routing cycles with
  | Ok t -> t
  | Error e -> invalid_arg (describe_error e)

let graph t = t.g

let n t = t.n

let ports t = t.ports

let degree t x = t.degree.(x)

let dd_bits t = t.dd_bits

let quantise_dd t v =
  match t.kind with
  | Pr_core.Discriminator.Hops -> int_of_float v
  | Pr_core.Discriminator.Weighted -> int_of_float (Float.ceil v)

let memory_words t =
  Array.length t.degree + Array.length t.port_node
  + Array.length t.port_weight + Array.length t.node_port
  + Array.length t.next_hop_port + Array.length t.disc
  + Array.length t.disc_q + Array.length t.distance
  + Array.length t.cycle_col + Array.length t.comp_col
  + Array.length t.lfa_off + Array.length t.lfa_ports

let check_node t x name =
  if x < 0 || x >= t.n then invalid_arg ("Fib: " ^ name ^ " out of range")

let port_of t ~node ~neighbour =
  check_node t node "node";
  check_node t neighbour "neighbour";
  t.node_port.((node * t.n) + neighbour)

let neighbour_of t ~node ~port =
  check_node t node "node";
  if port < 0 || port >= t.ports then invalid_arg "Fib: port out of range";
  t.port_node.((node * t.ports) + port)

let next_hop t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  let p = t.next_hop_port.((node * t.n) + dst) in
  if p < 0 then None else Some t.port_node.((node * t.ports) + p)

let disc t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.disc.((node * t.n) + dst)

let disc_q t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.disc_q.((node * t.n) + dst)

let distance t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  t.distance.((node * t.n) + dst)

let out_port_via t col ~node ~other what =
  let p = port_of t ~node ~neighbour:other in
  if p < 0 then
    invalid_arg (Printf.sprintf "Fib: %d is not a neighbour of %d (%s)" other node what);
  t.port_node.((node * t.ports) + col.((node * t.ports) + p))

let cycle_next t ~node ~from_ = out_port_via t t.cycle_col ~node ~other:from_ "cycle_next"

let complement_for_failed t ~node ~failed =
  out_port_via t t.comp_col ~node ~other:failed "complement_for_failed"

let entries t node =
  check_node t node "node";
  List.init t.degree.(node) (fun p ->
      let incoming = t.port_node.((node * t.ports) + p) in
      let cycle_following = cycle_next t ~node ~from_:incoming in
      {
        Cycle_table.incoming;
        cycle_following;
        complementary = cycle_next t ~node ~from_:cycle_following;
      })

let lfa_candidates t ~node ~dst =
  check_node t node "node";
  check_node t dst "dst";
  let i = (node * t.n) + dst in
  List.init (t.lfa_off.(i + 1) - t.lfa_off.(i)) (fun j ->
      t.port_node.((node * t.ports) + t.lfa_ports.(t.lfa_off.(i) + j)))

let raw_port_node t = t.port_node
let raw_port_weight t = t.port_weight
let raw_node_port t = t.node_port
let raw_next_hop_port t = t.next_hop_port
let raw_disc t = t.disc
let raw_disc_q t = t.disc_q
let raw_distance t = t.distance
let raw_cycle_col t = t.cycle_col
let raw_comp_col t = t.comp_col
let raw_lfa_off t = t.lfa_off
let raw_lfa_ports t = t.lfa_ports
