(** Compiled FIB images: the data plane's tables as flat arrays.

    {!Pr_core.Routing} and {!Pr_core.Cycle_table} are built for clarity —
    destination-rooted SPF trees behind hashtable-backed rotation lookups.
    A {e FIB image} flattens everything one forwarding decision reads into
    contiguous [int]/[float] arrays indexed by [node * width + port] (or
    [node * n + dst]), so the batch kernel ({!Kernel}) runs the full
    {!Pr_core.Forward.decide} ladder with array reads only — no hashing,
    no allocation, no pointer chasing.

    {b Port numbering.}  The ports of node [x] are the indices into
    [Graph.neighbours g x] — neighbour ids in increasing order, so port
    assignment is deterministic and identical to the iteration order of
    the reference implementation.  Every per-port array row is padded to
    the image's {!ports} width with [-1] sentinels; [-1] likewise encodes
    "no entry" ([no next hop], [unreachable]).

    An image is immutable once built and safe to share across domains.

    {b The image lifecycle.}  [of_tables] compiles the {e base image}
    from the failure-free tables.  Control-plane edits (administrative
    link up/down, weight changes) go through {!Delta}, which recompiles
    only the affected rows and returns a {e new} image sharing every
    untouched array row byte-for-byte with its parent — the base
    structure (port numbering, cycle/complementary columns, DD bit
    budget) never changes, so any two images in one lineage are
    interchangeable under a running {!Kernel} via [Kernel.rebind].
    Epoch-ordered publication of successive images is {!Swap}'s job. *)

type t

type mismatch =
  | Node_count of { routing : int; cycles : int }
      (** the two graphs have different node counts *)
  | Edge of { u : int; v : int }
      (** first link (canonical orientation) the two graphs disagree on:
          present in only one of them, or present with different
          weights *)

type error =
  | Port_overflow of { node : int; degree : int; ports : int }
      (** a node's degree exceeds the image's port width *)
  | Graph_mismatch of mismatch
      (** routing and cycle tables were built over different graphs; the
          payload names the first offending node count or link *)

val describe_error : error -> string

val of_tables :
  ?ports:int -> Pr_core.Routing.t -> Pr_core.Cycle_table.t -> (t, error) result
(** Compile an image from the reference tables.  [ports] is the port
    width (default: the graph's maximum degree); a node with more
    neighbours than [ports] is a typed {!Port_overflow} error, never an
    assertion.  The tables must be built over the same graph. *)

val of_tables_exn :
  ?ports:int -> Pr_core.Routing.t -> Pr_core.Cycle_table.t -> t
(** [Invalid_argument] with {!describe_error} on error. *)

(** {2 Image geometry} *)

val graph : t -> Pr_graph.Graph.t

val n : t -> int

val ports : t -> int
(** Port width: every node's per-port rows span this many slots. *)

val degree : t -> int -> int

val dd_bits : t -> int
(** The topology's DD bit budget, copied from {!Pr_core.Routing.dd_bits}. *)

val default_sc_width : int
(** Hint-bit budget the shortcut plane is compiled under (16). *)

val sc_width : t -> int
(** Effective width of the compiled shortcut plane: the node count for
    exact plans ([n <= default_sc_width]), {!default_sc_width} for Bloom
    plans — i.e. [(Pr_core.Seen.plan ~nodes:n
    ~width:default_sc_width).width]. *)

val quantise_dd : t -> float -> int
(** Same rounding as {!Pr_core.Routing.quantise_dd} (by discriminator
    kind). *)

val memory_words : t -> int
(** Total words across all arrays — the §6-style footprint of the image. *)

type plane = {
  plane : string;  (** field name, e.g. ["node_port"] *)
  words : int;     (** payload cells (all planes are one-word cells) *)
  bytes : int;     (** [words * Sys.word_size / 8] *)
}

type footprint = {
  planes : plane list;  (** one entry per table plane, layout order *)
  total_bytes : int;    (** = [memory_words * Sys.word_size / 8] *)
  bytes_per_router : float;  (** [total_bytes / n] — the paper's
                                 bounded-state-per-router claim, priced *)
}

val footprint : t -> footprint
(** Exact payload bytes per table plane of a compiled image.  Array
    headers (one word per plane) are excluded, so [total_bytes] is
    consistent with {!memory_words}; the shortcut-hint plane appears as
    [sc_mask] (one word per node at {!sc_width} effective bits). *)

val footprint_json : footprint -> string
(** One-line JSON object: [total_bytes], [bytes_per_router], [planes]. *)

val last_compile_costs : unit -> (int * int64) list
(** Sampled per-destination compile costs — (dst, wall ns) for the
    routing-plane column of every k-th destination — from the most
    recent {!of_tables} run under an installed {!Pr_telemetry.Span}
    recorder on this domain, in destination order.  Empty if the last
    compile was uninstrumented (the clocks are span-gated so plain
    compiles pay nothing).  Feeds the [prcli report --compile]
    hotspot table. *)

(** {2 Administrative state}

    Each image carries the administrative link state its rows were
    compiled against: per base edge, whether the link is
    administratively live and its effective weight.  The base image is
    all-live at base weights; {!Delta} edits produce images with other
    states.  An administratively down link keeps its port (structure is
    a deployment constant) and is masked by the kernel's admin plane at
    forwarding time. *)

val link_live : t -> u:int -> v:int -> bool
(** Raises [Not_found] if [u]-[v] is not a base link. *)

val eff_weight : t -> u:int -> v:int -> float
(** Effective weight the image was compiled with.  Raises [Not_found] if
    [u]-[v] is not a base link. *)

val admin_down : t -> (int * int) list
(** Administratively down links, canonical orientation, in base edge
    order. *)

val equal : t -> t -> bool
(** Bitwise equality of every compiled array (floats compared by their
    IEEE bit patterns), the geometry and the administrative state — the
    referee the differential harness uses to pin incremental recompiles
    byte-equal to full ones. *)

(** {2 Decompilation}

    The image can be read back entry-by-entry; the property tests
    round-trip every {!Pr_core.Routing} / {!Pr_core.Cycle_table} /
    {!Pr_core.Discriminator} entry through these. *)

val port_of : t -> node:int -> neighbour:int -> int
(** Port index of a neighbour at [node]; [-1] if not adjacent. *)

val neighbour_of : t -> node:int -> port:int -> int
(** Node id behind a port; [-1] for a padded slot. *)

val next_hop : t -> node:int -> dst:int -> int option
(** Next-hop node id, as {!Pr_core.Routing.next_hop}. *)

val disc : t -> node:int -> dst:int -> float
(** Raw discriminator value, as {!Pr_core.Routing.disc}. *)

val disc_q : t -> node:int -> dst:int -> int
(** Quantised discriminator, as [Routing.quantise_dd (Routing.disc ...)]. *)

val distance : t -> node:int -> dst:int -> float
(** Shortest-path cost, as {!Pr_core.Routing.distance}. *)

val cycle_next : t -> node:int -> from_:int -> int
(** Cycle-following column by node ids, as
    {!Pr_core.Cycle_table.cycle_next}.  Raises [Invalid_argument] if
    [from_] is not a neighbour. *)

val complement_for_failed : t -> node:int -> failed:int -> int
(** Complementary-cycle column by node ids, as
    {!Pr_core.Cycle_table.complement_for_failed}. *)

val entries : t -> int -> Pr_core.Cycle_table.entry list
(** Decompiled cycle-table rows of a node, shaped like
    {!Pr_core.Cycle_table.entries} but ordered by incoming neighbour id
    (port order) rather than rotation order. *)

val lfa_candidates : t -> node:int -> dst:int -> int list
(** The precomputed loop-free-alternate ports for [(node, dst)], decoded
    to neighbour ids, best first: RFC 5286 basic-inequality neighbours
    (primary excluded) ordered by [cost + distance] with ties to the
    smaller id — the order in which the kernel's LFA rung probes them. *)

(** {2 Raw layout (read-only)}

    Exposed for the kernel and for tests that pin the array shapes; see
    DESIGN.md "Compiled FIB images" for the layout contract.  Callers
    must not mutate. *)

val raw_port_node : t -> int array
(** [n*ports]: port -> node id, [-1] pad *)

val raw_port_weight : t -> float array
(** [n*ports]: port -> link weight *)

val raw_node_port : t -> int array
(** [n*n]: neighbour id -> port, [-1] *)

val raw_next_hop_port : t -> int array
(** [n*n]: (node,dst) -> port, [-1] *)

val raw_disc : t -> float array
(** [n*n]: raw discriminator *)

val raw_disc_q : t -> int array
(** [n*n]: quantised discriminator *)

val raw_distance : t -> float array
(** [n*n]: SPF distance *)

val raw_cycle_col : t -> int array
(** [n*ports]: in-port -> cycle-following out-port *)

val raw_comp_col : t -> int array
(** [n*ports]: in-port -> complementary out-port *)

val raw_lfa_off : t -> int array
(** [n*n+1]: candidate-range offsets *)

val raw_lfa_ports : t -> int array
(** concatenated LFA candidate ports *)

val raw_sc_mask : t -> int array
(** [n]: each node's seen-hint contribution under the image's shortcut
    plane ({!Pr_core.Seen.mask_of} of the compiled plan) *)

val raw_live : t -> bool array
(** [m]: administrative liveness by base edge index *)

(** {2 The checkpoint codec}

    A self-checking textual serialisation of a full image — the
    {!Journal}'s checkpoint payload and the chaos campaign's deep-copy
    mechanism (a decoded image shares {e no} array with any other, unlike
    {!Delta.recompile}'s structural sharing, so its cells can be damaged
    in place without touching the original). *)

module Codec : sig
  val encode : t -> string
  (** Every array of the image, geometry header first, floats as the hex
      of their IEEE bit patterns (so decoding is bit-exact), ending in an
      FNV-1a checksum line.  [decode ~base (encode t)] satisfies
      [equal t] for any image of [base]'s lineage. *)

  val decode : base:t -> string -> (t, string) result
  (** Rebuild an image from {!encode} output.  [base] supplies the graph
      and geometry the blob must match (an image only makes sense over
      its base topology); every array is freshly allocated from the blob.
      [Error] with a one-line message on bad magic, geometry mismatch,
      checksum failure, or a truncated / unparsable row — never an
      exception. *)
end

(** {2 The delta overlay: incremental recompile}

    A batch of administrative edits against an image's current state
    yields the next image of the lineage.  Only the rows an edit can
    affect are recompiled; every other row is byte-copied from the
    parent.  Cleanliness is decided by a conservative predicate on the
    parent's distance table: an edit leaves a destination's column (and
    its canonical SPF tree, and hence all derived rows) untouched when
    the edited link was not tight for that destination (removal /
    increase) or offers no path at least as good (addition / decrease,
    ties included — a new tight predecessor can change the canonical
    parent).  When the dirty set exceeds [threshold] (a fraction of the
    node count, default 0.5) the apply falls back to a full recompile of
    the same effective topology — same bytes, different cost.

    The DD bit budget ([dd_bits]) is a header-format deployment
    constant: it stays the base image's whatever the edits do, exactly
    as deployed PR routers cannot renegotiate header width on a link
    flap. *)

module Delta : sig
  type change =
    | Down       (** administratively remove the link from SPF and LFA *)
    | Up         (** restore it at its current effective weight *)
    | Weight of float  (** set the effective weight *)

  type edit = { u : int; v : int; change : change }

  type error =
    | Not_a_node of { node : int; n : int }
    | Unknown_link of { u : int; v : int }
        (** not a link of the base topology (canonical orientation) *)
    | Duplicate_edit of { u : int; v : int }
        (** one batch edits the same link twice *)
    | Bad_weight of { u : int; v : int; weight : float }
        (** non-finite or non-positive weight *)
    | Redundant_edit of { u : int; v : int; what : string }
        (** the edit would not change the administrative state (down on a
            down link, up on a live one, a weight it already has) *)

  val describe_error : error -> string

  type stats = {
    edits : int;   (** batch size *)
    dirty : int;   (** destinations the predicate marked dirty *)
    full : bool;   (** whether the threshold forced a full recompile *)
  }

  val describe_stats : stats -> string

  val apply : ?threshold:float -> t -> edit list -> (t * stats, error) result
  (** Apply one batch atomically: validation errors leave no trace, and
      the returned image is the batch's effective topology fully
      compiled.  The parent image is never mutated. *)

  val apply_exn : ?threshold:float -> t -> edit list -> t * stats
  (** [Invalid_argument] with {!describe_error} on error. *)

  val recompile : t -> t
  (** Full recompile of the image's current effective topology — every
      row recomputed, none copied.  [recompile t] is byte-equal to [t]
      whenever the incremental path is sound; the differential suite
      pins exactly this. *)
end
