(** Compiled FIB images: the data plane's tables as flat arrays.

    {!Pr_core.Routing} and {!Pr_core.Cycle_table} are built for clarity —
    destination-rooted SPF trees behind hashtable-backed rotation lookups.
    A {e FIB image} flattens everything one forwarding decision reads into
    contiguous [int]/[float] arrays indexed by [node * width + port] (or
    [node * n + dst]), so the batch kernel ({!Kernel}) runs the full
    {!Pr_core.Forward.decide} ladder with array reads only — no hashing,
    no allocation, no pointer chasing.

    {b Port numbering.}  The ports of node [x] are the indices into
    [Graph.neighbours g x] — neighbour ids in increasing order, so port
    assignment is deterministic and identical to the iteration order of
    the reference implementation.  Every per-port array row is padded to
    the image's {!ports} width with [-1] sentinels; [-1] likewise encodes
    "no entry" ([no next hop], [unreachable]).

    An image is immutable once built and safe to share across domains. *)

type t

type error =
  | Port_overflow of { node : int; degree : int; ports : int }
      (** a node's degree exceeds the image's port width *)
  | Graph_mismatch
      (** routing and cycle tables were built over different graphs *)

val describe_error : error -> string

val of_tables :
  ?ports:int -> Pr_core.Routing.t -> Pr_core.Cycle_table.t -> (t, error) result
(** Compile an image from the reference tables.  [ports] is the port
    width (default: the graph's maximum degree); a node with more
    neighbours than [ports] is a typed {!Port_overflow} error, never an
    assertion.  The tables must be built over the same graph. *)

val of_tables_exn :
  ?ports:int -> Pr_core.Routing.t -> Pr_core.Cycle_table.t -> t
(** [Invalid_argument] with {!describe_error} on error. *)

(** {2 Image geometry} *)

val graph : t -> Pr_graph.Graph.t

val n : t -> int

val ports : t -> int
(** Port width: every node's per-port rows span this many slots. *)

val degree : t -> int -> int

val dd_bits : t -> int
(** The topology's DD bit budget, copied from {!Pr_core.Routing.dd_bits}. *)

val quantise_dd : t -> float -> int
(** Same rounding as {!Pr_core.Routing.quantise_dd} (by discriminator
    kind). *)

val memory_words : t -> int
(** Total words across all arrays — the §6-style footprint of the image. *)

(** {2 Decompilation}

    The image can be read back entry-by-entry; the property tests
    round-trip every {!Pr_core.Routing} / {!Pr_core.Cycle_table} /
    {!Pr_core.Discriminator} entry through these. *)

val port_of : t -> node:int -> neighbour:int -> int
(** Port index of a neighbour at [node]; [-1] if not adjacent. *)

val neighbour_of : t -> node:int -> port:int -> int
(** Node id behind a port; [-1] for a padded slot. *)

val next_hop : t -> node:int -> dst:int -> int option
(** Next-hop node id, as {!Pr_core.Routing.next_hop}. *)

val disc : t -> node:int -> dst:int -> float
(** Raw discriminator value, as {!Pr_core.Routing.disc}. *)

val disc_q : t -> node:int -> dst:int -> int
(** Quantised discriminator, as [Routing.quantise_dd (Routing.disc ...)]. *)

val distance : t -> node:int -> dst:int -> float
(** Shortest-path cost, as {!Pr_core.Routing.distance}. *)

val cycle_next : t -> node:int -> from_:int -> int
(** Cycle-following column by node ids, as
    {!Pr_core.Cycle_table.cycle_next}.  Raises [Invalid_argument] if
    [from_] is not a neighbour. *)

val complement_for_failed : t -> node:int -> failed:int -> int
(** Complementary-cycle column by node ids, as
    {!Pr_core.Cycle_table.complement_for_failed}. *)

val entries : t -> int -> Pr_core.Cycle_table.entry list
(** Decompiled cycle-table rows of a node, shaped like
    {!Pr_core.Cycle_table.entries} but ordered by incoming neighbour id
    (port order) rather than rotation order. *)

val lfa_candidates : t -> node:int -> dst:int -> int list
(** The precomputed loop-free-alternate ports for [(node, dst)], decoded
    to neighbour ids, best first: RFC 5286 basic-inequality neighbours
    (primary excluded) ordered by [cost + distance] with ties to the
    smaller id — the order in which the kernel's LFA rung probes them. *)

(** {2 Raw layout (read-only)}

    Exposed for the kernel and for tests that pin the array shapes; see
    DESIGN.md "Compiled FIB images" for the layout contract.  Callers
    must not mutate. *)

val raw_port_node : t -> int array
(** [n*ports]: port -> node id, [-1] pad *)

val raw_port_weight : t -> float array
(** [n*ports]: port -> link weight *)

val raw_node_port : t -> int array
(** [n*n]: neighbour id -> port, [-1] *)

val raw_next_hop_port : t -> int array
(** [n*n]: (node,dst) -> port, [-1] *)

val raw_disc : t -> float array
(** [n*n]: raw discriminator *)

val raw_disc_q : t -> int array
(** [n*n]: quantised discriminator *)

val raw_distance : t -> float array
(** [n*n]: SPF distance *)

val raw_cycle_col : t -> int array
(** [n*ports]: in-port -> cycle-following out-port *)

val raw_comp_col : t -> int array
(** [n*ports]: in-port -> complementary out-port *)

val raw_lfa_off : t -> int array
(** [n*n+1]: candidate-range offsets *)

val raw_lfa_ports : t -> int array
(** concatenated LFA candidate ports *)
