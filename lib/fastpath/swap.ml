(* Epoch-ordered publication of FIB images.

   The store is a grow-only array of entries indexed by epoch.  Readers
   pin the entry they forward on; a superseded entry is retired — its
   grace period ends — when its last pin drops.  All state transitions
   happen under one mutex: publication and pin churn are control-plane
   rate (per edit batch / per scenario item), never per packet, so a
   lock here costs nothing on the forwarding path while keeping the
   accounting exact under Domain-parallel readers. *)

type entry = {
  epoch : int;
  fib : Fib.t;
  mutable pins : int;
  mutable retired : bool;
}

type t = {
  mutex : Mutex.t;
  mutable entries : entry array;
  mutable len : int;
  mutable retired_count : int;
}

type stats = {
  current_epoch : int;
  published : int;
  live_pins : int;
  retired : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let create fib =
  {
    mutex = Mutex.create ();
    entries = [| { epoch = 0; fib; pins = 0; retired = false } |];
    len = 1;
    retired_count = 0;
  }

let[@inline] current_entry t = t.entries.(t.len - 1)

(* An entry leaves its grace period when it is superseded and unpinned.
   Callers hold the lock. *)
let maybe_retire t (e : entry) =
  if (not e.retired) && e.pins = 0 && e.epoch < (current_entry t).epoch then begin
    e.retired <- true;
    t.retired_count <- t.retired_count + 1
  end

let publish t fib =
  Pr_telemetry.Span.timed "swap.publish" @@ fun () ->
  with_lock t (fun () ->
      let cur = current_entry t in
      if Fib.n fib <> Fib.n cur.fib || Fib.ports fib <> Fib.ports cur.fib
         || Fib.dd_bits fib <> Fib.dd_bits cur.fib
      then
        invalid_arg
          "Swap.publish: image geometry differs from the published lineage";
      let epoch = t.len in
      let e = { epoch; fib; pins = 0; retired = false } in
      if t.len = Array.length t.entries then begin
        let grown = Array.make (2 * t.len) e in
        Array.blit t.entries 0 grown 0 t.len;
        t.entries <- grown
      end;
      t.entries.(t.len) <- e;
      t.len <- t.len + 1;
      (* The superseded image may already be idle. *)
      maybe_retire t cur;
      epoch)

let epoch t = with_lock t (fun () -> (current_entry t).epoch)

let current t = with_lock t (fun () -> (current_entry t).fib)

let pin t =
  with_lock t (fun () ->
      let e = current_entry t in
      e.pins <- e.pins + 1;
      (e.epoch, e.fib))

let pin_at t ~epoch =
  with_lock t (fun () ->
      if epoch < 0 || epoch >= t.len then
        invalid_arg "Swap.pin_at: epoch never published";
      let e = t.entries.(epoch) in
      if e.retired then invalid_arg "Swap.pin_at: epoch already retired";
      e.pins <- e.pins + 1;
      e.fib)

let unpin t ~epoch =
  with_lock t (fun () ->
      if epoch < 0 || epoch >= t.len then
        invalid_arg "Swap.unpin: epoch never published";
      let e = t.entries.(epoch) in
      if e.pins <= 0 then invalid_arg "Swap.unpin: epoch not pinned";
      e.pins <- e.pins - 1;
      maybe_retire t e)

let stats t =
  with_lock t (fun () ->
      let live_pins = ref 0 in
      for i = 0 to t.len - 1 do
        live_pins := !live_pins + t.entries.(i).pins
      done;
      {
        current_epoch = (current_entry t).epoch;
        published = t.len;
        live_pins = !live_pins;
        retired = t.retired_count;
      })

let quiescent t =
  let s = stats t in
  s.live_pins = 0 && s.retired = s.published - 1
