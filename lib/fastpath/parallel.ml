module Graph = Pr_graph.Graph
module Failure = Pr_core.Failure
module Rng = Pr_util.Rng
module Probe = Pr_telemetry.Probe

type item = { failures : Failure.t; pairs : (int * int) array }

type config = {
  termination : Pr_core.Forward.termination;
  quantise : bool;
  dd_bits : int option;
  budget_guard : int;
  ttl : int option;
  shortcut : int option;
}

let default_config =
  {
    termination = Pr_core.Forward.Distance_discriminator;
    quantise = false;
    dd_bits = None;
    budget_guard = 0;
    ttl = None;
    shortcut = None;
  }

let ladder_config ~dd_bits ~budget_guard =
  { default_config with dd_bits = Some dd_bits; budget_guard }

let all_pairs_single_failures fib =
  let g = Fib.graph fib in
  let n = Graph.n g in
  let pairs = Array.make (n * (n - 1)) (0, 0) in
  let k = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        pairs.(!k) <- (src, dst);
        incr k
      end
    done
  done;
  Array.init (Graph.m g) (fun i ->
      let e = Graph.edge g i in
      { failures = Failure.of_list g [ (e.u, e.v) ]; pairs })

(* Surviving-graph component labels, one BFS per scenario, so
   disconnected pairs are accounted without walking (and without a
   per-pair connectivity probe). *)
let component_labels failures =
  let g = Failure.graph failures in
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if label.(root) < 0 then begin
      label.(root) <- root;
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let x = Stack.pop stack in
        Array.iter
          (fun w ->
            if label.(w) < 0 && Failure.link_up failures x w then begin
              label.(w) <- root;
              Stack.push w stack
            end)
          (Graph.neighbours g x)
      done
    end
  done;
  label

let run_item kernel config prepare rng slot probe linkload item =
  Kernel.set_failures kernel item.failures;
  Kernel.set_probe kernel probe;
  Kernel.set_linkload kernel linkload;
  Kernel.set_shortcut kernel config.shortcut;
  (match prepare with None -> () | Some f -> f kernel ~rng item);
  let label = component_labels item.failures in
  Array.iter
    (fun (src, dst) ->
      if label.(src) <> label.(dst) then begin
        Kernel.record_unreachable slot;
        match probe with None -> () | Some p -> Probe.record_unreachable p
      end
      else
        Kernel.forward_into ~termination:config.termination
          ~quantise:config.quantise ?dd_bits:config.dd_bits
          ~budget_guard:config.budget_guard ?ttl:config.ttl kernel slot ~src
          ~dst)
    item.pairs

let run_items ~domains ~config ~prepare ~seed ~probes ~linkloads fib items =
  if domains < 1 then invalid_arg "Parallel.run: domains must be >= 1";
  Pr_telemetry.Span.timed "parallel.batch" @@ fun () ->
  let n_items = Array.length items in
  let master = Rng.create ~seed in
  let streams = Array.init n_items (fun _ -> Rng.split master) in
  let slots = Array.init n_items (fun _ -> Kernel.fresh_counters ()) in
  let work d =
    let kernel = Kernel.create fib in
    let i = ref d in
    while !i < n_items do
      let probe =
        match probes with None -> None | Some ps -> Some ps.(!i)
      in
      let linkload =
        (* Per-domain, not per-item: integer link counters sum the same
           under any partition, so one table per worker is enough. *)
        match linkloads with None -> None | Some ls -> Some ls.(d)
      in
      run_item kernel config prepare streams.(!i) slots.(!i) probe linkload
        items.(!i);
      i := !i + domains
    done
  in
  if domains = 1 then work 0
  else begin
    let spawned =
      Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> work (d + 1)))
    in
    work 0;
    Array.iter Domain.join spawned
  end;
  let total = Kernel.fresh_counters () in
  Array.iter (fun c -> Kernel.add_counters ~into:total c) slots;
  total

let run ?(domains = 1) ?(config = default_config) ?prepare ~seed fib items =
  run_items ~domains ~config ~prepare ~seed ~probes:None ~linkloads:None fib
    items

let run_probed ?(domains = 1) ?(config = default_config) ?prepare
    ?(create_probe = fun () -> Probe.create ()) ~seed fib items =
  (* One probe slot per item, merged in item-index order after the join
     barrier — the same discipline that keeps the counter sums
     bit-identical across domain counts.  The factory builds every slot
     (and the merge target), so sketch-armed or re-sampled probes stay
     uniformly configured across the batch. *)
  let probes = Array.init (Array.length items) (fun _ -> create_probe ()) in
  let total =
    run_items ~domains ~config ~prepare ~seed ~probes:(Some probes)
      ~linkloads:None fib items
  in
  let merged = create_probe () in
  Array.iter (fun p -> Probe.merge ~into:merged p) probes;
  (total, merged)

let run_swapped ?(domains = 1) ?(config = default_config) ?prepare ~seed
    ~schedule fib items =
  if domains < 1 then invalid_arg "Parallel.run: domains must be >= 1";
  let n_items = Array.length items in
  (let last = ref (-1) in
   List.iter
     (fun (idx, _) ->
       if idx <= !last then
         invalid_arg
           "Parallel.run_swapped: schedule indices must be strictly increasing";
       if idx < 0 || idx >= n_items then
         invalid_arg "Parallel.run_swapped: schedule index out of range";
       last := idx)
     schedule);
  let swap = Swap.create fib in
  (* Admission, in item-index order: when the schedule says an image goes
     live at item [i], publish it just before admitting [i]; every item
     pins the epoch current at its own admission.  The epoch an item
     forwards on is thereby a pure function of the item index — wall
     clock and domain interleaving never enter — while the pins keep
     each superseded image alive exactly until its in-flight items
     drain. *)
  let epochs = Array.make n_items 0 in
  let images = Array.make n_items fib in
  let sched = ref schedule in
  for i = 0 to n_items - 1 do
    (match !sched with
    | (idx, image) :: rest when idx = i ->
        ignore (Swap.publish swap image : int);
        sched := rest
    | _ -> ());
    let e, image = Swap.pin swap in
    epochs.(i) <- e;
    images.(i) <- image
  done;
  let master = Rng.create ~seed in
  let streams = Array.init n_items (fun _ -> Rng.split master) in
  let slots = Array.init n_items (fun _ -> Kernel.fresh_counters ()) in
  let work d =
    let kernel = Kernel.create fib in
    let i = ref d in
    while !i < n_items do
      if Kernel.fib kernel != images.(!i) then Kernel.rebind kernel images.(!i);
      run_item kernel config prepare streams.(!i) slots.(!i) None None
        items.(!i);
      Swap.unpin swap ~epoch:epochs.(!i);
      i := !i + domains
    done
  in
  if domains = 1 then work 0
  else begin
    let spawned =
      Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> work (d + 1)))
    in
    work 0;
    Array.iter Domain.join spawned
  end;
  let total = Kernel.fresh_counters () in
  Array.iter (fun c -> Kernel.add_counters ~into:total c) slots;
  (total, Swap.stats swap)

let run_loaded ?(domains = 1) ?(config = default_config) ?prepare ~seed fib
    items =
  (* Unlike [run_probed], link-load slots are per-domain, not per-item:
     the counters are plain ints, so the sum is identical under any
     partition of the items, and a short sweep should not spend its
     overhead budget allocating and merging a table per scenario. *)
  if domains < 1 then invalid_arg "Parallel.run: domains must be >= 1";
  let g = Fib.graph fib in
  let linkloads = Array.init domains (fun _ -> Pr_obs.Linkload.create g) in
  let total =
    run_items ~domains ~config ~prepare ~seed ~probes:None
      ~linkloads:(Some linkloads) fib items
  in
  for d = 1 to domains - 1 do
    Pr_obs.Linkload.merge ~into:linkloads.(0) linkloads.(d)
  done;
  (total, linkloads.(0))
