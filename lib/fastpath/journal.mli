(** Write-ahead journal for the control plane's edit stream.

    The swap pipeline's durability story: each edit batch is logged
    {e before} {!Fib.Delta.apply} runs and marked committed {e after}
    {!Swap} publishes the resulting image, with periodic full-image
    checkpoints ({!Fib.Codec}).  After a crash anywhere in that pipeline,
    {!recover} rebuilds the image a restarted control plane should
    publish: the last checkpoint plus a redo of every journalled batch
    after it.

    Records are self-checking single lines (content plus an FNV-1a
    checksum), so the one legal crash artefact — a torn final line — is
    recognised and tolerated, while damage anywhere else in the file is a
    hard error. *)

type entry =
  | Checkpoint of { seq : int; image : string }
      (** a full {!Fib.Codec.encode} blob; [seq] is the last batch folded
          into it *)
  | Batch of { seq : int; edits : Fib.Delta.edit list }
      (** an edit batch, logged before it was applied *)
  | Commit of { seq : int }
      (** batch [seq]'s image was published *)

(** {2 Writing} *)

type writer

val writer : string -> (writer, string) result
(** Open (append) or create a journal at a path.  A fresh file gets the
    format header; an existing one is appended to as-is.  [Error] with a
    one-line message if the file cannot be opened. *)

val path : writer -> string

val log_checkpoint : writer -> seq:int -> Fib.t -> unit
(** Write a checkpoint record and flush.  Everything before the latest
    checkpoint is dead weight for {!recover} — callers compact by
    checkpointing and starting a fresh file when size matters. *)

val log_batch : writer -> seq:int -> Fib.Delta.edit list -> unit
(** Write-ahead: call {e before} handing the batch to
    {!Fib.Delta.apply}.  Flushes before returning. *)

val log_commit : writer -> seq:int -> unit
(** Call after the batch's image was published. *)

val close : writer -> unit

(** {2 Reading} *)

type journal = {
  entries : entry list;  (** valid records, file order *)
  torn_tail : bool;      (** the final line was damaged and dropped *)
}

val read : string -> (journal, string) result
(** Parse a journal file.  A damaged {e final} line is the torn-tail
    crash artefact: dropped, flagged, not an error.  A damaged line
    anywhere else, a missing header, or an unreadable file is [Error]
    with a one-line message — never an exception. *)

(** {2 Recovery} *)

type recovery = {
  image : Fib.t;          (** the image to republish *)
  checkpoint_seq : int;   (** sequence of the checkpoint restored from *)
  replayed : int;         (** batches re-applied on top of it *)
  uncommitted : int;      (** of those, batches with no commit marker *)
  torn_tail : bool;
}

val recover : base:Fib.t -> string -> (recovery, string) result
(** Redo-all recovery: decode the {e last} valid checkpoint against
    [base] and re-apply every batch with a later sequence number, in
    order, committed or not — a journalled batch is durable intent, and
    only publication can have been lost.  [Error] on an unreadable or
    damaged journal, a journal with no checkpoint, out-of-order batches,
    or a batch the image rejects. *)
