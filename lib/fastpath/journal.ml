(* Write-ahead journal for the control plane's edit stream.

   Every record is one line ending in its own FNV-1a checksum
   ("<content> #<hex>"), so a torn tail — the only damage a crashed
   writer can leave, since records are appended and flushed whole — is
   detected structurally rather than by guessing.  Read tolerates an
   invalid *final* line (the torn tail) and refuses an invalid line
   anywhere else (that is corruption, not a crash). *)

let magic = "prjournal 1"

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let seal content = Printf.sprintf "%s #%Lx\n" content (fnv1a content)

(* Checkpoint payloads are Codec blobs — multi-line text — carried as
   hex so a checkpoint is still one journal record. *)
let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Printf.bprintf buf "%02x" (Char.code c)) s;
  Buffer.contents buf

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then None
  else
    let buf = Buffer.create (len / 2) in
    let ok = ref true in
    for i = 0 to (len / 2) - 1 do
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some b -> Buffer.add_char buf (Char.chr b)
      | None -> ok := false
    done;
    if !ok then Some (Buffer.contents buf) else None

(* ---- records ---- *)

type entry =
  | Checkpoint of { seq : int; image : string }
  | Batch of { seq : int; edits : Fib.Delta.edit list }
  | Commit of { seq : int }

let edit_to_string { Fib.Delta.u; v; change } =
  match change with
  | Fib.Delta.Down -> Printf.sprintf "%d,%d,down" u v
  | Fib.Delta.Up -> Printf.sprintf "%d,%d,up" u v
  | Fib.Delta.Weight w ->
      Printf.sprintf "%d,%d,w%Lx" u v (Int64.bits_of_float w)

let edit_of_string s =
  match String.split_on_char ',' s with
  | [ u; v; change ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> (
          match change with
          | "down" -> Some { Fib.Delta.u; v; change = Fib.Delta.Down }
          | "up" -> Some { Fib.Delta.u; v; change = Fib.Delta.Up }
          | _
            when String.length change > 1
                 && Char.equal change.[0] 'w' -> (
              match
                Int64.of_string_opt
                  ("0x" ^ String.sub change 1 (String.length change - 1))
              with
              | Some bits ->
                  Some
                    {
                      Fib.Delta.u;
                      v;
                      change = Fib.Delta.Weight (Int64.float_of_bits bits);
                    }
              | None -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let entry_content = function
  | Checkpoint { seq; image } ->
      Printf.sprintf "checkpoint %d %s" seq (to_hex image)
  | Batch { seq; edits } ->
      Printf.sprintf "batch %d %s" seq
        (String.concat " " (List.map edit_to_string edits))
  | Commit { seq } -> Printf.sprintf "commit %d" seq

let entry_of_content content =
  match String.split_on_char ' ' content with
  | [ "checkpoint"; seq; hex ] -> (
      match (int_of_string_opt seq, of_hex hex) with
      | Some seq, Some image -> Some (Checkpoint { seq; image })
      | _ -> None)
  | "batch" :: seq :: edits when edits <> [] -> (
      match int_of_string_opt seq with
      | Some seq ->
          let parsed = List.filter_map edit_of_string edits in
          if List.length parsed = List.length edits then
            Some (Batch { seq; edits = parsed })
          else None
      | None -> None)
  | [ "commit"; seq ] -> (
      match int_of_string_opt seq with
      | Some seq -> Some (Commit { seq })
      | None -> None)
  | _ -> None

(* ---- writer ---- *)

type writer = { oc : out_channel; path : string }

let writer path =
  match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
  | exception Sys_error m -> Error (Printf.sprintf "Journal: %s" m)
  | oc ->
      if out_channel_length oc = 0 then begin
        output_string oc (seal magic);
        flush oc
      end;
      Ok { oc; path }

let path w = w.path

(* One record = one [output_string] of a whole sealed line plus a flush:
   the write-ahead property needs the record on its way to the file
   before the in-memory apply proceeds. *)
let log w entry =
  output_string w.oc (seal (entry_content entry));
  flush w.oc

let log_checkpoint w ~seq fib = log w (Checkpoint { seq; image = Fib.Codec.encode fib })

let log_batch w ~seq edits = log w (Batch { seq; edits })

let log_commit w ~seq = log w (Commit { seq })

let close w = close_out w.oc

(* ---- reader ---- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error (Printf.sprintf "Journal: %s" m)
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Ok s

let parse_line line =
  match String.rindex_opt line '#' with
  | Some i
    when i >= 1
         && Char.equal line.[i - 1] ' '
         && Int64.of_string_opt ("0x" ^ String.sub line (i + 1) (String.length line - i - 1))
            = Some (fnv1a (String.sub line 0 (i - 1))) ->
      let content = String.sub line 0 (i - 1) in
      if String.equal content magic then Some `Magic
      else Option.map (fun e -> `Entry e) (entry_of_content content)
  | _ -> None

type journal = { entries : entry list; torn_tail : bool }

let read path =
  match read_file path with
  | Error _ as e -> e
  | Ok s -> (
      let lines = String.split_on_char '\n' s in
      let lines =
        match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
      in
      match lines with
      | [] -> Error "Journal: empty file"
      | first :: rest -> (
          match parse_line first with
          | Some `Magic ->
              let total = List.length rest in
              let entries = ref [] and torn = ref false and bad = ref None in
              List.iteri
                (fun i line ->
                  match parse_line line with
                  | Some (`Entry e) -> entries := e :: !entries
                  | Some `Magic | None ->
                      if i = total - 1 then torn := true
                      else if !bad = None then bad := Some (i + 2))
                rest;
              (match !bad with
              | Some lineno ->
                  Error
                    (Printf.sprintf
                       "Journal: damaged record at line %d (not a torn tail)"
                       lineno)
              | None -> Ok { entries = List.rev !entries; torn_tail = !torn })
          | _ -> Error "Journal: missing or damaged header line"))

(* ---- recovery ---- *)

type recovery = {
  image : Fib.t;
  checkpoint_seq : int;
  replayed : int;       (* batches re-applied after the checkpoint *)
  uncommitted : int;    (* of those, batches with no commit marker *)
  torn_tail : bool;
}

(* Redo-all from the last valid checkpoint: a batch that reached the
   journal is durable intent — it is re-applied whether or not its
   commit marker made it, because [Fib.Delta.apply] is deterministic and
   the crash can only have lost the *publication*, never the edit.  The
   invariant [prcli recover] enforces downstream: the replayed image is
   byte-equal to a full recompile of the final topology. *)
let recover ~base path =
  match read path with
  | Error _ as e -> e
  | Ok { entries; torn_tail } -> (
      let checkpoint =
        List.fold_left
          (fun acc e ->
            match e with Checkpoint { seq; image } -> Some (seq, image) | _ -> acc)
          None entries
      in
      match checkpoint with
      | None -> Error "Journal: no checkpoint record (nothing to recover from)"
      | Some (checkpoint_seq, blob) -> (
          match Fib.Codec.decode ~base blob with
          | Error m -> Error m
          | Ok image ->
              let committed = Hashtbl.create 16 in
              List.iter
                (function
                  | Commit { seq } -> Hashtbl.replace committed seq ()
                  | _ -> ())
                entries;
              let rec replay image last n_replayed n_uncommitted = function
                | [] ->
                    Ok
                      {
                        image;
                        checkpoint_seq;
                        replayed = n_replayed;
                        uncommitted = n_uncommitted;
                        torn_tail;
                      }
                | Batch { seq; edits } :: rest when seq > checkpoint_seq ->
                    if seq <= last then
                      Error
                        (Printf.sprintf
                           "Journal: batch %d out of order (after %d)" seq last)
                    else (
                      match Fib.Delta.apply image edits with
                      | Error e -> Error ("Journal: " ^ Fib.Delta.describe_error e)
                      | Ok (image, _) ->
                          replay image seq (n_replayed + 1)
                            (n_uncommitted
                            + if Hashtbl.mem committed seq then 0 else 1)
                            rest)
                | _ :: rest -> replay image last n_replayed n_uncommitted rest
              in
              replay image checkpoint_seq 0 0 entries))
