module Graph = Pr_graph.Graph
module Forward = Pr_core.Forward
module Seen = Pr_core.Seen
module Trace = Pr_telemetry.Trace
module Probe = Pr_telemetry.Probe

(* Degradation codes written into the per-hop scratch buffer. *)
let d_retry = 0

let d_lfa = 1

let d_ddsat = 2

type t = {
  (* The bound image and every array read off it.  Mutable as a block:
     {!rebind} points the kernel at the next image of a lineage (a
     control-plane swap) by reassigning them together — a field read
     costs the same either way, so the hot loop is untouched. *)
  mutable fib : Fib.t;
  n : int;
  ports : int;
  mutable degree : int array;
  mutable port_node : int array;
  mutable port_weight : float array;
  mutable node_port : int array;
  mutable next_hop_port : int array;
  mutable disc : float array;
  mutable disc_q : int array;
  mutable distance : float array;
  mutable cycle_col : int array;
  mutable comp_col : int array;
  mutable lfa_off : int array;
  mutable lfa_ports : int array;
  view : Bytes.t;
  truth : Bytes.t;
  admin : Bytes.t;
      (* the image's administrative plane: '\000' on both ports of an
         administratively down link.  Masked into every view/truth load
         so the ladder can never forward into a link the control plane
         removed — cycle/complementary columns are compiled against the
         base structure and still name its port. *)
  mutable default_ttl : int;
  (* Per-hop registers written by [decide].  Hot floats (the carried and
     outgoing DD, the cost accumulator) live in [fbuf] — a float array is
     unboxed storage, so the walk never boxes a float. *)
  degr : int array;
  fbuf : float array;
  mutable degr_len : int;
  mutable out_port : int;
  mutable out_pr : bool;
  mutable out_started : bool;
  mutable out_shortcut : bool;
  mutable hits : int;
  (* Shortcut rung ({!set_shortcut}): the per-node hint masks and the
     saturation threshold are configuration (recomputed on rebind); the
     hint bits and the latch are walk registers, reset per walk.  All
     pure functions of Pr_core.Seen, so the reference walk and this
     kernel agree bit for bit. *)
  mutable sc_on : bool;
  mutable sc_width : int;      (* requested hint width, -1 when off *)
  mutable sc_masks : int array;
  mutable sc_threshold : int;
  mutable sc_bits : int;
  mutable sc_sat : bool;
  mutable sc_exits : int;      (* shortcut grants this walk *)
  (* Telemetry.  [trace] receives the decision-level events (emission
     points mirror Pr_core.Forward.decide line for line); [probe] is fed
     by the batch walk.  Both default to off and cost nothing then: the
     fault-free fast path in [batch_walk] reads neither. *)
  mutable trace : Trace.sink;
  mutable probe : Probe.t option;
  mutable linkload : Pr_obs.Linkload.t option;
  mutable ll : int array;
      (* [linkload]'s raw counters ([||] when off): the batch walk bumps
         a slot with local array arithmetic — a cross-module [record]
         call per hop is measurable on cycle-heavy sweeps.  The table's
         port width is required to equal the image's, so the walk reuses
         the port index it already holds. *)
  mutable walk_ttl0 : int;
  mutable walk_ep0 : int;
  mutable lat_tick : int;
      (* countdown to the next clocked slow-path decision; lives here
         rather than on the probe record so the per-decide test touches
         the kernel's hot scratch, not the probe's cold cache line *)
  mutable guard_mode : bool;
      (* bounds-checked forwarding: every FIB-cell read that yields an
         out-of-range port or node becomes an accounted [Corrupt] verdict
         instead of an unsafe read.  Off (the default) costs one
         well-predicted bool test per check site. *)
  (* Guard-mode fault registers, written when a check fires and read back
     by [fault_of] at verdict time — integer registers so the hot loop
     never allocates a fault value. *)
  mutable fault_code : int;
  mutable fault_node : int;
  mutable fault_aux : int;
  mutable fault_dd : float;
}

(* [fbuf] slots. *)
let f_in_dd = 0   (* DD carried by the header arriving at this hop *)

let f_out_dd = 1  (* DD stamped on the forwarded header by [decide] *)

let f_cost = 2    (* weighted cost of the walk so far *)

(* Repaint [t.admin] from the image's administrative link state. *)
let load_admin t =
  Bytes.fill t.admin 0 (Bytes.length t.admin) '\001';
  let live = Fib.raw_live t.fib in
  Graph.iter_edges
    (fun i (e : Graph.edge) ->
      if not live.(i) then begin
        Bytes.set t.admin ((e.u * t.ports) + t.node_port.((e.u * t.n) + e.v)) '\000';
        Bytes.set t.admin ((e.v * t.ports) + t.node_port.((e.v * t.n) + e.u)) '\000'
      end)
    (Fib.graph t.fib)

let create fib =
  let n = Fib.n fib and ports = Fib.ports fib in
  let t =
  {
    fib;
    n;
    ports;
    degree = Array.init n (Fib.degree fib);
    port_node = Fib.raw_port_node fib;
    port_weight = Fib.raw_port_weight fib;
    node_port = Fib.raw_node_port fib;
    next_hop_port = Fib.raw_next_hop_port fib;
    disc = Fib.raw_disc fib;
    disc_q = Fib.raw_disc_q fib;
    distance = Fib.raw_distance fib;
    cycle_col = Fib.raw_cycle_col fib;
    comp_col = Fib.raw_comp_col fib;
    lfa_off = Fib.raw_lfa_off fib;
    lfa_ports = Fib.raw_lfa_ports fib;
    view = Bytes.make (n * ports) '\001';
    truth = Bytes.make (n * ports) '\001';
    admin = Bytes.make (n * ports) '\001';
    default_ttl = Forward.default_ttl (Fib.graph fib);
    degr = Array.make 8 0;
    fbuf = Array.make 3 0.0;
    degr_len = 0;
    out_port = -1;
    out_pr = false;
    out_started = false;
    out_shortcut = false;
    hits = 0;
    sc_on = false;
    sc_width = -1;
    sc_masks = [||];
    sc_threshold = max_int;
    sc_bits = 0;
    sc_sat = false;
    sc_exits = 0;
    trace = Trace.null;
    probe = None;
    linkload = None;
    ll = [||];
    walk_ttl0 = 0;
    walk_ep0 = 0;
    lat_tick = 0;
    guard_mode = false;
    fault_code = 0;
    fault_node = -1;
    fault_aux = -1;
    fault_dd = 0.0;
  }
  in
  load_admin t;
  t

let fib t = t.fib

let rebind t fib =
  if not (Graph.equal_structure (Fib.graph t.fib) (Fib.graph fib)) then
    invalid_arg "Kernel.rebind: image over a different base topology";
  t.fib <- fib;
  t.degree <- Array.init t.n (Fib.degree fib);
  t.port_node <- Fib.raw_port_node fib;
  t.port_weight <- Fib.raw_port_weight fib;
  t.node_port <- Fib.raw_node_port fib;
  t.next_hop_port <- Fib.raw_next_hop_port fib;
  t.disc <- Fib.raw_disc fib;
  t.disc_q <- Fib.raw_disc_q fib;
  t.distance <- Fib.raw_distance fib;
  t.cycle_col <- Fib.raw_cycle_col fib;
  t.comp_col <- Fib.raw_comp_col fib;
  t.lfa_off <- Fib.raw_lfa_off fib;
  t.lfa_ports <- Fib.raw_lfa_ports fib;
  t.default_ttl <- Forward.default_ttl (Fib.graph fib);
  load_admin t;
  (* Keep the port-state planes sound until the caller reloads them: the
     new admin plane is masked in (a link the new image removed goes
     down at once); a link it restored stays down in the planes until
     the next [set_failures]/[fill_view]/[fill_truth] — conservative,
     never torn. *)
  for i = 0 to Bytes.length t.view - 1 do
    if Bytes.get t.admin i = '\000' then begin
      Bytes.set t.view i '\000';
      Bytes.set t.truth i '\000'
    end
  done

let set_trace t sink = t.trace <- sink

let set_guard t on = t.guard_mode <- on

let guarded t = t.guard_mode

let set_shortcut t width =
  match width with
  | None ->
      t.sc_on <- false;
      t.sc_width <- -1;
      t.sc_masks <- [||];
      t.sc_threshold <- max_int;
      t.sc_bits <- 0;
      t.sc_sat <- false
  | Some w ->
      let plan = Seen.plan ~nodes:t.n ~width:w in
      (* raises Invalid_argument on out-of-range widths, same as the
         reference's [Seen.plan] — one validation path for both backends *)
      t.sc_on <- true;
      t.sc_width <- w;
      t.sc_threshold <- Seen.threshold plan;
      t.sc_masks <-
        (if Fib.sc_width t.fib = plan.Seen.width then Fib.raw_sc_mask t.fib
         else Array.init t.n (Seen.mask_of plan));
      t.sc_bits <- 0;
      t.sc_sat <- false

let shortcut_width t = if t.sc_on then Some t.sc_width else None

let set_probe t probe = t.probe <- probe

let set_linkload t linkload =
  (match linkload with
  | Some ll
    when Pr_obs.Linkload.n ll <> Fib.n t.fib
         || Pr_obs.Linkload.ports ll <> max 1 t.ports ->
      invalid_arg
        "Kernel.set_linkload: table dimensions differ from the image's"
  | _ -> ());
  t.linkload <- linkload;
  match linkload with
  | None -> t.ll <- [||]
  | Some l -> t.ll <- Pr_obs.Linkload.raw_counts l

let[@inline] traced t = Trace.enabled t.trace

(* ---- port state ---- *)

let set_failures t failures =
  let g = Fib.graph t.fib in
  if not (Graph.equal_structure g (Pr_core.Failure.graph failures)) then
    invalid_arg "Kernel.set_failures: failure set over a different graph";
  Bytes.blit t.admin 0 t.view 0 (Bytes.length t.view);
  Graph.iter_edges
    (fun i (e : Graph.edge) ->
      if Pr_core.Failure.is_failed_index failures i then begin
        Bytes.set t.view ((e.u * t.ports) + t.node_port.((e.u * t.n) + e.v)) '\000';
        Bytes.set t.view ((e.v * t.ports) + t.node_port.((e.v * t.n) + e.u)) '\000'
      end)
    g;
  Bytes.blit t.view 0 t.truth 0 (Bytes.length t.view)

let fill_plane t plane f =
  for x = 0 to t.n - 1 do
    for p = 0 to t.degree.(x) - 1 do
      let i = (x * t.ports) + p in
      let other = t.port_node.(i) in
      Bytes.set plane i
        (if f ~node:x ~other && Bytes.get t.admin i <> '\000' then '\001'
         else '\000')
    done
  done

let fill_view t f = fill_plane t t.view f

let fill_truth t f = fill_plane t t.truth f

let port_or_die t ~node ~other what =
  if node < 0 || node >= t.n || other < 0 || other >= t.n then
    invalid_arg
      (Printf.sprintf
         "Kernel.%s: node out of range (node %d, other %d, image has 0..%d)"
         what node other (t.n - 1));
  let p = t.node_port.((node * t.n) + other) in
  if p < 0 then
    invalid_arg
      (Printf.sprintf "Kernel.%s: %d is not a neighbour of %d" what other node);
  p

let set_believed t ~node ~other ~up =
  let p = port_or_die t ~node ~other "set_believed" in
  let i = (node * t.ports) + p in
  Bytes.set t.view i
    (if up && Bytes.get t.admin i <> '\000' then '\001' else '\000')

let believed_up t ~node ~other =
  let p = port_or_die t ~node ~other "believed_up" in
  Bytes.get t.view ((node * t.ports) + p) <> '\000'

(* ---- the per-router decision, ported line-for-line from
   Pr_core.Forward.decide ---- *)

let note t c =
  t.degr.(t.degr_len) <- c;
  t.degr_len <- t.degr_len + 1

(* Drop codes; 0 = forwarded (out_* registers valid). *)
let c_no_route = 1

let c_interfaces_down = 2

let c_continuation_lost = 3

let c_budget_exhausted = 4

let c_corrupt = 5

(* Fault-register codes ([t.fault_code]). *)
let fc_impossible_dd = 1

let fc_not_neighbour = 2

let fc_cell = 3

let fc_walk_blowup = 4

(* Which FIB table a corrupt-cell guard fired on ([t.fault_aux]). *)
let cell_next_hop = 0

let cell_cycle = 1

let cell_comp = 2

let cell_lfa_off = 3

let cell_lfa_ports = 4

let cell_port_node = 5

let cell_node_port = 6

let cell_names =
  [|
    "next-hop-port";
    "cycle-col";
    "comp-col";
    "lfa-off";
    "lfa-ports";
    "port-node";
    "node-port";
  |]

let fault_of t =
  if t.fault_code = fc_impossible_dd then
    Some (Forward.Impossible_dd { node = t.fault_node; dd = t.fault_dd })
  else if t.fault_code = fc_not_neighbour then
    Some (Forward.Not_neighbour { node = t.fault_node; from_ = t.fault_aux })
  else if t.fault_code = fc_cell then
    Some
      (Forward.Corrupt_cell
         { node = t.fault_node; cell = cell_names.(t.fault_aux) })
  else if t.fault_code = fc_walk_blowup then
    Some (Forward.Walk_blowup { hops = t.fault_aux })
  else None

(* A guard check fired: record the locus and drop with the corrupt code. *)
let corrupt_cell t ~node ~cell =
  t.fault_code <- fc_cell;
  t.fault_node <- node;
  t.fault_aux <- cell;
  c_corrupt

(* The rungs are top-level functions with explicit immediate arguments —
   no local closures, and no float parameters or returns (those would box
   on every call without flambda).  Float flow goes through [t.fbuf]:
   the walk stores the carried DD in [f_in_dd] before calling [decide],
   and [decide] leaves the DD of the forwarded header in [f_out_dd]. *)

let[@inline] up t base p = Bytes.unsafe_get t.view (base + p) <> '\000'

(* The forwarded header's DD must already be in [f_out_dd]. *)
let[@inline] forwarded t port ~pr ~started =
  t.out_port <- port;
  t.out_pr <- pr;
  t.out_started <- started;
  0

let[@inline] carried_sat ~max_dd_q q = max_dd_q >= 0 && q > max_dd_q

let drop_name_of_code = function
  | 1 -> "no-route"
  | 2 -> "interfaces-down"
  | 3 -> "continuation-lost"
  | 5 -> "corrupt"
  | _ -> "budget-exhausted"

(* Forward.decide's [write_dd]: stamp the local discriminator (saturated
   at the bound) into [f_out_dd]. *)
let write_dd t ii ~quantise ~max_dd_q =
  let q = Array.unsafe_get t.disc_q ii in
  Array.unsafe_set t.fbuf f_out_dd
    (if carried_sat ~max_dd_q q then begin
       note t d_ddsat;
       if traced t then
         Trace.emit t.trace
           (Trace.Dd_saturated { node = ii / t.n; dd = float_of_int max_dd_q });
       float_of_int max_dd_q
     end
     else if quantise then float_of_int q
     else Array.unsafe_get t.disc ii)

(* Walk the rotation from the failed port; forwards with whatever DD is
   in [f_out_dd] (callers stamp it first). *)
let start_complementary t base ~deg failed_port ~started =
  if traced t then
    Trace.emit t.trace
      (Trace.Complementary
         {
           node = base / t.ports;
           failed = Array.unsafe_get t.port_node (base + failed_port);
         });
  let rec rotate candidate remaining =
    if t.guard_mode && (candidate < 0 || candidate >= deg) then
      corrupt_cell t ~node:(base / t.ports) ~cell:cell_comp
    else if remaining = 0 then c_interfaces_down
    else if up t base candidate then forwarded t candidate ~pr:true ~started
    else begin
      t.hits <- t.hits + 1;
      rotate (Array.unsafe_get t.comp_col (base + candidate)) (remaining - 1)
    end
  in
  rotate (Array.unsafe_get t.comp_col (base + failed_port)) deg

let routed t base ii ~deg ~quantise ~max_dd_q =
  let p = Array.unsafe_get t.next_hop_port ii in
  if t.guard_mode && (p < -1 || p >= deg) then
    corrupt_cell t ~node:(base / t.ports) ~cell:cell_next_hop
  else if p < 0 then c_no_route
  else if up t base p then begin
    Array.unsafe_set t.fbuf f_out_dd 0.0;
    forwarded t p ~pr:false ~started:false
  end
  else begin
    t.hits <- t.hits + 1;
    write_dd t ii ~quantise ~max_dd_q;
    if traced t then
      Trace.emit t.trace
        (Trace.Pr_set
           { node = base / t.ports; dd = Array.unsafe_get t.fbuf f_out_dd });
    start_complementary t base ~deg p ~started:true
  end

let lfa_rescue t base ii ~deg ~reason =
  if Array.unsafe_get t.next_hop_port ii < 0 then c_no_route
  else begin
    let lo = t.lfa_off.(ii) and hi = t.lfa_off.(ii + 1) in
    if
      t.guard_mode
      && (lo < 0 || hi < lo || hi > Array.length t.lfa_ports)
    then corrupt_cell t ~node:(base / t.ports) ~cell:cell_lfa_off
    else
    let rec scan j =
      if j >= hi then reason
      else
        let w = Array.unsafe_get t.lfa_ports j in
        if t.guard_mode && (w < 0 || w >= deg) then
          corrupt_cell t ~node:(base / t.ports) ~cell:cell_lfa_ports
        else if up t base w then begin
          note t d_lfa;
          if traced t then
            Trace.emit t.trace
              (Trace.Rung
                 {
                   node = base / t.ports;
                   rung = Trace.Lfa_rescue;
                   reason = drop_name_of_code reason;
                 });
          Array.unsafe_set t.fbuf f_out_dd 0.0;
          forwarded t w ~pr:false ~started:false
        end
        else scan (j + 1)
    in
    scan lo
  end

let ladder t base ii ~deg ~quantise ~max_dd_q ~reason ~try_complementary =
  let p = Array.unsafe_get t.next_hop_port ii in
  if t.guard_mode && (p < -1 || p >= deg) then
    corrupt_cell t ~node:(base / t.ports) ~cell:cell_next_hop
  else if p < 0 then c_no_route
  else if up t base p then begin
    if traced t then
      Trace.emit t.trace
        (Trace.Rung
           {
             node = base / t.ports;
             rung = Trace.Routed_resume;
             reason = drop_name_of_code reason;
           });
    Array.unsafe_set t.fbuf f_out_dd 0.0;
    forwarded t p ~pr:false ~started:false
  end
  else begin
    t.hits <- t.hits + 1;
    if try_complementary then begin
      note t d_retry;
      if traced t then
        Trace.emit t.trace
          (Trace.Rung
             {
               node = base / t.ports;
               rung = Trace.Retry_complementary;
               reason = drop_name_of_code reason;
             });
      write_dd t ii ~quantise ~max_dd_q;
      if traced t then
        Trace.emit t.trace
          (Trace.Pr_set
             { node = base / t.ports; dd = Array.unsafe_get t.fbuf f_out_dd });
      let r = start_complementary t base ~deg p ~started:true in
      if r = 0 then r else lfa_rescue t base ii ~deg ~reason
    end
    else lfa_rescue t base ii ~deg ~reason
  end

(* The carried DD is read from [f_in_dd]; the out header's DD is left in
   [f_out_dd]. *)
let decide t ~dd_term ~quantise ~max_dd_q ~hops_left ~guard ~dst ~x
    ~arrived_port ~pr =
  let base = x * t.ports in
  let ii = (x * t.n) + dst in
  let deg = Array.unsafe_get t.degree x in
  t.out_shortcut <- false;
  if pr && guard > 0 && hops_left <= guard then
    ladder t base ii ~deg ~quantise ~max_dd_q ~reason:c_budget_exhausted
      ~try_complementary:false
  else if not pr then routed t base ii ~deg ~quantise ~max_dd_q
  else if arrived_port < 0 then routed t base ii ~deg ~quantise ~max_dd_q
  else begin
    (* Cycle following. *)
    let w = Array.unsafe_get t.cycle_col (base + arrived_port) in
    if t.guard_mode && (w < 0 || w >= deg) then
      corrupt_cell t ~node:x ~cell:cell_cycle
    else if up t base w then begin
      let m =
        if dd_term && t.sc_on && not t.sc_sat then
          Array.unsafe_get t.sc_masks x
        else 0
      in
      if m <> 0 && t.sc_bits land m = m then begin
        (* Deja-vu on a live continuation: proactive §4.3 check, the
           mirror of the reference walk's shortcut grant.  Every decline
           falls through to plain cycle following, bit-identical to a
           kernel running with no hint at all. *)
        let dd = Array.unsafe_get t.fbuf f_in_dd in
        let q = Array.unsafe_get t.disc_q ii in
        let local_sat = carried_sat ~max_dd_q q in
        let header_sat = max_dd_q >= 0 && dd >= float_of_int max_dd_q in
        let local =
          if local_sat then float_of_int max_dd_q
          else if quantise then float_of_int q
          else Array.unsafe_get t.disc ii
        in
        let p = Array.unsafe_get t.next_hop_port ii in
        if
          (not (local_sat && header_sat))
          && local < dd && p >= 0
          && ((not t.guard_mode) || p < deg)
          && up t base p
        then begin
          (* A suspicious next-hop cell under guard mode *declines* the
             shortcut rather than faulting: the rung is an optimisation,
             so degrade-to-no-op keeps verdicts aligned with the
             reference, which never consults that cell here. *)
          if traced t then
            Trace.emit t.trace
              (Trace.Shortcut { node = x; local_dd = local; header_dd = dd });
          t.out_shortcut <- true;
          Array.unsafe_set t.fbuf f_out_dd 0.0;
          forwarded t p ~pr:false ~started:false
        end
        else begin
          Array.unsafe_set t.fbuf f_out_dd dd;
          forwarded t w ~pr:true ~started:false
        end
      end
      else begin
        Array.unsafe_set t.fbuf f_out_dd (Array.unsafe_get t.fbuf f_in_dd);
        forwarded t w ~pr:true ~started:false
      end
    end
    else begin
      t.hits <- t.hits + 1;
      if not dd_term then routed t base ii ~deg ~quantise ~max_dd_q
      else begin
        let dd = Array.unsafe_get t.fbuf f_in_dd in
        let q = Array.unsafe_get t.disc_q ii in
        let local_sat = carried_sat ~max_dd_q q in
        let header_sat = max_dd_q >= 0 && dd >= float_of_int max_dd_q in
        if local_sat && header_sat then begin
          note t d_ddsat;
          if traced t then Trace.emit t.trace (Trace.Dd_refused { node = x });
          ladder t base ii ~deg ~quantise ~max_dd_q
            ~reason:c_continuation_lost ~try_complementary:true
        end
        else begin
          let local =
            if local_sat then float_of_int max_dd_q
            else if quantise then float_of_int q
            else Array.unsafe_get t.disc ii
          in
          let cleared = local < dd in
          if traced t then
            Trace.emit t.trace
              (Trace.Dd_compare
                 { node = x; local_dd = local; header_dd = dd; cleared });
          if cleared then routed t base ii ~deg ~quantise ~max_dd_q
          else begin
            Array.unsafe_set t.fbuf f_out_dd dd;
            start_complementary t base ~deg w ~started:false
          end
        end
      end
    end
  end

(* ---- verdicts ---- *)

type reason =
  | No_route
  | Interfaces_down
  | Continuation_lost
  | Budget_exhausted
  | Stale_view
  | Corrupt

let reason_name = function
  | No_route -> "no-route"
  | Interfaces_down -> "interfaces-down"
  | Continuation_lost -> "continuation-lost"
  | Budget_exhausted -> "budget-exhausted"
  | Stale_view -> "stale-view"
  | Corrupt -> "corrupt"

let reason_of_code = function
  | 1 -> No_route
  | 2 -> Interfaces_down
  | 3 -> Continuation_lost
  | 5 -> Corrupt
  | _ -> Budget_exhausted

let outcome_of_code = function
  | 1 -> Forward.Dropped_unreachable
  | 5 -> Forward.Dropped_corrupt
  | _ -> Forward.Dropped_no_interface

let degradation_of_code c =
  if c = d_retry then Forward.Retry_complementary
  else if c = d_lfa then Forward.Lfa_rescue
  else Forward.Dd_saturated

(* Link-load class of the hop just forwarded (registers still hot): a
   rescue rung outranks the PR-bit state it left behind; otherwise the
   header on the wire decides.  Matches the reference classification —
   {!Pr_core.Forward.run} by [header.pr_bit] (strict [step] never rungs),
   the engine's ladder walk by the decision's degradation list. *)
let[@inline] hop_cls t =
  let cls =
    ref
      (if t.out_shortcut then Pr_obs.Linkload.cls_shortcut
       else if t.out_pr then Pr_obs.Linkload.cls_recycled
       else Pr_obs.Linkload.cls_shortest)
  in
  for j = 0 to t.degr_len - 1 do
    let d = t.degr.(j) in
    if d = d_retry || d = d_lfa then cls := Pr_obs.Linkload.cls_rescue
  done;
  !cls

type result = {
  outcome : Forward.outcome;
  reason : reason option;
  path : int list;
  pr_episodes : int;
  failure_hits : int;
  max_dd : float;
  episodes : (int * float) list;
  degradations : Forward.degradation list;
  cost : float;
  fault : Forward.fault option;
  shortcuts : int;
}

let prepare_walk ?ttl t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg
      (Printf.sprintf
         "Kernel: node out of range (src %d, dst %d, image has 0..%d)" src dst
         (t.n - 1));
  if src = dst then
    invalid_arg (Printf.sprintf "Kernel: src = dst (node %d)" src);
  t.hits <- 0;
  t.fault_code <- 0;
  t.sc_bits <- 0;
  t.sc_sat <- false;
  t.sc_exits <- 0;
  t.out_shortcut <- false;
  match ttl with Some v -> v | None -> t.default_ttl

let max_dd_q_of = function
  | None -> -1
  | Some b -> Pr_core.Header.max_dd ~dd_bits:b

(* The walk rule of the shortcut hint, applied after every successful
   forward: a PR-mode departure inserts the departing node; a hop whose
   outgoing PR bit is clear resets the hint.  Identical to the
   reference's [track_seen] over a {!Seen.t}. *)
let[@inline] track_seen t x =
  if t.sc_on then
    if t.out_pr then begin
      if not t.sc_sat then begin
        t.sc_bits <- t.sc_bits lor Array.unsafe_get t.sc_masks x;
        if Seen.popcount t.sc_bits > t.sc_threshold then t.sc_sat <- true
      end
    end
    else begin
      t.sc_bits <- 0;
      t.sc_sat <- false
    end

let dd_term_of = function
  | Forward.Distance_discriminator -> true
  | Forward.Simple -> false

let run_one ?(termination = Forward.Distance_discriminator) ?(quantise = false)
    ?dd_bits ?(budget_guard = 0) ?ttl ?(header = Forward.fresh_header)
    ?arrived_from t ~src ~dst =
  let ttl0 = prepare_walk ?ttl t ~src ~dst in
  let dd_term = dd_term_of termination in
  let max_dd_q = max_dd_q_of dd_bits in
  (* A walk is corrupt-seeded when any header state was injected; only
     such walks convert TTL expiry into the walk-blowup fault, matching
     {!Pr_core.Forward.run_guarded}. *)
  let seeded = header <> Forward.fresh_header || arrived_from <> None in
  let pr_episodes = ref 0 in
  let max_dd = ref 0.0 in
  let episodes = ref [] in
  let degr_rev = ref [] in
  let finish ~outcome ~reason ~cost path_rev =
    {
      outcome;
      reason;
      path = List.rev path_rev;
      pr_episodes = !pr_episodes;
      failure_hits = t.hits;
      max_dd = !max_dd;
      episodes = List.rev !episodes;
      degradations = List.rev !degr_rev;
      cost;
      fault = fault_of t;
      shortcuts = t.sc_exits;
    }
  in
  let tr = traced t in
  let rec walk x arrived_port pr dd ttl cost path_rev =
    if x = dst then begin
      if tr then
        Trace.emit t.trace (Trace.Deliver { node = x; hops = ttl0 - ttl });
      finish ~outcome:Forward.Delivered ~reason:None ~cost path_rev
    end
    else if ttl = 0 then begin
      if seeded then begin
        t.fault_code <- fc_walk_blowup;
        t.fault_node <- x;
        t.fault_aux <- ttl0;
        if tr then
          Trace.emit t.trace
            (Trace.Drop { node = x; reason = drop_name_of_code c_corrupt });
        finish ~outcome:Forward.Dropped_corrupt ~reason:(Some Corrupt) ~cost
          path_rev
      end
      else begin
        if tr then Trace.emit t.trace (Trace.Expire { node = x; hops = ttl0 });
        finish ~outcome:Forward.Ttl_exceeded ~reason:None ~cost path_rev
      end
    end
    else begin
      t.degr_len <- 0;
      t.fbuf.(f_in_dd) <- dd;
      let code =
        decide t ~dd_term ~quantise ~max_dd_q ~hops_left:ttl ~guard:budget_guard
          ~dst ~x ~arrived_port ~pr
      in
      for j = t.degr_len - 1 downto 0 do
        degr_rev := degradation_of_code t.degr.(j) :: !degr_rev
      done;
      if code <> 0 then begin
        if tr then
          Trace.emit t.trace
            (Trace.Drop { node = x; reason = drop_name_of_code code });
        finish ~outcome:(outcome_of_code code)
          ~reason:(Some (reason_of_code code)) ~cost path_rev
      end
      else begin
        let port = t.out_port in
        let out_dd = t.fbuf.(f_out_dd) in
        let next = t.port_node.((x * t.ports) + port) in
        if t.guard_mode && (next < 0 || next >= t.n || next = x) then begin
          ignore (corrupt_cell t ~node:x ~cell:cell_port_node);
          if tr then
            Trace.emit t.trace
              (Trace.Drop { node = x; reason = drop_name_of_code c_corrupt });
          finish ~outcome:Forward.Dropped_corrupt ~reason:(Some Corrupt) ~cost
            path_rev
        end
        else begin
          if t.out_started then begin
            incr pr_episodes;
            episodes := (x, out_dd) :: !episodes;
            if out_dd > !max_dd then max_dd := out_dd
          end;
          if tr then
            Trace.emit t.trace
              (Trace.Hop { node = x; next; pr = t.out_pr; dd = out_dd });
          (match t.linkload with
          | None -> ()
          | Some ll ->
              (* Counted on the wire, before any stale-view death. *)
              Pr_obs.Linkload.record ll ~node:x ~port ~cls:(hop_cls t));
          if t.out_shortcut then t.sc_exits <- t.sc_exits + 1;
          track_seen t x;
          if Bytes.get t.truth ((x * t.ports) + port) = '\000' then begin
            (* Sent into a link the sender wrongly believed up: lost on the
               wire, the failed hop recorded on the path (engine
               convention). *)
            if tr then begin
              Trace.emit t.trace
                (Trace.Divergence
                   { node = x; other = next; believed_up = true });
              Trace.emit t.trace
                (Trace.Drop { node = next; reason = reason_name Stale_view })
            end;
            finish ~outcome:Forward.Dropped_no_interface
              ~reason:(Some Stale_view) ~cost (next :: path_rev)
          end
          else begin
            let ap = t.node_port.((next * t.n) + x) in
            if
              t.guard_mode && (ap < 0 || ap >= Array.unsafe_get t.degree next)
            then begin
              ignore (corrupt_cell t ~node:next ~cell:cell_node_port);
              if tr then
                Trace.emit t.trace
                  (Trace.Drop
                     { node = next; reason = drop_name_of_code c_corrupt });
              finish ~outcome:Forward.Dropped_corrupt ~reason:(Some Corrupt)
                ~cost (next :: path_rev)
            end
            else
              walk next ap t.out_pr out_dd (ttl - 1)
                (cost +. t.port_weight.((x * t.ports) + port))
                (next :: path_rev)
          end
        end
      end
    end
  in
  (* Entry guards over injected state, in the reference order: impossible
     DD first, then the claimed previous hop. *)
  let entry_fault_code =
    if
      header.Forward.pr_bit
      && (Float.is_nan header.Forward.dd_value
         || header.Forward.dd_value < 0.0
         || header.Forward.dd_value = Float.infinity
         || (max_dd_q >= 0 && header.Forward.dd_value > float_of_int max_dd_q)
         )
    then begin
      t.fault_code <- fc_impossible_dd;
      t.fault_node <- src;
      t.fault_dd <- header.Forward.dd_value;
      c_corrupt
    end
    else
      match arrived_from with
      | Some y when y < 0 || y >= t.n || t.node_port.((src * t.n) + y) < 0 ->
          t.fault_code <- fc_not_neighbour;
          t.fault_node <- src;
          t.fault_aux <- y;
          c_corrupt
      | Some y
        when t.guard_mode
             && t.node_port.((src * t.n) + y) >= Array.unsafe_get t.degree src
        ->
          ignore (corrupt_cell t ~node:src ~cell:cell_node_port);
          c_corrupt
      | _ -> 0
  in
  if entry_fault_code <> 0 then begin
    if tr then
      Trace.emit t.trace
        (Trace.Drop { node = src; reason = drop_name_of_code c_corrupt });
    finish ~outcome:Forward.Dropped_corrupt ~reason:(Some Corrupt) ~cost:0.0
      [ src ]
  end
  else
    let ap0 =
      match arrived_from with
      | None -> -1
      | Some y -> t.node_port.((src * t.n) + y)
    in
    walk src ap0 header.Forward.pr_bit header.Forward.dd_value ttl0 0.0 [ src ]

let to_trace t r =
  {
    Forward.outcome = r.outcome;
    path = r.path;
    pr_episodes = r.pr_episodes;
    failure_hits = r.failure_hits;
    max_header =
      { Pr_core.Header.pr = r.pr_episodes > 0; dd = Fib.quantise_dd t.fib r.max_dd };
    episodes = r.episodes;
    shortcuts = r.shortcuts;
  }

(* ---- batches ---- *)

type counters = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable looped : int;
  mutable unreachable : int;
  mutable stretch_sum : float;
  mutable worst_stretch : float;
  drops_by_reason : int array;
  mutable complementary_retries : int;
  mutable lfa_rescues : int;
  mutable dd_saturations : int;
  mutable shortcut_exits : int;
  mutable pr_episodes : int;
  mutable failure_hits : int;
}

let all_reasons =
  [
    No_route;
    Interfaces_down;
    Continuation_lost;
    Budget_exhausted;
    Stale_view;
    Corrupt;
  ]

let reason_index = function
  | No_route -> 0
  | Interfaces_down -> 1
  | Continuation_lost -> 2
  | Budget_exhausted -> 3
  | Stale_view -> 4
  | Corrupt -> 5

let fresh_counters () =
  {
    injected = 0;
    delivered = 0;
    dropped = 0;
    looped = 0;
    unreachable = 0;
    stretch_sum = 0.0;
    worst_stretch = 0.0;
    drops_by_reason = Array.make (List.length all_reasons) 0;
    complementary_retries = 0;
    lfa_rescues = 0;
    dd_saturations = 0;
    shortcut_exits = 0;
    pr_episodes = 0;
    failure_hits = 0;
  }

let add_counters ~into c =
  into.injected <- into.injected + c.injected;
  into.delivered <- into.delivered + c.delivered;
  into.dropped <- into.dropped + c.dropped;
  into.looped <- into.looped + c.looped;
  into.unreachable <- into.unreachable + c.unreachable;
  into.stretch_sum <- into.stretch_sum +. c.stretch_sum;
  if c.worst_stretch > into.worst_stretch then
    into.worst_stretch <- c.worst_stretch;
  Array.iteri
    (fun i v -> into.drops_by_reason.(i) <- into.drops_by_reason.(i) + v)
    c.drops_by_reason;
  into.complementary_retries <- into.complementary_retries + c.complementary_retries;
  into.lfa_rescues <- into.lfa_rescues + c.lfa_rescues;
  into.dd_saturations <- into.dd_saturations + c.dd_saturations;
  into.shortcut_exits <- into.shortcut_exits + c.shortcut_exits;
  into.pr_episodes <- into.pr_episodes + c.pr_episodes;
  into.failure_hits <- into.failure_hits + c.failure_hits

let equal_counters a b =
  a.injected = b.injected && a.delivered = b.delivered && a.dropped = b.dropped
  && a.looped = b.looped && a.unreachable = b.unreachable
  && Int64.bits_of_float a.stretch_sum = Int64.bits_of_float b.stretch_sum
  && Int64.bits_of_float a.worst_stretch = Int64.bits_of_float b.worst_stretch
  && a.drops_by_reason = b.drops_by_reason
  && a.complementary_retries = b.complementary_retries
  && a.lfa_rescues = b.lfa_rescues
  && a.dd_saturations = b.dd_saturations
  && a.shortcut_exits = b.shortcut_exits
  && a.pr_episodes = b.pr_episodes
  && a.failure_hits = b.failure_hits

let record_unreachable c =
  c.injected <- c.injected + 1;
  c.unreachable <- c.unreachable + 1

let probe_reason = function
  | No_route -> Probe.reason_no_route
  | Interfaces_down -> Probe.reason_interfaces_down
  | Continuation_lost -> Probe.reason_continuation_lost
  | Budget_exhausted -> Probe.reason_budget_exhausted
  | Stale_view -> Probe.reason_stale_view
  | Corrupt -> Probe.reason_corrupt

(* Latency class of the slow-path decision just made (registers still
   hot): a ladder rung outranks the episode/cycle state it left behind. *)
let slow_class t code =
  if code <> 0 then Probe.cls_drop
  else begin
    let cls =
      ref
        (if t.out_shortcut then Probe.cls_shortcut
         else if t.out_started then Probe.cls_episode
         else if t.out_pr then Probe.cls_cycle
         else Probe.cls_routed)
    in
    for j = 0 to t.degr_len - 1 do
      let d = t.degr.(j) in
      if d = d_lfa then cls := Probe.cls_lfa
      else if d = d_retry && !cls <> Probe.cls_lfa then cls := Probe.cls_retry
    done;
    !cls
  end

let[@inline] probe_depth t c = c.pr_episodes - t.walk_ep0

(* Account a guard-detected corrupt drop in a batch walk (the fault
   registers are already set). *)
let account_corrupt t c ~hops =
  c.dropped <- c.dropped + 1;
  let r = reason_index Corrupt in
  c.drops_by_reason.(r) <- c.drops_by_reason.(r) + 1;
  match t.probe with
  | None -> ()
  | Some prb ->
      Probe.record_drop prb ~reason:Probe.reason_corrupt ~hops
        ~depth:(probe_depth t c)

(* Same walk as {!run_one}, counters instead of trace capture — a
   top-level function so the whole source-to-verdict walk allocates
   nothing.  All arguments are immediates; the carried DD and the cost
   accumulator live in [t.fbuf] ([f_in_dd] / [f_cost]) so no boxed float
   crosses a call boundary in the hot loop.

   When a probe is attached, only the walk's terminal verdict and the
   slow-path decisions touch it — the fault-free fast path below is
   byte-for-byte the unprobed one, and in particular never reads the
   clock (slow-path latencies are clocked one decision in
   [Probe.lat_sample]).  That is the whole overhead story: probe-on cost
   is proportional to trouble encountered, not to traffic carried. *)
let rec batch_walk t c ~dd_term ~quantise ~max_dd_q ~guard ~src ~dst x
    arrived_port pr ttl =
  if x = dst then begin
    c.delivered <- c.delivered + 1;
    let stretch =
      Array.unsafe_get t.fbuf f_cost
      /. Array.unsafe_get t.distance ((src * t.n) + dst)
    in
    c.stretch_sum <- c.stretch_sum +. stretch;
    if stretch > c.worst_stretch then c.worst_stretch <- stretch;
    match t.probe with
    | None -> ()
    | Some p ->
        Probe.record_delivery p ~stretch ~hops:(t.walk_ttl0 - ttl)
          ~depth:(probe_depth t c)
  end
  else if ttl = 0 then begin
    c.looped <- c.looped + 1;
    match t.probe with
    | None -> ()
    | Some p -> Probe.record_loop p ~hops:t.walk_ttl0 ~depth:(probe_depth t c)
  end
  else begin
    let base = x * t.ports in
    let p =
      if pr then -1 else Array.unsafe_get t.next_hop_port ((x * t.n) + dst)
    in
    if
      p >= 0
      && (not t.guard_mode || p < Array.unsafe_get t.degree x)
      && Bytes.unsafe_get t.view (base + p) <> '\000'
    then begin
      (* Fault-free routed hop — [decide] reduces to a fresh forward with
         no degradations, no episode, and a zero DD that the next
         (non-PR) hop never reads, so skip the full dispatch. *)
      let ll = t.ll in
      if Array.length ll <> 0 then begin
        (* A fast-path hop is shortest-path (class slot 0) by
           construction; counted on the wire, before any stale-view
           death.  This length test is the whole accounting-off cost on
           the fast path; the slot reuses the walk's own port index. *)
        let i = (base + p) * 4 in
        Array.unsafe_set ll i (Array.unsafe_get ll i + 1)
      end;
      if Bytes.unsafe_get t.truth (base + p) = '\000' then begin
        c.dropped <- c.dropped + 1;
        let r = reason_index Stale_view in
        c.drops_by_reason.(r) <- c.drops_by_reason.(r) + 1;
        match t.probe with
        | None -> ()
        | Some prb ->
            Probe.record_drop prb ~reason:Probe.reason_stale_view
              ~hops:(t.walk_ttl0 - ttl + 1) ~depth:(probe_depth t c)
      end
      else begin
        let next = Array.unsafe_get t.port_node (base + p) in
        if t.guard_mode && (next < 0 || next >= t.n || next = x) then begin
          ignore (corrupt_cell t ~node:x ~cell:cell_port_node);
          account_corrupt t c ~hops:(t.walk_ttl0 - ttl)
        end
        else begin
          let ap = Array.unsafe_get t.node_port ((next * t.n) + x) in
          if t.guard_mode && (ap < 0 || ap >= Array.unsafe_get t.degree next)
          then begin
            ignore (corrupt_cell t ~node:next ~cell:cell_node_port);
            account_corrupt t c ~hops:(t.walk_ttl0 - ttl)
          end
          else begin
            Array.unsafe_set t.fbuf f_cost
              (Array.unsafe_get t.fbuf f_cost
              +. Array.unsafe_get t.port_weight (base + p));
            batch_walk t c ~dd_term ~quantise ~max_dd_q ~guard ~src ~dst next
              ap false (ttl - 1)
          end
        end
      end
    end
    else begin
    t.degr_len <- 0;
    let code =
      match t.probe with
      | None ->
          decide t ~dd_term ~quantise ~max_dd_q ~hops_left:ttl ~guard ~dst ~x
            ~arrived_port ~pr
      | Some prb ->
          (* On loop-heavy sweeps one walk can make thousands of
             slow-path decides (TTL-bounded cycle following), so the
             per-decide work here is itself on the overhead budget: an
             inlined countdown on the kernel's own hot scratch, and the
             clock only one decision in [Probe.lat_sample]. *)
          if t.lat_tick <> 0 then begin
            t.lat_tick <- t.lat_tick - 1;
            decide t ~dd_term ~quantise ~max_dd_q ~hops_left:ttl ~guard ~dst
              ~x ~arrived_port ~pr
          end
          else begin
            t.lat_tick <- Probe.lat_sample prb - 1;
            let t0 = Probe.now_ns () in
            let code =
              decide t ~dd_term ~quantise ~max_dd_q ~hops_left:ttl ~guard ~dst
                ~x ~arrived_port ~pr
            in
            Probe.record_latency prb ~cls:(slow_class t code)
              ~ns:(Int64.sub (Probe.now_ns ()) t0);
            code
          end
    in
    for j = 0 to t.degr_len - 1 do
      let d = t.degr.(j) in
      if d = d_retry then c.complementary_retries <- c.complementary_retries + 1
      else if d = d_lfa then c.lfa_rescues <- c.lfa_rescues + 1
      else c.dd_saturations <- c.dd_saturations + 1
    done;
    (match t.probe with
    | None -> ()
    | Some prb ->
        for j = 0 to t.degr_len - 1 do
          let d = t.degr.(j) in
          if d = d_retry then Probe.record_retry prb
          else if d = d_lfa then Probe.record_lfa prb
          else Probe.record_dd_saturation prb
        done);
    if code <> 0 then begin
      c.dropped <- c.dropped + 1;
      let r = reason_index (reason_of_code code) in
      c.drops_by_reason.(r) <- c.drops_by_reason.(r) + 1;
      match t.probe with
      | None -> ()
      | Some prb ->
          Probe.record_drop prb
            ~reason:(probe_reason (reason_of_code code))
            ~hops:(t.walk_ttl0 - ttl) ~depth:(probe_depth t c)
    end
    else begin
      let port = t.out_port in
      if t.out_started then begin
        c.pr_episodes <- c.pr_episodes + 1;
        match t.probe with
        | None -> ()
        | Some prb -> Probe.record_episode prb
      end;
      if t.out_shortcut then begin
        c.shortcut_exits <- c.shortcut_exits + 1;
        match t.probe with
        | None -> ()
        | Some prb -> Probe.record_shortcut prb
      end;
      let slot = (x * t.ports) + port in
      let ll = t.ll in
      if Array.length ll <> 0 then begin
        (* Counted on the wire, before any stale-view death.  The
           degradation-free case stays call-free: [hop_cls] has a loop,
           which the non-flambda compiler will not inline. *)
        let cls =
          if t.degr_len = 0 then
            if t.out_shortcut then 3 else if t.out_pr then 1 else 0
          else hop_cls t
        in
        let i = (slot * 4) + cls in
        Array.unsafe_set ll i (Array.unsafe_get ll i + 1)
      end;
      track_seen t x;
      if Bytes.unsafe_get t.truth slot = '\000' then begin
        c.dropped <- c.dropped + 1;
        let r = reason_index Stale_view in
        c.drops_by_reason.(r) <- c.drops_by_reason.(r) + 1;
        match t.probe with
        | None -> ()
        | Some prb ->
            Probe.record_drop prb ~reason:Probe.reason_stale_view
              ~hops:(t.walk_ttl0 - ttl + 1) ~depth:(probe_depth t c)
      end
      else begin
        let next = Array.unsafe_get t.port_node slot in
        if t.guard_mode && (next < 0 || next >= t.n || next = x) then begin
          ignore (corrupt_cell t ~node:x ~cell:cell_port_node);
          account_corrupt t c ~hops:(t.walk_ttl0 - ttl)
        end
        else begin
          let ap = Array.unsafe_get t.node_port ((next * t.n) + x) in
          if t.guard_mode && (ap < 0 || ap >= Array.unsafe_get t.degree next)
          then begin
            ignore (corrupt_cell t ~node:next ~cell:cell_node_port);
            account_corrupt t c ~hops:(t.walk_ttl0 - ttl)
          end
          else begin
            Array.unsafe_set t.fbuf f_in_dd (Array.unsafe_get t.fbuf f_out_dd);
            Array.unsafe_set t.fbuf f_cost
              (Array.unsafe_get t.fbuf f_cost
              +. Array.unsafe_get t.port_weight slot);
            batch_walk t c ~dd_term ~quantise ~max_dd_q ~guard ~src ~dst next
              ap t.out_pr (ttl - 1)
          end
        end
      end
    end
    end
  end

let forward_into ?(termination = Forward.Distance_discriminator)
    ?(quantise = false) ?dd_bits ?(budget_guard = 0) ?ttl t c ~src ~dst =
  let ttl0 = prepare_walk ?ttl t ~src ~dst in
  let dd_term = dd_term_of termination in
  let max_dd_q = max_dd_q_of dd_bits in
  c.injected <- c.injected + 1;
  t.walk_ttl0 <- ttl0;
  t.walk_ep0 <- c.pr_episodes;
  t.fbuf.(f_in_dd) <- 0.0;
  t.fbuf.(f_cost) <- 0.0;
  batch_walk t c ~dd_term ~quantise ~max_dd_q ~guard:budget_guard ~src ~dst src
    (-1) false ttl0;
  c.failure_hits <- c.failure_hits + t.hits;
  match t.probe with
  | None -> ()
  | Some p -> Probe.add_failure_hits p t.hits
