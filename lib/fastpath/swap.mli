(** Epoch-ordered hot publication of {!Fib} images (RCU-style).

    A store holds one lineage of images: epoch 0 is the base image, each
    {!publish} appends the next epoch and makes it current.  Forwarding
    never observes a torn image because images are immutable — a swap is
    one pointer move — and never loses the image under its feet because
    readers {!pin} the epoch they forward on.  A superseded epoch sits
    in its {e grace period} until its last pin drops, at which point it
    is retired; {!stats} exposes the accounting the zero-loss invariant
    monitor checks (every admitted packet completes on the image it
    pinned, and images retire only after draining).

    Publication and pin churn happen at control-plane rate (per edit
    batch, per scenario item) under one mutex — nothing here rides the
    per-packet hot loop.  All operations are safe from any domain. *)

type t

type stats = {
  current_epoch : int;  (** epoch of the image new pins receive *)
  published : int;      (** images published, the base included *)
  live_pins : int;      (** outstanding pins across all epochs *)
  retired : int;        (** superseded epochs whose grace period ended *)
}

val create : Fib.t -> t
(** A store holding [fib] as epoch 0. *)

val publish : t -> Fib.t -> int
(** Append the next image and make it current; returns its epoch.  The
    superseded image enters its grace period (and retires immediately if
    nothing pins it).  Raises [Invalid_argument] if the image's geometry
    (node count, port width, DD bit budget) differs from the lineage —
    {!Fib.Delta} images always agree. *)

val epoch : t -> int

val current : t -> Fib.t
(** Peek at the current image without pinning — for callers that only
    read control-plane state, never forward. *)

val pin : t -> int * Fib.t
(** Pin the current image for forwarding; returns [(epoch, image)].
    Balance with {!unpin}. *)

val pin_at : t -> epoch:int -> Fib.t
(** Pin a specific published epoch — the deterministic-schedule hook:
    {!Parallel.run_swapped} resolves each item's epoch from the item
    index, so verdicts cannot depend on wall-clock swap timing.  Raises
    [Invalid_argument] if the epoch was never published or is already
    retired. *)

val unpin : t -> epoch:int -> unit
(** Drop one pin.  If the epoch is superseded and this was its last pin,
    its grace period ends and it retires.  Raises [Invalid_argument] on
    an unbalanced unpin. *)

val stats : t -> stats

val quiescent : t -> bool
(** No outstanding pins and every superseded epoch retired — the state a
    drained simulation must end in. *)
