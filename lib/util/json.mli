(** A minimal JSON reader for the repo's own artifacts.

    The benchmark and telemetry emitters write JSON by hand
    ({!Pr_telemetry.Probe.to_json}, bench/main.ml); this is the matching
    reader, used by [prcli bench --history] to parse committed
    [BENCH_*.json] files and by the test suite to schema-check them.  It
    is a strict recursive-descent parser over the JSON subset those
    emitters produce — no streaming, no extensions — and is in no hot
    path. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in source order *)

val parse : string -> (t, string) result
(** Whole-input parse; the error is a one-line human message with a
    character offset. *)

val parse_file : string -> (t, string) result
(** [parse] over a file's contents; I/O errors become [Error]. *)

(** {2 Accessors} — total, returning [None] on shape mismatch *)

(** {2 Emission helpers} *)

val number : float -> string
(** Shortest decimal representation that parses back to exactly [x]
    (tries 15, 16, then 17 significant digits), for the hand-rolled
    JSON writers: [0.9] stays ["0.9"], not ["0.90000000000000002"].
    Non-finite values become ["null"]. *)

val member : string -> t -> t option
(** First member with that key of an [Obj]. *)

val num : t -> float option

val str : t -> string option

val list : t -> t list option
