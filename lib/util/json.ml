type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* Non-ASCII escapes never appear in our artifacts;
                     keep them as replacement bytes rather than decode
                     UTF-16 surrogates. *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?'
              | _ -> fail "bad escape character");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          List (elements [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* Shortest decimal that parses back to the same bits: try 15, 16,
   then 17 significant digits.  17 always round-trips a double, but
   %.17g alone turns 0.9 into 0.90000000000000002 in every artifact;
   most values need far fewer digits. *)
let number x =
  if not (Float.is_finite x) then "null"
  else begin
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    let s =
      match try_prec 15 with
      | Some s -> s
      | None -> (
          match try_prec 16 with
          | Some s -> s
          | None -> Printf.sprintf "%.17g" x)
    in
    (* %g may emit a bare integer mantissa ("1", "2e+22"); that is
       still a valid JSON number, so keep it as is. *)
    s
  end

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let num = function Num f -> Some f | _ -> None

let str = function Str s -> Some s | _ -> None

let list = function List l -> Some l | _ -> None
