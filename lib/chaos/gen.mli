(** Correlated fault generators for chaos campaigns.

    {!Pr_sim.Workload.failure_process} fails links independently; real
    outages are correlated — links share conduits (SRLGs), regions lose
    power, routers crash taking every interface with them, overload
    cascades along the topology, and misbehaving interfaces flap in
    storms.  Fast-failover schemes that survive independent failures break
    under exactly this structure (Foerster et al., "On the Price of
    Locality in Static Fast Rerouting"; Bankhamer et al., "Local Fast
    Rerouting with Low Congestion"), so these are the workloads a
    robustness claim has to face.

    Every generator is deterministic in the supplied {!Pr_util.Rng.t} and
    emits a raw, possibly overlapping event stream; {!normalise} merges
    streams into the sorted, per-link-alternating form the simulators and
    {!Pr_sim.Flap} require. *)

type kind =
  | Srlg        (** shared-risk link groups fail and repair together *)
  | Regional    (** geographic outages from the topology's coordinates *)
  | Node_crash  (** router crash-and-recover: every incident link at once
                    ({!Pr_core.Failure.of_nodes} lifted to timed events) *)
  | Cascade     (** a seed failure spreads along adjacent links *)
  | Flap_storm  (** a handful of links oscillating rapidly (paper §7) *)
  | Blip        (** sub-detection-delay down/up blips a perfect-knowledge
                    router reacts to and a {!Pr_sim.Detector} should miss *)
  | Swap_storm  (** long-dwell down/up cycles that each outlive a control
                    plane's reconciliation delay — maximum epoch churn for
                    the {!Pr_sim.Engine} hot-swap path *)
  | Corrupt_storm
                (** state damage rather than link damage: header bit-flips,
                    FIB-cell junk, stale-epoch reads and control-plane
                    crash points.  Emits no link events — {!corrupt_storm}
                    produces the descriptors and the corruption campaign
                    ({!Corrupt}) executes them. *)

val all : kind list
(** In declaration order.  Later generators are appended last so seeded
    streams produced by the earlier ones are unchanged from before they
    existed. *)

val name : kind -> string

val of_name : string -> (kind, string) result

val normalise :
  Pr_sim.Workload.link_event list -> Pr_sim.Workload.link_event list
(** Stable-sorts by time and drops events that do not change their link's
    state (initially up).  The result satisfies
    [Flap.validate_events ~require_alternation:true]. *)

val srlg :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?groups:int ->
  ?mtbf:float ->
  ?mttr:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** Partitions the links uniformly into [groups] (default 3) shared-risk
    groups; each group follows an alternating renewal process (means
    [mtbf], [mttr]) and fails as a unit, with per-link staggered repair. *)

val regional :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?outages:int ->
  ?radius:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [outages] (default 2) events, each centred on a random node: every
    link with an endpoint within [radius] (default 0.35, as a fraction of
    the coordinate bounding-box diagonal) of the centre goes down
    together and repairs staggered. *)

val node_crash :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?crashes:int ->
  ?mttr:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [crashes] (default 3) router crashes: all incident links fail at the
    same instant and return together when the router reboots. *)

val cascade :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?seeds:int ->
  ?spread:float ->
  ?hop_delay:float ->
  ?mttr:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [seeds] (default 1) initial failures, each spreading to links sharing
    an endpoint with probability [spread] (default 0.5) after roughly
    [hop_delay] (default 0.5) time units per hop; the whole cascade then
    repairs staggered. *)

val flap_storm :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?links:int ->
  ?period:float ->
  ?duty_down:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [links] (default 2) distinct links flapping with the given [period]
    (default 1.0) and duty cycle, at random start offsets.  Choose
    [period] below a deployment's hold-down to test that damping respects
    the storm (suppresses it), or above it to defeat the hold-down and
    expose the §7 in-flight hazard. *)

val blip :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?blips:int ->
  ?width:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [blips] (default 4) isolated down/up pairs on random links, each
    lasting on the order of [width] (default 0.02) time units — well under
    any realistic detection delay, so an imperfect detector misses them
    while the seed engines (instant knowledge) react to every one. *)

val swap_storm :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  ?links:int ->
  ?cycles:int ->
  ?dwell:float ->
  unit ->
  Pr_sim.Workload.link_event list
(** [links] (default 3) distinct links each making [cycles] (default 2)
    down/up round trips, every state held for at least [dwell] (default
    2.0) time units.  With [dwell] above the control plane's
    reconciliation delay every transition matures into a published epoch
    (no vacuous swaps) — the swap-storm workload behind the
    zero-loss-across-updates campaign. *)

(** {2 Corruption storms}

    Damage to {e state} instead of links: these descriptors name the bad
    byte, the damaged FIB cell, the stale epoch read or the crash point —
    and the corruption campaign ({!Corrupt}), not the timed simulator,
    executes them against the guarded backends. *)

type corruption =
  | Flip_field of { src : int; dst : int; field : int }
      (** a bit-damaged encoded [1 + dd_bits] header field; both backends
          decode it through {!Pr_core.Forward.inject_of_field} *)
  | Raw_header of { src : int; dst : int; dd : float }
      (** an in-flight PR-marked header carrying a raw, possibly
          impossible DD value *)
  | Claim_from of { src : int; dst : int; from_ : int }
      (** a claimed previous hop, possibly not a neighbour of [src] (or
          not a node at all) *)
  | Cell_damage of { table : string; slot : int; value : int }
      (** one damaged cell of a scratch FIB image — [table] is a
          {!damage_tables} name, [slot] is reduced modulo the table's
          length, compiled backend only *)
  | Stale_read of { src : int; dst : int }
      (** a forward on a pinned, superseded epoch *)
  | Crash_point of { after_batch : int }
      (** kill the control plane after {!Pr_fastpath.Fib.Delta} applied
          batch [after_batch] but before {!Pr_fastpath.Swap} published
          it *)

val corruption_name : corruption -> string
(** Stable kebab-case class name. *)

val describe_corruption : corruption -> string
(** One-line description including the locus. *)

val damage_tables : string array
(** The kernel's index-bearing FIB tables eligible for {!Cell_damage}. *)

val corrupt_storm :
  Pr_util.Rng.t -> Pr_topo.Topology.t -> ?events:int -> unit -> corruption list
(** [events] (default 64) descriptors drawn uniformly across the six
    corruption classes, deterministic in the rng. *)

val generate :
  Pr_util.Rng.t ->
  Pr_topo.Topology.t ->
  horizon:float ->
  mix:kind list ->
  Pr_sim.Workload.link_event list
(** Runs every generator in [mix] (in order, sharing the generator state)
    with its defaults and returns the merged, normalised stream.
    {!Corrupt_storm} contributes no link events — draw its descriptors
    with {!corrupt_storm}. *)
