module Graph = Pr_graph.Graph
module Forward = Pr_core.Forward
module Fib = Pr_fastpath.Fib
module Kernel = Pr_fastpath.Kernel
module Swap = Pr_fastpath.Swap
module Journal = Pr_fastpath.Journal
module Rng = Pr_util.Rng

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  seed : int;
  events : int;    (* corruption descriptors to draw *)
  sweep : int;     (* packets swept across each damaged image *)
  batches : int;   (* journalled edit batches per crash point *)
  shortcut : int option;  (* deja-vu hint width armed on every walk *)
}

let default_config topology rotation ~seed =
  {
    topology;
    rotation;
    seed;
    events = 96;
    sweep = 64;
    batches = 6;
    shortcut = None;
  }

type violation = { event : string; detail : string }

type t = {
  injected : int;
  delivered : int;
  accounted : int;   (* accounted drops plus TTL expiries *)
  faults : (string * int) list;  (* Forward.fault_name -> count *)
  crash_recoveries : int;
  stale_reads : int;
  violations : violation list;
}

(* ---- bookkeeping ---- *)

type state = {
  mutable s_injected : int;
  mutable s_delivered : int;
  mutable s_accounted : int;
  fault_counts : (string, int) Hashtbl.t;
  mutable s_crashes : int;
  mutable s_stale : int;
  mutable viol_rev : violation list;
}

let violate st ~event fmt =
  Printf.ksprintf
    (fun detail -> st.viol_rev <- { event; detail } :: st.viol_rev)
    fmt

let count_fault st = function
  | None -> ()
  | Some f ->
      let name = Forward.fault_name f in
      Hashtbl.replace st.fault_counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.fault_counts name))

(* Every verdict of a guarded walk is ledger-closed: delivered, or an
   accounted drop, or a TTL expiry (the loop is itself the account).
   Reaching this function at all means no exception escaped. *)
let account st ~outcome ~fault =
  st.s_injected <- st.s_injected + 1;
  count_fault st fault;
  match (outcome : Forward.outcome) with
  | Forward.Delivered -> st.s_delivered <- st.s_delivered + 1
  | Forward.Dropped_no_interface | Forward.Dropped_unreachable
  | Forward.Dropped_corrupt | Forward.Ttl_exceeded ->
      st.s_accounted <- st.s_accounted + 1

let outcome_name = function
  | Forward.Delivered -> "delivered"
  | Forward.Dropped_no_interface -> "dropped-no-interface"
  | Forward.Dropped_unreachable -> "dropped-unreachable"
  | Forward.Dropped_corrupt -> "dropped-corrupt"
  | Forward.Ttl_exceeded -> "ttl-exceeded"

let fault_opt_name = function None -> "-" | Some f -> Forward.fault_name f

(* ---- header corruption: both backends, verdicts must agree ---- *)

(* Run one possibly-corrupt injected header through the guarded reference
   walk and the guarded kernel; any uncaught exception or verdict/fault
   disagreement is a violation. *)
let differential st ~event ~routing ~cycles ~failures ~dd_bits ~sc_plan kernel
    ~header ~arrived_from ~src ~dst =
  let ref_verdict =
    match
      Forward.run_guarded ~dd_bits ?shortcut:sc_plan ?header ?arrived_from
        ~routing ~cycles ~failures ~src ~dst ()
    with
    | g -> Ok (g.Forward.trace.Forward.outcome, g.Forward.fault)
    | exception e -> Error (Printexc.to_string e)
  in
  let ker_verdict =
    match Kernel.run_one ~dd_bits ?header ?arrived_from kernel ~src ~dst with
    | r -> Ok (r.Kernel.outcome, r.Kernel.fault)
    | exception e -> Error (Printexc.to_string e)
  in
  match (ref_verdict, ker_verdict) with
  | Error e, _ -> violate st ~event "reference backend raised: %s" e
  | _, Error e -> violate st ~event "compiled backend raised: %s" e
  | Ok (ro, rf), Ok (ko, kf) ->
      if ro <> ko || fault_opt_name rf <> fault_opt_name kf then
        violate st ~event "backends disagree: reference %s/%s, compiled %s/%s"
          (outcome_name ro) (fault_opt_name rf) (outcome_name ko)
          (fault_opt_name kf)
      else account st ~outcome:ro ~fault:rf

(* ---- FIB-cell damage: compiled backend, delivered-or-accounted ---- *)

let table_of fib = function
  | "port_node" -> Some (Fib.raw_port_node fib)
  | "node_port" -> Some (Fib.raw_node_port fib)
  | "next_hop_port" -> Some (Fib.raw_next_hop_port fib)
  | "cycle_col" -> Some (Fib.raw_cycle_col fib)
  | "comp_col" -> Some (Fib.raw_comp_col fib)
  | "lfa_off" -> Some (Fib.raw_lfa_off fib)
  | "lfa_ports" -> Some (Fib.raw_lfa_ports fib)
  | _ -> None

let cell_damage st ~event ~base ~dd_bits ~shortcut ~failures rng ~sweep ~table
    ~slot ~value =
  (* The scratch image comes from a codec round-trip: a decoded image
     shares no array with [base] (Delta.recompile shares structure), so
     its cells can be damaged in place without touching the original. *)
  match Fib.Codec.decode ~base (Fib.Codec.encode base) with
  | Error m -> violate st ~event "scratch codec round-trip failed: %s" m
  | Ok scratch -> (
      match table_of scratch table with
      | None -> violate st ~event "unknown damage table %s" table
      | Some arr when Array.length arr = 0 -> ()
      | Some arr ->
          let slot = slot mod Array.length arr in
          arr.(slot) <- value;
          let k = Kernel.create scratch in
          Kernel.set_guard k true;
          Kernel.set_failures k failures;
          Kernel.set_shortcut k shortcut;
          let n = Fib.n scratch in
          for _ = 1 to sweep do
            let src = Rng.int rng n in
            let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
            match Kernel.run_one ~dd_bits k ~src ~dst with
            | r -> account st ~outcome:r.Kernel.outcome ~fault:r.Kernel.fault
            | exception e ->
                violate st ~event
                  "guarded kernel raised on damaged %s[%d]=%d (%d -> %d): %s"
                  table slot value src dst (Printexc.to_string e)
          done)

(* ---- stale-epoch reads ---- *)

let stale_read st ~event ~base ~dd_bits ~shortcut ~failures rng ~src ~dst =
  let store = Swap.create base in
  let old_epoch, old_image = Swap.pin store in
  (* Publish a successor (one random live link administratively down) so
     the pinned read below really is against a superseded epoch. *)
  let g = Fib.graph base in
  let e = Graph.edge g (Rng.int rng (Graph.m g)) in
  (match
     Fib.Delta.apply base
       [ { Fib.Delta.u = e.Graph.u; v = e.Graph.v; change = Fib.Delta.Down } ]
   with
  | Error err ->
      violate st ~event "delta apply failed: %s" (Fib.Delta.describe_error err)
  | Ok (next, _) ->
      ignore (Swap.publish store next);
      let k = Kernel.create old_image in
      Kernel.set_guard k true;
      Kernel.set_failures k failures;
      Kernel.set_shortcut k shortcut;
      (match Kernel.run_one ~dd_bits k ~src ~dst with
      | r ->
          st.s_stale <- st.s_stale + 1;
          account st ~outcome:r.Kernel.outcome ~fault:r.Kernel.fault
      | exception ex ->
          violate st ~event "stale-epoch read raised: %s"
            (Printexc.to_string ex));
      let stats_before = Swap.stats store in
      if stats_before.Swap.retired <> 0 then
        violate st ~event "epoch %d retired while still pinned" old_epoch;
      Swap.unpin store ~epoch:old_epoch;
      let stats_after = Swap.stats store in
      if stats_after.Swap.retired <> 1 then
        violate st ~event "epoch %d failed to retire after last unpin"
          old_epoch;
      if not (Swap.quiescent store) then
        violate st ~event "swap store not quiescent after unpin")

(* ---- crash points and journaled recovery ---- *)

(* One non-redundant administrative edit against the tracked admin
   state. *)
let random_edit rng g ~live ~eff =
  let i = Rng.int rng (Graph.m g) in
  let e = Graph.edge g i in
  if not live.(i) then begin
    live.(i) <- true;
    { Fib.Delta.u = e.Graph.u; v = e.Graph.v; change = Fib.Delta.Up }
  end
  else if Rng.int rng 3 = 0 then begin
    live.(i) <- false;
    { Fib.Delta.u = e.Graph.u; v = e.Graph.v; change = Fib.Delta.Down }
  end
  else begin
    let w = eff.(i) +. 1.0 +. Rng.float rng 4.0 in
    eff.(i) <- w;
    { Fib.Delta.u = e.Graph.u; v = e.Graph.v; change = Fib.Delta.Weight w }
  end

let crash_point st ~event ~base rng ~batches ~after_batch =
  let after_batch = after_batch mod batches in
  let path = Filename.temp_file "prcorrupt" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Journal.writer path with
      | Error m -> violate st ~event "journal open failed: %s" m
      | Ok w ->
          Journal.log_checkpoint w ~seq:0 base;
          let g = Fib.graph base in
          let live = Array.map Fun.id (Fib.raw_live base) in
          let eff =
            Array.init (Graph.m g) (fun i -> (Graph.edge g i).Graph.w)
          in
          let image = ref base in
          let crashed = ref false in
          (try
             for b = 1 to batches do
               if not !crashed then begin
                 let edit = random_edit rng g ~live ~eff in
                 Journal.log_batch w ~seq:b [ edit ];
                 (match Fib.Delta.apply !image [ edit ] with
                 | Error err ->
                     violate st ~event "batch %d rejected: %s" b
                       (Fib.Delta.describe_error err);
                     raise Exit
                 | Ok (next, _) ->
                     image := next;
                     (* The crash window: the batch is journalled and
                        applied, the publish (and its commit marker)
                        never happens. *)
                     if b = after_batch + 1 then crashed := true
                     else Journal.log_commit w ~seq:b)
               end
             done
           with Exit -> ());
          Journal.close w;
          st.s_injected <- st.s_injected + 1;
          (match Journal.recover ~base path with
          | Error m -> violate st ~event "recovery failed: %s" m
          | Ok r ->
              st.s_crashes <- st.s_crashes + 1;
              if not (Fib.equal r.Journal.image !image) then
                violate st ~event
                  "recovered image differs from the journalled topology";
              (* The headline invariant: recovery lands byte-equal to a
                 cold full recompile of the final effective topology. *)
              if not (Fib.equal r.Journal.image (Fib.Delta.recompile !image))
              then
                violate st ~event
                  "recovered image differs from a full recompile";
              if !crashed && r.Journal.uncommitted <> 1 then
                violate st ~event "expected 1 uncommitted batch, found %d"
                  r.Journal.uncommitted);
          (* A torn tail — the legal crash artefact — must not change the
             recovery. *)
          let oc = open_out_gen [ Open_append ] 0o644 path in
          output_string oc "batch 999 0,1,down #deadbeef";
          close_out oc;
          match Journal.recover ~base path with
          | Error m -> violate st ~event "torn-tail recovery failed: %s" m
          | Ok r ->
              if not r.Journal.torn_tail then
                violate st ~event "torn tail not flagged";
              if not (Fib.equal r.Journal.image !image) then
                violate st ~event "torn tail changed the recovered image")

(* ---- the campaign ---- *)

let run config =
  let g = config.topology.Pr_topo.Topology.graph in
  if Graph.n g < 2 then Error "corruption campaign needs at least two nodes"
  else begin
    let routing = Pr_core.Routing.build g in
    let cycles = Pr_core.Cycle_table.build config.rotation in
    match Fib.of_tables ~ports:(Graph.max_degree g) routing cycles with
    | Error e -> Error (Fib.describe_error e)
    | Ok base ->
        let dd_bits = Pr_core.Routing.dd_bits routing in
        let failures = Pr_core.Failure.none g in
        let sc_plan =
          Option.map
            (fun w -> Pr_core.Seen.plan ~nodes:(Graph.n g) ~width:w)
            config.shortcut
        in
        let kernel = Kernel.create base in
        Kernel.set_guard kernel true;
        Kernel.set_failures kernel failures;
        Kernel.set_shortcut kernel config.shortcut;
        let rng = Rng.create ~seed:config.seed in
        let storm =
          Gen.corrupt_storm (Rng.copy rng) config.topology
            ~events:config.events ()
        in
        let st =
          {
            s_injected = 0;
            s_delivered = 0;
            s_accounted = 0;
            fault_counts = Hashtbl.create 8;
            s_crashes = 0;
            s_stale = 0;
            viol_rev = [];
          }
        in
        List.iter
          (fun c ->
            let event = Gen.describe_corruption c in
            match c with
            | Gen.Flip_field { src; dst; field } -> (
                match Forward.inject_of_field ~dd_bits field with
                | Error f ->
                    (* Undecodable wire bytes never reach a walk: the
                       shared decode is the verdict for both backends. *)
                    st.s_injected <- st.s_injected + 1;
                    st.s_accounted <- st.s_accounted + 1;
                    count_fault st (Some f)
                | Ok header ->
                    differential st ~event ~routing ~cycles ~failures ~dd_bits
                      ~sc_plan kernel ~header:(Some header) ~arrived_from:None
                      ~src ~dst)
            | Gen.Raw_header { src; dst; dd } ->
                differential st ~event ~routing ~cycles ~failures ~dd_bits
                  ~sc_plan kernel
                  ~header:(Some { Forward.pr_bit = true; dd_value = dd })
                  ~arrived_from:None ~src ~dst
            | Gen.Claim_from { src; dst; from_ } ->
                differential st ~event ~routing ~cycles ~failures ~dd_bits
                  ~sc_plan kernel
                  ~header:(Some { Forward.pr_bit = true; dd_value = 1.0 })
                  ~arrived_from:(Some from_) ~src ~dst
            | Gen.Cell_damage { table; slot; value } ->
                cell_damage st ~event ~base ~dd_bits ~shortcut:config.shortcut
                  ~failures rng ~sweep:config.sweep ~table ~slot ~value
            | Gen.Stale_read { src; dst } ->
                stale_read st ~event ~base ~dd_bits ~shortcut:config.shortcut
                  ~failures rng ~src ~dst
            | Gen.Crash_point { after_batch } ->
                crash_point st ~event ~base rng ~batches:config.batches
                  ~after_batch)
          storm;
        let faults =
          List.filter_map
            (fun name ->
              Option.map (fun c -> (name, c))
                (Hashtbl.find_opt st.fault_counts name))
            [ "bad-field"; "impossible-dd"; "not-neighbour"; "corrupt-cell";
              "walk-blowup" ]
        in
        Ok
          {
            injected = st.s_injected;
            delivered = st.s_delivered;
            accounted = st.s_accounted;
            faults;
            crash_recoveries = st.s_crashes;
            stale_reads = st.s_stale;
            violations = List.rev st.viol_rev;
          }
  end

let passed t = t.violations = []

let report config t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "corruption campaign: %s, seed %d, %d event(s)%s\n"
    config.topology.Pr_topo.Topology.name config.seed config.events
    (match config.shortcut with
    | None -> ""
    | Some w -> Printf.sprintf ", shortcut width %d" w);
  Printf.bprintf buf
    "  %d walk(s): %d delivered, %d accounted (drop or TTL), 0 uncaught\n"
    (t.delivered + t.accounted) t.delivered t.accounted;
  if t.faults <> [] then begin
    Buffer.add_string buf "  faults:";
    List.iter
      (fun (name, c) -> Printf.bprintf buf " %s=%d" name c)
      t.faults;
    Buffer.add_char buf '\n'
  end;
  Printf.bprintf buf
    "  %d crash recover(ies) byte-equal to full recompile, %d stale-epoch \
     read(s)\n"
    t.crash_recoveries t.stale_reads;
  (match t.violations with
  | [] -> Buffer.add_string buf "  invariants: all hold\n"
  | vs ->
      Printf.bprintf buf "  INVARIANT VIOLATIONS (%d):\n" (List.length vs);
      List.iter
        (fun v -> Printf.bprintf buf "    [%s] %s\n" v.event v.detail)
        vs);
  Buffer.contents buf

(* A replayable artifact for a failed run: `#` comment lines (the
   scenario parser's comment syntax) carrying the config and every
   violation — rerunning `prcli chaos --corrupt` with the recorded
   topology/seed reproduces the campaign deterministically. *)
let repro config t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "# corruption campaign violation artifact\n";
  Printf.bprintf buf
    "# reproduce: prcli chaos %s --corrupt --seed %d --corrupt-events %d%s\n"
    config.topology.Pr_topo.Topology.name config.seed config.events
    (match config.shortcut with
    | None -> ""
    | Some w -> Printf.sprintf " --shortcut %d" w);
  List.iter
    (fun v -> Printf.bprintf buf "# violation: [%s] %s\n" v.event v.detail)
    t.violations;
  Buffer.contents buf
