module Graph = Pr_graph.Graph
module Workload = Pr_sim.Workload
module Rng = Pr_util.Rng

type kind =
  | Srlg
  | Regional
  | Node_crash
  | Cascade
  | Flap_storm
  | Blip
  | Swap_storm
  | Corrupt_storm

(* Later generators are appended last so the shared-rng draw order of the
   earlier ones — and with it every existing seeded campaign — is
   unchanged. *)
let all =
  [ Srlg; Regional; Node_crash; Cascade; Flap_storm; Blip; Swap_storm;
    Corrupt_storm ]

let name = function
  | Srlg -> "srlg"
  | Regional -> "regional"
  | Node_crash -> "crash"
  | Cascade -> "cascade"
  | Flap_storm -> "flap"
  | Blip -> "blip"
  | Swap_storm -> "swap"
  | Corrupt_storm -> "corrupt"

let of_name s =
  match List.find_opt (fun k -> name k = s) all with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown generator %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

let canon u v = if u < v then (u, v) else (v, u)

let normalise events =
  let events =
    List.stable_sort
      (fun (a : Workload.link_event) (b : Workload.link_event) ->
        Float.compare a.time b.time)
      events
  in
  let state = Hashtbl.create 16 in
  List.filter
    (fun (e : Workload.link_event) ->
      let key = canon e.u e.v in
      let up_now = Option.value ~default:true (Hashtbl.find_opt state key) in
      if e.up = up_now then false
      else begin
        Hashtbl.replace state key e.up;
        true
      end)
    events

let down_event time (e : Graph.edge) =
  { Workload.time; u = e.u; v = e.v; up = false }

let up_event time (e : Graph.edge) =
  { Workload.time; u = e.u; v = e.v; up = true }

let srlg rng (topo : Pr_topo.Topology.t) ~horizon ?(groups = 3)
    ?mtbf ?mttr () =
  if horizon <= 0.0 then invalid_arg "Gen.srlg: horizon must be positive";
  let mtbf = Option.value ~default:(horizon /. 2.0) mtbf in
  let mttr = Option.value ~default:(horizon /. 10.0) mttr in
  let g = topo.Pr_topo.Topology.graph in
  let m = Graph.m g in
  let idx = Array.init m Fun.id in
  Rng.shuffle rng idx;
  let groups = max 1 (min groups m) in
  let members = Array.make groups [] in
  Array.iteri (fun i e -> members.(i mod groups) <- e :: members.(i mod groups)) idx;
  let events = ref [] in
  Array.iter
    (fun links ->
      let links = List.sort compare links in
      let rec cycle t =
        let down_at = t +. Workload.exponential rng ~mean:mtbf in
        if down_at <= horizon then begin
          List.iter
            (fun i -> events := down_event down_at (Graph.edge g i) :: !events)
            links;
          (* Repair crews restore the group's members one by one. *)
          let latest =
            List.fold_left
              (fun acc i ->
                let up_at = down_at +. Workload.exponential rng ~mean:mttr in
                if up_at <= horizon then
                  events := up_event up_at (Graph.edge g i) :: !events;
                Float.max acc up_at)
              down_at links
          in
          cycle latest
        end
      in
      cycle 0.0)
    members;
  normalise !events

let bbox_diagonal (topo : Pr_topo.Topology.t) =
  let coords = topo.Pr_topo.Topology.coords in
  let xs = Array.map fst coords and ys = Array.map snd coords in
  let spread a =
    Array.fold_left Float.max neg_infinity a
    -. Array.fold_left Float.min infinity a
  in
  let dx = spread xs and dy = spread ys in
  Float.max 1e-9 (Float.hypot dx dy)

let regional rng (topo : Pr_topo.Topology.t) ~horizon ?(outages = 2)
    ?(radius = 0.35) () =
  if horizon <= 0.0 then invalid_arg "Gen.regional: horizon must be positive";
  let g = topo.Pr_topo.Topology.graph in
  let coords = topo.Pr_topo.Topology.coords in
  let reach = radius *. bbox_diagonal topo in
  let events = ref [] in
  for _ = 1 to outages do
    let centre = Rng.int rng (Graph.n g) in
    let cx, cy = coords.(centre) in
    let inside v =
      let x, y = coords.(v) in
      Float.hypot (x -. cx) (y -. cy) <= reach
    in
    let start = Rng.float rng (0.8 *. horizon) in
    let repair = start +. ((0.05 +. Rng.float rng 0.15) *. horizon) in
    Graph.iter_edges
      (fun _ (e : Graph.edge) ->
        if inside e.u || inside e.v then begin
          events := down_event start e :: !events;
          let up_at = repair +. Rng.float rng (0.05 *. horizon) in
          if up_at <= horizon then events := up_event up_at e :: !events
        end)
      g
  done;
  normalise !events

let node_crash rng (topo : Pr_topo.Topology.t) ~horizon ?(crashes = 3)
    ?mttr () =
  if horizon <= 0.0 then invalid_arg "Gen.node_crash: horizon must be positive";
  let mttr = Option.value ~default:(horizon /. 8.0) mttr in
  let g = topo.Pr_topo.Topology.graph in
  let events = ref [] in
  for _ = 1 to crashes do
    let v = Rng.int rng (Graph.n g) in
    let at = Rng.float rng (0.9 *. horizon) in
    let back = at +. Workload.exponential rng ~mean:mttr in
    Array.iter
      (fun w ->
        let e = Graph.edge g (Graph.edge_index g v w) in
        events := down_event at e :: !events;
        if back <= horizon then events := up_event back e :: !events)
      (Graph.neighbours g v)
  done;
  normalise !events

let cascade rng (topo : Pr_topo.Topology.t) ~horizon ?(seeds = 1)
    ?(spread = 0.5) ?(hop_delay = 0.5) ?mttr () =
  if horizon <= 0.0 then invalid_arg "Gen.cascade: horizon must be positive";
  let mttr = Option.value ~default:(horizon /. 5.0) mttr in
  let g = topo.Pr_topo.Topology.graph in
  let events = ref [] in
  for _ = 1 to seeds do
    let seed_edge = Rng.int rng (Graph.m g) in
    let t0 = Rng.float rng (0.5 *. horizon) in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited seed_edge ();
    let failed = ref [] in
    (* Breadth-first spread over the line graph: an overloaded link pulls
       down links sharing an endpoint with it. *)
    let queue = Queue.create () in
    Queue.add (seed_edge, t0) queue;
    while not (Queue.is_empty queue) do
      let i, t = Queue.pop queue in
      if t <= horizon then begin
        events := down_event t (Graph.edge g i) :: !events;
        failed := (i, t) :: !failed;
        let e = Graph.edge g i in
        List.iter
          (fun endpoint ->
            Array.iter
              (fun w ->
                let j = Graph.edge_index g endpoint w in
                if not (Hashtbl.mem visited j) && Rng.float rng 1.0 < spread
                then begin
                  Hashtbl.replace visited j ();
                  Queue.add (j, t +. (hop_delay *. (0.5 +. Rng.float rng 1.0))) queue
                end)
              (Graph.neighbours g endpoint))
          [ e.u; e.v ]
      end
    done;
    let settle =
      List.fold_left (fun acc (_, t) -> Float.max acc t) t0 !failed
    in
    List.iter
      (fun (i, _) ->
        let up_at = settle +. Workload.exponential rng ~mean:mttr in
        if up_at <= horizon then events := up_event up_at (Graph.edge g i) :: !events)
      (List.rev !failed)
  done;
  normalise !events

let flap_storm rng (topo : Pr_topo.Topology.t) ~horizon ?(links = 2)
    ?(period = 1.0) ?(duty_down = 0.4) () =
  if horizon <= 0.0 then invalid_arg "Gen.flap_storm: horizon must be positive";
  if period <= 0.0 then invalid_arg "Gen.flap_storm: period must be positive";
  let g = topo.Pr_topo.Topology.graph in
  let links = max 1 (min links (Graph.m g)) in
  let chosen = Rng.sample_without_replacement rng ~k:links ~n:(Graph.m g) in
  let events = ref [] in
  List.iter
    (fun i ->
      let e = Graph.edge g i in
      let offset = Rng.float rng (0.2 *. horizon) in
      let flaps =
        max 1 (int_of_float (Float.round ((0.8 *. horizon) /. period)))
      in
      let storm =
        Workload.flapping_link rng ~u:e.u ~v:e.v ~period ~duty_down ~flaps
      in
      List.iter
        (fun (ev : Workload.link_event) ->
          let time = ev.time +. offset in
          if time <= horizon then events := { ev with time } :: !events)
        storm)
    chosen;
  normalise !events

let blip rng (topo : Pr_topo.Topology.t) ~horizon ?(blips = 4) ?(width = 0.02)
    () =
  if horizon <= 0.0 then invalid_arg "Gen.blip: horizon must be positive";
  if width <= 0.0 then invalid_arg "Gen.blip: width must be positive";
  let g = topo.Pr_topo.Topology.graph in
  let events = ref [] in
  (* Down/up pairs far shorter than any realistic detection delay: a
     perfect-knowledge router reacts to every one, an imperfect detector
     should miss most of them entirely. *)
  for _ = 1 to blips do
    let e = Graph.edge g (Rng.int rng (Graph.m g)) in
    let at = Rng.float rng (0.95 *. horizon) in
    let back = at +. (width *. (0.5 +. Rng.float rng 1.0)) in
    events := down_event at e :: !events;
    if back <= horizon then events := up_event back e :: !events
  done;
  normalise !events

let swap_storm rng (topo : Pr_topo.Topology.t) ~horizon ?(links = 3)
    ?(cycles = 2) ?(dwell = 2.0) () =
  if horizon <= 0.0 then invalid_arg "Gen.swap_storm: horizon must be positive";
  if dwell <= 0.0 then invalid_arg "Gen.swap_storm: dwell must be positive";
  let g = topo.Pr_topo.Topology.graph in
  let links = max 1 (min links (Graph.m g)) in
  let chosen = Rng.sample_without_replacement rng ~k:links ~n:(Graph.m g) in
  let events = ref [] in
  (* Every transition dwells well past a control plane's reconciliation
     delay, so each one matures into a published epoch instead of the
     vacuous (flapped-back) swaps that blips and flap storms produce —
     the maximum-churn workload for the hot-swap path. *)
  List.iter
    (fun i ->
      let e = Graph.edge g i in
      let t = ref (Rng.float rng (0.2 *. horizon)) in
      for _ = 1 to cycles do
        let down_at = !t in
        let up_at = down_at +. dwell +. Rng.float rng dwell in
        if down_at <= horizon then events := down_event down_at e :: !events;
        if up_at <= horizon then events := up_event up_at e :: !events;
        t := up_at +. dwell +. Rng.float rng dwell
      done)
    chosen;
  normalise !events

(* ---- corruption storms ----

   Unlike every generator above, a corruption storm does not damage
   links — it damages {e state}: bytes in flight (the encoded
   [1 + dd_bits] header field), cells of a compiled FIB image, reads
   against a superseded epoch, and the control plane's own process
   (crash points between apply and publish).  So its output is a list of
   corruption descriptors, not link events, and the corruption campaign
   ({!Corrupt}) — not the timed simulator — executes them. *)

type corruption =
  | Flip_field of { src : int; dst : int; field : int }
      (* bit-damaged encoded header field, decoded by both backends *)
  | Raw_header of { src : int; dst : int; dd : float }
      (* in-flight PR-marked header with a raw, possibly impossible DD *)
  | Claim_from of { src : int; dst : int; from_ : int }
      (* claimed previous hop, possibly not a neighbour of [src] *)
  | Cell_damage of { table : string; slot : int; value : int }
      (* one damaged cell of a scratch FIB image (compiled backend) *)
  | Stale_read of { src : int; dst : int }
      (* forward on a pinned superseded epoch *)
  | Crash_point of { after_batch : int }
      (* kill the control plane between Delta apply and Swap publish *)

let corruption_name = function
  | Flip_field _ -> "flip-field"
  | Raw_header _ -> "raw-header"
  | Claim_from _ -> "claim-from"
  | Cell_damage _ -> "cell-damage"
  | Stale_read _ -> "stale-read"
  | Crash_point _ -> "crash-point"

let describe_corruption = function
  | Flip_field { src; dst; field } ->
      Printf.sprintf "flip-field %d -> %d field %d" src dst field
  | Raw_header { src; dst; dd } ->
      Printf.sprintf "raw-header %d -> %d dd %h" src dst dd
  | Claim_from { src; dst; from_ } ->
      Printf.sprintf "claim-from %d -> %d from %d" src dst from_
  | Cell_damage { table; slot; value } ->
      Printf.sprintf "cell-damage %s[%d] <- %d" table slot value
  | Stale_read { src; dst } -> Printf.sprintf "stale-read %d -> %d" src dst
  | Crash_point { after_batch } ->
      Printf.sprintf "crash-point after batch %d" after_batch

(* The kernel's index-bearing tables, by the names {!Corrupt} resolves. *)
let damage_tables =
  [| "port_node"; "node_port"; "next_hop_port"; "cycle_col"; "comp_col";
     "lfa_off"; "lfa_ports" |]

let corrupt_storm rng (topo : Pr_topo.Topology.t) ?(events = 64) () =
  let n = Graph.n topo.Pr_topo.Topology.graph in
  if n < 2 then invalid_arg "Gen.corrupt_storm: need at least two nodes";
  let pair () =
    let src = Rng.int rng n in
    (src, (src + 1 + Rng.int rng (n - 1)) mod n)
  in
  List.init events (fun _ ->
      match Rng.int rng 6 with
      | 0 ->
          let src, dst = pair () in
          (* Low fields decode (possibly to a PR-marked header with junk
             DD bits); high and negative ones must come back as the
             bad-field fault, never an exception. *)
          let field =
            let raw = Rng.int rng (1 lsl 16) in
            if Rng.int rng 4 = 0 then -raw - 1 else raw
          in
          Flip_field { src; dst; field }
      | 1 ->
          let src, dst = pair () in
          let dd =
            match Rng.int rng 5 with
            | 0 -> Float.nan
            | 1 -> Float.infinity
            | 2 -> -1.0 -. Rng.float rng 100.0
            | 3 -> 1e9 +. Rng.float rng 1e9
            | _ -> Rng.float rng 8.0
          in
          Raw_header { src; dst; dd }
      | 2 ->
          let src, dst = pair () in
          Claim_from { src; dst; from_ = Rng.int rng (n + 2) - 1 }
      | 3 ->
          let table =
            damage_tables.(Rng.int rng (Array.length damage_tables))
          in
          let value =
            match Rng.int rng 4 with
            | 0 -> -2
            | 1 -> max_int / 2
            | 2 -> n + Rng.int rng (8 * n)
            | _ -> Rng.int rng (2 * n)
          in
          Cell_damage { table; slot = Rng.int rng 1_000_000; value }
      | 4 ->
          let src, dst = pair () in
          Stale_read { src; dst }
      | _ -> Crash_point { after_batch = Rng.int rng 6 })

let generate rng topo ~horizon ~mix =
  let events =
    List.concat_map
      (fun kind ->
        match kind with
        | Srlg -> srlg rng topo ~horizon ()
        | Regional -> regional rng topo ~horizon ()
        | Node_crash -> node_crash rng topo ~horizon ()
        | Cascade -> cascade rng topo ~horizon ()
        | Flap_storm -> flap_storm rng topo ~horizon ()
        | Blip -> blip rng topo ~horizon ()
        | Swap_storm -> swap_storm rng topo ~horizon ()
        (* Corruption is not a link-event stream; {!corrupt_storm} feeds
           the corruption campaign instead. *)
        | Corrupt_storm -> [])
      mix
  in
  normalise events
