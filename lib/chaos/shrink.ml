let violates (s : Scenario.t) =
  match Scenario.check s with
  | Ok (monitor, _) -> Monitor.total monitor > 0
  | Error _ -> false

let first_violation (s : Scenario.t) =
  match Scenario.check s with
  | Ok (monitor, _) -> (
      match Monitor.recorded monitor with v :: _ -> Some v | [] -> None)
  | Error _ -> None

(* Keep candidate event lists well-formed: removing a down can leave its
   up redundant (and vice versa); normalising repairs the alternation the
   validators require. *)
let with_events (s : Scenario.t) events =
  { s with Scenario.link_events = Gen.normalise events }

let drop_chunk list ~start ~len =
  List.filteri (fun i _ -> i < start || i >= start + len) list

(* ddmin-style: remove progressively smaller chunks while the violation
   persists. *)
let minimise_events (s : Scenario.t) =
  let rec at_granularity s chunk =
    if chunk < 1 then s
    else begin
      let events = s.Scenario.link_events in
      let len = List.length events in
      let rec try_from start =
        if start >= len then None
        else
          let candidate = with_events s (drop_chunk events ~start ~len:chunk) in
          if List.length candidate.Scenario.link_events < len
             && violates candidate
          then Some candidate
          else try_from (start + chunk)
      in
      match try_from 0 with
      | Some smaller -> at_granularity smaller chunk
      | None -> at_granularity s (chunk / 2)
    end
  in
  let len = List.length s.Scenario.link_events in
  if len = 0 then s else at_granularity s (max 1 (len / 2))

let minimise_injections (s : Scenario.t) =
  match s.Scenario.injections with
  | [] | [ _ ] -> s
  | injections -> (
      (* The monitors are per-packet and packets never interact, so the
         injection behind the first violation almost always suffices. *)
      let single =
        match first_violation s with
        | None -> None
        | Some v ->
            List.find_opt
              (fun (i : Pr_sim.Workload.injection) ->
                i.time = v.Monitor.time && i.src = v.Monitor.src
                && i.dst = v.Monitor.dst)
              injections
      in
      match single with
      | Some inj when violates { s with Scenario.injections = [ inj ] } ->
          { s with Scenario.injections = [ inj ] }
      | Some _ | None ->
          (* Fall back to greedy one-at-a-time removal. *)
          let rec pass s =
            let injections = s.Scenario.injections in
            let shrunk =
              List.find_map
                (fun i ->
                  let smaller = List.filter (fun i' -> i' != i) injections in
                  let candidate = { s with Scenario.injections = smaller } in
                  if smaller <> [] && violates candidate then Some candidate
                  else None)
                injections
            in
            match shrunk with Some smaller -> pass smaller | None -> s
          in
          pass s)

let minimise (s : Scenario.t) =
  if not (violates s) then s
  else begin
    let s = minimise_injections s in
    let s = minimise_events s in
    minimise_injections s
  end
