(** Self-contained, replayable chaos scenarios.

    A scenario freezes everything a run depends on — graph, rotation
    system, scheme, hold-down, and the timed workload — into one value
    with a stable text form, so a shrunk counterexample can be saved,
    attached to a bug report, and replayed byte-for-byte later
    ([prcli chaos --replay]).  {!to_string} is injective up to float
    round-trip ([%.17g]), so [to_string (of_string (to_string s))] equals
    [to_string s] exactly. *)

type t = {
  name : string;
  graph : Pr_graph.Graph.t;
  orders : int list array;  (** the rotation system, per node *)
  scheme : Pr_sim.Engine.scheme;
  hold_down : float;        (** 0 disables damping *)
  link_events : Pr_sim.Workload.link_event list;
  injections : Pr_sim.Workload.injection list;
}

val make :
  name:string ->
  topology:Pr_topo.Topology.t ->
  rotation:Pr_embed.Rotation.t ->
  scheme:Pr_sim.Engine.scheme ->
  hold_down:float ->
  link_events:Pr_sim.Workload.link_event list ->
  injections:Pr_sim.Workload.injection list ->
  t

val rotation : t -> Pr_embed.Rotation.t

val termination : t -> Pr_core.Forward.termination
(** The PR termination the scheme uses ({!Pr_core.Forward.Distance_discriminator}
    for non-PR schemes — what the monitors replay traces against). *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Errors carry the 1-based line number. *)

val save : string -> t -> unit

val load : string -> (t, string) result

val run :
  ?observer:Pr_sim.Engine.observer ->
  t ->
  (Pr_sim.Engine.outcome, string) result
(** Applies the hold-down to the link events, then replays through
    {!Pr_sim.Engine.run}.  Deterministic: same scenario, same outcome. *)

val check : t -> (Monitor.t * Pr_sim.Engine.outcome, string) result
(** {!run} with a fresh {!Monitor} attached — the predicate the shrinker
    minimises against. *)
