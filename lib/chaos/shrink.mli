(** Greedy minimisation of violating chaos scenarios.

    {!Pr_exp.Counterexample} shrinks a static failure set; this is the
    timed analogue: given a scenario on which some invariant monitor
    fires, produce a smaller scenario that still fires.  The procedure
    is deterministic:

    + reduce the packet workload to the single injection behind the
      first recorded violation (falling back to greedy removal when the
      violation needs several packets);
    + delta-debug the link-event schedule — remove exponentially
      shrinking chunks, then single events — renormalising each
      candidate so per-link alternation is preserved;
    + repeat the injection pass, then stop at a fixpoint.

    The result is the artifact worth keeping: a handful of events and one
    packet that reproduce the violation under [prcli chaos --replay]. *)

val violates : Scenario.t -> bool
(** Does any monitor fire on this scenario?  (Scenarios that fail to run
    at all — malformed after editing by hand — count as non-violating.) *)

val minimise : Scenario.t -> Scenario.t
(** The shrunk scenario; the input itself when it does not violate.
    Guaranteed to still satisfy {!violates} when the input did. *)
