(** The corruption campaign: execute {!Gen.corrupt_storm} descriptors
    against the guarded backends and check the robustness invariants.

    Where {!Campaign} stresses the protocol with correlated {e link}
    faults, this campaign damages {e state}: header bit-flips and
    impossible injected fields run through both guarded engines
    ({!Pr_core.Forward.run_guarded} and the guard-mode
    {!Pr_fastpath.Kernel}) with their verdicts compared; FIB-cell junk is
    written into a codec-deep-copied scratch image and swept with guarded
    traffic; stale-epoch reads go through a {!Pr_fastpath.Swap} store
    under pin accounting; and crash points kill a journalled control
    plane between {!Pr_fastpath.Fib.Delta} apply and publication, then
    check {!Pr_fastpath.Journal.recover}.

    The invariants, all recorded as {!violation}s rather than raised:

    - no uncaught exception escapes a guarded walk, however damaged the
      input — every packet is delivered or dropped with an accounted
      fault reason;
    - the two backends agree on outcome and fault class for every
      injected header;
    - a post-crash recovered image is byte-equal
      ({!Pr_fastpath.Fib.equal}) to both the journalled topology and a
      full recompile of it, with a torn journal tail tolerated;
    - superseded epochs retire exactly at their last unpin and the store
      ends quiescent. *)

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  seed : int;
  events : int;  (** corruption descriptors to draw *)
  sweep : int;   (** packets swept across each damaged image *)
  batches : int; (** journalled edit batches per crash point *)
  shortcut : int option;
      (** deja-vu shortcut-rung hint width, armed symmetrically on the
          guarded reference walk and every guarded kernel the campaign
          builds — the shortcut-differential regime: same agreement and
          delivered-or-accounted invariants, no new drop reasons *)
}

val default_config :
  Pr_topo.Topology.t -> Pr_embed.Rotation.t -> seed:int -> config
(** 96 events, 64-packet sweeps, 6-batch journals, shortcut disarmed. *)

type violation = { event : string; detail : string }
(** One broken invariant: the corruption descriptor that exposed it and a
    one-line diagnosis. *)

type t = {
  injected : int;        (** corrupt walks and recoveries exercised *)
  delivered : int;
  accounted : int;       (** accounted drops plus TTL expiries *)
  faults : (string * int) list;
      (** {!Pr_core.Forward.fault_name} class -> detections *)
  crash_recoveries : int;
  stale_reads : int;
  violations : violation list;  (** empty iff the campaign passed *)
}

val run : config -> (t, string) result
(** Execute the campaign.  [Error] only on setup problems (a degenerate
    topology, tables that do not compile); invariant breaks are reported
    in [violations], never raised. *)

val passed : t -> bool

val report : config -> t -> string
(** Multi-line human summary. *)

val repro : config -> t -> string
(** Replayable [.chaos]-artifact text for a failed run: comment lines
    carrying the reproducing command and every violation. *)
