module Graph = Pr_graph.Graph
module Engine = Pr_sim.Engine
module Timed = Pr_sim.Timed
module Forward = Pr_core.Forward
module Trace = Pr_telemetry.Trace

type violation = {
  monitor : string;
  time : float;
  src : int;
  dst : int;
  detail : string;
  trace : string option;
}

(* ["swap"] is appended last so per-monitor count orderings (and the
   report layout) of pre-control campaigns are unchanged. *)
let monitor_names =
  [ "delivery"; "loop"; "dd-width"; "hold-down"; "detection"; "swap" ]

(* Per-packet cycle-following state for the timed hold-down monitor. *)
type flight = { mutable seen_down : (int * int) list }

type t = {
  routing : Pr_core.Routing.t;
  cycles : Pr_core.Cycle_table.t;
  termination : Pr_core.Forward.termination;
  detection : Pr_sim.Detector.config option;
  control : bool;
  max_recorded : int;
  counts : (string, int) Hashtbl.t;
  mutable recorded_rev : violation list;
  mutable recorded_n : int;
  mutable excused_n : int;
  mutable swap_epoch : int;
  mutable swap_admin : (int * int) list;
  flights : (int, flight) Hashtbl.t;
}

let create ?(max_recorded = 32) ?detection ?(control = false) ~routing ~cycles
    ~termination () =
  {
    routing;
    cycles;
    termination;
    detection;
    control;
    max_recorded;
    counts = Hashtbl.create 8;
    recorded_rev = [];
    recorded_n = 0;
    excused_n = 0;
    swap_epoch = 0;
    swap_admin = [];
    flights = Hashtbl.create 64;
  }

let record ?trace t monitor ~time ~src ~dst detail =
  Hashtbl.replace t.counts monitor
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts monitor));
  if t.recorded_n < t.max_recorded then begin
    t.recorded_rev <-
      { monitor; time; src; dst; detail; trace } :: t.recorded_rev;
    t.recorded_n <- t.recorded_n + 1
  end

(* Re-run the offending packet through the reference walk with a ring
   sink attached and render the hop trace — the flight recording filed
   with delivery/loop violations.  Truth-based, so only sound without a
   detection config (where the engine's own walk is [Forward.run] over
   the frozen failure set) and without a live control plane (where the
   engine no longer forwards on the base tables after the first swap);
   capped with the recorded-details cap. *)
let capture_trace t ~failures ~src ~dst () =
  if t.detection <> None || t.control || t.recorded_n >= t.max_recorded then
    None
  else
    let ring = Trace.Ring.create () in
    match
      Forward.run ~termination:t.termination ~routing:t.routing
        ~cycles:t.cycles ~failures
        ~trace:(Trace.Ring.sink ring)
        ~src ~dst ()
    with
    | (_ : Forward.trace) -> Some (Trace.render (Trace.Ring.events ring))
    | exception Invalid_argument _ -> None

let count t monitor = Option.value ~default:0 (Hashtbl.find_opt t.counts monitor)

let total t = List.fold_left (fun acc m -> acc + count t m) 0 monitor_names

let recorded t = List.rev t.recorded_rev

let excused t = t.excused_n

let dd_bits t = Pr_core.Routing.dd_bits t.routing

let check_dd_header t ~time ~src ~dst (header : Pr_core.Header.t) =
  match Pr_core.Header.encode ~dd_bits:(dd_bits t) header with
  | (_ : int) -> ()
  | exception Invalid_argument _ ->
      record t "dd-width" ~time ~src ~dst
        (Printf.sprintf "header DD %d does not fit the %d DD bits this topology needs"
           header.Pr_core.Header.dd (dd_bits t))

let verdict_name = function
  | Engine.Delivered _ -> "delivered"
  | Engine.Dropped -> "dropped"
  | Engine.Looped -> "looped"
  | Engine.Unreachable -> "unreachable"

let canon u v = if u < v then (u, v) else (v, u)

let engine_observer t =
  let on_link ~time:_ ~u:_ ~v:_ ~up:_ ~changed:_ = () in
  (* Control-plane bookkeeping: epochs must arrive gapless and in order,
     and each published admin-down set must be the previous one edited at
     exactly the swapped link. *)
  let on_swap ~time (info : Engine.swap_info) =
    let u, v = info.Engine.link in
    if info.Engine.epoch <> t.swap_epoch + 1 then
      record t "swap" ~time ~src:u ~dst:v
        (Printf.sprintf "epoch %d published after epoch %d (expected %d)"
           info.Engine.epoch t.swap_epoch (t.swap_epoch + 1));
    let link = canon u v in
    let down = List.map (fun (a, b) -> canon a b) info.Engine.admin_down in
    if info.Engine.admin_up = List.mem link down then
      record t "swap" ~time ~src:u ~dst:v
        (Printf.sprintf
           "admin state of link %d-%d disagrees with the published admin-down set"
           u v);
    let expected =
      if info.Engine.admin_up then List.filter (fun l -> l <> link) t.swap_admin
      else if List.mem link t.swap_admin then t.swap_admin
      else link :: t.swap_admin
    in
    if List.sort compare down <> List.sort compare expected then
      record t "swap" ~time ~src:u ~dst:v
        "published admin-down set is not the previous set edited at the swapped link";
    t.swap_epoch <- info.Engine.epoch;
    t.swap_admin <- down
  in
  let on_packet ~time ~src ~dst ~failures ~quiesced ~verdict ~trace =
    let g = Pr_core.Routing.graph t.routing in
    (* Independent connectivity check, frozen at injection time. *)
    let connected =
      Pr_graph.Connectivity.same_component
        ~blocked:(Pr_core.Failure.is_failed_index failures)
        g src dst
    in
    (* Truth-based sanity holds with or without detection: nothing crosses
       a partition, and a connected pair is never filed as unreachable. *)
    (match (connected, verdict) with
    | true, Engine.Unreachable ->
        record t "delivery" ~time ~src ~dst
          "engine classified a connected pair as unreachable"
    | false, Engine.Delivered _ ->
        record t "delivery" ~time ~src ~dst
          "delivered across a partition (connectivity check disagrees)"
    | _ -> ());
    (match (connected, verdict) with
    | true, (Engine.Dropped | Engine.Looped) -> (
        (* With a live control plane and at least one published swap, a
           loss on a still-connected pair is charged to the swap — the
           zero-loss-across-updates invariant.  [failures] (and hence
           [connected]) already folds the administrative removals in. *)
        let swap_attributed = t.control && t.swap_epoch > 0 in
        match t.detection with
        | None ->
            (* The seed invariant: connected implies delivered. *)
            record
              ?trace:(capture_trace t ~failures ~src ~dst ())
              t
              (if swap_attributed then "swap" else "delivery")
              ~time ~src ~dst
              (Printf.sprintf "%s although still connected under %s"
                 (verdict_name verdict)
                 (Format.asprintf "%a" Pr_core.Failure.pp failures))
        | Some _ ->
            (* Weakened-but-honest: losses are excused only while some
               detector belief still disagrees with the truth. *)
            if quiesced then
              record t
                (if swap_attributed then "swap" else "detection")
                ~time ~src ~dst
                (Printf.sprintf
                   "%s although detection had quiesced and the pair was connected"
                   (verdict_name verdict))
            else t.excused_n <- t.excused_n + 1)
    | _ -> ());
    (* The loop monitor re-decides the trace against the global truth; with
       detection it is meaningful only when beliefs match that truth and
       the budget guard cannot divert the walk, and with a live control
       plane not at all — the model checker replays the base tables the
       engine may have swapped away from. *)
    let loop_check_applies =
      (not t.control)
      &&
      match t.detection with
      | None -> true
      | Some cfg -> quiesced && cfg.Pr_sim.Detector.budget_guard = 0
    in
    match trace with
    | None -> ()
    | Some (tr : Forward.trace) ->
        (* Exact loop freedom by state recurrence, not TTL. *)
        if loop_check_applies then
          (match
             Pr_exp.Modelcheck.verdict ~termination:t.termination
               ~routing:t.routing ~cycles:t.cycles ~failures ~src ~dst ()
           with
          | Pr_exp.Modelcheck.Loops hops ->
              record
                ?trace:(capture_trace t ~failures ~src ~dst ())
                t "loop" ~time ~src ~dst
                (Printf.sprintf "state recurrence after %d hops" hops)
          | Pr_exp.Modelcheck.Delivers _ ->
              if tr.Forward.outcome <> Forward.Delivered then
                record
                  ?trace:(capture_trace t ~failures ~src ~dst ())
                  t "loop" ~time ~src ~dst
                  "model checker delivers but the engine did not"
          | Pr_exp.Modelcheck.Drops ->
              (match tr.Forward.outcome with
              | Forward.Dropped_no_interface | Forward.Dropped_unreachable
              | Forward.Dropped_corrupt ->
                  ()
              | Forward.Delivered | Forward.Ttl_exceeded ->
                  record
                    ?trace:(capture_trace t ~failures ~src ~dst ())
                    t "loop" ~time ~src ~dst
                    "model checker drops but the engine did not"));
        check_dd_header t ~time ~src ~dst tr.Forward.max_header
  in
  { Engine.on_link; on_swap; on_packet }

let timed_observer t =
  let on_link ~time:_ ~u:_ ~v:_ ~up:_ ~changed:_ = () in
  let on_hop ~net (hop : Timed.hop) =
    (* DD width of every header actually written to the wire. *)
    (match hop.Timed.sent with
    | Some (_, (h : Forward.hop_header)) when h.Forward.pr_bit ->
        check_dd_header t ~time:hop.Timed.time ~src:hop.Timed.src
          ~dst:hop.Timed.dst
          {
            Pr_core.Header.pr = true;
            dd = Pr_core.Routing.quantise_dd t.routing h.Forward.dd_value;
          }
    | Some _ | None -> ());
    (* §7 hazard: while one cycle-following episode lasts, remember the
       links this packet saw down and flag the moment it crosses one. *)
    let cycle_following_in = hop.Timed.header.Forward.pr_bit in
    let cycle_following_out =
      match hop.Timed.sent with
      | Some (_, h) -> h.Forward.pr_bit
      | None -> false
    in
    let flight =
      match Hashtbl.find_opt t.flights hop.Timed.id with
      | Some f -> f
      | None ->
          let f = { seen_down = [] } in
          Hashtbl.replace t.flights hop.Timed.id f;
          f
    in
    if not cycle_following_in then flight.seen_down <- [];
    (match hop.Timed.sent with
    | Some (next, _) when cycle_following_in ->
        let link = canon hop.Timed.node next in
        if List.mem link flight.seen_down then
          record t "hold-down" ~time:hop.Timed.time ~src:hop.Timed.src
            ~dst:hop.Timed.dst
            (Printf.sprintf
               "packet crossed link %d-%d it saw down earlier in the same cycle-following episode"
               (fst link) (snd link))
    | Some _ | None -> ());
    if cycle_following_in || cycle_following_out then begin
      let g = Pr_sim.Netstate.graph net in
      Array.iter
        (fun w ->
          if not (Pr_sim.Netstate.is_up net hop.Timed.node w) then begin
            let link = canon hop.Timed.node w in
            if not (List.mem link flight.seen_down) then
              flight.seen_down <- link :: flight.seen_down
          end)
        (Graph.neighbours g hop.Timed.node)
    end;
    if hop.Timed.sent = None then Hashtbl.remove t.flights hop.Timed.id
  in
  { Timed.on_link; on_hop }

let report t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "invariant violations: %d\n" (total t);
  if t.excused_n > 0 then
    Printf.bprintf buf
      "  (%d losses excused: detection had not quiesced)\n" t.excused_n;
  List.iter
    (fun m -> Printf.bprintf buf "  %-10s %d\n" m (count t m))
    monitor_names;
  let shown = recorded t in
  if shown <> [] then begin
    Printf.bprintf buf "first %d in detail:\n" (List.length shown);
    List.iter
      (fun v ->
        Printf.bprintf buf "  t=%-10g %-10s %d -> %d: %s\n" v.time v.monitor
          v.src v.dst v.detail;
        match v.trace with
        | None -> ()
        | Some tr ->
            List.iter
              (fun line ->
                if line <> "" then Printf.bprintf buf "    | %s\n" line)
              (String.split_on_char '\n' tr))
      shown
  end;
  Buffer.contents buf
