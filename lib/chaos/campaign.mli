(** End-to-end chaos campaigns.

    One campaign = one deterministic seed → one correlated-fault event
    stream and one packet workload, replayed against each scheme with the
    invariant monitors attached; any violation is shrunk to a minimal
    replayable scenario.  On planar embeddings PR with the DD termination
    must show zero delivery violations while reconvergence shows losses —
    the paper's claim, now enforced mechanically under adversarial
    workloads. *)

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  seed : int;
  horizon : float;
  rate : float;              (** packet injections per time unit *)
  mix : Gen.kind list;       (** generators to run, in order *)
  hold_down : float;         (** 0 disables §7 damping *)
  detection : Pr_sim.Detector.config option;
      (** per-router failure detection; [None] keeps the seed
          global-truth behaviour.  With a config, the monitors switch to
          the weakened detection-quiescence invariants and shrinking is
          disabled (scenario format v1 cannot record the detector, so a
          shrunk artifact would not replay). *)
  control : Pr_sim.Engine.control option;
      (** live control plane for PR schemes ({!Pr_sim.Engine.run}'s
          [control]).  With a config, the monitors arm the
          zero-loss-across-updates swap invariant and shrinking is
          disabled (scenario format v1 cannot record the control plane
          either). *)
  schemes : Pr_sim.Engine.scheme list;
  shrink : bool;             (** minimise violating scenarios *)
  backend : Pr_sim.Engine.backend;
      (** data plane for PR schemes (default [`Reference]); the monitors
          see identical verdicts either way *)
  timeline : float option;
      (** [Some width]: record a {!Pr_obs.Series} per scheme, bucketing
          verdicts, link transitions, detector-belief churn and (for PR
          schemes) per-class link loads into [width]-wide windows; the
          report renders each scheme's timeline.  [None] (default)
          records nothing. *)
}

val default_config : Pr_topo.Topology.t -> Pr_embed.Rotation.t -> seed:int -> config
(** Horizon 60, rate 20, the full generator mix, no hold-down, no
    detection, schemes pr / lfa / reconvergence(5), shrinking on. *)

type scheme_result = {
  scheme : Pr_sim.Engine.scheme;
  outcome : Pr_sim.Engine.outcome;
  monitor : Monitor.t;
  shrunk : Scenario.t option;  (** present iff the monitors fired *)
  series : Pr_obs.Series.t option;  (** present iff [timeline] was set *)
}

type t = {
  link_events : Pr_sim.Workload.link_event list;  (** after hold-down *)
  raw_events : Pr_sim.Workload.link_event list;   (** before hold-down *)
  injections : Pr_sim.Workload.injection list;
  results : scheme_result list;
}

val run : config -> (t, string) result

val report : config -> t -> string
(** Deterministic human-readable summary of the whole campaign. *)
