module Graph = Pr_graph.Graph
module Engine = Pr_sim.Engine
module Workload = Pr_sim.Workload

type t = {
  name : string;
  graph : Graph.t;
  orders : int list array;
  scheme : Engine.scheme;
  hold_down : float;
  link_events : Workload.link_event list;
  injections : Workload.injection list;
}

let make ~name ~topology ~rotation ~scheme ~hold_down ~link_events ~injections =
  {
    name;
    graph = topology.Pr_topo.Topology.graph;
    orders = Pr_embed.Rotation.orders rotation;
    scheme;
    hold_down;
    link_events;
    injections;
  }

let rotation t = Pr_embed.Rotation.of_orders t.graph t.orders

let termination t =
  match t.scheme with
  | Engine.Pr_scheme { termination } -> termination
  | Engine.Lfa_scheme | Engine.Reconvergence_scheme _
  | Engine.Reconvergence_jittered _ ->
      Pr_core.Forward.Distance_discriminator

(* %.17g round-trips every finite double exactly, keeping the text form
   byte-stable across save/load/save. *)
let fstr f = Printf.sprintf "%.17g" f

let scheme_to_string = function
  | Engine.Pr_scheme { termination = Pr_core.Forward.Distance_discriminator } ->
      "pr-dd"
  | Engine.Pr_scheme { termination = Pr_core.Forward.Simple } -> "pr-simple"
  | Engine.Lfa_scheme -> "lfa"
  | Engine.Reconvergence_scheme { convergence_delay } ->
      Printf.sprintf "reconv %s" (fstr convergence_delay)
  | Engine.Reconvergence_jittered { min_delay; max_delay; seed } ->
      Printf.sprintf "reconv-jitter %s %s %d" (fstr min_delay) (fstr max_delay)
        seed

let scheme_of_words = function
  | [ "pr-dd" ] ->
      Ok (Engine.Pr_scheme { termination = Pr_core.Forward.Distance_discriminator })
  | [ "pr-simple" ] -> Ok (Engine.Pr_scheme { termination = Pr_core.Forward.Simple })
  | [ "lfa" ] -> Ok Engine.Lfa_scheme
  | [ "reconv"; d ] -> (
      match float_of_string_opt d with
      | Some convergence_delay -> Ok (Engine.Reconvergence_scheme { convergence_delay })
      | None -> Error "bad reconv delay")
  | [ "reconv-jitter"; a; b; s ] -> (
      match (float_of_string_opt a, float_of_string_opt b, int_of_string_opt s) with
      | Some min_delay, Some max_delay, Some seed ->
          Ok (Engine.Reconvergence_jittered { min_delay; max_delay; seed })
      | _ -> Error "bad reconv-jitter parameters")
  | words -> Error (Printf.sprintf "unknown scheme %S" (String.concat " " words))

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# pr-chaos scenario v1\n";
  Printf.bprintf buf "name %s\n" t.name;
  Printf.bprintf buf "scheme %s\n" (scheme_to_string t.scheme);
  Printf.bprintf buf "hold-down %s\n" (fstr t.hold_down);
  Printf.bprintf buf "nodes %d\n" (Graph.n t.graph);
  Graph.iter_edges
    (fun _ (e : Graph.edge) ->
      Printf.bprintf buf "edge %d %d %s\n" e.u e.v (fstr e.w))
    t.graph;
  Array.iteri
    (fun v order ->
      Printf.bprintf buf "rotation %d: %s\n" v
        (String.concat " " (List.map string_of_int order)))
    t.orders;
  List.iter
    (fun (e : Workload.link_event) ->
      Printf.bprintf buf "link %s %d %d %s\n" (fstr e.time) e.u e.v
        (if e.up then "up" else "down"))
    t.link_events;
  List.iter
    (fun (i : Workload.injection) ->
      Printf.bprintf buf "inject %s %d %d\n" (fstr i.time) i.src i.dst)
    t.injections;
  Buffer.contents buf

type partial = {
  mutable p_name : string option;
  mutable p_scheme : Engine.scheme option;
  mutable p_hold : float option;
  mutable p_nodes : int option;
  mutable p_edges : (int * int * float) list;  (* reversed *)
  mutable p_orders : (int * int list) list;    (* reversed *)
  mutable p_links : Workload.link_event list;  (* reversed *)
  mutable p_injects : Workload.injection list; (* reversed *)
}

let of_string text =
  let p =
    {
      p_name = None;
      p_scheme = None;
      p_hold = None;
      p_nodes = None;
      p_edges = [];
      p_orders = [];
      p_links = [];
      p_injects = [];
    }
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let words line =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else
      match words line with
      | "name" :: rest when rest <> [] ->
          p.p_name <- Some (String.concat " " rest);
          Ok ()
      | "scheme" :: rest -> (
          match scheme_of_words rest with
          | Ok s ->
              p.p_scheme <- Some s;
              Ok ()
          | Error e -> err lineno e)
      | [ "hold-down"; h ] -> (
          match float_of_string_opt h with
          | Some h when Float.is_finite h && h >= 0.0 ->
              p.p_hold <- Some h;
              Ok ()
          | _ -> err lineno "bad hold-down")
      | [ "nodes"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 ->
              p.p_nodes <- Some n;
              Ok ()
          | _ -> err lineno "bad node count")
      | [ "edge"; u; v; w ] -> (
          match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w) with
          | Some u, Some v, Some w ->
              p.p_edges <- (u, v, w) :: p.p_edges;
              Ok ()
          | _ -> err lineno "bad edge")
      | "rotation" :: node :: rest -> (
          let node = Filename.chop_suffix_opt ~suffix:":" node in
          match Option.bind node int_of_string_opt with
          | Some v -> (
              match
                List.fold_right
                  (fun w acc ->
                    Option.bind acc (fun ws ->
                        Option.map (fun w -> w :: ws) (int_of_string_opt w)))
                  rest (Some [])
              with
              | Some order ->
                  p.p_orders <- (v, order) :: p.p_orders;
                  Ok ()
              | None -> err lineno "bad rotation order")
          | None -> err lineno "bad rotation node")
      | [ "link"; time; u; v; state ] -> (
          match
            ( float_of_string_opt time,
              int_of_string_opt u,
              int_of_string_opt v,
              match state with
              | "up" -> Some true
              | "down" -> Some false
              | _ -> None )
          with
          | Some time, Some u, Some v, Some up ->
              p.p_links <- { Workload.time; u; v; up } :: p.p_links;
              Ok ()
          | _ -> err lineno "bad link event")
      | [ "inject"; time; src; dst ] -> (
          match
            (float_of_string_opt time, int_of_string_opt src, int_of_string_opt dst)
          with
          | Some time, Some src, Some dst ->
              p.p_injects <- { Workload.time; src; dst } :: p.p_injects;
              Ok ()
          | _ -> err lineno "bad injection")
      | _ -> err lineno (Printf.sprintf "unrecognised line %S" line)
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line lineno line with
        | Ok () -> parse_all (lineno + 1) rest
        | Error _ as e -> e)
  in
  match parse_all 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      match (p.p_name, p.p_scheme, p.p_hold, p.p_nodes) with
      | Some name, Some scheme, Some hold_down, Some n -> (
          match Graph.create ~n (List.rev p.p_edges) with
          | exception Invalid_argument msg -> Error ("bad graph: " ^ msg)
          | graph ->
              let orders = Array.make n [] in
              let seen = Array.make n false in
              let rec fill = function
                | [] -> Ok ()
                | (v, order) :: rest ->
                    if v < 0 || v >= n then
                      Error (Printf.sprintf "rotation node %d out of range" v)
                    else if seen.(v) then
                      Error (Printf.sprintf "duplicate rotation for node %d" v)
                    else begin
                      seen.(v) <- true;
                      orders.(v) <- order;
                      fill rest
                    end
              in
              (match fill (List.rev p.p_orders) with
              | Error _ as e -> e
              | Ok () ->
                  if not (Array.for_all Fun.id seen) then
                    Error "missing rotation line for some node"
                  else
                    (* Validate the orders against the graph right away. *)
                    (match Pr_embed.Rotation.of_orders graph orders with
                    | exception Invalid_argument msg ->
                        Error ("bad rotation system: " ^ msg)
                    | (_ : Pr_embed.Rotation.t) ->
                        Ok
                          {
                            name;
                            graph;
                            orders;
                            scheme;
                            hold_down;
                            link_events = List.rev p.p_links;
                            injections = List.rev p.p_injects;
                          })))
      | None, _, _, _ -> Error "missing `name' line"
      | _, None, _, _ -> Error "missing `scheme' line"
      | _, _, None, _ -> Error "missing `hold-down' line"
      | _, _, _, None -> Error "missing `nodes' line")

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_string text

let run ?observer t =
  let topology = Pr_topo.Topology.of_graph ~name:t.name t.graph in
  let rotation = rotation t in
  let link_events =
    if t.hold_down > 0.0 then
      Pr_sim.Flap.apply_hold_down t.link_events ~hold_down:t.hold_down
    else t.link_events
  in
  match
    Engine.run ?observer
      { Engine.topology; rotation; scheme = t.scheme }
      ~link_events ~injections:t.injections
  with
  | Ok outcome -> Ok outcome
  | Error e -> Error (Engine.describe_workload_error e)
  | exception Invalid_argument msg -> Error msg

let check t =
  let routing = Pr_core.Routing.build t.graph in
  let cycles = Pr_core.Cycle_table.build (rotation t) in
  let monitor =
    Monitor.create ~routing ~cycles ~termination:(termination t) ()
  in
  match run ~observer:(Monitor.engine_observer monitor) t with
  | Ok outcome -> Ok (monitor, outcome)
  | Error msg -> Error msg
