module Engine = Pr_sim.Engine
module Workload = Pr_sim.Workload
module Metrics = Pr_sim.Metrics

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  seed : int;
  horizon : float;
  rate : float;
  mix : Gen.kind list;
  hold_down : float;
  detection : Pr_sim.Detector.config option;
  control : Engine.control option;
  schemes : Engine.scheme list;
  shrink : bool;
  backend : Engine.backend;
  timeline : float option;
}

let default_config topology rotation ~seed =
  {
    topology;
    rotation;
    seed;
    horizon = 60.0;
    rate = 20.0;
    mix = Gen.all;
    hold_down = 0.0;
    detection = None;
    control = None;
    schemes =
      [
        Engine.Pr_scheme { termination = Pr_core.Forward.Distance_discriminator };
        Engine.Lfa_scheme;
        Engine.Reconvergence_scheme { convergence_delay = 5.0 };
      ];
    shrink = true;
    backend = `Reference;
    timeline = None;
  }

type scheme_result = {
  scheme : Engine.scheme;
  outcome : Engine.outcome;
  monitor : Monitor.t;
  shrunk : Scenario.t option;
  series : Pr_obs.Series.t option;
}

type t = {
  link_events : Workload.link_event list;
  raw_events : Workload.link_event list;
  injections : Workload.injection list;
  results : scheme_result list;
}

let termination_of = function
  | Engine.Pr_scheme { termination } -> termination
  | Engine.Lfa_scheme | Engine.Reconvergence_scheme _
  | Engine.Reconvergence_jittered _ ->
      Pr_core.Forward.Distance_discriminator

let run config =
  if config.horizon <= 0.0 then Error "horizon must be positive"
  else if config.rate <= 0.0 then Error "rate must be positive"
  else if config.hold_down < 0.0 then Error "hold-down must be non-negative"
  else begin
    let g = config.topology.Pr_topo.Topology.graph in
    let rng = Pr_util.Rng.create ~seed:config.seed in
    let raw_events =
      Gen.generate (Pr_util.Rng.copy rng) config.topology
        ~horizon:config.horizon ~mix:config.mix
    in
    let link_events =
      if config.hold_down > 0.0 then
        Pr_sim.Flap.apply_hold_down raw_events ~hold_down:config.hold_down
      else raw_events
    in
    let injections =
      Workload.poisson_flows (Pr_util.Rng.copy rng) g ~rate:config.rate
        ~horizon:config.horizon
    in
    let routing = Pr_core.Routing.build g in
    let cycles = Pr_core.Cycle_table.build config.rotation in
    let run_scheme scheme =
      let monitor =
        Monitor.create ?detection:config.detection
          ~control:(config.control <> None)
          ~routing ~cycles
          ~termination:(termination_of scheme) ()
      in
      let series =
        Option.map (fun width -> Pr_obs.Series.create ~width g) config.timeline
      in
      match
        Engine.run
          ~observer:(Monitor.engine_observer monitor)
          ?detection:config.detection ?control:config.control
          ~backend:config.backend ?series
          { Engine.topology = config.topology; rotation = config.rotation; scheme }
          ~link_events ~injections
      with
      | Error e -> Error (Engine.describe_workload_error e)
      | Ok outcome ->
          let shrunk =
            (* Scenario files (format v1) do not record a detection or a
               control config, so a shrunk artifact would not replay the
               violation; shrinking stays truth-knowledge-only. *)
            if config.shrink && config.detection = None
               && config.control = None
               && Monitor.total monitor > 0
            then
              Some
                (Shrink.minimise
                   (Scenario.make
                      ~name:
                        (Printf.sprintf "%s-%s-seed%d"
                           config.topology.Pr_topo.Topology.name
                           (Engine.scheme_name scheme) config.seed)
                      ~topology:config.topology ~rotation:config.rotation
                      ~scheme ~hold_down:config.hold_down
                      ~link_events:raw_events ~injections))
            else None
          in
          Ok { scheme; outcome; monitor; shrunk; series }
    in
    let rec run_all acc = function
      | [] -> Ok (List.rev acc)
      | scheme :: rest -> (
          match run_scheme scheme with
          | Ok r -> run_all (r :: acc) rest
          | Error _ as e -> e)
    in
    match run_all [] config.schemes with
    | Error e -> Error e
    | Ok results -> Ok { link_events; raw_events; injections; results }
  end

let report config t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "chaos campaign: %s, seed %d, horizon %g, mix [%s], hold-down %g%s\n"
    config.topology.Pr_topo.Topology.name config.seed config.horizon
    (String.concat "," (List.map Gen.name config.mix))
    config.hold_down
    ((match config.detection with
     | None -> ""
     | Some c ->
         Printf.sprintf ", detection (down %g, up %g, jitter %g)"
           c.Pr_sim.Detector.down_delay c.Pr_sim.Detector.up_delay
           c.Pr_sim.Detector.jitter)
    ^
    match config.control with
    | None -> ""
    | Some c ->
        Printf.sprintf ", control (delay %g, threshold %g)" c.Engine.delay
          c.Engine.threshold);
  Printf.bprintf buf
    "  %d link events (%d before hold-down), %d packet injections\n\n"
    (List.length t.link_events)
    (List.length t.raw_events)
    (List.length t.injections);
  List.iter
    (fun r ->
      let m = r.outcome.Engine.metrics in
      Printf.bprintf buf
        "%-14s delivered %d/%d  dropped %d  looped %d  unreachable %d  violations %d\n"
        (Engine.scheme_name r.scheme) m.Metrics.delivered m.Metrics.injected
        m.Metrics.dropped m.Metrics.looped m.Metrics.unreachable
        (Monitor.total r.monitor);
      if Monitor.excused r.monitor > 0 then
        Printf.bprintf buf "    excused    %d (detection not quiesced)\n"
          (Monitor.excused r.monitor);
      if r.outcome.Engine.epochs > 0 then
        Printf.bprintf buf "    epochs     %d (control-plane swaps)\n"
          r.outcome.Engine.epochs;
      List.iter
        (fun name ->
          let c = Monitor.count r.monitor name in
          if c > 0 then Printf.bprintf buf "    %-10s %d\n" name c)
        Monitor.monitor_names;
      (match r.shrunk with
      | Some s ->
          Printf.bprintf buf
            "    shrunk to %d link events, %d injection(s)\n"
            (List.length s.Scenario.link_events)
            (List.length s.Scenario.injections)
      | None -> ());
      match r.series with
      | Some se -> Buffer.add_string buf (Pr_obs.Series.render se)
      | None -> ())
    t.results;
  Buffer.contents buf
