(** Online invariant monitors for the simulation engines.

    The paper's claims are stated as invariants — PR delivers whenever
    source and destination stay connected, forwarding never loops, the DD
    header fits its bit budget, and a hold-down keeps in-flight packets
    from meeting a recovered link (§7).  A monitor attaches to
    {!Pr_sim.Engine.run} or {!Pr_sim.Timed.run} through their observer
    hooks and checks the invariants on the live run, independently of the
    engine's own accounting:

    - {b delivery}: a packet whose endpoints are connected at injection
      time (re-checked through {!Pr_graph.Connectivity}) must not be
      dropped or looped — and one whose endpoints are separated must not
      be classified reachable.
    - {b loop}: exact loop freedom, re-deciding each PR trace by
      {!Pr_exp.Modelcheck}'s state-recurrence criterion (no TTL
      approximation) and flagging any disagreement with the engine.
    - {b dd-width}: every header the run produces must encode into the
      topology's DD bit budget ({!Pr_core.Routing.dd_bits}).
    - {b hold-down}: no packet crosses a link it saw down earlier in the
      same cycle-following episode — the §7 hazard; only observable in
      the timed engine, where link state changes mid-flight.
    - {b detection}: the weakened-but-honest delivery invariant under
      imperfect failure detection ({!Pr_sim.Detector}): a loss is a
      violation only when every detector belief matched the truth at
      injection time ([quiesced]); non-quiesced losses are excused and
      counted separately ({!excused}).  With a detection config, the seed
      delivery check moves here and the loop re-decision (whose model
      checker sees the global truth) applies only to quiesced packets.
    - {b swap}: the zero-loss-across-updates invariant under a live
      control plane ({!Pr_sim.Engine.run}'s [control]): once at least one
      epoch has been published, any loss on a pair still connected under
      the effective (operational + administrative) failure set is charged
      to the control plane, and every {!Pr_sim.Engine.swap_info} must
      arrive with gapless monotone epochs and an admin-down set equal to
      the previous one edited at exactly the swapped link.  With [control]
      the loop re-decision and trace capture are disabled — both replay
      the base tables the engine may have swapped away from. *)

type violation = {
  monitor : string;  (** one of {!monitor_names} *)
  time : float;
  src : int;
  dst : int;
  detail : string;
  trace : string option;
      (** delivery/loop violations without a detection config carry the
          offending packet's rendered hop trace ({!Pr_telemetry.Trace.render}
          of a truth-based {!Pr_core.Forward.run} replay); capped with
          [max_recorded] *)
}

val monitor_names : string list
(** ["delivery"; "loop"; "dd-width"; "hold-down"; "detection"; "swap"].
    ["swap"] comes last so pre-control report layouts are unchanged. *)

type t

val create :
  ?max_recorded:int ->
  ?detection:Pr_sim.Detector.config ->
  ?control:bool ->
  routing:Pr_core.Routing.t ->
  cycles:Pr_core.Cycle_table.t ->
  termination:Pr_core.Forward.termination ->
  unit ->
  t
(** Fresh monitor state.  [routing]/[cycles]/[termination] must match the
    scheme under test (the loop monitor replays traces against them), and
    [detection] the engine's detection config when one is used — it
    selects the weakened invariants described above.  [control] (default
    false) must be set when the engine runs with a live control plane: it
    arms the swap invariant and disables the base-table replays that are
    unsound across epochs.  At most [max_recorded] (default 32)
    violations keep their details; all are counted. *)

val engine_observer : t -> Pr_sim.Engine.observer
(** Checks delivery, loop and dd-width on every packet, plus the swap
    invariant on every published epoch when [control] is set. *)

val timed_observer : t -> Pr_sim.Timed.observer
(** Checks dd-width on every hop and the §7 hold-down hazard. *)

val count : t -> string -> int

val total : t -> int

val recorded : t -> violation list
(** In detection order, capped at [max_recorded]. *)

val excused : t -> int
(** Losses excused because detection had not quiesced at injection time.
    Always 0 without a detection config. *)

val report : t -> string
(** Deterministic multi-line summary: per-monitor counts and the recorded
    violations. *)
