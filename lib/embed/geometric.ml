module Graph = Pr_graph.Graph

let of_coords g coords =
  Pr_telemetry.Span.timed "embed.geometric" @@ fun () ->
  if Array.length coords <> Graph.n g then
    invalid_arg "Geometric.of_coords: coords length mismatch";
  let bearing v u =
    let xv, yv = coords.(v) and xu, yu = coords.(u) in
    if xv = xu && yv = yu then
      invalid_arg
        (Printf.sprintf "Geometric.of_coords: nodes %d and %d share coordinates" v u);
    atan2 (yu -. yv) (xu -. xv)
  in
  let orders =
    Array.init (Graph.n g) (fun v ->
        let row = Array.to_list (Graph.neighbours g v) in
        let keyed = List.map (fun u -> (bearing v u, u)) row in
        List.sort compare keyed |> List.map snd)
  in
  Rotation.of_orders g orders

let of_topology (t : Pr_topo.Topology.t) = of_coords t.graph t.coords
