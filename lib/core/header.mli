(** The PR packet-header fields and their bit-level encoding.

    PR consumes one PR bit plus DD bits.  The paper suggests carrying them
    in pool 2 of the DSCP field (RFC 2474 experimental/local-use
    codepoints).  The codec here packs [1 + dd_bits] bits into an integer
    field and round-trips exactly; [fits_in_dscp] checks the paper's
    deployment claim for a given topology. *)

type t = { pr : bool; dd : int }
(** [dd] is only meaningful while [pr] is set; it stores the quantised
    distance discriminator. *)

val normal : t
(** PR clear, DD zero — the failure-free header. *)

val dscp_pool2_bits : int
(** Bits usable in DSCP pool 2 as the paper proposes (the 6-bit DSCP with
    the xxxx11 pool-2 discriminator leaves 4 usable bits). *)

val encode : dd_bits:int -> t -> int
(** Pack into [1 + dd_bits] bits: PR bit in the LSB, DD above it.  Raises
    [Invalid_argument] if the DD value does not fit or is negative. *)

val max_dd : dd_bits:int -> int
(** Largest DD value representable in [dd_bits] bits: [2^dd_bits - 1]. *)

val encode_saturating : dd_bits:int -> t -> int
(** {!encode}, but a DD value exceeding the bit budget is clamped to
    {!max_dd} instead of raising — the data-plane behaviour a real header
    field has.  A saturated DD is the degradation the forwarding ladder
    ({!Forward.ladder_step}) detects: two saturated discriminators compare
    equal, so the §4.3 termination condition is no longer trustworthy.
    Still raises [Invalid_argument] on negative DD or bad [dd_bits]. *)

val decode : dd_bits:int -> int -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on out-of-range
    fields. *)

val decode_result : dd_bits:int -> int -> (t, string) result
(** Non-raising {!decode}: a wire field that does not fit [1 + dd_bits]
    bits (or a bad [dd_bits]) comes back as [Error] with the locus in the
    message.  This is the entry point guard-mode forwarding uses to turn
    corrupted header bytes into an accounted verdict instead of an
    exception; on every [Ok] input it agrees with {!decode} exactly. *)

val bits_used : dd_bits:int -> int

val fits_in_dscp : dd_bits:int -> bool

val shortcut_bits_used : dd_bits:int -> sc_width:int -> int
(** Bits the shortcut-extended header occupies: PR bit, DD field, the
    seen-node hint ({!Seen}) and one saturation-marker bit, LSB first in
    that order. *)

val shortcut_fits : dd_bits:int -> sc_width:int -> bool
(** Whether the extended layout fits the 62-bit header budget.  This is
    the check [prcli --shortcut] applies before accepting a width. *)

val encode_shortcut :
  dd_bits:int -> sc_width:int -> t -> seen:int -> seen_sat:bool -> int
(** Pack PR, DD, the raw hint bits and the saturation marker into one
    integer field.  Raises [Invalid_argument] when the layout exceeds
    the budget or [seen] does not fit [sc_width] bits. *)

val decode_shortcut_result :
  dd_bits:int -> sc_width:int -> int -> (t * int * bool, string) result
(** Non-raising inverse of {!encode_shortcut}: on any integer input it
    returns [Ok (header, seen, seen_sat)] or [Error] — never raises.
    Round-trips {!encode_shortcut} exactly, saturation marker
    included. *)

val pp : Format.formatter -> t -> unit
