(** Bounded seen-node hint for the shortcut rung.

    A PR-mode walk inserts every node it departs; a query hit (deja-vu)
    lets {!Forward.decide} *consider* shortcutting back to primary
    routing, gated by the same §4.3 DD comparison that makes ordinary
    termination sound.  False positives are therefore harmless — they
    can only trigger a check that independently refuses unsound grants —
    and false negatives merely keep the walk on its guaranteed cycle.

    Small topologies ([nodes <= width]) get an exact per-node bitset;
    larger ones a two-hash Bloom hint of exactly [width] bits.  A Bloom
    hint {e saturates} once more than half its bits are set: it latches,
    every {!query} answers [false], and the walk degrades to plain DD
    termination.  All behaviour is a pure function of the plan and the
    insertion sequence — the compiled kernel mirrors it bit-for-bit via
    {!mask_of}/{!threshold}/{!popcount}. *)

type mode = Exact | Bloom

type plan = { mode : mode; width : int }
(** [width] is the number of hint bits actually carried: [nodes] for
    exact plans, the requested budget for Bloom plans. *)

val max_width : int
(** Largest supported hint width (60 bits, leaving room for the PR bit,
    DD field and saturation marker inside a 63-bit header integer). *)

val plan : nodes:int -> width:int -> plan
(** Choose the encoding for a topology of [nodes] nodes under a [width]
    bit budget: exact iff [nodes <= width].  Raises [Invalid_argument]
    on [width < 1] or [width > max_width]. *)

val mask_of : plan -> int -> int
(** The pure bit pattern node [n] contributes: a single bit for exact
    plans, two hashed bits for Bloom plans.  Deterministic across
    backends — the kernel precomputes these per node. *)

val popcount : int -> int

val threshold : plan -> int
(** Saturation limit on set bits: [width / 2] for Bloom, [max_int]
    (never) for exact plans. *)

type t

val create : plan -> t
val reset : t -> unit

val insert : t -> int -> unit
(** Record a departure.  No-op once saturated; latches saturation when
    the popcount of the Bloom hint exceeds {!threshold}. *)

val query : t -> int -> bool
(** Deja-vu test.  Never a false negative before saturation; always
    [false] after (degrade-to-no-op). *)

val saturated : t -> bool

val bits : t -> int
(** Raw hint bits, for the header codec ({!Header.encode_shortcut}). *)

val restore : t -> bits:int -> sat:bool -> unit
(** Overwrite the hint from decoded header fields.  Raises
    [Invalid_argument] if [bits] exceeds the plan width. *)

val pp : Format.formatter -> t -> unit
