module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra

type t = {
  g : Graph.t;
  kind : Discriminator.kind;
  trees : Dijkstra.tree array; (* index = destination *)
}

let build ?(kind = Discriminator.Hops) g =
  Pr_telemetry.Span.timed "routing.build" @@ fun () ->
  { g; kind; trees = Dijkstra.all_roots g }

let build_blocked ?(kind = Discriminator.Hops) g ~blocked =
  Pr_telemetry.Span.timed "routing.build" @@ fun () ->
  { g; kind; trees = Dijkstra.all_roots ~blocked g }

let graph t = t.g

let kind t = t.kind

let tree t dst =
  if dst < 0 || dst >= Graph.n t.g then invalid_arg "Routing: destination out of range";
  t.trees.(dst)

let next_hop t ~node ~dst = Dijkstra.next_hop (tree t dst) node

let disc t ~node ~dst = Discriminator.value t.kind (tree t dst) node

let distance t ~node ~dst = Dijkstra.distance (tree t dst) node

let hops t ~node ~dst = Dijkstra.hop_count (tree t dst) node

let shortest_path t ~src ~dst = Dijkstra.path_to_root (tree t dst) src

let dd_bits t = Discriminator.bits_needed t.kind t.g

let quantise_dd t v =
  match t.kind with
  | Discriminator.Hops -> int_of_float v
  | Discriminator.Weighted -> int_of_float (Float.ceil v)

let memory_entries t =
  let n = Graph.n t.g in
  n * (n - 1)
