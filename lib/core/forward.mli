(** The PR forwarding engine: conventional routing plus cycle following
    (paper §4.2–4.3).

    {!step} is one router's forwarding decision — the code a line card
    would run; {!run} chains it into a full path trace under a frozen
    failure set.  The timed simulator ({!Pr_sim.Timed}) chains the same
    {!step} across time-varying link state instead.

    Per-hop behaviour at node [x]:

    - PR bit clear: forward to the routing-table next hop.  If that link is
      down, set the PR bit, write the local distance discriminator into the
      DD bits, and forward along the complementary cycle of the failed
      interface (the first live interface in rotation order after it).
    - PR bit set, arrived from [y]: forward to [next_x y] (cycle
      following).  If that link is down, apply the termination condition:
      {!Simple} clears the PR bit and resumes routing; {!Distance_discriminator}
      compares the local discriminator with the DD bits — smaller means
      clear-and-resume, otherwise keep cycle following along the
      complementary cycle of the newly failed interface. *)

type termination =
  | Simple
      (** §4.2: any failure encountered during cycle following ends the
          episode.  Guaranteed only for single link failures. *)
  | Distance_discriminator
      (** §4.3: the DD termination condition; covers any failure
          combination that keeps source and destination connected (on a
          genus-0 embedding — see EXPERIMENTS.md). *)

type outcome =
  | Delivered
  | Dropped_no_interface
      (** every interface of some node on the route was down *)
  | Dropped_unreachable
      (** the routing table had no entry (destination unreachable even
          before failures) *)
  | Ttl_exceeded
      (** forwarding loop: the protocol failed to terminate within the hop
          budget *)
  | Dropped_corrupt
      (** guard-mode only: the packet carried corrupted header state or hit
          damaged forwarding state, detected and dropped with a {!fault}
          locus instead of raising.  Never produced by {!step}/{!run}. *)

type hop_header = { pr_bit : bool; dd_value : float }
(** The in-flight header state: the PR bit plus the DD bits (kept as the
    discriminator value; see [quantise] for the integer-rounded mode). *)

val fresh_header : hop_header
(** PR clear. *)

type step_result =
  | Transmit of {
      next : int;
      header : hop_header;      (** header on the wire after this router *)
      episode_started : bool;   (** this router set the PR bit *)
      failure_hits : int;       (** failed-link encounters at this router *)
      shortcut : bool;
          (** this router cleared the PR bit through the shortcut rung
              (deja-vu detected, proactive §4.3 comparison granted) *)
    }
  | Stuck of { outcome : outcome; failure_hits : int }
      (** [outcome] is never [Delivered] or [Ttl_exceeded] *)

val step :
  ?termination:termination ->
  ?quantise:bool ->
  ?trace:Pr_telemetry.Trace.sink ->
  ?shortcut:(int -> bool) ->
  routing:Routing.t ->
  cycles:Cycle_table.t ->
  failures:Failure.t ->
  dst:int ->
  node:int ->
  arrived_from:int option ->
  header:hop_header ->
  unit ->
  step_result
(** One router's decision for a packet addressed to [dst] (with
    [node <> dst]) that arrived from [arrived_from] ([None] at the
    source).

    [trace] (default {!Pr_telemetry.Trace.null}) receives the
    decision-level events (PR set, DD compare, complementary-cycle
    entry…).  The null sink compiles to zero work: no event is even
    constructed.  Emission points mirror [Pr_fastpath.Kernel.decide]
    line for line, so the two backends produce structurally equal event
    sequences.

    [shortcut] (default: off) is the walk's deja-vu query ({!Seen.query}
    over the walk's seen-node hint).  During cycle following with a
    {e live} continuation, a deja-vu hit makes the router run the §4.3
    comparison proactively: if the local discriminator beats the header
    DD (the comparison is sound — not both saturated) and the primary
    next hop is up, the PR bit is cleared and the packet resumes plain
    routing with a fresh header — the {b shortcut rung}.  Any decline
    leaves the walk exactly as without the hint, so false positives can
    only cost a lookup, never a misroute, and delivery remains
    guaranteed by the unchanged DD argument (the shortcut clear
    satisfies the same strict-decrease invariant as a failure-encounter
    clear).  Only armed under {!Distance_discriminator}. *)

(** {2 The graceful-degradation ladder}

    {!step} assumes the PR machinery itself never fails: rotation entries
    always resolve, DD values always fit the header, the hop budget is
    plentiful.  {!ladder_step} is the same forwarding decision made against
    an arbitrary local link-state view with those assumptions withdrawn.
    When the PR continuation is unusable it degrades {e deterministically}:
    resume plain routing if the primary is believed up, else restart a
    complementary episode with a fresh local DD, else hand the packet to a
    believed-up loop-free alternate (RFC 5286 basic inequality), else an
    accounted drop carrying its reason.  With no DD bound, no budget guard
    and the true link state as the view, {!ladder_step} reproduces {!step}
    verdict-for-verdict — the differential the simulator tests pin. *)

type degradation =
  | Retry_complementary
      (** a fresh complementary episode was started from the ladder *)
  | Lfa_rescue
      (** the packet was handed to a loop-free alternate, PR state
          discarded *)
  | Dd_saturated
      (** a DD value was clamped to the header maximum, or a saturated
          comparison was refused *)

type drop_reason =
  | No_route       (** no routing entry — destination unreachable even
                       without failures *)
  | Interfaces_down  (** every interface of the router believed down *)
  | Continuation_lost
      (** the PR continuation was unusable (missing rotation entry or
          saturated DD comparison) and no ladder rung could take the
          packet *)
  | Budget_exhausted
      (** the hop-budget guard fired mid-episode and no ladder rung could
          take the packet *)

type ladder_result =
  | Forwarded of {
      next : int;
      header : hop_header;
      episode_started : bool;
      failure_hits : int;
      degradations : degradation list;  (** in the order they occurred *)
      shortcut : bool;  (** the shortcut rung forwarded this packet *)
    }
  | Degraded_drop of {
      reason : drop_reason;
      failure_hits : int;
      degradations : degradation list;
    }

val ladder_step :
  ?termination:termination ->
  ?quantise:bool ->
  ?dd_bits:int ->
  ?hops_left:int ->
  ?budget_guard:int ->
  ?trace:Pr_telemetry.Trace.sink ->
  ?shortcut:(int -> bool) ->
  routing:Routing.t ->
  cycles:Cycle_table.t ->
  link_up:(int -> bool) ->
  dst:int ->
  node:int ->
  arrived_from:int option ->
  header:hop_header ->
  unit ->
  ladder_result
(** One router's decision under its own link-state view [link_up] (one
    call per neighbour of [node]).

    [dd_bits] bounds what the DD field can carry: values quantising above
    [Header.max_dd ~dd_bits] are clamped (noting {!Dd_saturated}), and a
    §4.3 comparison in which both discriminators sit at the clamp is
    refused as unsound — the packet takes the ladder instead.  Omitted:
    unbounded, byte-compatible with {!step}.

    [budget_guard] (default 0 = off) arms the hop-budget rung: a PR-marked
    packet with [hops_left <= budget_guard] stops cycle following and takes
    the ladder (without the complementary rung) rather than burning its
    last hops looping.

    A missing rotation entry ([arrived_from] not a neighbour of [node])
    takes the ladder as {!Continuation_lost} instead of raising. *)

val degradation_name : degradation -> string

val drop_reason_name : drop_reason -> string

(** {2 Fault taxonomy (guard mode)}

    The corruption classes a guarded walk detects and accounts.  Each
    carries its locus, in the style of [Pr_fastpath.Fib]'s typed delta
    errors; {!describe_fault} renders it for operators. *)

type fault =
  | Bad_field of { field : int }
      (** the encoded [1 + dd_bits] wire field does not decode *)
  | Impossible_dd of { node : int; dd : float }
      (** a DD value no discriminator could have produced: negative,
          non-finite, or above the header maximum *)
  | Not_neighbour of { node : int; from_ : int }
      (** the claimed previous hop is not a neighbour of the node *)
  | Corrupt_cell of { node : int; cell : string }
      (** a FIB cell read produced an out-of-range value ([cell] names the
          damaged table; compiled backend only) *)
  | Walk_blowup of { hops : int }
      (** a corrupt-seeded walk was still live when the hop budget ran
          out *)

val fault_name : fault -> string
(** Stable kebab-case class name: ["bad-field"], ["impossible-dd"],
    ["not-neighbour"], ["corrupt-cell"], ["walk-blowup"]. *)

val describe_fault : fault -> string
(** One-line description including the locus. *)

type trace = {
  outcome : outcome;
  path : int list;        (** nodes visited, starting at the source *)
  pr_episodes : int;      (** how many times the PR bit was set *)
  failure_hits : int;     (** failed-link encounters, including repeats *)
  max_header : Header.t;  (** header with the largest DD carried *)
  episodes : (int * float) list;
      (** one entry per PR episode, oldest first: the router that set the
          PR bit and the DD it wrote.  §5.3's termination argument says
          these DD values strictly decrease — property-tested on planar
          embeddings. *)
  shortcuts : int;
      (** walks the shortcut rung granted: PR cleared on deja-vu without
          a failure encounter.  Always 0 with the hint off. *)
}

val default_ttl : Pr_graph.Graph.t -> int
(** Hop budget generous enough for any terminating execution:
    2 m (n + 2) + n + 16. *)

val run :
  ?termination:termination ->
  ?ttl:int ->
  ?quantise:bool ->
  ?trace:Pr_telemetry.Trace.sink ->
  ?probe:Pr_telemetry.Probe.t ->
  ?linkload:Pr_obs.Linkload.t ->
  ?shortcut:Seen.plan ->
  routing:Routing.t ->
  cycles:Cycle_table.t ->
  failures:Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  trace
(** Default termination: {!Distance_discriminator}; default TTL:
    {!default_ttl}.  [quantise] (default false) makes the engine
    header-faithful: DD values are rounded through {!Routing.quantise_dd}
    before being written and compared, exactly as the integer DD bits
    would carry them.  A no-op for the hop discriminator.  Raises
    [Invalid_argument] if [src = dst] or either is out of range.

    [trace] additionally receives the walk-level events (one [Hop] per
    transmission, then the [Deliver]/[Expire]/[Drop] verdict); hop
    counts are TTL-derived so they agree with the compiled kernel.
    [probe] records the packet's verdict, stretch, hop count and
    re-cycle depth, and wraps each {!step} call with the monotonic clock
    to feed the per-class latency histograms.  [linkload] counts every
    transmission against its directed link, classed by the header on the
    wire (PR bit set: recycled, else shortest-path — the strict walk
    never takes a ladder rung; a shortcut exit: shortcut).

    [shortcut] arms the shortcut rung with a {!Seen.plan}: the walk
    keeps a seen-node hint, inserting each node it departs in PR mode
    and resetting whenever the PR bit clears, and hands {!step} the
    deja-vu query.  Same plan, same insertions — the compiled kernel
    mirrors this walk-level discipline bit for bit. *)

type guarded = {
  trace : trace;
  fault : fault option;
      (** [Some _] iff [trace.outcome = Dropped_corrupt] *)
  drop : drop_reason option;  (** [Some _] iff a ladder drop ended the walk *)
  degradations : degradation list;
      (** every rung taken across the walk, oldest first *)
}
(** Verdict of a guarded walk. *)

val inject_of_field : dd_bits:int -> int -> (hop_header, fault) result
(** Decode a wire field into injectable header state, converting an
    undecodable field into the {!Bad_field} fault.  Both backends share
    this decode, so corrupted wire bytes yield identical verdicts. *)

val run_guarded :
  ?termination:termination ->
  ?ttl:int ->
  ?quantise:bool ->
  ?dd_bits:int ->
  ?budget_guard:int ->
  ?header:hop_header ->
  ?arrived_from:int ->
  ?shortcut:Seen.plan ->
  routing:Routing.t ->
  cycles:Cycle_table.t ->
  failures:Failure.t ->
  src:int ->
  dst:int ->
  unit ->
  guarded
(** The bounds-checked reference walk: {!ladder_step} chained over the
    global truth, with [header]/[arrived_from] (default: fresh, none)
    injecting possibly-corrupted in-flight state at the source.

    Entry guards run in the kernel's order — an impossible DD
    (non-finite, negative, or above [Header.max_dd ~dd_bits]) and then a
    claimed previous hop that is not a neighbour of [src] — and convert
    the fault into an accounted {!Dropped_corrupt} verdict.  A walk
    seeded with injected state converts TTL expiry into {!Walk_blowup};
    clean guarded traffic keeps {!run}'s verdicts exactly (with no
    [dd_bits] bound and no [budget_guard], verdict-for-verdict).  Raises
    [Invalid_argument] only on caller errors ([src = dst], out-of-range
    nodes). *)

val path_cost : Pr_graph.Graph.t -> trace -> float
(** Weighted cost of the traversed walk. *)

val stretch : routing:Routing.t -> trace:trace -> src:int -> dst:int -> float
(** Paper §6 definition: traversed cost over the failure-free shortest
    path cost.  [infinity] when the trace did not deliver. *)
