(* The bounded seen-node hint behind the shortcut rung.

   A walk in PR mode records every node it departs from; revisiting a
   recorded node is deja-vu and makes the walk *consider* (never take
   unconditionally) a shortcut back onto primary routing.  The hint must
   fit a fixed header budget, so small topologies get an exact bitset
   (one bit per node, no false positives) and larger ones a two-hash
   Bloom filter whose false positives are harmless by construction: a
   spurious deja-vu only triggers a DD check that is sound on its own.

   Saturation is the degrade-to-no-op path: once a Bloom hint carries
   more set bits than half its width, its false-positive rate is no
   longer worth the lookups, so the hint latches saturated and every
   query answers [false] — the walk falls back to plain DD termination.

   Everything observable here is a pure function of [(nodes, width)] and
   the insertion sequence, shared verbatim by the reference walk and the
   compiled kernel so the two backends stay verdict-identical. *)

type mode = Exact | Bloom

type plan = { mode : mode; width : int }

let max_width = 60

let plan ~nodes ~width =
  if nodes < 1 then invalid_arg "Seen.plan: empty topology";
  if width < 1 || width > max_width then
    invalid_arg
      (Printf.sprintf "Seen.plan: width %d out of range 1..%d" width max_width);
  if nodes <= width then { mode = Exact; width = nodes }
  else { mode = Bloom; width }

(* Two independent multiplicative hashes, reduced into the hint width.
   Constants are odd 32-bit mixers (Fibonacci hashing / MurmurHash3
   finalizer families); everything stays within OCaml's 63-bit int. *)
let hash1 node = (((node + 1) * 0x9E3779B1) lsr 7) land 0xFFFFFF
let hash2 node = (((node + 1) * 0x85EBCA77) lsr 9) land 0xFFFFFF

let mask_of p node =
  if node < 0 then invalid_arg "Seen.mask_of: negative node";
  match p.mode with
  | Exact ->
      if node >= p.width then invalid_arg "Seen.mask_of: node out of plan"
      else 1 lsl node
  | Bloom -> (1 lsl (hash1 node mod p.width)) lor (1 lsl (hash2 node mod p.width))

let popcount bits =
  let rec go acc b = if b = 0 then acc else go (acc + 1) (b land (b - 1)) in
  go 0 bits

(* An exact hint never saturates: each node owns one bit, so a full
   bitset still answers membership truthfully. *)
let threshold p = match p.mode with Exact -> max_int | Bloom -> p.width / 2

type t = { plan : plan; mutable bits : int; mutable sat : bool }

let create plan = { plan; bits = 0; sat = false }

let reset t =
  t.bits <- 0;
  t.sat <- false

let insert t node =
  if not t.sat then begin
    t.bits <- t.bits lor mask_of t.plan node;
    if popcount t.bits > threshold t.plan then t.sat <- true
  end

let query t node =
  (not t.sat)
  &&
  let m = mask_of t.plan node in
  t.bits land m = m

let saturated t = t.sat
let bits t = t.bits

let restore t ~bits ~sat =
  if bits < 0 || bits >= 1 lsl t.plan.width then
    invalid_arg "Seen.restore: bits out of plan width";
  t.bits <- bits;
  t.sat <- sat

let pp ppf t =
  Format.fprintf ppf "{%s w=%d bits=%#x%s}"
    (match t.plan.mode with Exact -> "exact" | Bloom -> "bloom")
    t.plan.width t.bits
    (if t.sat then " sat" else "")
