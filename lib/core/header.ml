type t = { pr : bool; dd : int }

let normal = { pr = false; dd = 0 }

(* DSCP is 6 bits; pool 2 codepoints are those of the form xxxx11, leaving
   4 assignable bits once the pool discriminator is fixed. *)
let dscp_pool2_bits = 4

let encode ~dd_bits { pr; dd } =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.encode: bad dd_bits";
  if dd < 0 || dd >= 1 lsl dd_bits then
    invalid_arg (Printf.sprintf "Header.encode: DD %d does not fit %d bits" dd dd_bits);
  (dd lsl 1) lor (if pr then 1 else 0)

let max_dd ~dd_bits =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.max_dd: bad dd_bits";
  (1 lsl dd_bits) - 1

let encode_saturating ~dd_bits { pr; dd } =
  if dd < 0 then invalid_arg "Header.encode_saturating: negative DD";
  encode ~dd_bits { pr; dd = min dd (max_dd ~dd_bits) }

let decode ~dd_bits field =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.decode: bad dd_bits";
  if field < 0 || field >= 1 lsl (dd_bits + 1) then
    invalid_arg "Header.decode: field out of range";
  { pr = field land 1 = 1; dd = field lsr 1 }

let decode_result ~dd_bits field =
  if dd_bits < 0 || dd_bits > 61 then
    Error (Printf.sprintf "Header.decode: bad dd_bits %d (want 0..61)" dd_bits)
  else if field < 0 || field >= 1 lsl (dd_bits + 1) then
    Error
      (Printf.sprintf "Header.decode: field %d out of range for %d+1 bits" field
         dd_bits)
  else Ok { pr = field land 1 = 1; dd = field lsr 1 }

let bits_used ~dd_bits = 1 + dd_bits

let fits_in_dscp ~dd_bits = bits_used ~dd_bits <= dscp_pool2_bits

(* Shortcut extension: the seen-node hint rides above the PR+DD field,
   topped by one saturation-marker bit.  Layout, LSB first:
   [pr (1) | dd (dd_bits) | seen (sc_width) | sat (1)]. *)

let shortcut_bits_used ~dd_bits ~sc_width = 1 + dd_bits + sc_width + 1

let shortcut_fits ~dd_bits ~sc_width =
  dd_bits >= 0 && dd_bits <= 61 && sc_width >= 1
  && shortcut_bits_used ~dd_bits ~sc_width <= 62

let encode_shortcut ~dd_bits ~sc_width t ~seen ~seen_sat =
  if not (shortcut_fits ~dd_bits ~sc_width) then
    invalid_arg "Header.encode_shortcut: layout exceeds 62 bits";
  if seen < 0 || seen >= 1 lsl sc_width then
    invalid_arg "Header.encode_shortcut: seen hint does not fit";
  let base = encode ~dd_bits t in
  base
  lor (seen lsl (1 + dd_bits))
  lor ((if seen_sat then 1 else 0) lsl (1 + dd_bits + sc_width))

let decode_shortcut_result ~dd_bits ~sc_width field =
  if not (shortcut_fits ~dd_bits ~sc_width) then
    Error
      (Printf.sprintf
         "Header.decode_shortcut: bad layout dd_bits=%d sc_width=%d" dd_bits
         sc_width)
  else if field < 0 || field >= 1 lsl shortcut_bits_used ~dd_bits ~sc_width
  then
    Error
      (Printf.sprintf "Header.decode_shortcut: field %d out of range" field)
  else
    let dd = (field lsr 1) land ((1 lsl dd_bits) - 1) in
    let seen = (field lsr (1 + dd_bits)) land ((1 lsl sc_width) - 1) in
    let seen_sat = (field lsr (1 + dd_bits + sc_width)) land 1 = 1 in
    Ok ({ pr = field land 1 = 1; dd }, seen, seen_sat)

let pp ppf { pr; dd } =
  Format.fprintf ppf "{pr=%b; dd=%d}" pr dd
