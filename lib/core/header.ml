type t = { pr : bool; dd : int }

let normal = { pr = false; dd = 0 }

(* DSCP is 6 bits; pool 2 codepoints are those of the form xxxx11, leaving
   4 assignable bits once the pool discriminator is fixed. *)
let dscp_pool2_bits = 4

let encode ~dd_bits { pr; dd } =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.encode: bad dd_bits";
  if dd < 0 || dd >= 1 lsl dd_bits then
    invalid_arg (Printf.sprintf "Header.encode: DD %d does not fit %d bits" dd dd_bits);
  (dd lsl 1) lor (if pr then 1 else 0)

let max_dd ~dd_bits =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.max_dd: bad dd_bits";
  (1 lsl dd_bits) - 1

let encode_saturating ~dd_bits { pr; dd } =
  if dd < 0 then invalid_arg "Header.encode_saturating: negative DD";
  encode ~dd_bits { pr; dd = min dd (max_dd ~dd_bits) }

let decode ~dd_bits field =
  if dd_bits < 0 || dd_bits > 61 then invalid_arg "Header.decode: bad dd_bits";
  if field < 0 || field >= 1 lsl (dd_bits + 1) then
    invalid_arg "Header.decode: field out of range";
  { pr = field land 1 = 1; dd = field lsr 1 }

let decode_result ~dd_bits field =
  if dd_bits < 0 || dd_bits > 61 then
    Error (Printf.sprintf "Header.decode: bad dd_bits %d (want 0..61)" dd_bits)
  else if field < 0 || field >= 1 lsl (dd_bits + 1) then
    Error
      (Printf.sprintf "Header.decode: field %d out of range for %d+1 bits" field
         dd_bits)
  else Ok { pr = field land 1 = 1; dd = field lsr 1 }

let bits_used ~dd_bits = 1 + dd_bits

let fits_in_dscp ~dd_bits = bits_used ~dd_bits <= dscp_pool2_bits

let pp ppf { pr; dd } =
  Format.fprintf ppf "{pr=%b; dd=%d}" pr dd
