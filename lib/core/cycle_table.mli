(** Cycle following tables (paper §4.1, Table 1).

    At node [x], the entry for packets arriving from neighbour [y] holds:
    - the outgoing interface under cycle following: [next_x y] — the
      continuation of the face cycle the arc (y, x) lies on;
    - the outgoing interface under failure avoidance: the next hop along
      the complementary cycle of the link (x, next_x y), which is
      [next_x (next_x y)].

    When a router must bypass a *failed outgoing* interface [z], the
    complementary cycle of the link (x, z) starts at [next_x z].

    The table is exactly a permutation of the interfaces, as the paper
    notes: it implements the rotation system of the embedding. *)

type entry = {
  incoming : int;         (** neighbour the packet arrived from *)
  cycle_following : int;  (** outgoing interface continuing the cycle *)
  complementary : int;    (** outgoing interface under failure avoidance *)
}

type t

val build : Pr_embed.Rotation.t -> t

val rotation : t -> Pr_embed.Rotation.t

val graph : t -> Pr_graph.Graph.t

val entries : t -> int -> entry list
(** A node's table, one entry per interface, in rotation order. *)

val cycle_next : t -> node:int -> from_:int -> int
(** Column 2: continuation of cycle following for a packet that arrived
    from [from_].  Raises [Invalid_argument] if [from_] is not a
    neighbour of [node]. *)

val cycle_next_opt : t -> node:int -> from_:int -> int option
(** {!cycle_next}, but [None] when the table has no entry for the arc —
    the "continuation lost" case the forwarding ladder
    ({!Forward.ladder_step}) degrades from instead of crashing. *)

val complement_for_failed : t -> node:int -> failed:int -> int
(** First hop of the complementary cycle of the failed outgoing interface
    [failed]. *)

val memory_entries : t -> int
(** Total cycle-following entries across all routers: one per interface,
    i.e. [2 m] — the paper's "very limited memory" claim, quantified. *)
