(** Failure-free routing tables with the PR distance-discriminator column.

    One destination-rooted shortest-path tree per destination (the result
    of an SPF run, paper §2), extended with the discriminator column of
    paper §4.3.  Tables are computed on the failure-free topology — routers
    never learn about remote failures under PR. *)

type t

val build : ?kind:Discriminator.kind -> Pr_graph.Graph.t -> t
(** Default discriminator: {!Discriminator.Hops}. *)

val build_blocked :
  ?kind:Discriminator.kind -> Pr_graph.Graph.t -> blocked:(int -> bool) -> t
(** {!build} with the links whose edge index satisfies [blocked] excluded
    from every SPF run — the control plane's view after administrative
    link removals.  The discriminator bit budget ({!dd_bits}) is a
    function of the full graph and does not shrink. *)

val graph : t -> Pr_graph.Graph.t

val kind : t -> Discriminator.kind

val next_hop : t -> node:int -> dst:int -> int option
(** [None] at the destination itself or when the destination is
    unreachable even without failures. *)

val disc : t -> node:int -> dst:int -> float
(** The distance-discriminator column. *)

val distance : t -> node:int -> dst:int -> float
(** Weighted shortest-path cost. *)

val hops : t -> node:int -> dst:int -> int

val shortest_path : t -> src:int -> dst:int -> int list option
(** The concrete path forwarding would take, [src; ...; dst]. *)

val dd_bits : t -> int
(** DD bits PR needs with this table's discriminator on this graph. *)

val quantise_dd : t -> float -> int
(** Discriminator value as carried in the DD bits (identity for hop
    counts, integer ceiling for weighted costs). *)

val memory_entries : t -> int
(** Total routing-table entries across all routers: n * (n - 1)
    (next hop + discriminator per destination).  Used by the overhead
    report. *)
