module Rotation = Pr_embed.Rotation

type entry = { incoming : int; cycle_following : int; complementary : int }

type t = { rot : Rotation.t }

let build rot = { rot }

let rotation t = t.rot

let graph t = Rotation.graph t.rot

let cycle_next t ~node ~from_ = Rotation.next t.rot node from_

let cycle_next_opt t ~node ~from_ =
  if Pr_graph.Graph.has_edge (graph t) node from_ then
    Some (Rotation.next t.rot node from_)
  else None

let complement_for_failed t ~node ~failed = Rotation.next t.rot node failed

let entries t node =
  Rotation.order t.rot node
  |> Array.to_list
  |> List.map (fun incoming ->
         let cycle_following = cycle_next t ~node ~from_:incoming in
         {
           incoming;
           cycle_following;
           complementary = cycle_next t ~node ~from_:cycle_following;
         })

let memory_entries t = 2 * Pr_graph.Graph.m (graph t)
