module Graph = Pr_graph.Graph
module Trace = Pr_telemetry.Trace
module Probe = Pr_telemetry.Probe

type termination = Simple | Distance_discriminator

type outcome =
  | Delivered
  | Dropped_no_interface
  | Dropped_unreachable
  | Ttl_exceeded
  | Dropped_corrupt

type hop_header = { pr_bit : bool; dd_value : float }

let fresh_header = { pr_bit = false; dd_value = 0.0 }

type step_result =
  | Transmit of {
      next : int;
      header : hop_header;
      episode_started : bool;
      failure_hits : int;
      shortcut : bool;
    }
  | Stuck of { outcome : outcome; failure_hits : int }

type degradation = Retry_complementary | Lfa_rescue | Dd_saturated

type drop_reason =
  | No_route
  | Interfaces_down
  | Continuation_lost
  | Budget_exhausted

let degradation_name = function
  | Retry_complementary -> "retry-complementary"
  | Lfa_rescue -> "lfa-rescue"
  | Dd_saturated -> "dd-saturated"

let drop_reason_name = function
  | No_route -> "no-route"
  | Interfaces_down -> "interfaces-down"
  | Continuation_lost -> "continuation-lost"
  | Budget_exhausted -> "budget-exhausted"

(* Fault loci for guard-mode forwarding: each names the corruption a guarded
   walk detected and where, in the style of Pr_fastpath.Fib's typed deltas.
   A fault always pairs with the [Dropped_corrupt] verdict — an accounted
   drop, never an exception. *)
type fault =
  | Bad_field of { field : int }
  | Impossible_dd of { node : int; dd : float }
  | Not_neighbour of { node : int; from_ : int }
  | Corrupt_cell of { node : int; cell : string }
  | Walk_blowup of { hops : int }

let fault_name = function
  | Bad_field _ -> "bad-field"
  | Impossible_dd _ -> "impossible-dd"
  | Not_neighbour _ -> "not-neighbour"
  | Corrupt_cell _ -> "corrupt-cell"
  | Walk_blowup _ -> "walk-blowup"

let describe_fault = function
  | Bad_field { field } ->
      Printf.sprintf "header field %d does not decode" field
  | Impossible_dd { node; dd } ->
      Printf.sprintf "impossible DD %g at node %d" dd node
  | Not_neighbour { node; from_ } ->
      Printf.sprintf "previous hop %d is not a neighbour of node %d" from_ node
  | Corrupt_cell { node; cell } ->
      Printf.sprintf "corrupt %s cell read at node %d" cell node
  | Walk_blowup { hops } ->
      Printf.sprintf "corrupted walk still live after %d hops" hops

type ladder_result =
  | Forwarded of {
      next : int;
      header : hop_header;
      episode_started : bool;
      failure_hits : int;
      degradations : degradation list;
      shortcut : bool;
    }
  | Degraded_drop of {
      reason : drop_reason;
      failure_hits : int;
      degradations : degradation list;
    }

(* The shared per-router decision core.  [link_up] is the deciding router's
   view of its interfaces — the global truth under {!step}, a local belief
   under {!ladder_step}.  [max_dd_q] is the largest quantised DD the header
   can carry ([None]: unbounded, never saturates).  [budget] is
   [(hops_left, guard)] when the hop-budget rung is armed.  [strict] keeps
   the seed behaviour of raising on a missing rotation entry. *)
let decide ~termination ~quantise ~max_dd_q ~budget ~strict ~trace ~shortcut
    ~routing ~cycles ~link_up ~dst ~node:x ~arrived_from ~header () =
  let g = Routing.graph routing in
  let up = link_up in
  (* Event emission is guarded by [traced] at every site so the null sink
     never even constructs the event — the zero-work guarantee the
     telemetry differential and overhead tests rely on.  Emission points
     mirror Pr_fastpath.Kernel.decide line for line. *)
  let traced = Trace.enabled trace in
  let failure_hits = ref 0 in
  let degradations = ref [] in
  let note d = degradations := d :: !degradations in
  (* A discriminator value as the DD bits would carry it: quantised when
     header-faithful, clamped to the header maximum when it does not fit
     (the saturating-encode behaviour of {!Header.encode_saturating}). *)
  let carried v =
    let q = Routing.quantise_dd routing v in
    match max_dd_q with
    | Some m when q > m -> (float_of_int m, true)
    | _ -> ((if quantise then float_of_int q else v), false)
  in
  let write_dd v =
    let value, sat = carried v in
    if sat then begin
      note Dd_saturated;
      if traced then Trace.emit trace (Trace.Dd_saturated { node = x; dd = value })
    end;
    value
  in
  let forwarded ?(shortcut = false) next header episode_started =
    Forwarded
      {
        next;
        header;
        episode_started;
        failure_hits = !failure_hits;
        degradations = List.rev !degradations;
        shortcut;
      }
  in
  let drop reason =
    Degraded_drop
      {
        reason;
        failure_hits = !failure_hits;
        degradations = List.rev !degradations;
      }
  in
  (* Start the complementary cycle of the failed interface (x, failed):
     rotate from [failed] to the first live interface.  Each dead interface
     passed is a further failure encounter; under the DD condition the
     comparison that would run at each encounter uses the same local
     discriminator and the same header DD, so its outcome cannot change
     mid-rotation and skipping straight to the first live interface is
     faithful to the protocol. *)
  let start_complementary failed ~dd ~episode_started =
    if traced then Trace.emit trace (Trace.Complementary { node = x; failed });
    let deg = Graph.degree g x in
    let rec rotate candidate remaining =
      if remaining = 0 then drop Interfaces_down
      else if up candidate then
        forwarded candidate { pr_bit = true; dd_value = dd } episode_started
      else begin
        incr failure_hits;
        rotate
          (Cycle_table.complement_for_failed cycles ~node:x ~failed:candidate)
          (remaining - 1)
      end
    in
    rotate (Cycle_table.complement_for_failed cycles ~node:x ~failed) deg
  in
  (* Normal shortest-path forwarding; on a failed next hop, start a PR
     episode with the local discriminator in the DD bits (§4.2/§4.3). *)
  let routed () =
    match Routing.next_hop routing ~node:x ~dst with
    | None -> drop No_route
    | Some w ->
        if up w then forwarded w fresh_header false
        else begin
          incr failure_hits;
          let dd = write_dd (Routing.disc routing ~node:x ~dst) in
          if traced then Trace.emit trace (Trace.Pr_set { node = x; dd });
          start_complementary w ~dd ~episode_started:true
        end
  in
  (* Last ladder rung before the drop: a loop-free alternate (RFC 5286
     basic inequality, as {!Pr_baselines.Lfa} computes it) that this
     router believes up.  PR state is discarded — the rescued packet
     continues as a plain routed packet. *)
  let lfa_rescue ~reason =
    match Routing.next_hop routing ~node:x ~dst with
    | None -> drop No_route
    | Some primary ->
        let dist v = Routing.distance routing ~node:v ~dst in
        let cost w = Graph.weight g x w in
        let loop_free w = w <> primary && dist w < cost w +. dist x in
        let best =
          Array.fold_left
            (fun acc w ->
              if loop_free w && up w then
                match acc with
                | Some b when cost b +. dist b <= cost w +. dist w -> acc
                | _ -> Some w
              else acc)
            None (Graph.neighbours g x)
        in
        (match best with
        | Some w ->
            note Lfa_rescue;
            if traced then
              Trace.emit trace
                (Trace.Rung
                   {
                     node = x;
                     rung = Trace.Lfa_rescue;
                     reason = drop_reason_name reason;
                   });
            forwarded w fresh_header false
        | None -> drop reason)
  in
  (* The degradation ladder, entered when the PR continuation is unusable
     ([reason]): resume plain routing if the primary is up, else
     (optionally) restart a complementary episode with a fresh local DD,
     else LFA rescue, else an accounted drop. *)
  let ladder ~reason ~try_complementary =
    match Routing.next_hop routing ~node:x ~dst with
    | None -> drop No_route
    | Some w ->
        if up w then begin
          if traced then
            Trace.emit trace
              (Trace.Rung
                 {
                   node = x;
                   rung = Trace.Routed_resume;
                   reason = drop_reason_name reason;
                 });
          forwarded w fresh_header false
        end
        else begin
          incr failure_hits;
          if try_complementary then begin
            note Retry_complementary;
            if traced then
              Trace.emit trace
                (Trace.Rung
                   {
                     node = x;
                     rung = Trace.Retry_complementary;
                     reason = drop_reason_name reason;
                   });
            let dd = write_dd (Routing.disc routing ~node:x ~dst) in
            if traced then Trace.emit trace (Trace.Pr_set { node = x; dd });
            match start_complementary w ~dd ~episode_started:true with
            | Forwarded _ as r -> r
            | Degraded_drop _ -> lfa_rescue ~reason
          end
          else lfa_rescue ~reason
        end
  in
  let budget_exhausted =
    match budget with
    | Some (hops_left, guard) -> header.pr_bit && hops_left <= guard
    | None -> false
  in
  if budget_exhausted then
    (* Nearly out of hop budget mid-episode: stop cycle following (it is
       what burned the budget) and take the ladder without the
       complementary rung. *)
    ladder ~reason:Budget_exhausted ~try_complementary:false
  else if not header.pr_bit then routed ()
  else
    match arrived_from with
    | None ->
        (* A PR-marked packet always has a previous hop; treat a source
           with a stale PR bit as freshly injected. *)
        routed ()
    | Some y -> (
        (* Cycle following. *)
        let continuation =
          if strict then Some (Cycle_table.cycle_next cycles ~node:x ~from_:y)
          else Cycle_table.cycle_next_opt cycles ~node:x ~from_:y
        in
        match continuation with
        | None -> ladder ~reason:Continuation_lost ~try_complementary:true
        | Some w ->
            if up w then begin
              (* The shortcut rung: the continuation is live, but the
                 seen-node hint says this node was already departed during
                 the current PR period (deja-vu).  Run the §4.3 comparison
                 {e proactively}: it is exactly the check a failure
                 encounter would run, so a grant is sound on its own and a
                 Bloom false positive can at worst trigger a check that
                 declines.  Grant only if the primary next hop is also up
                 — the packet re-enters plain routing with a fresh header
                 and no new episode.  Every decline (no hint, no deja-vu,
                 unsound comparison, primary down) continues cycle
                 following unchanged. *)
              let grant =
                match (shortcut, termination) with
                | Some seen, Distance_discriminator when seen x -> (
                    let local, local_sat =
                      carried (Routing.disc routing ~node:x ~dst)
                    in
                    let header_sat =
                      match max_dd_q with
                      | Some m -> header.dd_value >= float_of_int m
                      | None -> false
                    in
                    if
                      (not (local_sat && header_sat))
                      && local < header.dd_value
                    then
                      match Routing.next_hop routing ~node:x ~dst with
                      | Some p when up p -> Some (p, local)
                      | _ -> None
                    else None)
                | _ -> None
              in
              match grant with
              | Some (p, local) ->
                  if traced then
                    Trace.emit trace
                      (Trace.Shortcut
                         {
                           node = x;
                           local_dd = local;
                           header_dd = header.dd_value;
                         });
                  forwarded ~shortcut:true p fresh_header false
              | None -> forwarded w header false
            end
            else begin
              incr failure_hits;
              match termination with
              | Simple -> routed ()
              | Distance_discriminator ->
                  let local, local_sat =
                    carried (Routing.disc routing ~node:x ~dst)
                  in
                  let header_sat =
                    match max_dd_q with
                    | Some m -> header.dd_value >= float_of_int m
                    | None -> false
                  in
                  if local_sat && header_sat then begin
                    (* Both discriminators clamped to the header maximum:
                       the §4.3 comparison is no longer sound.  Degrade
                       instead of trusting it. *)
                    note Dd_saturated;
                    if traced then
                      Trace.emit trace (Trace.Dd_refused { node = x });
                    ladder ~reason:Continuation_lost ~try_complementary:true
                  end
                  else begin
                    let cleared = local < header.dd_value in
                    if traced then
                      Trace.emit trace
                        (Trace.Dd_compare
                           {
                             node = x;
                             local_dd = local;
                             header_dd = header.dd_value;
                             cleared;
                           });
                    if cleared then routed ()
                    else
                      start_complementary w ~dd:header.dd_value
                        ~episode_started:false
                  end
            end)

let step ?(termination = Distance_discriminator) ?(quantise = false)
    ?(trace = Trace.null) ?shortcut ~routing ~cycles ~failures ~dst ~node
    ~arrived_from ~header () =
  match
    decide ~termination ~quantise ~max_dd_q:None ~budget:None ~strict:true
      ~trace ~shortcut ~routing ~cycles
      ~link_up:(fun w -> Failure.link_up failures node w)
      ~dst ~node ~arrived_from ~header ()
  with
  | Forwarded
      {
        next;
        header;
        episode_started;
        failure_hits;
        degradations = _;
        shortcut;
      } ->
      Transmit { next; header; episode_started; failure_hits; shortcut }
  | Degraded_drop { reason = No_route; failure_hits; _ } ->
      Stuck { outcome = Dropped_unreachable; failure_hits }
  | Degraded_drop { reason = Interfaces_down; failure_hits; _ } ->
      Stuck { outcome = Dropped_no_interface; failure_hits }
  | Degraded_drop { reason = Continuation_lost | Budget_exhausted; _ } ->
      (* Unreachable: strict mode raises on missing entries, the budget
         rung is unarmed and DD values never saturate without a bound. *)
      assert false

let ladder_step ?(termination = Distance_discriminator) ?(quantise = false)
    ?dd_bits ?hops_left ?(budget_guard = 0) ?(trace = Trace.null) ?shortcut
    ~routing ~cycles ~link_up ~dst ~node ~arrived_from ~header () =
  let max_dd_q =
    match dd_bits with
    | None -> None
    | Some b -> Some (Header.max_dd ~dd_bits:b)
  in
  let budget =
    match hops_left with
    | Some h when budget_guard > 0 -> Some (h, budget_guard)
    | _ -> None
  in
  decide ~termination ~quantise ~max_dd_q ~budget ~strict:false ~trace
    ~shortcut ~routing ~cycles ~link_up ~dst ~node ~arrived_from ~header ()

type trace = {
  outcome : outcome;
  path : int list;
  pr_episodes : int;
  failure_hits : int;
  max_header : Header.t;
  episodes : (int * float) list;
  shortcuts : int;
}

let default_ttl g = (2 * Graph.m g * (Graph.n g + 2)) + Graph.n g + 16

let step_class result =
  match result with
  | Stuck _ -> Probe.cls_drop
  | Transmit { shortcut = true; _ } -> Probe.cls_shortcut
  | Transmit { episode_started = true; _ } -> Probe.cls_episode
  | Transmit { header = { pr_bit = true; _ }; _ } -> Probe.cls_cycle
  | Transmit _ -> Probe.cls_routed

let run ?termination ?ttl ?quantise ?(trace = Trace.null) ?probe ?linkload
    ?shortcut ~routing ~cycles ~failures ~src ~dst () =
  let g = Routing.graph routing in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg
      (Printf.sprintf
         "Forward.run: node out of range (src %d, dst %d, topology has 0..%d)"
         src dst (n - 1));
  if src = dst then
    invalid_arg (Printf.sprintf "Forward.run: src = dst (node %d)" src);
  let ttl0 = match ttl with Some t -> t | None -> default_ttl g in
  let traced = Trace.enabled trace in
  let pr_episodes = ref 0 in
  let failure_hits = ref 0 in
  let max_dd = ref 0.0 in
  let episodes = ref [] in
  let shortcuts = ref 0 in
  (* The seen-node hint lives per walk; the step-level query closure is
     built once so the hot loop stays allocation-free. *)
  let seen = Option.map Seen.create shortcut in
  let seen_query =
    match seen with None -> None | Some s -> Some (fun v -> Seen.query s v)
  in
  let track_seen x (header : hop_header) =
    match seen with
    | None -> ()
    | Some s -> if header.pr_bit then Seen.insert s x else Seen.reset s
  in
  let timed_step x arrived_from header =
    match probe with
    | None ->
        step ?termination ?quantise ~trace ?shortcut:seen_query ~routing
          ~cycles ~failures ~dst ~node:x ~arrived_from ~header ()
    | Some p ->
        let t0 = Probe.now_ns () in
        let r =
          step ?termination ?quantise ~trace ?shortcut:seen_query ~routing
            ~cycles ~failures ~dst ~node:x ~arrived_from ~header ()
        in
        Probe.record_latency p ~cls:(step_class r)
          ~ns:(Int64.sub (Probe.now_ns ()) t0);
        r
  in
  let rec walk x arrived_from header ~ttl acc =
    if x = dst then begin
      if traced then
        Trace.emit trace (Trace.Deliver { node = x; hops = ttl0 - ttl });
      finish Delivered ~ttl acc
    end
    else if ttl = 0 then begin
      if traced then Trace.emit trace (Trace.Expire { node = x; hops = ttl0 });
      finish Ttl_exceeded ~ttl acc
    end
    else begin
      match timed_step x arrived_from header with
      | Stuck { outcome; failure_hits = hits } ->
          failure_hits := !failure_hits + hits;
          if traced then
            Trace.emit trace
              (Trace.Drop
                 {
                   node = x;
                   reason =
                     (match outcome with
                     | Dropped_unreachable -> "no-route"
                     | Dropped_corrupt -> "corrupt"
                     | Delivered | Dropped_no_interface | Ttl_exceeded ->
                         "interfaces-down");
                 });
          finish outcome ~ttl acc
      | Transmit
          { next; header; episode_started; failure_hits = hits; shortcut = sc }
        ->
          failure_hits := !failure_hits + hits;
          if episode_started then begin
            incr pr_episodes;
            episodes := (x, header.dd_value) :: !episodes;
            if header.dd_value > !max_dd then max_dd := header.dd_value
          end;
          if sc then begin
            incr shortcuts;
            match probe with None -> () | Some p -> Probe.record_shortcut p
          end;
          track_seen x header;
          if traced then
            Trace.emit trace
              (Trace.Hop
                 { node = x; next; pr = header.pr_bit; dd = header.dd_value });
          (match linkload with
          | None -> ()
          | Some ll ->
              (* Strict [step] never takes a ladder rung, so hops are
                 shortest-path, PR-mode by the header on the wire, or a
                 shortcut exit. *)
              Pr_obs.Linkload.record_next ll ~node:x ~next
                ~cls:
                  (if sc then Pr_obs.Linkload.cls_shortcut
                   else if header.pr_bit then Pr_obs.Linkload.cls_recycled
                   else Pr_obs.Linkload.cls_shortest));
          walk next (Some x) header ~ttl:(ttl - 1) (next :: acc)
    end
  and finish outcome ~ttl acc =
    let t =
      {
        outcome;
        path = List.rev acc;
        pr_episodes = !pr_episodes;
        failure_hits = !failure_hits;
        max_header =
          {
            Header.pr = !pr_episodes > 0;
            dd = Routing.quantise_dd routing !max_dd;
          };
        episodes = List.rev !episodes;
        shortcuts = !shortcuts;
      }
    in
    (match probe with
    | None -> ()
    | Some p ->
        let hops = ttl0 - ttl and depth = !pr_episodes in
        (match outcome with
        | Delivered ->
            let stretch =
              Pr_graph.Paths.cost g t.path
              /. Routing.distance routing ~node:src ~dst
            in
            Probe.record_delivery p ~stretch ~hops ~depth
        | Ttl_exceeded -> Probe.record_loop p ~hops:ttl0 ~depth
        | Dropped_unreachable ->
            Probe.record_drop p ~reason:Probe.reason_no_route ~hops ~depth
        | Dropped_no_interface ->
            Probe.record_drop p ~reason:Probe.reason_interfaces_down ~hops
              ~depth
        | Dropped_corrupt ->
            Probe.record_drop p ~reason:Probe.reason_corrupt ~hops ~depth);
        for _ = 1 to !pr_episodes do
          Probe.record_episode p
        done;
        Probe.add_failure_hits p !failure_hits);
    t
  in
  walk src None fresh_header ~ttl:ttl0 [ src ]

type guarded = {
  trace : trace;
  fault : fault option;
  drop : drop_reason option;
  degradations : degradation list;
}

let inject_of_field ~dd_bits field =
  match Header.decode_result ~dd_bits field with
  | Error _ -> Error (Bad_field { field })
  | Ok { Header.pr; dd } -> Ok { pr_bit = pr; dd_value = float_of_int dd }

let run_guarded ?termination ?ttl ?quantise ?dd_bits ?(budget_guard = 0)
    ?(header = fresh_header) ?arrived_from ?shortcut ~routing ~cycles ~failures
    ~src ~dst () =
  let g = Routing.graph routing in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg
      (Printf.sprintf
         "Forward.run_guarded: node out of range (src %d, dst %d, topology \
          has 0..%d)"
         src dst (n - 1));
  if src = dst then
    invalid_arg (Printf.sprintf "Forward.run_guarded: src = dst (node %d)" src);
  let ttl0 = match ttl with Some t -> t | None -> default_ttl g in
  (* A walk is corrupt-seeded when any header state was injected; only such
     walks convert TTL expiry into the walk-blowup fault, so clean guarded
     traffic keeps the plain {!Ttl_exceeded} verdict of {!run}. *)
  let seeded = header <> fresh_header || arrived_from <> None in
  let pr_episodes = ref 0 in
  let failure_hits = ref 0 in
  let max_dd = ref 0.0 in
  let episodes = ref [] in
  let all_degradations = ref [] in
  let shortcuts = ref 0 in
  let seen = Option.map Seen.create shortcut in
  let seen_query =
    match seen with None -> None | Some s -> Some (fun v -> Seen.query s v)
  in
  let track_seen x (header : hop_header) =
    match seen with
    | None -> ()
    | Some s -> if header.pr_bit then Seen.insert s x else Seen.reset s
  in
  let finish ?fault ?drop outcome acc =
    {
      trace =
        {
          outcome;
          path = List.rev acc;
          pr_episodes = !pr_episodes;
          failure_hits = !failure_hits;
          max_header =
            {
              Header.pr = !pr_episodes > 0;
              dd = Routing.quantise_dd routing !max_dd;
            };
          episodes = List.rev !episodes;
          shortcuts = !shortcuts;
        };
      fault;
      drop;
      degradations = List.rev !all_degradations;
    }
  in
  (* Entry guards, in the same order the compiled kernel applies them:
     impossible DD first, then the neighbour check on the claimed previous
     hop.  Undecodable wire fields never reach this point — callers decode
     with {!inject_of_field} and account {!Bad_field} directly. *)
  let entry_fault =
    if
      header.pr_bit
      && (Float.is_nan header.dd_value
         || header.dd_value < 0.0
         || header.dd_value = Float.infinity
         ||
         match dd_bits with
         | Some b -> header.dd_value > float_of_int (Header.max_dd ~dd_bits:b)
         | None -> false)
    then Some (Impossible_dd { node = src; dd = header.dd_value })
    else
      match arrived_from with
      | Some y
        when y < 0 || y >= n
             || not (Array.exists (Int.equal y) (Graph.neighbours g src)) ->
          Some (Not_neighbour { node = src; from_ = y })
      | _ -> None
  in
  match entry_fault with
  | Some f -> finish ~fault:f Dropped_corrupt [ src ]
  | None ->
      let rec walk x arrived_from header ~ttl acc =
        if x = dst then finish Delivered acc
        else if ttl = 0 then
          if seeded then
            finish ~fault:(Walk_blowup { hops = ttl0 }) Dropped_corrupt acc
          else finish Ttl_exceeded acc
        else begin
          match
            ladder_step ?termination ?quantise ?dd_bits ~hops_left:ttl
              ~budget_guard ?shortcut:seen_query ~routing ~cycles
              ~link_up:(fun w -> Failure.link_up failures x w)
              ~dst ~node:x ~arrived_from ~header ()
          with
          | Degraded_drop { reason; failure_hits = hits; degradations } ->
              failure_hits := !failure_hits + hits;
              all_degradations := List.rev_append degradations !all_degradations;
              let outcome =
                match reason with
                | No_route -> Dropped_unreachable
                | Interfaces_down | Continuation_lost | Budget_exhausted ->
                    Dropped_no_interface
              in
              finish ~drop:reason outcome acc
          | Forwarded
              {
                next;
                header;
                episode_started;
                failure_hits = hits;
                degradations;
                shortcut = sc;
              } ->
              failure_hits := !failure_hits + hits;
              all_degradations := List.rev_append degradations !all_degradations;
              if episode_started then begin
                incr pr_episodes;
                episodes := (x, header.dd_value) :: !episodes;
                if header.dd_value > !max_dd then max_dd := header.dd_value
              end;
              if sc then incr shortcuts;
              track_seen x header;
              walk next (Some x) header ~ttl:(ttl - 1) (next :: acc)
        end
      in
      walk src arrived_from header ~ttl:ttl0 [ src ]

let path_cost g trace = Pr_graph.Paths.cost g trace.path

let stretch ~routing ~trace ~src ~dst =
  match trace.outcome with
  | Delivered ->
      let base = Routing.distance routing ~node:src ~dst in
      path_cost (Routing.graph routing) trace /. base
  | Dropped_no_interface | Dropped_unreachable | Ttl_exceeded
  | Dropped_corrupt ->
      infinity
