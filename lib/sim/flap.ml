type state = Link_up | Link_down

let canon u v = if u < v then (u, v) else (v, u)

type violation =
  | Bad_time of { index : int; time : float }
  | Unsorted of { index : int; prev : float; time : float }
  | Non_alternating of { index : int; u : int; v : int; up : bool }

let describe_violation = function
  | Bad_time { index; time } ->
      Printf.sprintf "event %d: bad timestamp %g (must be finite and >= 0)"
        index time
  | Unsorted { index; prev; time } ->
      Printf.sprintf "event %d: time %g precedes previous event at %g (stream must be time-sorted)"
        index time prev
  | Non_alternating { index; u; v; up } ->
      Printf.sprintf
        "event %d: link %d-%d goes %s twice in a row (per-link events must alternate starting with a down)"
        index u v (if up then "up" else "down")

let validate_events ?(require_alternation = false) events =
  let link_state = Hashtbl.create 16 in
  let rec walk index prev = function
    | [] -> Ok ()
    | (e : Workload.link_event) :: rest ->
        if not (Float.is_finite e.time) || e.time < 0.0 then
          Error (Bad_time { index; time = e.time })
        else if e.time < prev then
          Error (Unsorted { index; prev; time = e.time })
        else begin
          let key = canon e.u e.v in
          let previous_up =
            Option.value ~default:true (Hashtbl.find_opt link_state key)
          in
          if require_alternation && e.up = previous_up then
            Error (Non_alternating { index; u = e.u; v = e.v; up = e.up })
          else begin
            Hashtbl.replace link_state key e.up;
            walk (index + 1) e.time rest
          end
        end
  in
  walk 0 0.0 events

let apply_hold_down events ~hold_down =
  if hold_down < 0.0 then invalid_arg "Flap.apply_hold_down: negative hold-down";
  (match validate_events ~require_alternation:true events with
  | Ok () -> ()
  | Error v ->
      invalid_arg ("Flap.apply_hold_down: " ^ describe_violation v));
  (* Group per link, preserving time order. *)
  let by_link = Hashtbl.create 16 in
  List.iter
    (fun (e : Workload.link_event) ->
      let key = canon e.u e.v in
      Hashtbl.replace by_link key
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_link key))))
    events;
  let damped_for_link events_rev =
    let rec walk state pending out = function
      | [] ->
          let out =
            match (state, pending) with
            | Link_down, Some (e, eff) ->
                { e with Workload.time = eff; up = true } :: out
            | _ -> out
          in
          List.rev out
      | (e : Workload.link_event) :: rest ->
          if e.up then begin
            match state with
            | Link_up -> walk state pending out rest (* redundant up *)
            | Link_down ->
                (* Tentatively schedule the damped up-transition. *)
                walk state (Some (e, e.time +. hold_down)) out rest
          end
          else begin
            match (state, pending) with
            | Link_down, Some (_, eff) when e.time < eff ->
                (* Failed again inside the hold-down window: cancel. *)
                walk Link_down None out rest
            | Link_down, Some (pe, eff) ->
                (* The pending up matured before this failure. *)
                let out = { pe with Workload.time = eff; up = true } :: out in
                walk Link_down None ({ e with Workload.time = e.time } :: out) rest
            | Link_down, None -> walk Link_down None out rest (* redundant down *)
            | Link_up, _ -> walk Link_down None (e :: out) rest
          end
    in
    walk Link_up None [] (List.rev events_rev)
  in
  Hashtbl.fold (fun _ evs acc -> damped_for_link evs @ acc) by_link []
  |> List.sort (fun (a : Workload.link_event) b -> compare a.time b.time)

let backoff_hold ~hold_down ~factor ~cap ~cancels =
  if hold_down < 0.0 then invalid_arg "Flap.backoff_hold: negative hold-down";
  if factor < 1.0 then invalid_arg "Flap.backoff_hold: factor must be >= 1";
  if cap < 1.0 then invalid_arg "Flap.backoff_hold: cap must be >= 1";
  if cancels < 0 then invalid_arg "Flap.backoff_hold: negative cancels";
  hold_down *. Float.min cap (factor ** float_of_int cancels)

let transitions_per_link events =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (e : Workload.link_event) ->
      let key = canon e.u e.v in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    events;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts [] |> List.sort compare
