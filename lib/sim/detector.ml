module Graph = Pr_graph.Graph
module Rng = Pr_util.Rng

type config = {
  down_delay : float;
  up_delay : float;
  jitter : float;
  false_positive_rate : float;
  false_positive_hold : float;
  hold_down : float;
  backoff : float;
  max_backoff : float;
  budget_guard : int;
  seed : int;
}

let ideal =
  {
    down_delay = 0.0;
    up_delay = 0.0;
    jitter = 0.0;
    false_positive_rate = 0.0;
    false_positive_hold = 0.0;
    hold_down = 0.0;
    backoff = 1.0;
    max_backoff = 1.0;
    budget_guard = 0;
    seed = 0;
  }

let default =
  {
    down_delay = 0.05;
    up_delay = 0.1;
    jitter = 0.05;
    false_positive_rate = 0.0;
    false_positive_hold = 0.5;
    hold_down = 0.5;
    backoff = 2.0;
    max_backoff = 8.0;
    budget_guard = 0;
    seed = 1;
  }

let validate_config c =
  let nonneg name v =
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg (Printf.sprintf "Detector: %s must be finite and >= 0" name)
  in
  nonneg "down_delay" c.down_delay;
  nonneg "up_delay" c.up_delay;
  nonneg "jitter" c.jitter;
  nonneg "false_positive_hold" c.false_positive_hold;
  nonneg "hold_down" c.hold_down;
  if
    (not (Float.is_finite c.false_positive_rate))
    || c.false_positive_rate < 0.0
    || c.false_positive_rate > 1.0
  then invalid_arg "Detector: false_positive_rate must be in [0, 1]";
  if not (Float.is_finite c.backoff) || c.backoff < 1.0 then
    invalid_arg "Detector: backoff must be >= 1";
  if not (Float.is_finite c.max_backoff) || c.max_backoff < 1.0 then
    invalid_arg "Detector: max_backoff must be >= 1";
  if c.budget_guard < 0 then invalid_arg "Detector: budget_guard must be >= 0"

(* One endpoint's belief about its adjacent link.  [pending] is a scheduled
   belief change that commits when the simulation clock reaches it;
   [cancels] counts restores cancelled inside their hold-down window and
   drives the exponential backoff; [false_down_until] holds the link
   falsely down after a false-positive draw. *)
type side = {
  rng : Rng.t;
  mutable believed_up : bool;
  mutable pending : (float * bool) option;
  mutable cancels : int;
  mutable false_down_until : float;
}

type t = { cfg : config; g : Graph.t; sides : side array }

let create cfg g =
  validate_config cfg;
  let master = Rng.create ~seed:cfg.seed in
  let sides =
    Array.init
      (2 * Graph.m g)
      (fun _ ->
        {
          rng = Rng.split master;
          believed_up = true;
          pending = None;
          cancels = 0;
          false_down_until = 0.0;
        })
  in
  { cfg; g; sides }

let config t = t.cfg

let link_index t u v =
  try Graph.edge_index t.g u v
  with Not_found ->
    invalid_arg (Printf.sprintf "Detector: %d-%d is not a link" u v)

(* Side 0 of edge i belongs to the endpoint [e.u], side 1 to [e.v]. *)
let side_of t ~node ~other =
  let i = link_index t node other in
  let e = Graph.edge t.g i in
  t.sides.((2 * i) + if node = e.u then 0 else 1)

let commit s ~now =
  match s.pending with
  | Some (at, st) when at <= now ->
      s.believed_up <- st;
      s.pending <- None;
      if st then s.cancels <- 0
  | Some _ | None -> ()

let jitter_draw t s = if t.cfg.jitter > 0.0 then Rng.float s.rng t.cfg.jitter else 0.0

let observe_side t s ~time ~up =
  commit s ~now:time;
  if up then begin
    (match s.pending with
    | Some (_, false) ->
        (* The link came back before the failure was detected: the blip is
           missed entirely. *)
        s.pending <- None
    | Some (_, true) -> ()
    | None ->
        if not s.believed_up then begin
          let hold =
            Flap.backoff_hold ~hold_down:t.cfg.hold_down ~factor:t.cfg.backoff
              ~cap:t.cfg.max_backoff ~cancels:s.cancels
          in
          s.pending <-
            Some (time +. t.cfg.up_delay +. hold +. jitter_draw t s, true)
        end)
  end
  else begin
    (match s.pending with
    | Some (_, true) ->
        (* Failed again while the restore was pending: cancel it and
           escalate the backoff. *)
        s.pending <- None;
        s.cancels <- s.cancels + 1
    | Some (_, false) -> ()
    | None ->
        if s.believed_up then
          s.pending <- Some (time +. t.cfg.down_delay +. jitter_draw t s, false))
  end;
  (* Churn makes an imperfect detector jumpy: each observed transition may
     falsely hold the link down for a while even at an endpoint whose
     belief tracked the truth. *)
  if t.cfg.false_positive_rate > 0.0 then
    if Rng.float s.rng 1.0 < t.cfg.false_positive_rate then
      s.false_down_until <-
        Float.max s.false_down_until (time +. t.cfg.false_positive_hold)

let observe t ~time ~u ~v ~up =
  let i = link_index t u v in
  observe_side t t.sides.(2 * i) ~time ~up;
  observe_side t t.sides.((2 * i) + 1) ~time ~up

let side_believes_up s ~now =
  commit s ~now;
  s.believed_up && now >= s.false_down_until

let believes_up t ~now ~node ~other = side_believes_up (side_of t ~node ~other) ~now

let local_view t ~now ~node = fun other -> believes_up t ~now ~node ~other

let force_belief t ~node ~other ~up =
  let s = side_of t ~node ~other in
  s.pending <- None;
  s.false_down_until <- 0.0;
  s.believed_up <- up

let quiescent t ~now ~net =
  let m = Graph.m t.g in
  let ok = ref true in
  for i = 0 to m - 1 do
    let truth = Netstate.is_up_index net i in
    if
      side_believes_up t.sides.(2 * i) ~now <> truth
      || side_believes_up t.sides.((2 * i) + 1) ~now <> truth
    then ok := false
  done;
  !ok

let asymmetric_links t ~now =
  let m = Graph.m t.g in
  let out = ref [] in
  for i = m - 1 downto 0 do
    if
      side_believes_up t.sides.(2 * i) ~now
      <> side_believes_up t.sides.((2 * i) + 1) ~now
    then begin
      let e = Graph.edge t.g i in
      out := (e.u, e.v) :: !out
    end
  done;
  !out
