(** Mutable view of the network's link states during a simulation. *)

type t

val create : Pr_graph.Graph.t -> t
(** All links up. *)

val graph : t -> Pr_graph.Graph.t

val set_link : t -> int -> int -> up:bool -> bool
(** Returns [true] when the state actually changed.  Raises
    [Invalid_argument] for non-links. *)

val is_up : t -> int -> int -> bool

val is_up_index : t -> int -> bool
(** By edge index — the iteration order {!Detector.quiescent} uses. *)

val down_links : t -> (int * int) list

val failures : t -> Pr_core.Failure.t
(** Snapshot usable by the forwarding engines; cached until the next
    {!set_link} that changes something. *)

val all_up : t -> bool
