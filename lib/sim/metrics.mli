(** Outcome accounting for simulation runs.

    Beyond the seed counters, drops carry a {e reason} and the
    degradation-ladder events of {!Pr_core.Forward.ladder_step} are
    counted, so a run's losses can be read as a breakdown rather than one
    opaque number ([prcli detect] surfaces it). *)

type drop_reason =
  | No_route           (** no routing entry at some router *)
  | Interfaces_down    (** every interface of some router believed down *)
  | No_alternate       (** LFA: primary down and no usable alternate *)
  | Continuation_lost  (** PR continuation unusable, ladder exhausted *)
  | Budget_exhausted   (** hop-budget guard fired, ladder exhausted *)
  | Stale_view
      (** sent into a link the sender wrongly believed up — the packet
          died on the wire *)
  | Unclassified       (** legacy call sites that do not say *)
  | Corrupt
      (** guard mode detected corrupted header or FIB state and dropped
          the packet with a {!Pr_core.Forward.fault} locus *)

val all_reasons : drop_reason list

val reason_name : drop_reason -> string

val reason_of_forward : Pr_core.Forward.drop_reason -> drop_reason

type t = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;       (** dropped at a failed link / no route *)
  mutable looped : int;        (** TTL exhausted although a path existed *)
  mutable unreachable : int;   (** destination disconnected at injection time:
                                   no scheme could have delivered *)
  mutable stretch_sum : float; (** over delivered packets *)
  mutable worst_stretch : float;
  drops_by_reason : int array; (** indexed as {!all_reasons}; use
                                   {!drop_count} / {!drop_breakdown} *)
  mutable complementary_retries : int;
  mutable lfa_rescues : int;
  mutable dd_saturations : int;
  mutable shortcut_exits : int;
      (** deja-vu shortcut grants ({!Pr_core.Forward.run}'s [shortcuts],
          the kernel's [shortcut_exits]) *)
}

val create : unit -> t

val record_delivery : t -> stretch:float -> unit

val record_drop : ?reason:drop_reason -> t -> unit
(** Default reason: {!Unclassified} (the seed behaviour). *)

val record_loop : t -> unit

val record_unreachable : t -> unit

val record_degradation : t -> Pr_core.Forward.degradation -> unit

val record_degradations : t -> Pr_core.Forward.degradation list -> unit

val record_shortcuts : t -> int -> unit
(** Account [k] shortcut grants (a walk's [shortcuts] count). *)

val of_fastpath : Pr_fastpath.Kernel.counters -> t
(** Shape a batch kernel's counters as a metrics record (reason slots
    mapped by name; the kernel's extra PR counters are dropped).  Used by
    [prcli bench] and the determinism suite to print {!Pr_fastpath.Parallel}
    results with {!pp}. *)

val probe_reason : drop_reason -> int
(** The {!Pr_telemetry.Probe} reason slot of a drop reason — the inverse
    direction of {!of_probes}'s straight copy, shared by the engines'
    probe feeding. *)

val of_probes : Pr_telemetry.Probe.t -> t
(** Shape a probe's verdict counters as a metrics record.  The probe's
    reason slots are already in {!all_reasons} order, so the mapping is a
    straight copy; the probe's histograms and PR counters beyond the
    ladder trio are dropped. *)

val drop_count : t -> drop_reason -> int

val drop_breakdown : t -> (drop_reason * int) list
(** Every reason with its count — zero counts included — in
    {!all_reasons} order, so breakdowns are line-comparable across
    runs. *)

val delivery_ratio : t -> float
(** Delivered over deliverable (injected minus unreachable). *)

val mean_stretch : t -> float
(** Over delivered packets; 0 when none. *)

val pp : Format.formatter -> t -> unit
(** The seed one-liner, plus a [drops[...]] / [degraded[...]] suffix only
    when classified drops or ladder events occurred. *)
