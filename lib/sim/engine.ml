module Graph = Pr_graph.Graph
module Dijkstra = Pr_graph.Dijkstra
module Forward = Pr_core.Forward
module Probe = Pr_telemetry.Probe

type scheme =
  | Pr_scheme of { termination : Pr_core.Forward.termination }
  | Lfa_scheme
  | Reconvergence_scheme of { convergence_delay : float }
  | Reconvergence_jittered of {
      min_delay : float;
      max_delay : float;
      seed : int;
    }

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  scheme : scheme;
}

type control = { delay : float; threshold : float }

let default_control = { delay = 0.5; threshold = 0.5 }

type swap_info = {
  epoch : int;
  link : int * int;
  admin_up : bool;
  admin_down : (int * int) list;
}

type backend = [ `Reference | `Compiled ]

let backend_name = function `Reference -> "reference" | `Compiled -> "compiled"

let metrics_reason = function
  | Pr_fastpath.Kernel.No_route -> Metrics.No_route
  | Pr_fastpath.Kernel.Interfaces_down -> Metrics.Interfaces_down
  | Pr_fastpath.Kernel.Continuation_lost -> Metrics.Continuation_lost
  | Pr_fastpath.Kernel.Budget_exhausted -> Metrics.Budget_exhausted
  | Pr_fastpath.Kernel.Stale_view -> Metrics.Stale_view
  | Pr_fastpath.Kernel.Corrupt -> Metrics.Corrupt

let probe_reason = Metrics.probe_reason

(* Latency class of one ladder_step decision: a ladder rung outranks the
   episode/cycle state it left behind (mirrors the kernel's slow_class). *)
let ladder_class = function
  | Forward.Degraded_drop _ -> Probe.cls_drop
  | Forward.Forwarded { episode_started; header; degradations; _ } ->
      if List.mem Forward.Lfa_rescue degradations then Probe.cls_lfa
      else if List.mem Forward.Retry_complementary degradations then
        Probe.cls_retry
      else if episode_started then Probe.cls_episode
      else if header.Forward.pr_bit then Probe.cls_cycle
      else Probe.cls_routed

type outcome = {
  metrics : Metrics.t;
  spf_runs : int;
  link_transitions : int;
  epochs : int;
  finished_at : float;
}

type workload_error =
  | Bad_link_events of Flap.violation
  | Not_a_link of { index : int; u : int; v : int }
  | Bad_injection_time of { index : int; time : float }
  | Unsorted_injections of { index : int; prev : float; time : float }
  | Bad_endpoints of { index : int; src : int; dst : int }

let describe_workload_error = function
  | Bad_link_events v -> "link events: " ^ Flap.describe_violation v
  | Not_a_link { index; u; v } ->
      Printf.sprintf "link event %d: %d-%d is not a link of the topology"
        index u v
  | Bad_injection_time { index; time } ->
      Printf.sprintf "injection %d: bad timestamp %g (must be finite and >= 0)"
        index time
  | Unsorted_injections { index; prev; time } ->
      Printf.sprintf
        "injection %d: time %g precedes previous injection at %g (stream must be time-sorted)"
        index time prev
  | Bad_endpoints { index; src; dst } ->
      Printf.sprintf
        "injection %d: bad endpoints %d -> %d (nodes must be distinct and in range)"
        index src dst

let validate_workload g ~link_events ~injections =
  let ( let* ) = Result.bind in
  let* () =
    Result.map_error
      (fun v -> Bad_link_events v)
      (Flap.validate_events link_events)
  in
  let* () =
    List.fold_left
      (fun acc (e : Workload.link_event) ->
        let* index = acc in
        if Graph.has_edge g e.u e.v then Ok (index + 1)
        else Error (Not_a_link { index; u = e.u; v = e.v }))
      (Ok 0) link_events
    |> Result.map ignore
  in
  let n = Graph.n g in
  List.fold_left
    (fun acc (i : Workload.injection) ->
      let* index, prev = acc in
      if not (Float.is_finite i.time) || i.time < 0.0 then
        Error (Bad_injection_time { index; time = i.time })
      else if i.time < prev then
        Error (Unsorted_injections { index; prev; time = i.time })
      else if i.src < 0 || i.src >= n || i.dst < 0 || i.dst >= n || i.src = i.dst
      then Error (Bad_endpoints { index; src = i.src; dst = i.dst })
      else Ok (index + 1, i.time))
    (Ok (0, 0.0))
    injections
  |> Result.map ignore

type packet_verdict =
  | Delivered of { stretch : float }
  | Dropped
  | Looped
  | Unreachable

type observer = {
  on_link : time:float -> u:int -> v:int -> up:bool -> changed:bool -> unit;
  on_swap : time:float -> swap_info -> unit;
  on_packet :
    time:float ->
    src:int ->
    dst:int ->
    failures:Pr_core.Failure.t ->
    quiesced:bool ->
    verdict:packet_verdict ->
    trace:Pr_core.Forward.trace option ->
    unit;
}

let scheme_name = function
  | Pr_scheme { termination = Pr_core.Forward.Distance_discriminator } -> "pr"
  | Pr_scheme { termination = Pr_core.Forward.Simple } -> "pr-simple"
  | Lfa_scheme -> "lfa"
  | Reconvergence_scheme _ -> "reconvergence"
  | Reconvergence_jittered _ -> "reconv-jitter"

type event =
  | Link of Workload.link_event
  | Packet of Workload.injection
  | Converge
  | Swap of { u : int; v : int }

let run ?observer ?detection ?(backend = `Reference) ?control ?probe ?linkload
    ?series config ~link_events ~injections =
  let g = config.topology.Pr_topo.Topology.graph in
  match validate_workload g ~link_events ~injections with
  | Error e -> Error e
  | Ok () ->
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build config.rotation in
  (* The compiled fast path covers PR forwarding only; the other schemes
     have no table image to compile and always run the reference walks. *)
  let base_fib =
    lazy (Pr_fastpath.Fib.of_tables_exn routing cycles)
  in
  let kernel = lazy (Pr_fastpath.Kernel.create (Lazy.force base_fib)) in
  let swap_store = lazy (Pr_fastpath.Swap.create (Lazy.force base_fib)) in
  let use_compiled = backend = `Compiled in
  (* The live control plane (PR scheme only): [control.delay] after an
     operational transition the control plane reconciles the link's
     administrative state — an incremental recompile plus an epoch swap,
     never a stop-the-world rebuild.  The other schemes model their own
     convergence and ignore [control]. *)
  let control =
    match config.scheme with Pr_scheme _ -> control | _ -> None
  in
  let control_on = Option.is_some control in
  (* Administrative liveness by base edge index; all-live = the seed
     regime.  [cur_routing] is the reference backend's recompiled tables
     (and both backends' stretch denominator); the compiled backend
     carries the same state in its image lineage. *)
  let admin = Array.make (Graph.m g) true in
  let admin_link_up u v = admin.(Graph.edge_index g u v) in
  let cur_routing = ref routing in
  let admin_failures = ref None in
  let epochs = ref 0 in
  (* The epoch the engine's kernel currently forwards on, pinned in the
     swap store so superseded images retire exactly when the engine
     moves off them. *)
  let pinned_epoch = ref None in
  let net = Netstate.create g in
  let det = Option.map (fun cfg -> Detector.create cfg g) detection in
  (* Reconvergence only starts once the failure (or repair) is detected. *)
  let detect_lag ~up =
    match detection with
    | None -> 0.0
    | Some c -> if up then c.Detector.up_delay else c.Detector.down_delay
  in
  let metrics = Metrics.create () in
  (* Link-load accounting.  Each PR-scheme walk feeds one scratch table
     (the same hooks both backends use — Forward.run's [?linkload] and
     the kernel's [set_linkload]); the scratch is then merged into the
     run-level table and/or the injection-time window of the series and
     reset.  The walks of the other schemes compute costs, not wire
     occupancy, so only the PR scheme feeds load. *)
  let obs_scratch =
    match (linkload, series) with
    | None, None -> None
    | _ -> Some (Pr_obs.Linkload.create g)
  in
  let flush_load ~time =
    match obs_scratch with
    | None -> ()
    | Some s ->
        (match linkload with
        | None -> ()
        | Some ll -> Pr_obs.Linkload.merge ~into:ll s);
        (match series with
        | None -> ()
        | Some se ->
            Pr_obs.Linkload.merge ~into:(Pr_obs.Series.load_at se ~time) s);
        Pr_obs.Linkload.reset s
  in
  let spf_runs = ref 0 in
  let link_transitions = ref 0 in
  let finished_at = ref 0.0 in
  let queue = Event.create () in
  List.iter (fun (e : Workload.link_event) -> Event.schedule queue ~time:e.time (Link e)) link_events;
  List.iter (fun (i : Workload.injection) -> Event.schedule queue ~time:i.time (Packet i)) injections;
  (* Reconvergence state: the trees packets are currently forwarded on. *)
  let full_spf () =
    incr spf_runs;
    Dijkstra.all_roots ~blocked:(fun i -> Pr_core.Failure.is_failed_index (Netstate.failures net) i) g
  in
  let stale_trees = ref (Dijkstra.all_roots g) in
  (* Jittered model: routers one epoch behind forward on [old_trees]. *)
  let old_trees = ref !stale_trees in
  let new_trees = ref !stale_trees in
  let deadlines = Array.make (Graph.n g) 0.0 in
  let jitter_rng =
    match config.scheme with
    | Reconvergence_jittered { seed; _ } -> Pr_util.Rng.create ~seed
    | Pr_scheme _ | Lfa_scheme | Reconvergence_scheme _ ->
        Pr_util.Rng.create ~seed:0
  in
  let baseline_distance ~src ~dst = Pr_core.Routing.distance routing ~node:src ~dst in
  (* Forward one packet on stale trees over the *actual* link states: drops
     at the first failed link, loops cannot arise within one consistent
     tree. *)
  let forward_stale ~src ~dst =
    let tree = !stale_trees.(dst) in
    let rec walk x cost =
      if x = dst then Some cost
      else
        match Dijkstra.next_hop tree x with
        | None -> None
        | Some w ->
            if Netstate.is_up net x w then walk w (cost +. Graph.weight g x w)
            else None
    in
    walk src 0.0
  in
  (* Forwarding across routers with inconsistent views: each hop consults
     the table of the router it is at, so two-node micro-loops can form;
     the TTL converts them into losses. *)
  let forward_jittered ~now ~src ~dst =
    let rec walk x cost ttl =
      if x = dst then Some cost
      else if ttl = 0 then None
      else
        let trees = if now >= deadlines.(x) then !new_trees else !old_trees in
        match Dijkstra.next_hop trees.(dst) x with
        | None -> None
        | Some w ->
            if Netstate.is_up net x w then
              walk w (cost +. Graph.weight g x w) (ttl - 1)
            else None
    in
    walk src 0.0 (4 * Graph.n g)
  in
  (* PR forwarding under per-router beliefs: each hop decides on its own
     local view through the degradation ladder; a packet sent into a link
     the sender wrongly believed up dies on the wire (stale view).  Returns
     a seed-shaped trace, the classified drop reason (when dropped) and the
     ladder events, oldest first. *)
  (* Effective liveness: operationally up and administratively live.
     With control off the admin plane is all-live and this is the wire. *)
  let effective_up x w = Netstate.is_up net x w && admin_link_up x w in
  let forward_detected_pr d ~termination ~now ~src ~dst =
    let routing = !cur_routing in
    let dd_bits = Pr_core.Routing.dd_bits routing in
    let budget_guard = (Detector.config d).Detector.budget_guard in
    let pr_episodes = ref 0 in
    let failure_hits = ref 0 in
    let max_dd = ref 0.0 in
    let episodes = ref [] in
    let degr_rev = ref [] in
    let finish outcome ~reason acc =
      let trace =
        {
          Forward.outcome;
          path = List.rev acc;
          pr_episodes = !pr_episodes;
          failure_hits = !failure_hits;
          max_header =
            {
              Pr_core.Header.pr = !pr_episodes > 0;
              dd = Pr_core.Routing.quantise_dd routing !max_dd;
            };
          episodes = List.rev !episodes;
          shortcuts = 0;
        }
      in
      (trace, reason, List.rev !degr_rev)
    in
    let rec walk x arrived_from (header : Forward.hop_header) ~ttl acc =
      if x = dst then finish Forward.Delivered ~reason:None acc
      else if ttl = 0 then finish Forward.Ttl_exceeded ~reason:None acc
      else
        let link_up =
          (* The router knows its own administratively removed
             interfaces whatever its detector believes — mirrored by the
             kernel's admin plane. *)
          if control_on then fun w ->
            Detector.local_view d ~now ~node:x w && admin_link_up x w
          else Detector.local_view d ~now ~node:x
        in
        let decision =
          match probe with
          | None ->
              Forward.ladder_step ~termination ~dd_bits ~hops_left:ttl
                ~budget_guard ~routing ~cycles ~link_up ~dst ~node:x
                ~arrived_from ~header ()
          | Some p ->
              let t0 = Probe.now_ns () in
              let r =
                Forward.ladder_step ~termination ~dd_bits ~hops_left:ttl
                  ~budget_guard ~routing ~cycles ~link_up ~dst ~node:x
                  ~arrived_from ~header ()
              in
              Probe.record_latency p ~cls:(ladder_class r)
                ~ns:(Int64.sub (Probe.now_ns ()) t0);
              r
        in
        match decision with
        | Forward.Degraded_drop { reason; failure_hits = hits; degradations }
          ->
            failure_hits := !failure_hits + hits;
            degr_rev := List.rev_append degradations !degr_rev;
            let outcome =
              match reason with
              | Forward.No_route -> Forward.Dropped_unreachable
              | Forward.Interfaces_down | Forward.Continuation_lost
              | Forward.Budget_exhausted ->
                  Forward.Dropped_no_interface
            in
            finish outcome ~reason:(Some (Metrics.reason_of_forward reason)) acc
        | Forward.Forwarded
            { next; header; episode_started; failure_hits = hits; degradations; _ }
          ->
            failure_hits := !failure_hits + hits;
            degr_rev := List.rev_append degradations !degr_rev;
            if episode_started then begin
              incr pr_episodes;
              episodes := (x, header.Forward.dd_value) :: !episodes;
              if header.Forward.dd_value > !max_dd then
                max_dd := header.Forward.dd_value
            end;
            (match obs_scratch with
            | None -> ()
            | Some s ->
                (* Counted on the wire, before any stale-view death; a
                   rescue rung outranks the PR bit it left behind —
                   the kernel's classification, decision for decision. *)
                let cls =
                  if
                    List.exists
                      (function
                        | Forward.Retry_complementary | Forward.Lfa_rescue ->
                            true
                        | Forward.Dd_saturated -> false)
                      degradations
                  then Pr_obs.Linkload.cls_rescue
                  else if header.Forward.pr_bit then
                    Pr_obs.Linkload.cls_recycled
                  else Pr_obs.Linkload.cls_shortest
                in
                Pr_obs.Linkload.record_next s ~node:x ~next ~cls);
            if effective_up x next then
              walk next (Some x) header ~ttl:(ttl - 1) (next :: acc)
            else
              finish Forward.Dropped_no_interface
                ~reason:(Some Metrics.Stale_view) (next :: acc)
    in
    walk src None Forward.fresh_header ~ttl:(Forward.default_ttl g) [ src ]
  in
  (* LFA under per-router beliefs: the seed {!Pr_baselines.Lfa.run} walk,
     with the up-checks asked of the deciding router's detector and a
     truth check on the wire. *)
  let forward_detected_lfa d ~now ~src ~dst =
    let rec walk x cost ttl =
      if x = dst then `Delivered cost
      else if ttl = 0 then `Looped
      else
        match Pr_baselines.Lfa.alternates_for routing ~node:x ~dst with
        | None -> `Dropped Metrics.No_route
        | Some { Pr_baselines.Lfa.primary; alternate } ->
            let believes w = Detector.believes_up d ~now ~node:x ~other:w in
            let chosen =
              if believes primary then Some primary
              else
                match alternate with
                | Some w when believes w -> Some w
                | Some _ | None -> None
            in
            (match chosen with
            | None -> `Dropped Metrics.No_alternate
            | Some w ->
                if Netstate.is_up net x w then
                  walk w (cost +. Graph.weight g x w) (ttl - 1)
                else `Dropped Metrics.Stale_view)
    in
    walk src 0.0 ((4 * Graph.n g) + 16)
  in
  let notify ~time ~src ~dst ~failures ~quiesced ~verdict ~trace =
    (* Every packet ends here exactly once, whatever the scheme — the
       one place the series can count verdicts without per-scheme
       plumbing. *)
    (match series with
    | None -> ()
    | Some se ->
        Pr_obs.Series.record_verdict se ~time
          (match verdict with
          | Delivered _ -> `Delivered
          | Looped -> `Looped
          | Dropped -> `Dropped
          | Unreachable -> `Unreachable));
    match observer with
    | None -> ()
    | Some o -> o.on_packet ~time ~src ~dst ~failures ~quiesced ~verdict ~trace
  in
  (* Feed one PR-scheme packet to the probe.  Hops are path length − 1 —
     the TTL-derived count of both reference and compiled walks (a
     stale-view wire death keeps its failed hop on the path in both). *)
  let probe_record ~(trace : Forward.trace) ~verdict ~reason ~degradations =
    match probe with
    | None -> ()
    | Some p ->
        let hops = List.length trace.Forward.path - 1 in
        let depth = trace.Forward.pr_episodes in
        (match verdict with
        | Delivered { stretch } -> Probe.record_delivery p ~stretch ~hops ~depth
        | Looped -> Probe.record_loop p ~hops ~depth
        | Dropped ->
            let r =
              match reason with
              | Some r -> probe_reason r
              | None -> Probe.reason_unclassified
            in
            Probe.record_drop p ~reason:r ~hops ~depth
        | Unreachable -> Probe.record_unreachable p);
        List.iter
          (function
            | Forward.Retry_complementary -> Probe.record_retry p
            | Forward.Lfa_rescue -> Probe.record_lfa p
            | Forward.Dd_saturated -> Probe.record_dd_saturation p)
          degradations;
        for _ = 1 to trace.Forward.pr_episodes do
          Probe.record_episode p
        done;
        Probe.add_failure_hits p trace.Forward.failure_hits
  in
  let handle_packet ({ src; dst; time } : Workload.injection) =
    let failures =
      (* A link usable by forwarding is operationally up {e and}
         administratively live; with control off this is the wire. *)
      match !admin_failures with
      | None -> Netstate.failures net
      | Some af -> Pr_core.Failure.combine (Netstate.failures net) af
    in
    let quiesced =
      match det with
      | None -> true
      | Some d -> Detector.quiescent d ~now:time ~net
    in
    let notify = notify ~quiesced in
    if not (Pr_core.Failure.pair_connected failures src dst) then begin
      (* No scheme can deliver across a partition; PR packets would wander
         until the IP TTL kills them, others drop at the failure. *)
      Metrics.record_unreachable metrics;
      (match probe with
      | None -> ()
      | Some p -> Probe.record_unreachable p);
      notify ~time ~src ~dst ~failures ~verdict:Unreachable ~trace:None
    end
    else
    match config.scheme with
    | Pr_scheme { termination } -> (
        match det with
        | None ->
            let trace =
              if use_compiled then begin
                let k = Lazy.force kernel in
                Pr_fastpath.Kernel.set_failures k failures;
                Pr_fastpath.Kernel.set_linkload k obs_scratch;
                Pr_fastpath.Kernel.to_trace k
                  (Pr_fastpath.Kernel.run_one ~termination k ~src ~dst)
              end
              else
                Pr_core.Forward.run ~termination ?linkload:obs_scratch
                  ~routing:!cur_routing ~cycles ~failures ~src ~dst ()
            in
            let verdict =
              match trace.outcome with
              | Pr_core.Forward.Delivered ->
                  let stretch =
                    Pr_core.Forward.stretch ~routing:!cur_routing ~trace ~src
                      ~dst
                  in
                  Metrics.record_delivery metrics ~stretch;
                  Delivered { stretch }
              | Pr_core.Forward.Ttl_exceeded ->
                  Metrics.record_loop metrics;
                  Looped
              | Pr_core.Forward.Dropped_no_interface
              | Pr_core.Forward.Dropped_unreachable ->
                  Metrics.record_drop metrics;
                  Dropped
              | Pr_core.Forward.Dropped_corrupt ->
                  Metrics.record_drop ~reason:Metrics.Corrupt metrics;
                  Dropped
            in
            probe_record ~trace ~verdict ~reason:None ~degradations:[];
            flush_load ~time;
            notify ~time ~src ~dst ~failures ~verdict ~trace:(Some trace)
        | Some d ->
            let trace, reason, degradations =
              if use_compiled then begin
                let k = Lazy.force kernel in
                Pr_fastpath.Kernel.set_failures k failures;
                Pr_fastpath.Kernel.set_linkload k obs_scratch;
                Pr_fastpath.Kernel.fill_view k (fun ~node ~other ->
                    Detector.believes_up d ~now:time ~node ~other);
                let r =
                  Pr_fastpath.Kernel.run_one ~termination
                    ~dd_bits:(Pr_core.Routing.dd_bits routing)
                    ~budget_guard:(Detector.config d).Detector.budget_guard k
                    ~src ~dst
                in
                ( Pr_fastpath.Kernel.to_trace k r,
                  Option.map metrics_reason r.Pr_fastpath.Kernel.reason,
                  r.Pr_fastpath.Kernel.degradations )
              end
              else forward_detected_pr d ~termination ~now:time ~src ~dst
            in
            Metrics.record_degradations metrics degradations;
            let verdict =
              match trace.outcome with
              | Pr_core.Forward.Delivered ->
                  let stretch =
                    Pr_core.Forward.stretch ~routing:!cur_routing ~trace ~src
                      ~dst
                  in
                  Metrics.record_delivery metrics ~stretch;
                  Delivered { stretch }
              | Pr_core.Forward.Ttl_exceeded ->
                  Metrics.record_loop metrics;
                  Looped
              | Pr_core.Forward.Dropped_no_interface
              | Pr_core.Forward.Dropped_unreachable ->
                  Metrics.record_drop ?reason metrics;
                  Dropped
              | Pr_core.Forward.Dropped_corrupt ->
                  Metrics.record_drop ~reason:Metrics.Corrupt metrics;
                  Dropped
            in
            probe_record ~trace ~verdict ~reason ~degradations;
            flush_load ~time;
            notify ~time ~src ~dst ~failures ~verdict ~trace:(Some trace))
    | Lfa_scheme -> (
        match det with
        | None ->
            let trace = Pr_baselines.Lfa.run routing ~failures ~src ~dst () in
            let verdict =
              match trace.outcome with
              | Pr_baselines.Lfa.Delivered ->
                  let stretch = Pr_baselines.Lfa.stretch ~routing ~trace ~src ~dst in
                  Metrics.record_delivery metrics ~stretch;
                  Delivered { stretch }
              | Pr_baselines.Lfa.Dropped ->
                  Metrics.record_drop metrics;
                  Dropped
              | Pr_baselines.Lfa.Ttl_exceeded ->
                  Metrics.record_loop metrics;
                  Looped
            in
            notify ~time ~src ~dst ~failures ~verdict ~trace:None
        | Some d ->
            let verdict =
              match forward_detected_lfa d ~now:time ~src ~dst with
              | `Delivered cost ->
                  let stretch = cost /. baseline_distance ~src ~dst in
                  Metrics.record_delivery metrics ~stretch;
                  Delivered { stretch }
              | `Looped ->
                  Metrics.record_loop metrics;
                  Looped
              | `Dropped reason ->
                  Metrics.record_drop ~reason metrics;
                  Dropped
            in
            notify ~time ~src ~dst ~failures ~verdict ~trace:None)
    | Reconvergence_scheme _ ->
        let verdict =
          match forward_stale ~src ~dst with
          | Some cost ->
              let stretch = cost /. baseline_distance ~src ~dst in
              Metrics.record_delivery metrics ~stretch;
              Delivered { stretch }
          | None ->
              Metrics.record_drop metrics;
              Dropped
        in
        notify ~time ~src ~dst ~failures ~verdict ~trace:None
    | Reconvergence_jittered _ ->
        let verdict =
          match forward_jittered ~now:time ~src ~dst with
          | Some cost ->
              let stretch = cost /. baseline_distance ~src ~dst in
              Metrics.record_delivery metrics ~stretch;
              Delivered { stretch }
          | None ->
              Metrics.record_drop metrics;
              Dropped
        in
        notify ~time ~src ~dst ~failures ~verdict ~trace:None
  in
  (* The control plane reconciles one link's administrative state with
     the operational truth it has now learned.  If the link flapped back
     before the delay elapsed the swap is vacuous and publishes no epoch
     — the image lineage only ever carries real changes. *)
  let handle_swap time u v =
    let idx = Graph.edge_index g u v in
    let up_now = Netstate.is_up net u v in
    if admin.(idx) <> up_now then begin
      admin.(idx) <- up_now;
      incr epochs;
      (* One incremental recompile per epoch, whichever backend runs the
         packets — the SPF ledger stays backend-invariant. *)
      incr spf_runs;
      let down =
        List.rev
          (Graph.fold_edges
             (fun i (e : Graph.edge) acc ->
               if admin.(i) then acc else (e.u, e.v) :: acc)
             g [])
      in
      admin_failures :=
        (if down = [] then None else Some (Pr_core.Failure.of_list g down));
      cur_routing :=
        Pr_core.Routing.build_blocked ~kind:(Pr_core.Routing.kind routing) g
          ~blocked:(fun i -> not admin.(i));
      (if use_compiled then begin
         let store = Lazy.force swap_store in
         let threshold =
           match control with Some c -> c.threshold | None -> 0.5
         in
         let edit =
           {
             Pr_fastpath.Fib.Delta.u;
             v;
             change =
               (if up_now then Pr_fastpath.Fib.Delta.Up
                else Pr_fastpath.Fib.Delta.Down);
           }
         in
         let next, _stats =
           Pr_fastpath.Fib.Delta.apply_exn ~threshold
             (Pr_fastpath.Swap.current store)
             [ edit ]
         in
         ignore (Pr_fastpath.Swap.publish store next : int);
         (match !pinned_epoch with
         | Some e -> Pr_fastpath.Swap.unpin store ~epoch:e
         | None -> ());
         let e, image = Pr_fastpath.Swap.pin store in
         pinned_epoch := Some e;
         Pr_fastpath.Kernel.rebind (Lazy.force kernel) image
       end);
      match observer with
      | None -> ()
      | Some o ->
          o.on_swap ~time
            {
              epoch = !epochs;
              link = (u, v);
              admin_up = up_now;
              admin_down = down;
            }
    end
  in
  let handle_link time (e : Workload.link_event) =
    let changed = Netstate.set_link net e.u e.v ~up:e.up in
    (* Every event is churn the detectors see, redundant or not. *)
    (match det with
    | Some d -> Detector.observe d ~time ~u:e.u ~v:e.v ~up:e.up
    | None -> ());
    (match series with
    | None -> ()
    | Some se ->
        if changed then Pr_obs.Series.record_link_transition se ~time;
        (* Two per-endpoint beliefs are driven by every observed event,
           redundant or not — the series' churn measure. *)
        if Option.is_some det then Pr_obs.Series.record_belief_churn se ~time 2);
    if changed then begin
      incr link_transitions;
      let lag = detect_lag ~up:e.up in
      match config.scheme with
      | Reconvergence_scheme { convergence_delay } ->
          Event.schedule queue ~time:(time +. lag +. convergence_delay) Converge
      | Reconvergence_jittered { min_delay; max_delay; _ } ->
          (* Routers at most one epoch behind: the previous converged view
             becomes the stale one, the post-event view is computed now and
             adopted by each router at its own jittered deadline. *)
          old_trees := !new_trees;
          new_trees := full_spf ();
          Array.iteri
            (fun r _ ->
              deadlines.(r) <-
                time +. lag +. min_delay
                +. Pr_util.Rng.float jitter_rng (Float.max 1e-9 (max_delay -. min_delay)))
            deadlines
      | Pr_scheme _ ->
          (match control with
          | Some c ->
              Event.schedule queue
                ~time:(time +. detect_lag ~up:e.up +. c.delay)
                (Swap { u = e.u; v = e.v })
          | None -> ())
      | Lfa_scheme -> ()
    end;
    match observer with
    | None -> ()
    | Some o -> o.on_link ~time ~u:e.u ~v:e.v ~up:e.up ~changed
  in
  let rec drain () =
    match Event.next queue with
    | None -> ()
    | Some (time, ev) ->
        finished_at := time;
        (match ev with
        | Link e -> handle_link time e
        | Packet i -> handle_packet i
        | Converge -> stale_trees := full_spf ()
        | Swap { u; v } -> handle_swap time u v);
        drain ()
  in
  (match config.scheme with
  | Reconvergence_scheme _ | Reconvergence_jittered _ ->
      incr spf_runs (* initial table computation *)
  | Pr_scheme _ | Lfa_scheme -> ());
  drain ();
  Ok
    {
      metrics;
      spf_runs = !spf_runs;
      link_transitions = !link_transitions;
      epochs = !epochs;
      finished_at = !finished_at;
    }

let run_exn ?observer ?detection ?backend ?control ?probe ?linkload ?series
    config ~link_events ~injections =
  match
    run ?observer ?detection ?backend ?control ?probe ?linkload ?series config
      ~link_events ~injections
  with
  | Ok outcome -> outcome
  | Error e -> invalid_arg ("Engine.run: " ^ describe_workload_error e)
