module Graph = Pr_graph.Graph

type t = {
  g : Graph.t;
  down : bool array; (* by edge index *)
  mutable cached_failures : Pr_core.Failure.t option;
}

let create g =
  { g; down = Array.make (Graph.m g) false; cached_failures = None }

let graph t = t.g

let set_link t u v ~up =
  let i = Graph.edge_index t.g u v in
  let was_down = t.down.(i) in
  let now_down = not up in
  if was_down = now_down then false
  else begin
    t.down.(i) <- now_down;
    t.cached_failures <- None;
    true
  end

let is_up t u v = not t.down.(Graph.edge_index t.g u v)

let is_up_index t i = not t.down.(i)

let down_links t =
  let out = ref [] in
  Array.iteri
    (fun i down ->
      if down then begin
        let e = Graph.edge t.g i in
        out := (e.u, e.v) :: !out
      end)
    t.down;
  List.rev !out

let failures t =
  match t.cached_failures with
  | Some f -> f
  | None ->
      let f = Pr_core.Failure.of_list t.g (down_links t) in
      t.cached_failures <- Some f;
      f

let all_up t = Array.for_all not t.down
