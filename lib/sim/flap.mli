(** Hold-down damping for flapping links (paper §7).

    PR must ensure a packet that saw a link down does not meet the same
    link up again while still cycle following.  The standard mitigation the
    paper proposes is to delay the up-transition until the link has been
    stable for a hold-down period; rapid down/up oscillations are then
    suppressed entirely. *)

type violation =
  | Bad_time of { index : int; time : float }
      (** negative or non-finite timestamp *)
  | Unsorted of { index : int; prev : float; time : float }
      (** event [index] is earlier than its predecessor *)
  | Non_alternating of { index : int; u : int; v : int; up : bool }
      (** a link's events do not alternate down/up starting with a down *)

val describe_violation : violation -> string
(** One line, suitable for error messages ("event 3: ..."). *)

val validate_events :
  ?require_alternation:bool ->
  Workload.link_event list ->
  (unit, violation) result
(** Checks the precondition shared by {!apply_hold_down}, {!Engine.run} and
    the chaos layer: timestamps finite and non-negative, the stream sorted
    by time.  With [require_alternation] (default false) additionally
    checks that each link's events strictly alternate state starting with a
    down — {!apply_hold_down}'s documented precondition. *)

val apply_hold_down :
  Workload.link_event list -> hold_down:float -> Workload.link_event list
(** Input events must be time-sorted (as produced by {!Workload}); each
    link's events must alternate starting with a down.  Every up-transition
    is delayed by [hold_down]; an up is cancelled when its link fails again
    before the hold-down expires.  The result is time-sorted and contains
    no redundant transitions.

    Raises [Invalid_argument] with a descriptive message (see
    {!describe_violation}) when the precondition is violated, or when
    [hold_down] is negative — never a silent wrong answer. *)

val backoff_hold :
  hold_down:float -> factor:float -> cap:float -> cancels:int -> float
(** Effective hold-down after [cancels] repairs were cancelled inside
    their window: [hold_down * min cap (factor ^ cancels)].  This is the
    escalation rule {!Detector} applies per endpoint, exposed so offline
    trace damping and the per-router model stay in agreement.  Raises
    [Invalid_argument] on a negative [hold_down] or [cancels], or a
    [factor]/[cap] below 1. *)

val transitions_per_link :
  Workload.link_event list -> ((int * int) * int) list
(** Count of state transitions per link — a measure of the churn the
    control plane sees. *)
