(** Discrete-event simulation of a routed network under failures.

    The engine replays a time-ordered workload of link events and packet
    injections against one forwarding scheme and accounts outcomes.  The
    same workload can be replayed against each scheme for an
    apples-to-apples comparison — this is how the repository quantifies the
    paper's motivation ("more than a quarter of a million packets lost per
    second of downtime" under reconvergence, none under PR).

    Schemes:
    - {!Pr_scheme}: PR forwarding off the failure-free tables plus cycle
      following; reacts instantly and locally to adjacent link state.
    - {!Lfa_scheme}: loop-free alternates off the failure-free tables.
    - {!Reconvergence_scheme}: global SPF recomputation completes
      [convergence_delay] time units after each topology change; in the
      window, packets are forwarded on stale trees and die at failed links
      (the drops the paper wants to eliminate).
    - {!Reconvergence_jittered}: each router converges independently at a
      uniform time in [min_delay, max_delay] after the change, so packets
      can cross routers with inconsistent views and micro-loop — the
      harsher (and more realistic) reconvergence model. *)

type scheme =
  | Pr_scheme of { termination : Pr_core.Forward.termination }
  | Lfa_scheme
  | Reconvergence_scheme of { convergence_delay : float }
  | Reconvergence_jittered of {
      min_delay : float;
      max_delay : float;
      seed : int;
    }

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t; (** used by {!Pr_scheme} *)
  scheme : scheme;
}

type control = { delay : float; threshold : float }
(** The live control plane (PR scheme only).  [delay] time units after a
    link's operational transition is detected, the control plane
    reconciles the link's administrative state: an incremental FIB
    recompile ({!Pr_fastpath.Fib.Delta}, falling back to a full rebuild
    past [threshold], a fraction of the node count) and an epoch-ordered
    hot swap ({!Pr_fastpath.Swap}) on the compiled backend, a
    {!Pr_core.Routing.build_blocked} rebuild on the reference backend —
    both backends stay verdict-identical.  In the window before the swap
    the data plane re-cycles exactly as the paper prescribes; after it,
    routing avoids the link without any stop-the-world rebuild.  A link
    that flaps back within the window yields a vacuous swap and no
    epoch. *)

val default_control : control
(** [delay = 0.5], [threshold = 0.5]. *)

type swap_info = {
  epoch : int;          (** 1-based epoch this swap published *)
  link : int * int;     (** the reconciled link, canonical orientation *)
  admin_up : bool;      (** its administrative state after the swap *)
  admin_down : (int * int) list;
      (** all administratively down links after the swap, in base edge
          order *)
}

type backend = [ `Reference | `Compiled ]
(** Which data plane executes {!Pr_scheme} forwarding: the reference
    walks ({!Pr_core.Forward.run} / {!Pr_core.Forward.ladder_step}), or
    the compiled FIB image and batch kernel of {!Pr_fastpath}.  Both
    produce identical verdicts, traces and metrics — pinned by the
    differential suite.  Schemes other than {!Pr_scheme} have no compiled
    form and ignore the choice. *)

val backend_name : backend -> string

type outcome = {
  metrics : Metrics.t;
  spf_runs : int;
      (** full-table SPF recomputations performed, control-plane
          recompiles included — backend-invariant *)
  link_transitions : int;
  epochs : int;
      (** control-plane swaps published ({!control}); 0 without one *)
  finished_at : float;   (** time of the last processed event *)
}

(** {2 Workload validation}

    A workload can be malformed in ways that would previously crash the
    engine mid-replay ([Not_found] on a non-edge, [Invalid_argument] deep
    inside {!Pr_core.Forward.run}) or silently misbehave (unsorted
    streams).  {!run} validates up front and returns a structured error
    instead. *)

type workload_error =
  | Bad_link_events of Flap.violation
      (** unsorted, bad timestamps (see {!Flap.validate_events}) *)
  | Not_a_link of { index : int; u : int; v : int }
      (** link event on a pair that is not an edge of the topology *)
  | Bad_injection_time of { index : int; time : float }
  | Unsorted_injections of { index : int; prev : float; time : float }
  | Bad_endpoints of { index : int; src : int; dst : int }
      (** out-of-range node or [src = dst] *)

val describe_workload_error : workload_error -> string

val validate_workload :
  Pr_graph.Graph.t ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  (unit, workload_error) result
(** The check {!run} performs; exposed so callers (the chaos layer, the
    timed simulator) can share it. *)

(** {2 Observation}

    An observer sees every processed event with full context — the failure
    set frozen at injection time and, for PR schemes, the whole forwarding
    trace.  This is the hook the chaos layer's online invariant monitors
    attach to; it has no effect on the simulation itself. *)

type packet_verdict =
  | Delivered of { stretch : float }
  | Dropped       (** died at a failed link / no live interface *)
  | Looped        (** TTL exhausted *)
  | Unreachable   (** destination disconnected at injection time *)

type observer = {
  on_link : time:float -> u:int -> v:int -> up:bool -> changed:bool -> unit;
      (** every link event, after it is applied; [changed] is false for
          redundant transitions *)
  on_swap : time:float -> swap_info -> unit;
      (** every control-plane swap, after the new tables are live; never
          called without a {!control} config.  The zero-loss-across-swap
          monitor hangs off this. *)
  on_packet :
    time:float ->
    src:int ->
    dst:int ->
    failures:Pr_core.Failure.t ->
    quiesced:bool ->
    verdict:packet_verdict ->
    trace:Pr_core.Forward.trace option ->
    unit;
      (** every injection; [failures] is the link state frozen at injection
          time, [trace] is the full PR trace under {!Pr_scheme} (and [None]
          for the other schemes).  [quiesced] is whether every detector
          belief matched the truth at injection time ({!Detector.quiescent});
          always [true] without a detection config.  The chaos monitors
          weaken the delivery invariant to quiesced injections. *)
}

val run :
  ?observer:observer ->
  ?detection:Detector.config ->
  ?backend:backend ->
  ?control:control ->
  ?probe:Pr_telemetry.Probe.t ->
  ?linkload:Pr_obs.Linkload.t ->
  ?series:Pr_obs.Series.t ->
  config ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  (outcome, workload_error) result
(** Replays both streams merged in time order.  [backend] (default
    [`Reference]) selects the {!Pr_scheme} data plane.  Each stream must be
    time-sorted with finite non-negative timestamps, link events must name
    edges of the topology and injections distinct in-range nodes;
    violations are reported as [Error] without running anything.

    With [detection], routers no longer see the global truth: each
    forwarding decision consults the deciding router's {!Detector} belief.
    Under {!Pr_scheme} packets walk {!Pr_core.Forward.ladder_step} (DD
    bounded by the topology's bit budget, the detector's [budget_guard]
    armed) and a packet sent into a link its sender wrongly believed up is
    lost on the wire — a [Stale_view] drop in the {!Metrics} breakdown.
    Under {!Lfa_scheme} the seed walk runs on beliefs with the same
    on-wire truth check.  The reconvergence schemes start their
    convergence timers only after the detection delay.  With
    [Detector.ideal] every scheme reproduces its seed verdicts exactly —
    pinned by the differential tests.

    With [control], the control plane goes live mid-run (PR scheme only;
    the other schemes model their own convergence and ignore it): each
    detected link transition schedules a reconciliation [control.delay]
    later that incrementally recompiles the tables and hot-swaps them
    under the running data plane — see {!control}.  [outcome.epochs]
    counts the published swaps and [outcome.spf_runs] the recompiles,
    identically on both backends.

    [probe] (PR schemes only; the other schemes leave it untouched)
    records every injection's verdict, stretch, hop count and re-cycle
    depth into the given {!Pr_telemetry.Probe.t}, and under [detection]
    wraps each {!Pr_core.Forward.ladder_step} call with the monotonic
    clock for the per-class latency histograms.
    {!Metrics.of_probes} on the probe reproduces the outcome's metrics
    for PR-only workloads — pinned by the telemetry suite.

    [linkload] (PR schemes only — the other schemes' walks compute
    costs, not wire occupancy) accumulates one count per transmission
    against its directed link, fed through the same backend hooks as
    everywhere else (`Forward.run`'s [?linkload], the kernel's
    [set_linkload]) so reference and compiled runs produce equal tables.
    [series] buckets each packet's verdict (every scheme) and its hops
    (PR schemes) into the injection-time window, plus link transitions
    and detector-belief churn at their event times — the replayable
    hotspot timeline. *)

val run_exn :
  ?observer:observer ->
  ?detection:Detector.config ->
  ?backend:backend ->
  ?control:control ->
  ?probe:Pr_telemetry.Probe.t ->
  ?linkload:Pr_obs.Linkload.t ->
  ?series:Pr_obs.Series.t ->
  config ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  outcome
(** {!run}, raising [Invalid_argument] with the described error instead —
    for callers whose workloads are correct by construction. *)

val scheme_name : scheme -> string
