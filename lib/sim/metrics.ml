type drop_reason =
  | No_route
  | Interfaces_down
  | No_alternate
  | Continuation_lost
  | Budget_exhausted
  | Stale_view
  | Unclassified
  | Corrupt

let all_reasons =
  [
    No_route;
    Interfaces_down;
    No_alternate;
    Continuation_lost;
    Budget_exhausted;
    Stale_view;
    Unclassified;
    Corrupt;
  ]

let reason_index = function
  | No_route -> 0
  | Interfaces_down -> 1
  | No_alternate -> 2
  | Continuation_lost -> 3
  | Budget_exhausted -> 4
  | Stale_view -> 5
  | Unclassified -> 6
  | Corrupt -> 7

let reason_name = function
  | No_route -> "no-route"
  | Interfaces_down -> "interfaces-down"
  | No_alternate -> "no-alternate"
  | Continuation_lost -> "continuation-lost"
  | Budget_exhausted -> "budget-exhausted"
  | Stale_view -> "stale-view"
  | Unclassified -> "unclassified"
  | Corrupt -> "corrupt"

let reason_of_forward = function
  | Pr_core.Forward.No_route -> No_route
  | Pr_core.Forward.Interfaces_down -> Interfaces_down
  | Pr_core.Forward.Continuation_lost -> Continuation_lost
  | Pr_core.Forward.Budget_exhausted -> Budget_exhausted

type t = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable looped : int;
  mutable unreachable : int;
  mutable stretch_sum : float;
  mutable worst_stretch : float;
  drops_by_reason : int array;
  mutable complementary_retries : int;
  mutable lfa_rescues : int;
  mutable dd_saturations : int;
  mutable shortcut_exits : int;
}

let create () =
  {
    injected = 0;
    delivered = 0;
    dropped = 0;
    looped = 0;
    unreachable = 0;
    stretch_sum = 0.0;
    worst_stretch = 0.0;
    drops_by_reason = Array.make (List.length all_reasons) 0;
    complementary_retries = 0;
    lfa_rescues = 0;
    dd_saturations = 0;
    shortcut_exits = 0;
  }

let record_delivery t ~stretch =
  t.injected <- t.injected + 1;
  t.delivered <- t.delivered + 1;
  t.stretch_sum <- t.stretch_sum +. stretch;
  if stretch > t.worst_stretch then t.worst_stretch <- stretch

let record_drop ?(reason = Unclassified) t =
  t.injected <- t.injected + 1;
  t.dropped <- t.dropped + 1;
  let i = reason_index reason in
  t.drops_by_reason.(i) <- t.drops_by_reason.(i) + 1

let record_loop t =
  t.injected <- t.injected + 1;
  t.looped <- t.looped + 1

let record_unreachable t =
  t.injected <- t.injected + 1;
  t.unreachable <- t.unreachable + 1

let record_degradation t (d : Pr_core.Forward.degradation) =
  match d with
  | Pr_core.Forward.Retry_complementary ->
      t.complementary_retries <- t.complementary_retries + 1
  | Pr_core.Forward.Lfa_rescue -> t.lfa_rescues <- t.lfa_rescues + 1
  | Pr_core.Forward.Dd_saturated -> t.dd_saturations <- t.dd_saturations + 1

let record_degradations t ds = List.iter (record_degradation t) ds

let record_shortcuts t k = t.shortcut_exits <- t.shortcut_exits + k

let of_fastpath (c : Pr_fastpath.Kernel.counters) =
  let t = create () in
  t.injected <- c.injected;
  t.delivered <- c.delivered;
  t.dropped <- c.dropped;
  t.looped <- c.looped;
  t.unreachable <- c.unreachable;
  t.stretch_sum <- c.stretch_sum;
  t.worst_stretch <- c.worst_stretch;
  List.iter
    (fun r ->
      let here =
        match r with
        | Pr_fastpath.Kernel.No_route -> No_route
        | Pr_fastpath.Kernel.Interfaces_down -> Interfaces_down
        | Pr_fastpath.Kernel.Continuation_lost -> Continuation_lost
        | Pr_fastpath.Kernel.Budget_exhausted -> Budget_exhausted
        | Pr_fastpath.Kernel.Stale_view -> Stale_view
        | Pr_fastpath.Kernel.Corrupt -> Corrupt
      in
      t.drops_by_reason.(reason_index here) <-
        c.drops_by_reason.(Pr_fastpath.Kernel.reason_index r))
    Pr_fastpath.Kernel.all_reasons;
  t.complementary_retries <- c.complementary_retries;
  t.lfa_rescues <- c.lfa_rescues;
  t.dd_saturations <- c.dd_saturations;
  t.shortcut_exits <- c.shortcut_exits;
  t

(* The probe's reason slots are laid out in [all_reasons] order by
   construction (pinned by a test), so the arrays line up index for
   index. *)
let probe_reason = function
  | No_route -> Pr_telemetry.Probe.reason_no_route
  | Interfaces_down -> Pr_telemetry.Probe.reason_interfaces_down
  | No_alternate -> Pr_telemetry.Probe.reason_no_alternate
  | Continuation_lost -> Pr_telemetry.Probe.reason_continuation_lost
  | Budget_exhausted -> Pr_telemetry.Probe.reason_budget_exhausted
  | Stale_view -> Pr_telemetry.Probe.reason_stale_view
  | Unclassified -> Pr_telemetry.Probe.reason_unclassified
  | Corrupt -> Pr_telemetry.Probe.reason_corrupt

let of_probes (p : Pr_telemetry.Probe.t) =
  let t = create () in
  t.injected <- p.injected;
  t.delivered <- p.delivered;
  t.dropped <- p.dropped;
  t.looped <- p.looped;
  t.unreachable <- p.unreachable;
  t.stretch_sum <- p.stretch_sum;
  t.worst_stretch <- p.worst_stretch;
  Array.blit p.drops_by_reason 0 t.drops_by_reason 0
    (Array.length t.drops_by_reason);
  t.complementary_retries <- p.complementary_retries;
  t.lfa_rescues <- p.lfa_rescues;
  t.dd_saturations <- p.dd_saturations;
  t.shortcut_exits <- p.shortcut_exits;
  t

let drop_count t reason = t.drops_by_reason.(reason_index reason)

(* Every reason, zero counts included, in [all_reasons] order — so two
   breakdowns (and their printed forms) are line-comparable without
   aligning sparse lists first. *)
let drop_breakdown t = List.map (fun r -> (r, drop_count t r)) all_reasons

let delivery_ratio t =
  let deliverable = t.injected - t.unreachable in
  if deliverable = 0 then 1.0
  else float_of_int t.delivered /. float_of_int deliverable

let mean_stretch t =
  if t.delivered = 0 then 0.0 else t.stretch_sum /. float_of_int t.delivered

let pp ppf t =
  Format.fprintf ppf
    "injected=%d delivered=%d dropped=%d looped=%d unreachable=%d delivery=%.4f mean_stretch=%.3f"
    t.injected t.delivered t.dropped t.looped t.unreachable (delivery_ratio t)
    (mean_stretch t);
  (* Unclassified drops are the seed behaviour; only a classified
     breakdown earns the extra suffix.  When it appears it lists every
     reason in [all_reasons] order, zero counts included, so summaries
     from different runs diff line for line. *)
  let classified =
    List.exists (fun (r, c) -> r <> Unclassified && c > 0) (drop_breakdown t)
  in
  if classified then
    Format.fprintf ppf " drops[%s]"
      (String.concat ","
         (List.map
            (fun (r, c) -> Printf.sprintf "%s=%d" (reason_name r) c)
            (drop_breakdown t)));
  if t.complementary_retries > 0 || t.lfa_rescues > 0 || t.dd_saturations > 0
  then
    Format.fprintf ppf " degraded[retries=%d lfa=%d dd-sat=%d]"
      t.complementary_retries t.lfa_rescues t.dd_saturations;
  if t.shortcut_exits > 0 then
    Format.fprintf ppf " shortcuts=%d" t.shortcut_exits
