(** Packet-level simulation with per-hop latency.

    Unlike {!Engine} (which traces a packet's whole path against a frozen
    failure snapshot), packets here move one hop per event and take
    [latency] time units per link, so link state can change {e while a
    packet is in flight}.  This is exactly the regime of the paper's §7
    flapping discussion: a PR packet that saw a link down can meet the
    same link up again while still cycle following, and the DD invariant
    that guarantees termination no longer holds.  The mitigation the paper
    proposes — hold down the up-transition until the link has been stable —
    is {!Flap.apply_hold_down}; this module lets you measure both sides.

    Each router runs {!Pr_core.Forward.step} on the link state at the
    moment the packet arrives. *)

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  termination : Pr_core.Forward.termination;
  latency : float;      (** per-hop transmission time *)
  ttl : int;            (** hop budget per packet *)
  detection : Detector.config option;
      (** [None]: every router sees the true link state at arrival time
          (the seed behaviour).  [Some]: each hop decides on the arrival
          router's {!Detector} beliefs through
          {!Pr_core.Forward.ladder_step} — DD bounded by the topology's
          bit budget, the detector's [budget_guard] armed against the
          remaining TTL — and a packet sent into a link wrongly believed
          up is lost on the wire ([Stale_view] in the {!Metrics}
          breakdown). *)
  control : Engine.control option;
      (** live control plane ({!Engine.control}).  [control.delay] time
          units after each link transition the administrative state is
          reconciled — here one {!Pr_core.Routing.build_blocked} rebuild
          per published epoch (this simulator has no compiled backend) —
          and forwarding continues on the new tables mid-flight.  A link
          that flaps back within the delay yields a vacuous swap.
          Administratively removed links count as failed for forwarding,
          deliverability and stretch. *)
}

val default_config : Pr_topo.Topology.t -> Pr_embed.Rotation.t -> config
(** DD termination, latency 0.1, TTL {!Pr_core.Forward.default_ttl}, no
    detection. *)

type outcome = {
  metrics : Metrics.t;
  finished_at : float;
  max_hops : int;         (** longest hop count of any delivered packet *)
  epochs : int;           (** control-plane swaps published; 0 without
                              a {!config.control} *)
}

(** {2 Observation}

    The per-hop hook is what makes the §7 hazard observable: a monitor can
    record which links a cycle-following packet saw down and flag the
    moment it meets one of them up again.  Observation has no effect on
    the simulation. *)

type hop = {
  id : int;                   (** injection index, stable per packet *)
  time : float;
  node : int;                 (** router making the decision *)
  src : int;
  dst : int;
  arrived_from : int option;
  header : Pr_core.Forward.hop_header;  (** header on arrival at [node] *)
  sent : (int * Pr_core.Forward.hop_header) option;
      (** next hop and the header written on the wire; [None] when the
          packet was delivered at [node], dropped, or hit the TTL *)
  ttl_exceeded : bool;
}

type observer = {
  on_link : time:float -> u:int -> v:int -> up:bool -> changed:bool -> unit;
  on_hop : net:Netstate.t -> hop -> unit;
      (** [net] is the live link state at decision time; read-only use *)
}

val run :
  ?observer:observer ->
  ?probe:Pr_telemetry.Probe.t ->
  ?linkload:Pr_obs.Linkload.t ->
  ?series:Pr_obs.Series.t ->
  config ->
  link_events:Workload.link_event list ->
  injections:Workload.injection list ->
  outcome
(** Packets injected while their destination is unreachable count as
    [unreachable] only if they also fail to arrive; a repair mid-flight
    can still save them.

    [probe] mirrors the [metrics] accounting call for call — verdicts,
    stretch, hops, re-cycle depth, ladder degradations and failure hits —
    so {!Metrics.of_probes} reproduces the outcome's counters exactly
    (pinned by the observability suite).  Unlike {!Engine.run}, per-step
    latencies are not clocked: arrival processing interleaves packets,
    so per-decision wall time is not meaningful here.

    [linkload] counts every transmission (classed exactly as the
    engines class theirs) against its directed link; [series]
    additionally buckets hops, verdicts, link transitions and
    detector-belief churn into the window of the simulated time they
    happen at — per-hop times here, not injection times, so a long
    detour smears across the windows it actually occupies.

    Raises [Invalid_argument] (via {!Engine.validate_workload}) on
    malformed workloads: unsorted streams, bad timestamps, events on
    non-edges, out-of-range or self-addressed injections. *)
