module Graph = Pr_graph.Graph
module Forward = Pr_core.Forward

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  termination : Pr_core.Forward.termination;
  latency : float;
  ttl : int;
  detection : Detector.config option;
  control : Engine.control option;
}

let default_config (topology : Pr_topo.Topology.t) rotation =
  {
    topology;
    rotation;
    termination = Pr_core.Forward.Distance_discriminator;
    latency = 0.1;
    ttl = Forward.default_ttl topology.graph;
    detection = None;
    control = None;
  }

type packet = {
  id : int;
  src : int;
  dst : int;
  at : int;
  arrived_from : int option;
  header : Forward.hop_header;
  hops : int;
  cost : float;
  episodes : int;         (** PR episodes started so far — probe depth *)
  failure_hits : int;
  was_deliverable : bool; (** dst reachable at injection time *)
}

type event =
  | Link of Workload.link_event
  | Arrive of packet
  | Swap of { u : int; v : int }

type outcome = {
  metrics : Metrics.t;
  finished_at : float;
  max_hops : int;
  epochs : int;
}

type hop = {
  id : int;
  time : float;
  node : int;
  src : int;
  dst : int;
  arrived_from : int option;
  header : Pr_core.Forward.hop_header;
  sent : (int * Pr_core.Forward.hop_header) option;
  ttl_exceeded : bool;
}

type observer = {
  on_link : time:float -> u:int -> v:int -> up:bool -> changed:bool -> unit;
  on_hop : net:Netstate.t -> hop -> unit;
}

let run ?observer ?probe ?linkload ?series config ~link_events ~injections =
  let g = config.topology.Pr_topo.Topology.graph in
  (match Engine.validate_workload g ~link_events ~injections with
  | Ok () -> ()
  | Error e -> invalid_arg ("Timed.run: " ^ Engine.describe_workload_error e));
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build config.rotation in
  let net = Netstate.create g in
  let det = Option.map (fun c -> Detector.create c g) config.detection in
  (* The live control plane (no compiled backend here: a reconciliation
     is one [Routing.build_blocked] rebuild).  With [control = None] the
     admin plane stays all-live, [cur_routing] stays the base tables and
     every mask below is the identity — seed behaviour. *)
  let admin = Array.make (Graph.m g) true in
  let admin_link_up u v = admin.(Graph.edge_index g u v) in
  let cur_routing = ref routing in
  let admin_failures = ref None in
  let epochs = ref 0 in
  let effective_failures () =
    match !admin_failures with
    | None -> Netstate.failures net
    | Some af -> Pr_core.Failure.combine (Netstate.failures net) af
  in
  let effective_up x w = Netstate.is_up net x w && admin_link_up x w in
  (* DD bit budget is a function of the full graph and never shrinks. *)
  let dd_bits = Pr_core.Routing.dd_bits routing in
  let metrics = Metrics.create () in
  let queue = Event.create () in
  let finished_at = ref 0.0 in
  let max_hops = ref 0 in
  List.iter
    (fun (e : Workload.link_event) -> Event.schedule queue ~time:e.time (Link e))
    link_events;
  List.iteri
    (fun id ({ time; src; dst } : Workload.injection) ->
      Event.schedule queue ~time
        (Arrive
           {
             id;
             src;
             dst;
             at = src;
             arrived_from = None;
             header = Forward.fresh_header;
             hops = 0;
             cost = 0.0;
             episodes = 0;
             failure_hits = 0;
             was_deliverable = true (* fixed up at processing time *);
           }))
    injections;
  (* Hops happen at their own times here, so load is recorded straight
     into the run table and the hop-time window — no per-packet scratch
     (the engine's frozen-snapshot shortcut does not apply). *)
  let record_hop_load time ~node ~next ~cls =
    (match linkload with
    | None -> ()
    | Some ll -> Pr_obs.Linkload.record_next ll ~node ~next ~cls);
    match series with
    | None -> ()
    | Some se ->
        Pr_obs.Linkload.record_next (Pr_obs.Series.load_at se ~time) ~node
          ~next ~cls
  in
  let series_verdict time v =
    match series with
    | None -> ()
    | Some se -> Pr_obs.Series.record_verdict se ~time v
  in
  (* Probe feeding mirrors [metrics] call for call, so
     [Metrics.of_probes] reproduces the outcome's counters — the same
     pin the untimed engine carries.  Per-step latencies are not
     clocked: arrival processing interleaves packets, so wall time per
     decision is not meaningful here. *)
  let probe_finish (p : packet) ~verdict =
    (match probe with
    | None -> ()
    | Some pr ->
        (match verdict with
        | `Delivered stretch ->
            Pr_telemetry.Probe.record_delivery pr ~stretch ~hops:p.hops
              ~depth:p.episodes
        | `Unreachable -> Pr_telemetry.Probe.record_unreachable pr
        | `Looped ->
            Pr_telemetry.Probe.record_loop pr ~hops:p.hops ~depth:p.episodes
        | `Dropped reason ->
            Pr_telemetry.Probe.record_drop pr
              ~reason:(Metrics.probe_reason reason)
              ~hops:p.hops ~depth:p.episodes);
        for _ = 1 to p.episodes do
          Pr_telemetry.Probe.record_episode pr
        done;
        Pr_telemetry.Probe.add_failure_hits pr p.failure_hits)
  in
  let probe_degradations degradations =
    match probe with
    | None -> ()
    | Some pr ->
        List.iter
          (function
            | Forward.Retry_complementary -> Pr_telemetry.Probe.record_retry pr
            | Forward.Lfa_rescue -> Pr_telemetry.Probe.record_lfa pr
            | Forward.Dd_saturated ->
                Pr_telemetry.Probe.record_dd_saturation pr)
          degradations
  in
  let observe_hop time (p : packet) ~sent ~ttl_exceeded =
    match observer with
    | None -> ()
    | Some o ->
        o.on_hop ~net
          {
            id = p.id;
            time;
            node = p.at;
            src = p.src;
            dst = p.dst;
            arrived_from = p.arrived_from;
            header = p.header;
            sent;
            ttl_exceeded;
          }
  in
  let account_lost ?reason (p : packet) ~looped ~time =
    (* A packet that could never have been delivered is charged to
       [unreachable]; a deliverable one that died is a protocol loss.
       The probe and series mirror the same ordering. *)
    if not p.was_deliverable then begin
      Metrics.record_unreachable metrics;
      probe_finish p ~verdict:`Unreachable;
      series_verdict time `Unreachable
    end
    else if looped then begin
      Metrics.record_loop metrics;
      probe_finish p ~verdict:`Looped;
      series_verdict time `Looped
    end
    else begin
      Metrics.record_drop ?reason metrics;
      probe_finish p
        ~verdict:
          (`Dropped (Option.value reason ~default:Metrics.Unclassified));
      series_verdict time `Dropped
    end
  in
  let handle_arrival time (p : packet) =
    let p =
      if p.hops = 0 then
        {
          p with
          was_deliverable =
            Pr_core.Failure.pair_connected (effective_failures ()) p.src p.dst;
        }
      else p
    in
    if p.at = p.dst then begin
      if p.hops > !max_hops then max_hops := p.hops;
      let stretch =
        p.cost /. Pr_core.Routing.distance !cur_routing ~node:p.src ~dst:p.dst
      in
      Metrics.record_delivery metrics ~stretch;
      probe_finish p ~verdict:(`Delivered stretch);
      series_verdict time `Delivered;
      observe_hop time p ~sent:None ~ttl_exceeded:false
    end
    else if p.hops >= config.ttl then begin
      account_lost p ~looped:true ~time;
      observe_hop time p ~sent:None ~ttl_exceeded:true
    end
    else begin
      let send next header ~started ~hits =
        observe_hop time p ~sent:(Some (next, header)) ~ttl_exceeded:false;
        Event.schedule queue ~time:(time +. config.latency)
          (Arrive
             {
               p with
               at = next;
               arrived_from = Some p.at;
               header;
               hops = p.hops + 1;
               cost = p.cost +. Graph.weight g p.at next;
               episodes = (p.episodes + if started then 1 else 0);
               failure_hits = p.failure_hits + hits;
             })
      in
      match det with
      | None -> (
          match
            Forward.step ~termination:config.termination ~routing:!cur_routing
              ~cycles ~failures:(effective_failures ()) ~dst:p.dst ~node:p.at
              ~arrived_from:p.arrived_from ~header:p.header ()
          with
          | Forward.Stuck { failure_hits = hits; _ } ->
              account_lost
                { p with failure_hits = p.failure_hits + hits }
                ~looped:false ~time;
              observe_hop time p ~sent:None ~ttl_exceeded:false
          | Forward.Transmit
              { next; header; episode_started; failure_hits = hits; _ } ->
              (* Strict [step] never takes a ladder rung: the header on
                 the wire classes the hop. *)
              record_hop_load time ~node:p.at ~next
                ~cls:
                  (if header.Forward.pr_bit then Pr_obs.Linkload.cls_recycled
                   else Pr_obs.Linkload.cls_shortest);
              send next header ~started:episode_started ~hits)
      | Some d -> (
          (* The router decides on its own beliefs at arrival time; a
             packet sent into a link wrongly believed up dies on the
             wire. *)
          match
            Forward.ladder_step ~termination:config.termination ~dd_bits
              ~hops_left:(config.ttl - p.hops)
              ~budget_guard:(Detector.config d).Detector.budget_guard
              ~routing:!cur_routing ~cycles
              ~link_up:(fun w ->
                Detector.local_view d ~now:time ~node:p.at w
                && admin_link_up p.at w)
              ~dst:p.dst ~node:p.at ~arrived_from:p.arrived_from
              ~header:p.header ()
          with
          | Forward.Degraded_drop { reason; degradations; failure_hits = hits }
            ->
              Metrics.record_degradations metrics degradations;
              probe_degradations degradations;
              account_lost
                { p with failure_hits = p.failure_hits + hits }
                ~looped:false ~time
                ~reason:(Metrics.reason_of_forward reason);
              observe_hop time p ~sent:None ~ttl_exceeded:false
          | Forward.Forwarded
              {
                next;
                header;
                episode_started;
                degradations;
                failure_hits = hits;
                _;
              } ->
              Metrics.record_degradations metrics degradations;
              probe_degradations degradations;
              (* Counted on the wire, before any stale-view death; a
                 rescue rung outranks the PR bit it left behind. *)
              record_hop_load time ~node:p.at ~next
                ~cls:
                  (if
                     List.exists
                       (function
                         | Forward.Retry_complementary | Forward.Lfa_rescue ->
                             true
                         | Forward.Dd_saturated -> false)
                       degradations
                   then Pr_obs.Linkload.cls_rescue
                   else if header.Forward.pr_bit then
                     Pr_obs.Linkload.cls_recycled
                   else Pr_obs.Linkload.cls_shortest);
              if effective_up p.at next then
                send next header ~started:episode_started ~hits
              else begin
                (* The fatal hop counts — hops, episode and hits follow
                   the engine's ladder-walk convention. *)
                account_lost
                  {
                    p with
                    hops = p.hops + 1;
                    episodes = (p.episodes + if episode_started then 1 else 0);
                    failure_hits = p.failure_hits + hits;
                  }
                  ~looped:false ~time ~reason:Metrics.Stale_view;
                observe_hop time p ~sent:None ~ttl_exceeded:false
              end)
    end
  in
  (* The reconciliation mirrors {!Engine}'s: vacuous if the link flapped
     back within the delay, otherwise one routing rebuild per epoch. *)
  let handle_swap u v =
    let idx = Graph.edge_index g u v in
    let up_now = Netstate.is_up net u v in
    if admin.(idx) <> up_now then begin
      admin.(idx) <- up_now;
      incr epochs;
      let down =
        List.rev
          (Graph.fold_edges
             (fun i (e : Graph.edge) acc ->
               if admin.(i) then acc else (e.u, e.v) :: acc)
             g [])
      in
      admin_failures :=
        (if down = [] then None else Some (Pr_core.Failure.of_list g down));
      cur_routing :=
        Pr_core.Routing.build_blocked ~kind:(Pr_core.Routing.kind routing) g
          ~blocked:(fun i -> not admin.(i))
    end
  in
  let rec drain () =
    match Event.next queue with
    | None -> ()
    | Some (time, ev) ->
        finished_at := time;
        (match ev with
        | Link e ->
            let changed = Netstate.set_link net e.u e.v ~up:e.up in
            (match det with
            | Some d -> Detector.observe d ~time ~u:e.u ~v:e.v ~up:e.up
            | None -> ());
            (match series with
            | None -> ()
            | Some se ->
                if changed then Pr_obs.Series.record_link_transition se ~time;
                if Option.is_some det then
                  Pr_obs.Series.record_belief_churn se ~time 2);
            (match config.control with
            | Some c when changed ->
                Event.schedule queue ~time:(time +. c.Engine.delay)
                  (Swap { u = e.u; v = e.v })
            | Some _ | None -> ());
            (match observer with
            | None -> ()
            | Some o -> o.on_link ~time ~u:e.u ~v:e.v ~up:e.up ~changed)
        | Arrive p -> handle_arrival time p
        | Swap { u; v } -> handle_swap u v);
        drain ()
  in
  drain ();
  {
    metrics;
    finished_at = !finished_at;
    max_hops = !max_hops;
    epochs = !epochs;
  }
