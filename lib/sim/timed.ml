module Graph = Pr_graph.Graph
module Forward = Pr_core.Forward

type config = {
  topology : Pr_topo.Topology.t;
  rotation : Pr_embed.Rotation.t;
  termination : Pr_core.Forward.termination;
  latency : float;
  ttl : int;
  detection : Detector.config option;
}

let default_config (topology : Pr_topo.Topology.t) rotation =
  {
    topology;
    rotation;
    termination = Pr_core.Forward.Distance_discriminator;
    latency = 0.1;
    ttl = Forward.default_ttl topology.graph;
    detection = None;
  }

type packet = {
  id : int;
  src : int;
  dst : int;
  at : int;
  arrived_from : int option;
  header : Forward.hop_header;
  hops : int;
  cost : float;
  was_deliverable : bool; (** dst reachable at injection time *)
}

type event = Link of Workload.link_event | Arrive of packet

type outcome = { metrics : Metrics.t; finished_at : float; max_hops : int }

type hop = {
  id : int;
  time : float;
  node : int;
  src : int;
  dst : int;
  arrived_from : int option;
  header : Pr_core.Forward.hop_header;
  sent : (int * Pr_core.Forward.hop_header) option;
  ttl_exceeded : bool;
}

type observer = {
  on_link : time:float -> u:int -> v:int -> up:bool -> changed:bool -> unit;
  on_hop : net:Netstate.t -> hop -> unit;
}

let run ?observer config ~link_events ~injections =
  let g = config.topology.Pr_topo.Topology.graph in
  (match Engine.validate_workload g ~link_events ~injections with
  | Ok () -> ()
  | Error e -> invalid_arg ("Timed.run: " ^ Engine.describe_workload_error e));
  let routing = Pr_core.Routing.build g in
  let cycles = Pr_core.Cycle_table.build config.rotation in
  let net = Netstate.create g in
  let det = Option.map (fun c -> Detector.create c g) config.detection in
  let dd_bits = Pr_core.Routing.dd_bits routing in
  let metrics = Metrics.create () in
  let queue = Event.create () in
  let finished_at = ref 0.0 in
  let max_hops = ref 0 in
  List.iter
    (fun (e : Workload.link_event) -> Event.schedule queue ~time:e.time (Link e))
    link_events;
  List.iteri
    (fun id ({ time; src; dst } : Workload.injection) ->
      Event.schedule queue ~time
        (Arrive
           {
             id;
             src;
             dst;
             at = src;
             arrived_from = None;
             header = Forward.fresh_header;
             hops = 0;
             cost = 0.0;
             was_deliverable = true (* fixed up at processing time *);
           }))
    injections;
  let observe_hop time (p : packet) ~sent ~ttl_exceeded =
    match observer with
    | None -> ()
    | Some o ->
        o.on_hop ~net
          {
            id = p.id;
            time;
            node = p.at;
            src = p.src;
            dst = p.dst;
            arrived_from = p.arrived_from;
            header = p.header;
            sent;
            ttl_exceeded;
          }
  in
  let account_lost ?reason (p : packet) ~looped =
    (* A packet that could never have been delivered is charged to
       [unreachable]; a deliverable one that died is a protocol loss. *)
    if not p.was_deliverable then Metrics.record_unreachable metrics
    else if looped then Metrics.record_loop metrics
    else Metrics.record_drop ?reason metrics
  in
  let handle_arrival time (p : packet) =
    let p =
      if p.hops = 0 then
        { p with was_deliverable = Pr_core.Failure.pair_connected (Netstate.failures net) p.src p.dst }
      else p
    in
    if p.at = p.dst then begin
      if p.hops > !max_hops then max_hops := p.hops;
      Metrics.record_delivery metrics
        ~stretch:(p.cost /. Pr_core.Routing.distance routing ~node:p.src ~dst:p.dst);
      observe_hop time p ~sent:None ~ttl_exceeded:false
    end
    else if p.hops >= config.ttl then begin
      account_lost p ~looped:true;
      observe_hop time p ~sent:None ~ttl_exceeded:true
    end
    else begin
      let send next header =
        observe_hop time p ~sent:(Some (next, header)) ~ttl_exceeded:false;
        Event.schedule queue ~time:(time +. config.latency)
          (Arrive
             {
               p with
               at = next;
               arrived_from = Some p.at;
               header;
               hops = p.hops + 1;
               cost = p.cost +. Graph.weight g p.at next;
             })
      in
      match det with
      | None -> (
          match
            Forward.step ~termination:config.termination ~routing ~cycles
              ~failures:(Netstate.failures net) ~dst:p.dst ~node:p.at
              ~arrived_from:p.arrived_from ~header:p.header ()
          with
          | Forward.Stuck _ ->
              account_lost p ~looped:false;
              observe_hop time p ~sent:None ~ttl_exceeded:false
          | Forward.Transmit { next; header; _ } -> send next header)
      | Some d -> (
          (* The router decides on its own beliefs at arrival time; a
             packet sent into a link wrongly believed up dies on the
             wire. *)
          match
            Forward.ladder_step ~termination:config.termination ~dd_bits
              ~hops_left:(config.ttl - p.hops)
              ~budget_guard:(Detector.config d).Detector.budget_guard
              ~routing ~cycles
              ~link_up:(Detector.local_view d ~now:time ~node:p.at)
              ~dst:p.dst ~node:p.at ~arrived_from:p.arrived_from
              ~header:p.header ()
          with
          | Forward.Degraded_drop { reason; degradations; _ } ->
              Metrics.record_degradations metrics degradations;
              account_lost p ~looped:false
                ~reason:(Metrics.reason_of_forward reason);
              observe_hop time p ~sent:None ~ttl_exceeded:false
          | Forward.Forwarded { next; header; degradations; _ } ->
              Metrics.record_degradations metrics degradations;
              if Netstate.is_up net p.at next then send next header
              else begin
                account_lost p ~looped:false ~reason:Metrics.Stale_view;
                observe_hop time p ~sent:None ~ttl_exceeded:false
              end)
    end
  in
  let rec drain () =
    match Event.next queue with
    | None -> ()
    | Some (time, ev) ->
        finished_at := time;
        (match ev with
        | Link e ->
            let changed = Netstate.set_link net e.u e.v ~up:e.up in
            (match det with
            | Some d -> Detector.observe d ~time ~u:e.u ~v:e.v ~up:e.up
            | None -> ());
            (match observer with
            | None -> ()
            | Some o -> o.on_link ~time ~u:e.u ~v:e.v ~up:e.up ~changed)
        | Arrive p -> handle_arrival time p);
        drain ()
  in
  drain ();
  { metrics; finished_at = !finished_at; max_hops = !max_hops }
