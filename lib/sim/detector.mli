(** Per-router failure detection with configurable imperfection.

    The seed engines hand every router the global truth ({!Netstate}): a
    link fails and both endpoints react on the very next packet.  Real
    IPFRR routers learn about their adjacent links through a detector
    (loss-of-light, BFD) that is {e late}, {e asymmetric} and occasionally
    {e wrong}.  This module keeps one belief per link {e endpoint}, driven
    from the true link events through a configurable model:

    - {b detection delay}: a failure is believed [down_delay] after it
      happens, a repair [up_delay] after — plus per-endpoint [jitter], so
      the two ends of a link can disagree and open unidirectional-failure
      windows;
    - {b blips}: a failure repaired within the detection delay is never
      noticed at all;
    - {b hold-down with backoff}: a repair is additionally held down for
      [hold_down] (the paper's §7 mitigation, generalised from
      {!Flap.apply_hold_down} into per-router state); each repair cancelled
      by a re-failure inside its window multiplies the next hold by
      [backoff], capped at [max_backoff];
    - {b false positives}: with probability [false_positive_rate] per
      observed transition, an endpoint falsely believes its link down for
      [false_positive_hold] — the jumpy-detector regime of flap storms.

    All randomness is deterministic from [seed] (one {!Pr_util.Rng} stream
    per endpoint), so runs replay exactly.  {!ideal} makes beliefs track
    the truth perfectly; the engines' differential tests pin that
    configuration to the seed behaviour. *)

type config = {
  down_delay : float;          (** failure detection latency *)
  up_delay : float;            (** repair detection latency *)
  jitter : float;              (** per-endpoint uniform extra delay in
                                   [0, jitter) *)
  false_positive_rate : float; (** per observed transition, per endpoint *)
  false_positive_hold : float; (** how long a false down lasts *)
  hold_down : float;           (** base hold-down on repairs *)
  backoff : float;             (** hold multiplier per cancelled repair,
                                   >= 1 *)
  max_backoff : float;         (** cap on the accumulated multiplier *)
  budget_guard : int;
      (** armed into {!Pr_core.Forward.ladder_step}'s hop-budget rung by
          the engines; 0 disables it *)
  seed : int;
}

val ideal : config
(** Zero delays, no jitter, no false positives, no hold-down, guard off —
    beliefs equal truth at every instant and the engines behave exactly
    like their seed (global-truth) paths. *)

val default : config
(** A mildly imperfect detector: 50 ms failure detection, 100 ms repair
    detection, 50 ms jitter, 0.5 s hold-down doubling up to 8x, no false
    positives. *)

type t

val create : config -> Pr_graph.Graph.t -> t
(** All links believed up.  Raises [Invalid_argument] on a malformed
    config (negative delays, rate outside [0, 1], backoff below 1). *)

val config : t -> config

val observe : t -> time:float -> u:int -> v:int -> up:bool -> unit
(** Feed one true link transition to both endpoints.  Must be called in
    time order; the engines call it for every link event, including
    redundant ones (churn still feeds the false-positive model).  Raises
    [Invalid_argument] for non-links. *)

val believes_up : t -> now:float -> node:int -> other:int -> bool
(** [node]'s current belief about its link to [other], committing any
    matured pending transitions first. *)

val local_view : t -> now:float -> node:int -> int -> bool
(** [local_view t ~now ~node] is [node]'s view of its interfaces — the
    [link_up] argument {!Pr_core.Forward.ladder_step} expects. *)

val quiescent : t -> now:float -> net:Netstate.t -> bool
(** Every endpoint's belief matches the true state of its link.  Once
    quiescent, the engines behave as the seed does — this is the premise
    of the weakened delivery invariant the chaos monitors check. *)

val asymmetric_links : t -> now:float -> (int * int) list
(** Links whose two endpoints currently disagree — the unidirectional
    failure windows. *)

val force_belief : t -> node:int -> other:int -> up:bool -> unit
(** Test hook: pin one endpoint's belief, clearing any pending transition
    and false-positive hold. *)
