module Graph = Pr_graph.Graph

type found = {
  graph : Graph.t;
  orders : int list array;
  failures : (int * int) list;
  src : int;
  dst : int;
  genus : int;
  curved_edges : int;
  outcome : Pr_core.Forward.outcome;
}

let run_case graph orders failures ~src ~dst =
  let rotation = Pr_embed.Rotation.of_orders graph orders in
  let routing = Pr_core.Routing.build graph in
  let cycles = Pr_core.Cycle_table.build rotation in
  let failure_set = Pr_core.Failure.of_list graph failures in
  Pr_core.Forward.run ~routing ~cycles ~failures:failure_set ~src ~dst ()

let undelivered graph orders failures ~src ~dst =
  let failure_set = Pr_core.Failure.of_list graph failures in
  Pr_core.Failure.pair_connected failure_set src dst
  && (run_case graph orders failures ~src ~dst).Pr_core.Forward.outcome
     <> Pr_core.Forward.Delivered

let embed_stats graph orders =
  let faces = Pr_embed.Faces.compute (Pr_embed.Rotation.of_orders graph orders) in
  ( Pr_embed.Surface.genus faces,
    List.length (Pr_embed.Validate.curved_edges faces) )

(* Greedy minimisation: drop failures while the loss persists. *)
let shrink_failures graph orders failures ~src ~dst =
  let rec pass failures =
    let shrunk =
      List.find_map
        (fun f ->
          let smaller = List.filter (fun f' -> f' <> f) failures in
          if smaller <> [] && undelivered graph orders smaller ~src ~dst then
            Some smaller
          else None)
        failures
    in
    match shrunk with Some smaller -> pass smaller | None -> failures
  in
  pass failures

let search ?(max_nodes = 9) ?(max_failures = 3) ?(attempts = 2000) ~seed () =
  let rng = Pr_util.Rng.create ~seed in
  let rec try_once remaining =
    if remaining = 0 then None
    else begin
      let n = Pr_util.Rng.int_in rng 5 max_nodes in
      let extra = Pr_util.Rng.int_in rng 1 5 in
      let graph =
        (Pr_topo.Generate.two_connected rng ~n ~extra).Pr_topo.Topology.graph
      in
      let rotation = Pr_embed.Rotation.random rng graph in
      let orders = Array.map Array.to_list (Array.init (Graph.n graph) (Pr_embed.Rotation.order rotation)) in
      let k = Pr_util.Rng.int_in rng 1 (min max_failures (Graph.m graph - 1)) in
      let failures =
        List.map
          (fun i ->
            let e = Graph.edge graph i in
            (e.Graph.u, e.Graph.v))
          (Pr_util.Rng.sample_without_replacement rng ~k ~n:(Graph.m graph))
      in
      let failure_set = Pr_core.Failure.of_list graph failures in
      let witness =
        if not (Pr_core.Failure.survives_connected failure_set) then None
        else begin
          let pairs = List.filter (fun (s, d) -> s <> d)
              (List.concat_map
                 (fun s -> List.map (fun d -> (s, d)) (List.init (Graph.n graph) Fun.id))
                 (List.init (Graph.n graph) Fun.id))
          in
          List.find_opt (fun (src, dst) -> undelivered graph orders failures ~src ~dst) pairs
        end
      in
      match witness with
      | None -> try_once (remaining - 1)
      | Some (src, dst) ->
          let failures = shrink_failures graph orders failures ~src ~dst in
          let genus, curved_edges = embed_stats graph orders in
          Some
            {
              graph;
              orders;
              failures;
              src;
              dst;
              genus;
              curved_edges;
              outcome = (run_case graph orders failures ~src ~dst).Pr_core.Forward.outcome;
            }
    end
  in
  try_once attempts

let verify f = undelivered f.graph f.orders f.failures ~src:f.src ~dst:f.dst

let describe f =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "PR delivery counterexample: n=%d m=%d genus=%d curved=%d\n"
    (Graph.n f.graph) (Graph.m f.graph) f.genus f.curved_edges;
  Printf.bprintf buf "  edges:";
  Graph.iter_edges (fun _ (e : Graph.edge) -> Printf.bprintf buf " %d-%d" e.u e.v) f.graph;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun v order ->
      Printf.bprintf buf "  rotation %d: %s\n" v
        (String.concat " " (List.map string_of_int order)))
    f.orders;
  Printf.bprintf buf "  failures: %s\n"
    (String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) f.failures));
  Printf.bprintf buf "  %d -> %d: %s\n" f.src f.dst
    (match f.outcome with
    | Pr_core.Forward.Ttl_exceeded -> "forwarding loop"
    | Pr_core.Forward.Dropped_no_interface -> "dropped (no interface)"
    | Pr_core.Forward.Dropped_unreachable -> "dropped (unreachable)"
    | Pr_core.Forward.Dropped_corrupt -> "dropped (corrupt)"
    | Pr_core.Forward.Delivered -> "delivered?!");
  Buffer.contents buf
