module Topology = Pr_topo.Topology
module Forward = Pr_core.Forward

type row = {
  topology : string;
  k : int;
  ttl : int;
  pairs : int;
  delivered : int;
  died_of_ttl : int;
  undeliverable : int;
}

let measure ?(seed = 42) ?(samples = 60) ?safe_rotation (topo : Topology.t) ~k
    ~ttls =
  let g = topo.graph in
  let routing = Pr_core.Routing.build g in
  let rotation =
    match safe_rotation with
    | Some r -> r
    | None -> (Pr_embed.Recommend.for_topology ~seed topo).Pr_embed.Recommend.rotation
  in
  let cycles = Pr_core.Cycle_table.build rotation in
  let scenarios =
    if k = 1 then Pr_core.Scenario.single_links g
    else Pr_core.Scenario.random_multi (Pr_util.Rng.create ~seed) g ~k ~samples
  in
  (* Hop counts with an effectively unlimited budget, per pair. *)
  let hops_needed = ref [] in
  let pairs = ref 0 in
  List.iter
    (fun scenario ->
      let failures = Pr_core.Failure.of_list g scenario in
      List.iter
        (fun (src, dst) ->
          incr pairs;
          let trace = Forward.run ~routing ~cycles ~failures ~src ~dst () in
          match trace.Forward.outcome with
          | Forward.Delivered ->
              hops_needed := Some (Pr_graph.Paths.hops trace.Forward.path) :: !hops_needed
          | Forward.Dropped_no_interface | Forward.Dropped_unreachable
          | Forward.Dropped_corrupt | Forward.Ttl_exceeded ->
              hops_needed := None :: !hops_needed)
        (Pr_core.Scenario.connected_affected_pairs routing failures))
    scenarios;
  let undeliverable =
    List.length (List.filter (fun h -> h = None) !hops_needed)
  in
  List.map
    (fun ttl ->
      let delivered =
        List.length
          (List.filter (function Some h -> h <= ttl | None -> false) !hops_needed)
      in
      {
        topology = topo.name;
        k;
        ttl;
        pairs = !pairs;
        delivered;
        died_of_ttl = !pairs - undeliverable - delivered;
        undeliverable;
      })
    ttls

let table rows =
  Pr_util.Tablefmt.render
    ~header:
      [ "topology"; "k"; "TTL"; "pairs"; "delivered"; "died of TTL"; "undeliverable" ]
    (List.map
       (fun r ->
         [
           r.topology;
           string_of_int r.k;
           string_of_int r.ttl;
           string_of_int r.pairs;
           Printf.sprintf "%d (%.1f%%)" r.delivered
             (100.0 *. float_of_int r.delivered /. float_of_int (max 1 r.pairs));
           string_of_int r.died_of_ttl;
           string_of_int r.undeliverable;
         ])
       rows)
